#ifndef P2PDT_CORPUS_GENERATOR_H_
#define P2PDT_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace p2pdt {

/// Parameters of the synthetic Delicious-like corpus.
///
/// The paper demonstrates on a crawl of delicious.com bookmarks (Wetzker et
/// al. 2008): ~950k users, of whom those with 50–200 annotated bookmarks
/// were kept. That dataset is not redistributable, so this generator
/// produces a corpus with the same statistical shape (see DESIGN.md §2):
///
///  * power-law tag popularity (a few huge tags, a long tail),
///  * multi-label documents (tags drawn per document, 1..max),
///  * per-user topical interest profiles (users are *not* IID — exactly
///    what makes P2P learning hard),
///  * documents whose words are topic-dependent, with background noise,
///    inflectional endings (for the stemmer) and stop words (for the
///    filter),
///  * tag names disjoint from the document vocabulary, reflecting the
///    paper's emphasis that "tags may not necessarily be contained within
///    the documents".
struct CorpusOptions {
  std::size_t num_users = 64;
  /// Paper: users with at least 50 and fewer than 200 bookmarks were kept.
  std::size_t min_docs_per_user = 50;
  std::size_t max_docs_per_user = 200;

  std::size_t num_tags = 20;
  std::size_t vocabulary_size = 4000;
  /// Distinct topical words per tag.
  std::size_t topic_words_per_tag = 60;

  /// Document length in (pre-filter) content words.
  std::size_t min_doc_words = 40;
  std::size_t max_doc_words = 160;

  /// Tags per document: 1 + Binomial-ish up to this cap.
  std::size_t max_tags_per_doc = 4;
  /// Probability of each additional tag beyond the first.
  double extra_tag_probability = 0.45;

  /// Zipf exponent of global tag popularity.
  double tag_popularity_zipf = 0.9;
  /// Zipf exponent of word frequency inside a topic.
  double topic_word_zipf = 1.05;
  /// Fraction of words drawn from the background (all-vocabulary)
  /// distribution instead of the document's topics.
  double background_word_fraction = 0.25;
  /// Zipf exponent of the background word distribution.
  double background_word_zipf = 1.1;

  /// Dirichlet concentration of per-user interest over tags; smaller is
  /// more skewed (each user cares about fewer topics).
  double user_interest_alpha = 0.25;

  /// Probability of appending an inflectional ending (-s/-ing/-ed/...) to
  /// a content word at render time; the Porter stemmer removes these.
  double inflection_probability = 0.20;
  /// Probability of inserting a stop word between content words.
  double stop_word_probability = 0.20;

  uint64_t seed = 2010;
};

/// A generated document: raw text (as the preprocessing pipeline would read
/// it from disk), its ground-truth tags (by name), and the owning user.
struct RawDocument {
  std::string title;
  std::string text;
  std::vector<std::string> tags;
  std::size_t user = 0;
};

/// A full synthetic corpus plus its generation metadata.
struct GeneratedCorpus {
  std::vector<RawDocument> documents;
  /// Tag-name universe, index = dense tag id used downstream.
  std::vector<std::string> tag_names;
  /// Document indexes per user.
  std::vector<std::vector<std::size_t>> user_documents;
  /// Ground-truth topical words per tag (diagnostics / tests).
  std::vector<std::vector<std::string>> topic_words;

  std::size_t num_users() const { return user_documents.size(); }
};

/// Generates a corpus; deterministic in `options.seed`.
Result<GeneratedCorpus> GenerateCorpus(const CorpusOptions& options);

namespace corpus_internal {
/// Generates `count` distinct pronounceable pseudo-words (syllable
/// concatenations); exposed for tests.
std::vector<std::string> MakeWordList(std::size_t count, Rng& rng,
                                      const std::string& prefix = "");
}  // namespace corpus_internal

}  // namespace p2pdt

#endif  // P2PDT_CORPUS_GENERATOR_H_
