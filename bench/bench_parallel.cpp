// PERF — training-time scaling of the parallel local-training engine.
//
// Sweeps the thread-pool size over 1/2/4/8 threads and times the three
// parallelized training paths: pooled one-vs-all linear SVM (the
// centralized baseline's trainer), CEMPaR's (peer × tag) kernel-SVM grid,
// and PACE's per-peer local phase (linear SVMs + accuracy + k-means). Also
// verifies the engine's determinism contract end to end: every thread
// count must reproduce the 1-thread prediction scores bit for bit.
//
// Results land in bench_results/parallel.csv. Speedup is relative to the
// 1-thread run of the same engine and is bounded by the physical cores of
// the host (hardware_concurrency is printed with the results).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/linear_svm.h"
#include "p2pdmt/data_distribution.h"
#include "p2pdmt/environment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

using namespace p2pdt_bench;

namespace {

constexpr std::size_t kNumPeers = 64;

std::vector<MultiLabelDataset> PeerPartition(const VectorizedCorpus& corpus) {
  DataDistributionOptions opt;
  opt.cls = ClassDistribution::kByUser;
  Result<std::vector<MultiLabelDataset>> r =
      DistributeData(corpus.dataset, kNumPeers, opt, &corpus.doc_user);
  if (!r.ok()) {
    std::fprintf(stderr, "distribution failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

std::vector<SparseVector> Probes(const VectorizedCorpus& corpus,
                                 std::size_t n) {
  std::vector<SparseVector> probes;
  const auto& examples = corpus.dataset.examples();
  for (std::size_t i = 0; i < examples.size() && probes.size() < n;
       i += examples.size() / n + 1) {
    probes.push_back(examples[i].x);
  }
  return probes;
}

struct EngineRun {
  double seconds = 0.0;
  std::vector<double> checksum;  // concatenated prediction scores
};

EngineRun RunOneVsAll(const VectorizedCorpus& corpus) {
  EngineRun out;
  Stopwatch timer;
  Result<OneVsAllModel> model = TrainOneVsAll(
      corpus.dataset,
      [](const std::vector<Example>& examples, TagId tag)
          -> Result<std::unique_ptr<BinaryClassifier>> {
        LinearSvmOptions opt;
        opt.seed = DeriveSeed(1, 0, tag);
        Result<LinearSvmModel> m = TrainLinearSvm(examples, opt);
        if (!m.ok()) return m.status();
        return std::unique_ptr<BinaryClassifier>(
            std::make_unique<LinearSvmModel>(std::move(m).value()));
      });
  out.seconds = timer.ElapsedSeconds();
  if (!model.ok()) std::abort();
  for (const SparseVector& x : Probes(corpus, 20)) {
    std::vector<double> scores = model->Scores(x);
    out.checksum.insert(out.checksum.end(), scores.begin(), scores.end());
  }
  return out;
}

template <typename MakeClassifier>
EngineRun RunP2P(const VectorizedCorpus& corpus,
                 const MakeClassifier& make_classifier) {
  EnvironmentOptions eo;
  eo.num_peers = kNumPeers;
  auto env = std::move(Environment::Create(eo)).value();
  auto classifier = make_classifier(*env);
  Status setup =
      classifier->Setup(PeerPartition(corpus), corpus.dataset.num_tags());
  if (!setup.ok()) std::abort();

  EngineRun out;
  Stopwatch timer;
  bool done = false;
  classifier->Train([&](Status s) {
    if (!s.ok()) std::abort();
    done = true;
  });
  env->RunUntilFlag(done, 36000);
  out.seconds = timer.ElapsedSeconds();

  for (const SparseVector& x : Probes(corpus, 10)) {
    bool pdone = false;
    classifier->Predict(1, x, [&](P2PPrediction p) {
      out.checksum.insert(out.checksum.end(), p.scores.begin(),
                          p.scores.end());
      pdone = true;
    });
    env->RunUntilFlag(pdone, 36000);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== PERF: parallel local training (thread sweep) ===\n\n");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  CorpusOptions copt;
  copt.num_users = kNumPeers;
  copt.min_docs_per_user = 20;
  copt.max_docs_per_user = 35;
  copt.num_tags = 12;
  copt.vocabulary_size = 2000;
  copt.seed = 20100913;
  Result<VectorizedCorpus> corpus_r = MakeVectorizedCorpus(copt);
  if (!corpus_r.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus_r.status().ToString().c_str());
    return 1;
  }
  const VectorizedCorpus& corpus = corpus_r.value();
  std::printf("corpus: %zu documents, %u tags, %zu peers\n\n",
              corpus.dataset.size(), corpus.dataset.num_tags(), kNumPeers);

  struct Engine {
    const char* name;
    std::function<EngineRun()> run;
  };
  std::vector<Engine> engines = {
      {"onevsall_linear", [&] { return RunOneVsAll(corpus); }},
      {"cempar_kernel_grid",
       [&] {
         return RunP2P(corpus, [](Environment& env) {
           CemparOptions opt;
           opt.svm.kernel = Kernel::Linear();
           return std::make_unique<Cempar>(env.sim(), env.net(),
                                           *env.chord(), opt);
         });
       }},
      {"pace_local",
       [&] {
         return RunP2P(corpus, [](Environment& env) {
           return std::make_unique<Pace>(env.sim(), env.net(), env.overlay(),
                                         PaceOptions{});
         });
       }},
  };

  CsvWriter csv({"engine", "threads", "seconds", "speedup_vs_1",
                 "identical_to_1thread"});
  std::printf("%-20s %8s %10s %10s %10s\n", "engine", "threads", "seconds",
              "speedup", "identical");
  for (const Engine& engine : engines) {
    std::vector<double> reference;
    double t1 = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool::SetGlobalConcurrency(threads);
      EngineRun run = engine.run();
      if (threads == 1) {
        reference = run.checksum;
        t1 = run.seconds;
      }
      const bool identical = run.checksum == reference;  // exact doubles
      const double speedup = run.seconds > 0.0 ? t1 / run.seconds : 0.0;
      std::printf("%-20s %8zu %10.3f %10.2f %10s\n", engine.name, threads,
                  run.seconds, speedup, identical ? "yes" : "NO");
      csv.AddRow({engine.name, std::to_string(threads),
                  std::to_string(run.seconds), std::to_string(speedup),
                  identical ? "yes" : "no"});
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %zu threads diverged "
                     "from the serial run\n",
                     engine.name, threads);
        return 1;
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(0);

  WriteResults(csv, "parallel.csv");
  return 0;
}
