#include "p2psim/transport.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/rng.h"

namespace p2pdt {

ReliableTransport::ReliableTransport(Simulator& sim, PhysicalNetwork& net,
                                     ReliableTransportOptions options)
    : sim_(sim), net_(net), options_(options) {
  options_.backoff_factor = std::max(1.0, options_.backoff_factor);
  options_.jitter = std::clamp(options_.jitter, 0.0, 0.9);
}

double ReliableTransport::EstimateRtt(NodeId from, NodeId to,
                                      std::size_t bytes) const {
  double bw = net_.options().bandwidth_bytes_per_sec;
  return 2.0 * net_.Latency(from, to) +
         static_cast<double>(bytes + options_.ack_bytes) / bw;
}

double ReliableTransport::RetransmissionTimeout(MsgId id, std::size_t attempt,
                                                double base_rto) const {
  double rto = base_rto;
  for (std::size_t i = 0; i < attempt; ++i) rto *= options_.backoff_factor;
  if (options_.jitter > 0.0) {
    // Jitter stream keyed by (seed, msg_id, attempt): independent of thread
    // count and of every other message's schedule.
    Rng jitter_rng(DeriveSeed(options_.seed, id, attempt));
    rto *= jitter_rng.Uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  }
  return std::clamp(rto, options_.rto_min, options_.rto_max);
}

ReliableTransport::MsgId ReliableTransport::SendReliable(
    NodeId from, NodeId to, std::size_t bytes, MessageType type,
    std::function<void()> on_deliver, std::function<void()> on_acked,
    std::function<void()> on_give_up) {
  auto p = std::make_shared<Pending>();
  p->id = next_id_++;
  p->from = from;
  p->to = to;
  p->bytes = bytes;
  p->type = type;
  p->on_deliver = std::move(on_deliver);
  p->on_acked = std::move(on_acked);
  p->on_give_up = std::move(on_give_up);
  p->sent_at = sim_.Now();
  if (Tracer* tracer = net_.tracer()) {
    p->trace = tracer->StartSpan(
        std::string("reliable/") + MessageTypeToString(type), sim_.Now(),
        from, tracer->current(), "transport");
    tracer->AddArg(p->trace, "to", std::to_string(to));
    tracer->AddArg(p->trace, "msg_id", std::to_string(p->id));
  }
  pending_.emplace(p->id, p);
  Attempt(p);
  return p->id;
}

void ReliableTransport::Attempt(std::shared_ptr<Pending> p) {
  const std::size_t attempt = p->attempts++;  // 0-based attempt index
  // Each physical attempt (and the ACK the receiver returns) nests under
  // the logical-message span, including retransmissions fired from timeout
  // events where no context would otherwise be live.
  ScopedTraceContext scope(net_.tracer(), p->trace);
  net_.Send(
      p->from, p->to, p->bytes, p->type,
      [this, p] {
        // Receiver side: run the payload exactly once per logical message,
        // then (re-)ACK — a duplicate data arrival still deserves an ACK
        // because the previous one may have been lost.
        if (admission_ && delivered_.count(p->id) == 0) {
          AdmissionVerdict v = admission_(p->to, p->type);
          if (!v.accept) {
            // Shed: the payload never runs. A typed NACK carries the
            // server's retry-after back; no ACK, so the message stays
            // pending at the sender.
            net_.stats().RecordDrop(p->type, DropReason::kOverloadShed);
            if (Tracer* tracer = net_.tracer()) {
              tracer->Instant("overload_shed", sim_.Now(), p->to, p->trace);
            }
            const double retry_after = v.retry_after;
            net_.Send(p->to, p->from, options_.nack_bytes,
                      MessageType::kOverloadNack,
                      [this, p, retry_after] {
                        HandleOverloadNack(p, retry_after);
                      },
                      nullptr);
            return;
          }
          // Accepted: mark delivered *now* (a retransmission arriving while
          // the payload waits in the serving queue must not enqueue it
          // twice), then run the payload after the queueing delay.
          delivered_.insert(p->id);
          if (p->on_deliver) {
            if (v.delay > 0.0) {
              sim_.Schedule(v.delay, [p] { p->on_deliver(); });
            } else {
              p->on_deliver();
            }
          }
        } else if (delivered_.insert(p->id).second && p->on_deliver) {
          p->on_deliver();
        }
        net_.Send(p->to, p->from, options_.ack_bytes, MessageType::kAck,
                  [this, p] { HandleAck(p); }, nullptr);
      },
      nullptr);

  double base_rto = options_.rto_multiplier *
                    EstimateRtt(p->from, p->to, p->bytes);
  double timeout = RetransmissionTimeout(p->id, attempt, base_rto);
  sim_.Schedule(timeout, [this, p, attempt] { HandleTimeout(p, attempt); });
}

void ReliableTransport::HandleTimeout(std::shared_ptr<Pending> p,
                                      std::size_t attempt) {
  if (p->settled) return;
  // A server-suggested retry-after wait owns the retransmission schedule;
  // the standard backoff timer standing down is exactly the retry-storm
  // fix. (If the NACK itself was lost, overload_wait stays false and this
  // path still recovers the message.)
  if (p->overload_wait) return;
  // Only the timeout armed by the newest attempt may act; earlier ones are
  // stale (defensive — attempts are issued strictly one at a time).
  if (attempt + 1 != p->attempts) return;
  if (p->attempts > options_.max_retries) {
    GiveUp(std::move(p));
    return;
  }
  net_.stats().RecordRetransmit(p->type);
  if (Tracer* tracer = net_.tracer()) {
    tracer->Instant("retransmit", sim_.Now(), p->from, p->trace);
  }
  Attempt(std::move(p));
}

void ReliableTransport::HandleAck(std::shared_ptr<Pending> p) {
  if (p->settled) return;  // duplicate ACK
  p->settled = true;
  pending_.erase(p->id);
  net_.stats().RecordAckReceived();
  if (MetricsRegistry* metrics = net_.metrics()) {
    metrics
        ->GetHistogram("transport_settle_seconds",
                       {{"type", MessageTypeToString(p->type)},
                        {"outcome", "acked"}})
        .Observe(sim_.Now() - p->sent_at);
  }
  if (Tracer* tracer = net_.tracer()) {
    tracer->AddArg(p->trace, "attempts", std::to_string(p->attempts));
    tracer->AddArg(p->trace, "outcome", "acked");
    tracer->EndSpan(p->trace, sim_.Now());
  }
  // Proof of life: the peer answered, so any accumulated suspicion is
  // stale.
  if (p->to < suspicion_.size()) suspicion_[p->to] = 0;
  if (p->on_acked) {
    ScopedTraceContext scope(net_.tracer(), p->trace);
    p->on_acked();
  }
}

void ReliableTransport::HandleOverloadNack(std::shared_ptr<Pending> p,
                                           double retry_after) {
  if (p->settled) return;
  ++overload_rejects_;
  ++p->overload_rejects;
  // A NACK is proof of life: the peer is overloaded, not dead.
  if (p->to < suspicion_.size()) suspicion_[p->to] = 0;
  if (Tracer* tracer = net_.tracer()) {
    tracer->Instant("overload_nack", sim_.Now(), p->from, p->trace);
  }
  if (p->overload_rejects > options_.max_overload_retries) {
    p->overloaded = true;
    GiveUp(std::move(p));
    return;
  }
  // Honor the server's retry-after (with deterministic jitter so a burst
  // of shed senders does not re-arrive in lockstep), suppressing the
  // standard backoff timer until the retry fires.
  double delay = std::max(retry_after, options_.rto_min);
  if (options_.jitter > 0.0) {
    Rng jitter_rng(
        DeriveSeed(options_.seed ^ 0x0AD, p->id, p->overload_rejects));
    delay *= jitter_rng.Uniform(1.0, 1.0 + options_.jitter);
  }
  p->overload_wait = true;
  sim_.Schedule(delay, [this, p] {
    if (p->settled) return;
    p->overload_wait = false;
    net_.stats().RecordRetransmit(p->type);
    if (Tracer* tracer = net_.tracer()) {
      tracer->Instant("overload_retry", sim_.Now(), p->from, p->trace);
    }
    Attempt(p);
  });
}

void ReliableTransport::GiveUp(std::shared_ptr<Pending> p) {
  p->settled = true;
  pending_.erase(p->id);
  net_.stats().RecordGiveUp(p->type);
  if (MetricsRegistry* metrics = net_.metrics()) {
    metrics
        ->GetHistogram("transport_settle_seconds",
                       {{"type", MessageTypeToString(p->type)},
                        {"outcome", "give_up"}})
        .Observe(sim_.Now() - p->sent_at);
  }
  if (Tracer* tracer = net_.tracer()) {
    tracer->Instant("give_up", sim_.Now(), p->from, p->trace);
    tracer->AddArg(p->trace, "attempts", std::to_string(p->attempts));
    tracer->AddArg(p->trace, "outcome", "give_up");
    tracer->EndSpan(p->trace, sim_.Now());
  }
  // Suspicion is for peers that stopped answering. An overloaded peer
  // answered with NACKs — suspecting it would wrongly trigger standby
  // promotion and pile recovery traffic onto a peer already drowning.
  if (!p->overloaded) RaiseSuspicion(p->to);
  if (p->on_give_up) {
    ScopedTraceContext scope(net_.tracer(), p->trace);
    p->on_give_up();
  }
}

void ReliableTransport::RaiseSuspicion(NodeId node) {
  if (node >= suspicion_.size()) suspicion_.resize(node + 1, 0);
  ++suspicion_[node];
  if (suspicion_[node] == options_.suspicion_threshold &&
      suspicion_listener_) {
    suspicion_listener_(node);
  }
}

bool ReliableTransport::IsSuspected(NodeId node) const {
  return SuspicionLevel(node) >= options_.suspicion_threshold;
}

std::size_t ReliableTransport::SuspicionLevel(NodeId node) const {
  return node < suspicion_.size() ? suspicion_[node] : 0;
}

void ReliableTransport::ClearSuspicion(NodeId node) {
  if (node < suspicion_.size()) suspicion_[node] = 0;
}

}  // namespace p2pdt
