// The cost-ledger contract: counters are behavior-neutral, additive across
// threads, and bit-identical for any work partition — the property that
// lets BENCH_baseline.json gate at 0% tolerance and lets the scale suite
// assert serial == sharded ledgers.

#include "common/cost_ledger.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "corpus/vectorize.h"
#include "ml/kernel_svm.h"
#include "ml/lsh.h"
#include "ml/serialization.h"
#include "p2pdmt/experiment.h"

namespace p2pdt {
namespace {

std::vector<Example> TinyProblem(std::size_t n) {
  std::vector<Example> data;
  for (std::size_t i = 0; i < n; ++i) {
    double sign = i % 2 == 0 ? 1.0 : -1.0;
    SparseVector x = SparseVector::FromPairs(
        {{static_cast<uint32_t>(i % 4), 1.0}, {10, sign * 0.5}});
    x.L2Normalize();
    data.push_back({std::move(x), sign});
  }
  return data;
}

TEST(CostCountsTest, ArithmeticAndEquality) {
  CostCounts a;
  a.kernel_evals = 10;
  a.wire_bytes_by_type[2] = 100;
  CostCounts b;
  b.kernel_evals = 4;
  b.wire_bytes_by_type[2] = 60;
  b.wire_messages_by_type[2] = 1;

  CostCounts d = a;
  d += b;
  EXPECT_EQ(d.kernel_evals, 14u);
  EXPECT_EQ(d.wire_bytes_by_type[2], 160u);
  EXPECT_EQ((d - b).kernel_evals, a.kernel_evals);
  EXPECT_TRUE(d - b == a);
  EXPECT_TRUE(a != b);
  EXPECT_EQ(d.total_wire_bytes(), 160u);
  EXPECT_EQ(d.total_wire_messages(), 1u);
}

TEST(CostCountsTest, ScalarsEnumerateEveryFieldInOrder) {
  CostCounts c;
  c.sparse_dot_calls = 7;
  auto scalars = c.Scalars();
  ASSERT_FALSE(scalars.empty());
  EXPECT_STREQ(scalars.front().first, "sparse_dot_calls");
  EXPECT_EQ(scalars.front().second, 7u);
  // ToString is the bit-exact fingerprint: every scalar appears.
  std::string s = c.ToString();
  for (const auto& [name, value] : scalars) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

TEST(CostLedgerTest, DisabledChargesNothing) {
  ScopedCostLedger off(false);
  CostCounts before = CostLedger::Collect();
  auto model = TrainKernelSvm(TinyProblem(16), {});
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(CostLedger::Collect() - before == CostCounts{});
}

TEST(CostLedgerTest, KernelTrainingIsCounted) {
  ScopedCostLedger on(true);
  CostCounts before = CostLedger::Collect();
  auto model = TrainKernelSvm(TinyProblem(16), {});
  ASSERT_TRUE(model.ok());
  CostCounts delta = CostLedger::Collect() - before;
  EXPECT_GT(delta.kernel_evals, 0u);
  EXPECT_GT(delta.smo_iterations, 0u);
}

TEST(CostLedgerTest, SerializationBytesBalanceOnRoundTrip) {
  auto model = TrainKernelSvm(TinyProblem(16), {});
  ASSERT_TRUE(model.ok());
  ScopedCostLedger on(true);
  CostCounts before = CostLedger::Collect();
  std::string wire = SerializeKernelSvm(model.value());
  auto back = DeserializeKernelSvm(wire);
  ASSERT_TRUE(back.ok());
  CostCounts delta = CostLedger::Collect() - before;
  EXPECT_EQ(delta.serialized_bytes, wire.size());
  EXPECT_EQ(delta.deserialized_bytes, wire.size());
}

TEST(CostLedgerTest, LshQueryIsCounted) {
  CosineLsh index{LshOptions{}};
  auto data = TinyProblem(32);
  ScopedCostLedger on(true);
  CostCounts before = CostLedger::Collect();
  for (std::size_t i = 0; i < data.size(); ++i) index.Insert(i, data[i].x);
  index.QueryAtLeast(data[0].x, 4);
  CostCounts delta = CostLedger::Collect() - before;
  EXPECT_GT(delta.lsh_signature_dots, 0u);
  EXPECT_GT(delta.lsh_probes, 0u);
}

// The core determinism property: per-thread TLS blocks summed at a
// quiesce point are identical for ANY partition of the same work.
TEST(CostLedgerTest, TlsSumIsPartitionInvariant) {
  ThreadPool::SetGlobalConcurrency(4);
  ScopedCostLedger on(true);
  CostCounts reference;
  bool have_reference = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}}) {
      CostCounts before = CostLedger::Collect();
      ParallelFor(0, 1000, chunk, threads,
                  [](std::size_t lo, std::size_t hi) {
                    // Per-chunk aggregate, exactly like the kmeans hot
                    // path: the sum over chunks must not depend on the
                    // partition.
                    CostCounts& tls = CostLedger::Tls();
                    tls.sparse_dot_ops += (hi - lo) * 3;
                    tls.sparse_dot_calls += hi - lo;
                  });
      CostCounts delta = CostLedger::Collect() - before;
      if (!have_reference) {
        reference = delta;
        have_reference = true;
      }
      EXPECT_TRUE(delta == reference)
          << "threads=" << threads << " chunk=" << chunk << "\n"
          << delta.ToString();
    }
  }
  EXPECT_EQ(reference.sparse_dot_ops, 3000u);
  EXPECT_EQ(reference.sparse_dot_calls, 1000u);
  ThreadPool::SetGlobalConcurrency(0);
}

// Experiment-level: the ledger reports identical costs across repeated
// runs, and switching it on changes nothing about the run itself.
class LedgerExperimentTest : public ::testing::Test {
 protected:
  static const VectorizedCorpus& Corpus() {
    static const VectorizedCorpus corpus = [] {
      CorpusOptions opt;
      opt.num_users = 8;
      opt.min_docs_per_user = 10;
      opt.max_docs_per_user = 16;
      opt.num_tags = 4;
      opt.vocabulary_size = 300;
      opt.seed = 777;
      Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      return std::move(r).value();
    }();
    return corpus;
  }

  static ExperimentOptions Options(bool ledger) {
    ExperimentOptions opt;
    opt.algorithm = AlgorithmType::kCempar;
    opt.env.num_peers = 8;
    opt.distribution.cls = ClassDistribution::kByUser;
    opt.max_test_documents = 20;
    opt.env.observe.metrics = true;
    opt.env.observe.cost_ledger = ledger;
    return opt;
  }
};

TEST_F(LedgerExperimentTest, RepeatedRunsYieldIdenticalLedgers) {
  Result<ExperimentResult> a = RunExperiment(Corpus(), Options(true));
  Result<ExperimentResult> b = RunExperiment(Corpus(), Options(true));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->cost_ledger_enabled);
  EXPECT_GT(a->train_cost.kernel_evals, 0u);
  EXPECT_GT(a->train_cost.total_wire_bytes(), 0u);
  EXPECT_TRUE(a->train_cost == b->train_cost)
      << a->train_cost.ToString() << "\nvs\n" << b->train_cost.ToString();
  EXPECT_TRUE(a->predict_cost == b->predict_cost);
}

TEST_F(LedgerExperimentTest, LedgerIsBehaviorNeutral) {
  Result<ExperimentResult> off = RunExperiment(Corpus(), Options(false));
  Result<ExperimentResult> on = RunExperiment(Corpus(), Options(true));
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_FALSE(off->cost_ledger_enabled);
  EXPECT_TRUE(off->train_cost == CostCounts{});
  EXPECT_EQ(off->metrics.macro_f1, on->metrics.macro_f1);
  EXPECT_EQ(off->train_messages, on->train_messages);
  EXPECT_EQ(off->train_bytes, on->train_bytes);
  EXPECT_EQ(off->predict_messages, on->predict_messages);
  EXPECT_EQ(off->failed_predictions, on->failed_predictions);
}

TEST_F(LedgerExperimentTest, WireBytesAttributeToMessageTypes) {
  Result<ExperimentResult> r = RunExperiment(Corpus(), Options(true));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Training traffic lands on specific message types, never outside the
  // enum range, and the per-type split sums to the total.
  uint64_t sum = 0;
  for (std::size_t t = 0; t < CostCounts::kNumWireTypes; ++t) {
    sum += r->train_cost.wire_bytes_by_type[t];
  }
  EXPECT_EQ(sum, r->train_cost.total_wire_bytes());
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace p2pdt
