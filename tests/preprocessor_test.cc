#include "text/preprocessor.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(PreprocessorTest, AnalyzeRunsFullTokenPipeline) {
  Preprocessor p;
  // "The" is a stop word; "connected" stems to "connect".
  std::vector<std::string> tokens =
      p.Analyze("The systems were connected yesterday.");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"system", "connect", "yesterdai"}));
}

TEST(PreprocessorTest, SensitiveWordsNeverReachVectors) {
  PreprocessorOptions opt;
  opt.sensitive_words = {"secretproject"};
  Preprocessor p(opt);
  std::vector<std::string> tokens =
      p.Analyze("budget for secretproject launch");
  for (const auto& t : tokens) {
    EXPECT_NE(t, "secretproject");
  }
  EXPECT_EQ(tokens.size(), 2u);  // budget, launch
}

TEST(PreprocessorTest, InflectedFormsShareFeatureIds) {
  Preprocessor p;
  SparseVector a = p.Process("connecting connections");
  // Both tokens stem to "connect" -> a single feature with weight from two
  // occurrences, L2-normalized to 1.
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(PreprocessorTest, ProcessConstDoesNotGrowGrowingLexicon) {
  PreprocessorOptions opt;
  opt.hashed_dimensions = 0;  // growing mode
  Preprocessor p(opt);
  p.Process("alpha beta");
  std::size_t size_before = p.lexicon().size();
  SparseVector v = p.ProcessConst("alpha gamma");
  EXPECT_EQ(p.lexicon().size(), size_before);
  EXPECT_EQ(v.nnz(), 1u);  // only "alpha" is known
}

TEST(PreprocessorTest, HashedPeersProduceCompatibleVectors) {
  // Two peers with default (hashed) settings vectorize the same text to
  // identical vectors without sharing any state.
  Preprocessor peer1, peer2;
  SparseVector a = peer1.Process("distributed tagging systems");
  SparseVector b = peer2.Process("distributed tagging systems");
  EXPECT_EQ(a, b);
}

TEST(PreprocessorTest, VectorsAreUnitNorm) {
  Preprocessor p;
  SparseVector v = p.Process("some words for testing vectors here");
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
}

TEST(PreprocessorTest, EmptyTextGivesEmptyVector) {
  Preprocessor p;
  EXPECT_TRUE(p.Process("").empty());
  EXPECT_TRUE(p.Process("the and of").empty());  // all stop words
}

}  // namespace
}  // namespace p2pdt
