#include "p2pdmt/service_harness.h"

#include <algorithm>
#include <utility>

#include "p2pdmt/data_distribution.h"

namespace p2pdt {

Result<std::unique_ptr<TrainedService>> BuildTrainedService(
    const VectorizedCorpus& corpus, const ServiceHarnessOptions& options) {
  CorpusSplit split = SplitCorpus(corpus, options.train_fraction, options.seed);
  if (split.train.size() == 0 || split.test.size() == 0) {
    return Status::InvalidArgument(
        "service harness needs non-empty train and test splits");
  }

  auto service = std::make_unique<TrainedService>();

  EnvironmentOptions env_options = options.env;
  env_options.observe.metrics = true;
  Result<std::unique_ptr<Environment>> env_result =
      Environment::Create(env_options);
  if (!env_result.ok()) return env_result.status();
  service->env = std::move(env_result).value();
  Environment& env = *service->env;
  service->num_peers = env_options.num_peers;

  ExperimentOptions algo_options;
  algo_options.algorithm = options.algorithm;
  algo_options.cempar = options.cempar;
  algo_options.pace = options.pace;
  Result<std::unique_ptr<P2PClassifier>> algo_result =
      MakeClassifier(env, algo_options);
  if (!algo_result.ok()) return algo_result.status();
  service->classifier = std::move(algo_result).value();
  P2PClassifier& algo = *service->classifier;

  auto shared = std::make_shared<const MultiLabelDataset>(split.train);
  Result<std::vector<std::vector<uint32_t>>> indices = DistributeIndices(
      *shared, service->num_peers, options.distribution, &split.train_user);
  if (!indices.ok()) return indices.status();
  std::vector<DatasetShard> shards;
  shards.reserve(service->num_peers);
  for (std::size_t p = 0; p < service->num_peers; ++p) {
    shards.emplace_back(shared, std::move((*indices)[p]));
  }
  P2PDT_RETURN_IF_ERROR(
      algo.SetupShards(std::move(shards), corpus.dataset.num_tags()));

  env.StartDynamics();
  bool train_done = false;
  Status train_status = Status::OK();
  algo.Train([&](Status s) {
    train_status = s;
    train_done = true;
  });
  service->train_sim_seconds =
      env.RunUntilFlag(train_done, options.max_train_sim_seconds);
  if (!train_done) {
    return Status::Internal("service harness: training did not quiesce");
  }
  P2PDT_RETURN_IF_ERROR(train_status);

  service->catalog =
      BuildServiceCatalog(corpus, options.train_fraction, options.max_docs,
                          options.seed);

  service->host =
      std::make_unique<ServiceHost>(&env.sim(), service->classifier.get());
  return service;
}

std::vector<SparseVector> BuildServiceCatalog(const VectorizedCorpus& corpus,
                                              double train_fraction,
                                              std::size_t max_docs,
                                              uint64_t seed) {
  CorpusSplit split = SplitCorpus(corpus, train_fraction, seed);
  const std::size_t catalog =
      max_docs == 0 ? split.test.size()
                    : std::min(max_docs, split.test.size());
  std::vector<SparseVector> docs;
  docs.reserve(catalog);
  for (std::size_t i = 0; i < catalog; ++i) docs.push_back(split.test[i].x);
  return docs;
}

}  // namespace p2pdt
