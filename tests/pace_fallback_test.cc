// Regression: PACE's LSH under-recall fallback must rank models exactly
// like brute-force scoring. Config A (1 table x 30 bits) makes bucket
// collisions essentially impossible, forcing the fallback scan on every
// prediction; config B (0 bits) collapses every centroid into one bucket,
// so the LSH path itself enumerates all candidates. Both must produce
// bit-identical predictions — the fallback is a correctness guarantee, not
// an approximation.

#include <gtest/gtest.h>

#include "ml/lsh.h"
#include "p2pdmt/environment.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

struct Fixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Pace> pace;

  explicit Fixture(std::size_t peers, PaceOptions options) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    env = std::move(Environment::Create(eo)).value();
    pace = std::make_unique<Pace>(env->sim(), env->net(), env->overlay(),
                                  options);
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(pace->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    pace->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    pace->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }
};

SparseVector QueryVector(uint64_t i) {
  Rng rng(1000 + i);
  return SparseVector::FromPairs(
      {{static_cast<uint32_t>(rng.NextU64(12)), 1.0},
       {static_cast<uint32_t>(12 + rng.NextU64(4)), 0.5},
       {static_cast<uint32_t>(rng.NextU64(12)), 0.25}});
}

// Premise check: 1 table x 30 bits yields no collisions for sparse vectors
// like ours, so QueryAtLeast (multi-probe flips one bit at a time) cannot
// reach the candidate floor and PACE must take its brute-force fallback.
TEST(PaceFallbackTest, WideSignaturesUnderRecall) {
  LshOptions wide;
  wide.num_tables = 1;
  wide.num_bits = 30;
  CosineLsh index(wide);
  for (uint64_t i = 0; i < 20; ++i) index.Insert(i, QueryVector(i));
  std::size_t found = index.QueryAtLeast(QueryVector(99), 5).size();
  EXPECT_LT(found, 5u);

  // 0 bits: one bucket, everything collides — the exhaustive LSH path.
  LshOptions flat;
  flat.num_tables = 1;
  flat.num_bits = 0;
  CosineLsh all(flat);
  for (uint64_t i = 0; i < 20; ++i) all.Insert(i, QueryVector(i));
  EXPECT_EQ(all.Query(QueryVector(99)).size(), 20u);
}

TEST(PaceFallbackTest, FallbackRanksIdenticallyToBruteForce) {
  const std::size_t kPeers = 10;

  // Config A: fallback fires (top_k=5 can never be met from an empty
  // candidate set). Config B: the LSH path enumerates every centroid.
  PaceOptions fallback_opt;
  fallback_opt.top_k = 5;
  fallback_opt.lsh.num_tables = 1;
  fallback_opt.lsh.num_bits = 30;

  PaceOptions exhaustive_opt;
  exhaustive_opt.top_k = 5;
  exhaustive_opt.lsh.num_tables = 1;
  exhaustive_opt.lsh.num_bits = 0;

  Fixture a(kPeers, fallback_opt);
  Fixture b(kPeers, exhaustive_opt);
  ASSERT_TRUE(a.Train(MakePeerData(kPeers, 10, 31)).ok());
  ASSERT_TRUE(b.Train(MakePeerData(kPeers, 10, 31)).ok());

  for (uint64_t i = 0; i < 16; ++i) {
    SparseVector x = QueryVector(i);
    NodeId requester = i % kPeers;
    P2PPrediction pa = a.PredictSync(requester, x);
    P2PPrediction pb = b.PredictSync(requester, x);
    ASSERT_EQ(pa.success, pb.success) << "query " << i;
    EXPECT_EQ(pa.tags, pb.tags) << "query " << i;
    ASSERT_EQ(pa.scores.size(), pb.scores.size());
    for (std::size_t t = 0; t < pa.scores.size(); ++t) {
      // Bit-identical: the same model set scored with the same arithmetic.
      EXPECT_EQ(pa.scores[t], pb.scores[t]) << "query " << i << " tag " << t;
    }
  }
}

}  // namespace
}  // namespace p2pdt
