#ifndef P2PDT_COMMON_STRING_UTIL_H_
#define P2PDT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace p2pdt {

/// Splits `s` on any occurrence of `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a byte count as a human-readable string ("1.5 MiB").
std::string HumanBytes(double bytes);

}  // namespace p2pdt

#endif  // P2PDT_COMMON_STRING_UTIL_H_
