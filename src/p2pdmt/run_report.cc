#include "p2pdmt/run_report.h"

#include <cstdio>
#include <fstream>

#include "common/build_info.h"

namespace p2pdt {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string Str(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

/// One phase's deterministic ledger delta: scalar op counts plus the
/// per-message-type wire accounting, all integers.
std::string CostPhaseJson(const CostCounts& c) {
  std::string out = "{";
  bool first = true;
  for (const auto& [op, value] : c.Scalars()) {
    if (!first) out += ", ";
    first = false;
    out += Str(op) + ": " + std::to_string(value);
  }
  out += ", \"wire_messages\": " + std::to_string(c.total_wire_messages());
  out += ", \"wire_bytes\": " + std::to_string(c.total_wire_bytes());
  out += "}";
  return out;
}

}  // namespace

std::string RunReport::ToJson(const ExperimentResult& result,
                              const MetricsSnapshot& metrics) {
  std::string out = "{\n";
  out += "  \"run\": {";
  out += "\"algorithm\": " + Str(result.algorithm);
  out += ", \"overlay\": " + Str(result.overlay);
  out += ", \"churn\": " + Str(result.churn);
  out += ", \"num_peers\": " + std::to_string(result.num_peers);
  out += ", \"train_documents\": " + std::to_string(result.train_documents);
  out += ", \"test_documents\": " + std::to_string(result.test_documents);
  out += "},\n";

  out += "  \"quality\": {";
  out += "\"micro_f1\": " + Num(result.metrics.micro_f1);
  out += ", \"macro_f1\": " + Num(result.metrics.macro_f1);
  out += ", \"micro_precision\": " + Num(result.metrics.micro_precision);
  out += ", \"micro_recall\": " + Num(result.metrics.micro_recall);
  out += ", \"hamming_loss\": " + Num(result.metrics.hamming_loss);
  out += ", \"subset_accuracy\": " + Num(result.metrics.subset_accuracy);
  out += ", \"jaccard_accuracy\": " + Num(result.metrics.jaccard_accuracy);
  out += ", \"failed_predictions\": " +
         std::to_string(result.failed_predictions);
  out += ", \"degraded_predictions\": " +
         std::to_string(result.degraded_predictions);
  out += "},\n";

  out += "  \"cost\": {";
  out += "\"train_messages\": " + std::to_string(result.train_messages);
  out += ", \"train_bytes\": " + std::to_string(result.train_bytes);
  out += ", \"predict_messages\": " + std::to_string(result.predict_messages);
  out += ", \"predict_bytes\": " + std::to_string(result.predict_bytes);
  out += ", \"maintenance_messages\": " +
         std::to_string(result.maintenance_messages);
  out += ", \"maintenance_bytes\": " +
         std::to_string(result.maintenance_bytes);
  out += ", \"delivery_rate\": " + Num(result.delivery_rate);
  out += ", \"dropped_messages\": " + std::to_string(result.dropped_messages);
  out += ", \"retransmits\": " + std::to_string(result.retransmits);
  out += ", \"acks_received\": " + std::to_string(result.acks_received);
  out += ", \"give_ups\": " + std::to_string(result.give_ups);
  out += "},\n";

  // Reliable-transport health: how often delivery needed the backstop and
  // which peers the failure detector ended the run suspecting dead.
  out += "  \"transport\": {";
  out += "\"retransmits\": " + std::to_string(result.retransmits);
  out += ", \"acks_received\": " + std::to_string(result.acks_received);
  out += ", \"give_ups\": " + std::to_string(result.give_ups);
  out += ", \"suspected_peers\": " + std::to_string(result.suspected_peers);
  out += "},\n";

  out += "  \"timing\": {";
  out += "\"train_sim_seconds\": " + Num(result.train_sim_seconds);
  out += ", \"predict_sim_seconds\": " + Num(result.predict_sim_seconds);
  out += ", \"wall_seconds\": " + Num(result.wall_seconds);
  out += "},\n";

  // Build provenance: which binary produced this report. Always present so
  // report consumers (bench_diff, CI triage) never branch on its absence.
  out += "  \"build_info\": " + BuildInfo::Current().ToJson() + ",\n";

  // Deterministic hot-path cost ledger, split by phase. Always present —
  // all zeros when env.observe.cost_ledger was off.
  out += "  \"cost_ledger\": {";
  out += "\"enabled\": ";
  out += result.cost_ledger_enabled ? "true" : "false";
  out += ", \"train\": " + CostPhaseJson(result.train_cost);
  out += ", \"predict\": " + CostPhaseJson(result.predict_cost);
  out += "},\n";

  // Overload health: admission-control sheds, prediction-cache hit ledger,
  // peak serving-queue depth and the CEMPaR batch-size distribution.
  // Always present — all zeros when the overload machinery was off or idle.
  {
    double shed = 0.0, hits = 0.0, misses = 0.0, stale = 0.0;
    double queue_depth = 0.0;
    uint64_t batch_count = 0;
    double batch_sum = 0.0, batch_max = 0.0;
    for (const MetricsSnapshot::Entry& e : metrics.entries) {
      if (e.name == "requests_shed") shed += e.value;
      if (e.name == "cache_hits") hits += e.value;
      if (e.name == "cache_misses") misses += e.value;
      if (e.name == "cache_stale") stale += e.value;
      if (e.name == "serve_queue_depth") {
        queue_depth = queue_depth > e.value ? queue_depth : e.value;
      }
      if (e.name == "batch_size" &&
          e.kind == MetricsSnapshot::Kind::kHistogram) {
        batch_count += e.count;
        batch_sum += e.sum;
        batch_max = batch_max > e.max ? batch_max : e.max;
      }
    }
    const double lookups = hits + misses + stale;
    out += "  \"overload\": {";
    out += "\"requests_shed\": " + Num(shed);
    out += ", \"cache_hits\": " + Num(hits);
    out += ", \"cache_misses\": " + Num(misses);
    out += ", \"cache_stale\": " + Num(stale);
    out += ", \"cache_hit_rate\": " +
           Num(lookups == 0.0 ? 0.0 : hits / lookups);
    out += ", \"serve_queue_depth\": " + Num(queue_depth);
    out += ", \"batches\": " + std::to_string(batch_count);
    out += ", \"mean_batch_size\": " +
           Num(batch_count == 0
                   ? 0.0
                   : batch_sum / static_cast<double>(batch_count));
    out += ", \"max_batch_size\": " + Num(batch_max);
    out += "},\n";
  }

  // Per-phase latency histograms — every `phase_seconds` family member the
  // run recorded, in canonical (deterministic) snapshot order.
  out += "  \"phases\": [";
  bool first = true;
  for (const MetricsSnapshot::Entry& e : metrics.entries) {
    if (e.name != "phase_seconds" ||
        e.kind != MetricsSnapshot::Kind::kHistogram) {
      continue;
    }
    std::string classifier, phase;
    for (const auto& [k, v] : e.labels) {
      if (k == "classifier") classifier = v;
      if (k == "phase") phase = v;
    }
    if (!first) out += ",";
    first = false;
    out += "\n    {";
    out += "\"classifier\": " + Str(classifier);
    out += ", \"phase\": " + Str(phase);
    out += ", \"count\": " + std::to_string(e.count);
    out += ", \"sum\": " + Num(e.sum);
    out += ", \"mean\": " +
           Num(e.count == 0 ? 0.0 : e.sum / static_cast<double>(e.count));
    out += ", \"max\": " + Num(e.max);
    out += ", \"p50\": " + Num(e.p50);
    out += ", \"p95\": " + Num(e.p95);
    out += ", \"p99\": " + Num(e.p99);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Status RunReport::Write(const std::string& path,
                        const ExperimentResult& result,
                        const MetricsSnapshot& metrics) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open run report file " + path);
  }
  out << ToJson(result, metrics);
  out.flush();
  if (!out.good()) {
    return Status::IOError("failed writing run report " + path);
  }
  return Status::OK();
}

}  // namespace p2pdt
