file(REMOVE_RECURSE
  "CMakeFiles/bench_p2pdmt.dir/bench_p2pdmt.cpp.o"
  "CMakeFiles/bench_p2pdmt.dir/bench_p2pdmt.cpp.o.d"
  "bench_p2pdmt"
  "bench_p2pdmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2pdmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
