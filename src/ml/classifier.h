#ifndef P2PDT_ML_CLASSIFIER_H_
#define P2PDT_ML_CLASSIFIER_H_

#include <cstddef>
#include <memory>

#include "common/sparse_vector.h"

namespace p2pdt {

/// Abstract binary decision function f: X → R; the predicted class is
/// sign(Decision(x)). Implemented by the linear SVM (PACE's base learner),
/// the kernel SVM (CEMPaR's base learner) and the cascaded models built
/// from them.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Signed decision value; positive means the positive class (tag
  /// assigned).
  virtual double Decision(const SparseVector& x) const = 0;

  /// Predicted label in {-1, +1}.
  double Predict(const SparseVector& x) const {
    return Decision(x) >= 0.0 ? 1.0 : -1.0;
  }

  /// Number of bytes this model occupies on the simulated wire. This is the
  /// quantity the paper's communication-cost argument is about: linear
  /// models (PACE) ship a sparse weight vector, kernel models (CEMPaR) ship
  /// their support vectors.
  virtual std::size_t WireSize() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<BinaryClassifier> Clone() const = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_CLASSIFIER_H_
