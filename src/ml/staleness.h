#ifndef P2PDT_ML_STALENESS_H_
#define P2PDT_ML_STALENESS_H_

#include <cstdint>
#include <vector>

namespace p2pdt {

/// Knobs of the per-peer model-staleness / drift detector.
struct StalenessOptions {
  /// Sliding window of holdout outcomes the windowed accuracy is computed
  /// over (oldest evicted first).
  std::size_t window = 64;
  /// Observations since the last (re)train before drift may be declared —
  /// guards against firing on the first few noisy predictions.
  std::size_t min_observations = 8;
  /// Fast / slow EWMA smoothing factors over accuracy and confidence. The
  /// drift signal is a *gap* against the slow (long-run) average: for
  /// confidence, slow − fast EWMA (scores are continuous, so the fast EWMA
  /// is quick and quiet); for accuracy, slow EWMA − window mean (binary
  /// outcomes make a fast EWMA too noisy — the window mean's variance
  /// shrinks with window size instead).
  double fast_alpha = 0.25;
  double slow_alpha = 0.05;
  /// Gap at which drift is declared.
  double drift_threshold = 0.2;
  /// Weight of the confidence gap relative to the accuracy gap in the
  /// combined drift score (confidence drops are a softer signal).
  double confidence_weight = 0.5;
  /// Documents since the last train at which the age component of the
  /// staleness score saturates.
  std::size_t stale_after_docs = 256;
};

/// Tracks how stale a peer's trained model is, from signals the peer can
/// observe for free during normal operation: documents arrived since the
/// last (re)train, windowed holdout accuracy (the user's own tags are the
/// ground truth for every auto-tagged document — the paper's refinement
/// loop), and the classifier's own prediction confidence.
///
/// Purely deterministic (no RNG, no clock); all state is explicit, so the
/// tracker is safe inside the bit-determinism harness. Not thread-safe —
/// one tracker per peer, driver thread only.
class ModelStalenessTracker {
 public:
  explicit ModelStalenessTracker(StalenessOptions options = {});

  /// The peer's model was (re)trained: the age counter restarts, the fast
  /// EWMAs re-anchor to the slow ones (the regime is presumed fixed) and
  /// the holdout window is cleared — old outcomes scored a dead model.
  void RecordTrained();

  /// `count` new documents arrived at the peer since the last call.
  void RecordDocument(std::size_t count = 1);

  /// One holdout observation: `correctness` in [0,1] grades how well the
  /// model's auto-tags matched the user's (1 = exact; a continuous grade
  /// like Jaccard overlap halves the per-observation variance of a 0/1
  /// outcome — which is what makes per-peer detection feasible at a
  /// handful of documents per epoch). Prediction `confidence` in [0,1];
  /// out-of-range values are clamped, NaN/infinite confidence counts as a
  /// missing confidence signal (the accuracy signal is still recorded).
  void RecordHoldout(double correctness, double confidence);

  /// Mean correctness over the current holdout window (1.0 while empty).
  double window_accuracy() const;
  std::size_t window_size() const { return window_.size(); }
  uint64_t docs_since_train() const { return docs_since_train_; }
  uint64_t observations_since_train() const {
    return observations_since_train_;
  }

  double fast_accuracy() const { return fast_accuracy_; }
  double slow_accuracy() const { return slow_accuracy_; }
  double fast_confidence() const { return fast_confidence_; }
  double slow_confidence() const { return slow_confidence_; }

  /// Combined drift signal: max(slow-EWMA accuracy − window accuracy,
  /// confidence_weight × (slow − fast confidence EWMA)), floored at 0.
  /// Grows when recent quality falls below the long-run average.
  double drift_score() const;

  /// True when the drift score exceeds drift_threshold with at least
  /// min_observations since the last train.
  bool DriftDetected() const;

  /// Staleness in [0,1]: age component (docs since train, saturating at
  /// stale_after_docs) modulated by the drift gap. Age alone caps the
  /// score at 0.25 — a model that is merely old but still accurate on
  /// stationary data never looks urgently stale (gaps below the drift
  /// threshold are dead-banded to exactly 0 for the same reason); a model
  /// that is both aged and degrading approaches 1.
  double staleness() const;

 private:
  StalenessOptions options_;
  /// Ring buffer of holdout correctness grades, newest at the back.
  std::vector<double> window_;
  double window_sum_ = 0.0;
  uint64_t docs_since_train_ = 0;
  uint64_t observations_since_train_ = 0;
  /// The accuracy EWMAs anchor on the mean of the first min_observations
  /// grades after a (re)train — a single 0/1-ish first grade would be far
  /// too noisy a reference for the slow average to start from.
  bool accuracy_seeded_ = false;
  bool confidence_seeded_ = false;
  double fast_accuracy_ = 1.0;
  double slow_accuracy_ = 1.0;
  double fast_confidence_ = 1.0;
  double slow_confidence_ = 1.0;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_STALENESS_H_
