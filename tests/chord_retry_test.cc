// Regression for the routing retry cap (chord.cc try_forward): when every
// candidate a lookup can reach is stale (dead without any table refresh),
// the retry loop must terminate within max_hops and report routing failure
// instead of ping-ponging between stale entries forever.

#include <gtest/gtest.h>

#include "p2psim/chord.h"

namespace p2pdt {
namespace {

struct Fixture {
  Simulator sim;
  PhysicalNetwork net;
  ChordOverlay chord;

  explicit Fixture(std::size_t nodes, ChordOptions options = {})
      : net(sim), chord(sim, net, options) {
    net.AddNodes(nodes);
    for (NodeId n = 0; n < nodes; ++n) chord.AddNode(n);
    chord.Bootstrap();
  }

  ChordOverlay::LookupResult LookupSync(NodeId origin, uint64_t key) {
    ChordOverlay::LookupResult out;
    bool done = false;
    chord.Lookup(origin, key, [&](ChordOverlay::LookupResult r) {
      out = r;
      done = true;
    });
    sim.RunUntil(sim.Now() + 3600.0);
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(ChordRetryTest, StaleCandidatesTerminateWithinHopCap) {
  ChordOptions opt;
  opt.max_hops = 6;
  Fixture f(16, opt);

  // Kill everyone but the origin WITHOUT refreshing any routing state: the
  // origin's fingers and successors all point at corpses. Every forward or
  // successor attempt is a drop; only the hop cap stops the retry loop.
  const NodeId origin = 0;
  for (NodeId n = 1; n < 16; ++n) f.net.SetOnline(n, false);

  uint64_t events_before = f.sim.executed_events();
  ChordOverlay::LookupResult r =
      f.LookupSync(origin, f.chord.HashToKey(0xDEADBEEF));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.owner, kInvalidNode);
  EXPECT_LE(r.hops, opt.max_hops);
  // Terminated promptly — no runaway retry storm.
  EXPECT_LT(f.sim.executed_events() - events_before, 1000u);
  // Every routing attempt was paid for and dropped at the dead receiver.
  EXPECT_GT(f.net.stats().dropped(DropReason::kRecvOffline), 0u);
}

TEST(ChordRetryTest, EveryOriginTerminatesAgainstStaleRing) {
  ChordOptions opt;
  opt.max_hops = 5;
  Fixture f(12, opt);
  // Half the ring dies silently; lookups from every survivor must resolve
  // or fail within the cap — never hang.
  for (NodeId n = 6; n < 12; ++n) f.net.SetOnline(n, false);

  for (NodeId origin = 0; origin < 6; ++origin) {
    ChordOverlay::LookupResult r =
        f.LookupSync(origin, f.chord.HashToKey(origin * 7919));
    EXPECT_LE(r.hops, opt.max_hops) << "origin " << origin;
    if (r.success) {
      EXPECT_NE(r.owner, kInvalidNode);
      EXPECT_TRUE(f.net.IsOnline(r.owner)) << "origin " << origin;
    }
  }
}

TEST(ChordRetryTest, SuccessorListSkipsOneDeadCandidate) {
  // Positive case: a single dead successor is routed around via the
  // successor list (one extra paid hop), not reported as failure.
  ChordOptions opt;
  opt.max_hops = 32;
  Fixture f(12, opt);

  // Find a key owned by some node != 0, kill exactly that owner.
  uint64_t key = f.chord.HashToKey(4242);
  NodeId owner = f.chord.OwnerOf(key);
  ASSERT_NE(owner, kInvalidNode);
  if (owner == 0) {
    key = f.chord.HashToKey(4243);
    owner = f.chord.OwnerOf(key);
  }
  ASSERT_NE(owner, 0u);
  f.net.SetOnline(owner, false);

  ChordOverlay::LookupResult r = f.LookupSync(0, key);
  ASSERT_TRUE(r.success);
  EXPECT_NE(r.owner, owner);
  EXPECT_TRUE(f.net.IsOnline(r.owner));
}

}  // namespace
}  // namespace p2pdt
