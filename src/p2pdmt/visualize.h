#ifndef P2PDT_P2PDMT_VISUALIZE_H_
#define P2PDT_P2PDMT_VISUALIZE_H_

#include <string>

#include "common/status.h"
#include "p2psim/chord.h"
#include "p2psim/unstructured.h"

namespace p2pdt {

/// Graphviz DOT exporters — P2PDMT's "Visualize network" (Fig. 2) in
/// headless form: feed the output to `dot -Tsvg` to see the overlay.

/// Renders the unstructured overlay graph. Offline peers are drawn dashed.
std::string UnstructuredToDot(const UnstructuredOverlay& overlay,
                              const PhysicalNetwork& net);

/// Renders the Chord ring (successor edges solid, a sample of finger edges
/// dashed). `max_finger_edges_per_node` bounds clutter.
std::string ChordToDot(const ChordOverlay& overlay,
                       const PhysicalNetwork& net,
                       std::size_t max_finger_edges_per_node = 3);

/// Writes a DOT string to a file.
Status WriteDotFile(const std::string& dot, const std::string& path);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_VISUALIZE_H_
