#ifndef P2PDT_P2PML_PREDICT_CACHE_H_
#define P2PDT_P2PML_PREDICT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/dataset.h"
#include "p2pml/p2p_classifier.h"
#include "p2psim/network.h"

namespace p2pdt {

/// Versioned prediction cache. Disabled by default so un-configured runs
/// stay bit-identical to the pre-cache code.
struct PredictCacheOptions {
  bool enabled = false;
  /// Entries per requester (LRU beyond this).
  std::size_t capacity = 256;
  /// Entries older than this (simulated seconds) are stale even at the
  /// current model epoch.
  double ttl_seconds = 300.0;
};

/// Content fingerprint of a document vector (FNV-1a over the sparse
/// entries) — the cache key, so the same document re-tagged during a flash
/// crowd hits without any float comparison.
uint64_t FingerprintVector(const SparseVector& x);

enum class CacheOutcome : uint8_t { kHit = 0, kMiss, kStale };

/// LRU + TTL cache of P2PPredictions for one requester, versioned by the
/// publisher's model epoch: a model republish (drift retrain, recovery,
/// eviction) bumps the epoch and implicitly invalidates every cached
/// answer. The coherence rule is therefore: no prediction computed against
/// an old model version is ever served after the version bump, and even at
/// a stable version nothing outlives the TTL.
class PredictionCache {
 public:
  explicit PredictionCache(const PredictCacheOptions& options)
      : options_(options) {}

  /// Returns the cached prediction for `key` if it is fresh (same epoch,
  /// within TTL), else null. Stale entries are erased on contact and
  /// counted separately from plain misses.
  const P2PPrediction* Lookup(uint64_t key, uint64_t epoch, double now,
                              CacheOutcome* outcome);

  /// Inserts (or refreshes) an entry, evicting LRU beyond capacity.
  void Insert(uint64_t key, uint64_t epoch, double now, P2PPrediction value);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t stale() const { return stale_; }
  uint64_t evictions() const { return evictions_; }
  std::size_t size() const { return map_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t epoch = 0;
    double inserted_at = 0.0;
    P2PPrediction value;
  };

  PredictCacheOptions options_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t stale_ = 0;
  uint64_t evictions_ = 0;
};

/// Per-requester cache family (lazily grown), plus aggregate stats for
/// reports.
class PredictCacheSet {
 public:
  explicit PredictCacheSet(PredictCacheOptions options)
      : options_(options) {}

  PredictionCache& ForNode(NodeId node);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t stale() const;

  const PredictCacheOptions& options() const { return options_; }

 private:
  PredictCacheOptions options_;
  std::vector<std::unique_ptr<PredictionCache>> caches_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_PREDICT_CACHE_H_
