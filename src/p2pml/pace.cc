#include "p2pml/pace.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/serialization.h"

namespace p2pdt {

namespace {

/// Version byte of the PACE peer-snapshot layout (the checkpoint envelope
/// already guards integrity; this guards format evolution).
constexpr uint8_t kPaceSnapshotVersion = 1;

/// Per-phase latency family; resolved once per call site so recording
/// stays lock-free (see MetricsRegistry).
Histogram* PhaseHistogram(MetricsRegistry* metrics, const char* phase) {
  if (metrics == nullptr) return nullptr;
  return &metrics->GetHistogram(
      "phase_seconds", {{"classifier", "pace"}, {"phase", phase}});
}

}  // namespace

Pace::Pace(Simulator& sim, PhysicalNetwork& net, Overlay& overlay,
           PaceOptions options)
    : sim_(sim), net_(net), overlay_(overlay), options_(options) {
  if (options_.reliable_dissemination) {
    transport_ =
        std::make_unique<ReliableTransport>(sim_, net_, options_.transport);
  }
}

Status Pace::Setup(std::vector<MultiLabelDataset> peer_data, TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  models_.assign(peer_data_.size(), {});
  received_.assign(peer_data_.size(),
                   std::vector<bool>(peer_data_.size(), false));
  index_ = std::make_unique<CosineLsh>(options_.lsh);
  index_items_.clear();
  trained_ = false;
  return Status::OK();
}

void Pace::TrainLocal(NodeId peer) {
  const MultiLabelDataset& data = peer_data_[peer];
  PeerModel& pm = models_[peer];

  // Per-(peer, tag) RNG streams: every binary subproblem draws its
  // coordinate permutations from a seed derived from data identity, so the
  // trained model is the same no matter which thread (or how many) ran it.
  IndexedBinaryTrainer trainer =
      [this, peer](const std::vector<Example>& examples, TagId tag)
      -> Result<std::unique_ptr<BinaryClassifier>> {
    LinearSvmOptions svm_opts = options_.svm;
    svm_opts.seed = DeriveSeed(options_.svm.seed, peer, tag);
    Result<LinearSvmModel> model = TrainLinearSvm(examples, svm_opts);
    if (!model.ok()) return model.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(model).value()));
  };

  // Pad to the global tag universe so every peer's model is addressable by
  // any tag id.
  MultiLabelDataset padded = data;
  padded.set_num_tags(num_tags_);
  OneVsAllTrainOptions ova;
  ova.num_threads = options_.num_threads;
  Result<OneVsAllModel> model = TrainOneVsAll(padded, trainer, ova);
  if (!model.ok()) {
    P2PDT_LOG(Warning) << "peer " << peer
                       << " PACE local training failed: "
                       << model.status().ToString();
    return;
  }
  pm.model = std::move(model).value();

  // Per-tag training accuracy: the vote weight the ensemble uses.
  pm.tag_accuracy.assign(num_tags_, 0.0);
  pm.tag_informed.assign(num_tags_, false);
  std::vector<std::size_t> counts = padded.TagCounts();
  for (TagId t = 0; t < num_tags_; ++t) {
    pm.tag_informed[t] = t < counts.size() && counts[t] > 0;
    std::size_t correct = 0;
    for (const auto& ex : data.examples()) {
      const BinaryClassifier* m = pm.model.model(t);
      if (m == nullptr) continue;
      bool predicted = m->Decision(ex.x) > 0.0;
      if (predicted == ex.HasTag(t)) ++correct;
    }
    pm.tag_accuracy[t] = data.empty()
                             ? 0.0
                             : static_cast<double>(correct) /
                                   static_cast<double>(data.size());
  }

  // Cluster local data; centroids describe where this model is competent.
  std::vector<SparseVector> points;
  points.reserve(data.size());
  for (const auto& ex : data.examples()) points.push_back(ex.x);
  KMeansOptions km = options_.clustering;
  km.seed = DeriveSeed(options_.clustering.seed, peer);
  km.num_threads = options_.num_threads;
  Result<KMeansResult> clusters = KMeansCluster(points, km);
  if (!clusters.ok()) {
    P2PDT_LOG(Warning) << "peer " << peer << " PACE clustering failed: "
                       << clusters.status().ToString();
    return;
  }
  pm.centroids = std::move(clusters.value().centroids);

  pm.wire_size = pm.model.WireSize() + 8 * num_tags_;
  for (const auto& c : pm.centroids) pm.wire_size += c.WireSize();
  pm.valid = true;
}

void Pace::Train(std::function<void(Status)> on_complete) {
  // Local phase: models, accuracies, centroids. Pure compute — no
  // simulator or network calls — so it fans out across peers on the
  // thread pool; each task writes only its own models_[peer] slot.
  // Everything that touches sim_/net_/overlay_ stays below, on the
  // driver thread.
  std::vector<NodeId> training_peers;
  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    training_peers.push_back(peer);
  }
  // Resolved on the driver thread; workers record wall time per peer
  // lock-free (null when metrics are disabled).
  Histogram* train_hist = PhaseHistogram(net_.metrics(), "local_train");
  ParallelFor(0, training_peers.size(), 1, options_.num_threads,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  Stopwatch peer_wall;
                  TrainLocal(training_peers[i]);
                  if (train_hist != nullptr) {
                    train_hist->Observe(peer_wall.ElapsedSeconds());
                  }
                }
              });

  // Build the shared LSH index over all contributed centroids.
  Stopwatch index_wall;
  for (NodeId peer = 0; peer < models_.size(); ++peer) {
    if (!models_[peer].valid) continue;
    for (std::size_t c = 0; c < models_[peer].centroids.size(); ++c) {
      index_->Insert(index_items_.size(), models_[peer].centroids[c]);
      index_items_.emplace_back(peer, c);
    }
  }
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "lsh_index")) {
    hist->Observe(index_wall.ElapsedSeconds());
  }

  // Dissemination phase: every contributor broadcasts its bundle; each
  // delivery marks visibility at the receiver. Everyone trivially "has"
  // its own model. With reliable dissemination on, the broadcast stays
  // best-effort and the repair passes afterwards close the gaps.
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    repair_rounds_run_ = 0;
    if (transport_ != nullptr) {
      RepairRound(0, std::move(on_complete));
      return;
    }
    trained_ = true;
    on_complete(Status::OK());
  };

  Histogram* bcast_hist = PhaseHistogram(net_.metrics(), "model_broadcast");
  for (NodeId peer = 0; peer < models_.size(); ++peer) {
    if (!models_[peer].valid) continue;
    received_[peer][peer] = true;
    ++*pending;
    const SimTime bcast_started = sim_.Now();
    overlay_.Broadcast(
        peer, models_[peer].wire_size, MessageType::kModelBroadcast,
        [this, peer](NodeId receiver) {
          if (receiver < received_.size()) received_[receiver][peer] = true;
        },
        [this, barrier, bcast_hist, bcast_started] {
          // Sim-time until this contributor's dissemination tree settled.
          if (bcast_hist != nullptr) {
            bcast_hist->Observe(sim_.Now() - bcast_started);
          }
          (*barrier)();
        });
  }
  (*barrier)();
}

void Pace::RepairRound(std::size_t round,
                       std::function<void(Status)> on_complete) {
  // Pairs still missing: contributor's bundle never reached the receiver.
  // Realistically receivers piggyback have-lists on gossip; the simulation
  // reads received_ directly and charges the full repair traffic.
  std::vector<std::pair<NodeId, NodeId>> missing;  // (contributor, receiver)
  for (NodeId p = 0; p < models_.size(); ++p) {
    if (!models_[p].valid) continue;
    for (NodeId q = 0; q < received_.size(); ++q) {
      if (q == p || received_[q][p] || !net_.IsOnline(q)) continue;
      missing.emplace_back(p, q);
    }
  }
  if (missing.empty() || round >= options_.max_repair_rounds) {
    trained_ = true;
    on_complete(Status::OK());
    return;
  }
  ++repair_rounds_run_;

  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, round,
              on_complete = std::move(on_complete)]() mutable {
    if (--*pending > 0) return;
    RepairRound(round + 1, std::move(on_complete));
  };

  for (const auto& [p, q] : missing) {
    ++*pending;
    transport_->SendReliable(
        p, q, models_[p].wire_size, MessageType::kModelBroadcast,
        /*on_deliver=*/
        [this, p, q] {
          if (q < received_.size()) received_[q][p] = true;
        },
        /*on_acked=*/[barrier] { (*barrier)(); },
        /*on_give_up=*/[barrier] { (*barrier)(); });
  }
  (*barrier)();
}

void Pace::Predict(NodeId requester, const SparseVector& x,
                   std::function<void(P2PPrediction)> done) {
  if (!trained_ || requester >= peer_data_.size() ||
      !net_.IsOnline(requester)) {
    sim_.Schedule(0.0, [done = std::move(done)] {
      done({{}, {}, false});
    });
    return;
  }

  Tracer* tracer = net_.tracer();
  TraceContext span;
  if (tracer != nullptr) {
    span = tracer->StartAuto("pace/predict", sim_.Now(), requester);
    tracer->AddArg(span, "requester", std::to_string(requester));
  }

  // Entirely local: retrieve candidate models via LSH (multi-probe until we
  // have enough), filter to models this peer actually received, rank by
  // true centroid distance, keep top-k.
  Stopwatch retrieve_wall;
  std::vector<std::size_t> candidates =
      index_->QueryAtLeast(x, options_.top_k * 4);

  struct Scored {
    NodeId peer;
    double dist2;
  };
  std::vector<Scored> nearest;
  std::vector<double> best_dist(models_.size(),
                                std::numeric_limits<double>::infinity());
  for (std::size_t item : candidates) {
    const auto& [peer, cidx] = index_items_[item];
    if (!received_[requester][peer] || !models_[peer].valid) continue;
    // A restored bundle is expected to carry the indexed centroids, but a
    // stale index entry must degrade to "skip", never to an OOB read.
    if (cidx >= models_[peer].centroids.size()) continue;
    double d = x.SquaredDistance(models_[peer].centroids[cidx]);
    best_dist[peer] = std::min(best_dist[peer], d);
  }
  for (NodeId peer = 0; peer < models_.size(); ++peer) {
    if (std::isfinite(best_dist[peer])) nearest.push_back({peer,
                                                           best_dist[peer]});
  }
  // LSH recall fallback: when collisions under-deliver, scan every
  // received model (correctness first; the LSH speedup is measured by the
  // ML benchmarks, not assumed).
  if (nearest.size() < options_.top_k) {
    nearest.clear();
    for (NodeId peer = 0; peer < models_.size(); ++peer) {
      if (!received_[requester][peer] || !models_[peer].valid) continue;
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : models_[peer].centroids) {
        best = std::min(best, x.SquaredDistance(c));
      }
      nearest.push_back({peer, best});
    }
  }
  std::sort(nearest.begin(), nearest.end(),
            [](const Scored& a, const Scored& b) { return a.dist2 < b.dist2; });
  if (nearest.size() > options_.top_k) nearest.resize(options_.top_k);
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "top_k_retrieve")) {
    hist->Observe(retrieve_wall.ElapsedSeconds());
  }

  P2PPrediction out;
  out.scores.assign(num_tags_, 0.0);
  if (nearest.empty()) {
    out.success = false;
    if (MetricsRegistry* metrics = net_.metrics()) {
      metrics
          ->GetCounter("predictions",
                       {{"classifier", "pace"}, {"outcome", "failed"}})
          .Increment();
    }
    if (tracer != nullptr) {
      tracer->AddArg(span, "success", "false");
      tracer->EndSpan(span, sim_.Now());
    }
    sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
      done(std::move(out));
    });
    return;
  }

  Stopwatch vote_wall;
  std::vector<double> weight_sum(num_tags_, 0.0);
  for (const Scored& s : nearest) {
    const PeerModel& pm = models_[s.peer];
    double dist_w =
        1.0 / std::pow(1.0 + std::sqrt(s.dist2), options_.distance_exponent);
    for (TagId t = 0; t < num_tags_; ++t) {
      const BinaryClassifier* m = pm.model.model(t);
      if (m == nullptr || !pm.tag_informed[t]) continue;
      double w = std::pow(std::max(pm.tag_accuracy[t], 1e-6),
                          options_.accuracy_exponent) *
                 dist_w;
      out.scores[t] += w * m->Decision(x);
      weight_sum[t] += w;
    }
  }
  for (TagId t = 0; t < num_tags_; ++t) {
    if (weight_sum[t] > 0.0) out.scores[t] /= weight_sum[t];
  }
  out.tags = DecideTags(out.scores, options_.policy);
  out.success = true;
  if (MetricsRegistry* metrics = net_.metrics()) {
    PhaseHistogram(metrics, "vote")->Observe(vote_wall.ElapsedSeconds());
    metrics
        ->GetCounter("predictions",
                     {{"classifier", "pace"}, {"outcome", "ok"}})
        .Increment();
  }
  if (tracer != nullptr) {
    tracer->AddArg(span, "voters", std::to_string(nearest.size()));
    tracer->AddArg(span, "success", "true");
    tracer->EndSpan(span, sim_.Now());
  }
  sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
    done(std::move(out));
  });
}

Result<std::string> Pace::Snapshot(NodeId peer) const {
  if (peer >= models_.size()) {
    return Status::InvalidArgument("snapshot of unknown peer " +
                                   std::to_string(peer));
  }
  const PeerModel& pm = models_[peer];
  std::string out;
  wire::PutU8(kPaceSnapshotVersion, out);
  wire::PutU32(num_tags_, out);
  wire::PutU32(static_cast<uint32_t>(models_.size()), out);
  wire::PutU8(pm.valid ? 1 : 0, out);
  if (pm.valid) {
    wire::PutBytes(SerializeOneVsAll(pm.model), out);
    wire::PutBytes(SerializeCentroids(pm.centroids), out);
    wire::PutU32(static_cast<uint32_t>(pm.tag_accuracy.size()), out);
    for (double a : pm.tag_accuracy) wire::PutDouble(a, out);
    wire::PutU32(static_cast<uint32_t>(pm.tag_informed.size()), out);
    for (bool b : pm.tag_informed) wire::PutU8(b ? 1 : 0, out);
    wire::PutU64(pm.wire_size, out);
  }
  // The receiver-side view: which contributors' bundles this peer holds.
  wire::PutU32(static_cast<uint32_t>(received_[peer].size()), out);
  for (bool held : received_[peer]) wire::PutU8(held ? 1 : 0, out);
  return out;
}

Status Pace::Restore(NodeId peer, const std::string& blob) {
  if (peer >= models_.size()) {
    return Status::InvalidArgument("restore of unknown peer " +
                                   std::to_string(peer));
  }
  std::size_t offset = 0;
  Result<uint8_t> version = wire::GetU8(blob, offset);
  if (!version.ok()) return version.status();
  if (version.value() != kPaceSnapshotVersion) {
    return Status::InvalidArgument("unsupported pace snapshot version " +
                                   std::to_string(version.value()));
  }
  Result<uint32_t> num_tags = wire::GetU32(blob, offset);
  if (!num_tags.ok()) return num_tags.status();
  Result<uint32_t> num_peers = wire::GetU32(blob, offset);
  if (!num_peers.ok()) return num_peers.status();
  if (num_tags.value() != num_tags_ || num_peers.value() != models_.size()) {
    return Status::InvalidArgument(
        "pace snapshot was taken under a different configuration");
  }
  Result<uint8_t> valid = wire::GetU8(blob, offset);
  if (!valid.ok()) return valid.status();

  PeerModel restored;
  if (valid.value() != 0) {
    Result<std::string> model_bytes = wire::GetBytes(blob, offset);
    if (!model_bytes.ok()) return model_bytes.status();
    Result<OneVsAllModel> model = DeserializeOneVsAll(model_bytes.value());
    if (!model.ok()) return model.status();
    restored.model = std::move(model).value();
    Result<std::string> centroid_bytes = wire::GetBytes(blob, offset);
    if (!centroid_bytes.ok()) return centroid_bytes.status();
    Result<std::vector<SparseVector>> centroids =
        DeserializeCentroids(centroid_bytes.value());
    if (!centroids.ok()) return centroids.status();
    restored.centroids = std::move(centroids).value();
    Result<uint32_t> n_acc = wire::GetU32(blob, offset);
    if (!n_acc.ok()) return n_acc.status();
    restored.tag_accuracy.reserve(n_acc.value());
    for (uint32_t i = 0; i < n_acc.value(); ++i) {
      Result<double> a = wire::GetDouble(blob, offset);
      if (!a.ok()) return a.status();
      restored.tag_accuracy.push_back(a.value());
    }
    Result<uint32_t> n_inf = wire::GetU32(blob, offset);
    if (!n_inf.ok()) return n_inf.status();
    restored.tag_informed.reserve(n_inf.value());
    for (uint32_t i = 0; i < n_inf.value(); ++i) {
      Result<uint8_t> b = wire::GetU8(blob, offset);
      if (!b.ok()) return b.status();
      restored.tag_informed.push_back(b.value() != 0);
    }
    Result<uint64_t> wire_size = wire::GetU64(blob, offset);
    if (!wire_size.ok()) return wire_size.status();
    restored.wire_size = static_cast<std::size_t>(wire_size.value());
    restored.valid = true;
  }

  Result<uint32_t> n_recv = wire::GetU32(blob, offset);
  if (!n_recv.ok()) return n_recv.status();
  if (n_recv.value() != received_[peer].size()) {
    return Status::InvalidArgument("pace snapshot received-row size " +
                                   std::to_string(n_recv.value()) +
                                   " does not match network size");
  }
  std::vector<bool> row(n_recv.value(), false);
  for (uint32_t i = 0; i < n_recv.value(); ++i) {
    Result<uint8_t> b = wire::GetU8(blob, offset);
    if (!b.ok()) return b.status();
    row[i] = b.value() != 0;
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after pace snapshot");
  }
  // Commit only after the whole blob parsed: restore is all-or-nothing.
  models_[peer] = std::move(restored);
  received_[peer] = std::move(row);
  return Status::OK();
}

void Pace::EvictPeer(NodeId peer) {
  if (peer >= received_.size()) return;
  // The peer's RAM is gone: it no longer holds anyone's bundle, its own
  // included. models_[peer] itself is left in place — it doubles as the
  // copy other receivers hold, which a crash of the contributor does not
  // destroy; visibility is entirely received_[q][peer].
  received_[peer].assign(received_[peer].size(), false);
}

std::size_t Pace::ColdRestart(NodeId peer) {
  if (peer >= peer_data_.size()) return 0;
  received_[peer].assign(received_[peer].size(), false);
  const MultiLabelDataset& data = peer_data_[peer];
  if (data.empty()) return 0;
  TrainLocal(peer);
  if (!models_[peer].valid) return 0;
  received_[peer][peer] = true;
  std::vector<std::size_t> counts = data.TagCounts();
  std::size_t informed_tags = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++informed_tags;
  }
  return data.size() * informed_tags;
}

void Pace::ResyncPeer(NodeId peer, std::function<void()> done) {
  if (peer >= received_.size() || !net_.IsOnline(peer)) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [pending, done = std::move(done)] {
    if (--*pending > 0) return;
    done();
  };
  for (NodeId p = 0; p < models_.size(); ++p) {
    if (p == peer || !models_[p].valid || received_[peer][p]) continue;
    // SRM-style repair: *any* online peer holding p's bundle can serve it,
    // not only the contributor — so a bundle stays recoverable as long as
    // one live copy exists, even while its contributor is offline.
    NodeId sender = kInvalidNode;
    if (net_.IsOnline(p)) {
      sender = p;
    } else {
      for (NodeId q = 0; q < received_.size(); ++q) {
        if (q != peer && received_[q][p] && net_.IsOnline(q)) {
          sender = q;
          break;
        }
      }
    }
    if (sender == kInvalidNode) continue;  // no live copy anywhere
    ++*pending;
    auto deliver = [this, p, peer] {
      if (peer < received_.size()) received_[peer][p] = true;
    };
    if (transport_ != nullptr) {
      transport_->SendReliable(
          sender, peer, models_[p].wire_size, MessageType::kModelBroadcast,
          std::move(deliver), /*on_acked=*/[barrier] { (*barrier)(); },
          /*on_give_up=*/[barrier] { (*barrier)(); });
    } else {
      net_.Send(
          sender, peer, models_[p].wire_size, MessageType::kModelBroadcast,
          [deliver = std::move(deliver), barrier] {
            deliver();
            (*barrier)();
          },
          [barrier] { (*barrier)(); });
    }
  }
  sim_.Schedule(0.0, [barrier] { (*barrier)(); });  // consume root token
}

double Pace::ModelCoverage() const {
  std::size_t contributors = 0;
  for (const auto& m : models_) {
    if (m.valid) ++contributors;
  }
  if (contributors == 0) return 0.0;
  std::size_t have = 0, want = 0;
  for (NodeId q = 0; q < received_.size(); ++q) {
    if (!net_.IsOnline(q)) continue;
    for (NodeId p = 0; p < models_.size(); ++p) {
      if (!models_[p].valid) continue;
      ++want;
      if (received_[q][p]) ++have;
    }
  }
  return want == 0 ? 0.0
                   : static_cast<double>(have) / static_cast<double>(want);
}

}  // namespace p2pdt
