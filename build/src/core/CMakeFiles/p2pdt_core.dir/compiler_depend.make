# Empty compiler generated dependencies file for p2pdt_core.
# This may be replaced when dependencies are built.
