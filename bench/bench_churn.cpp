// DEMO3 — "churn/attrition rate of the P2P network" (paper Sec. 3):
// accuracy, failed queries and model coverage under increasingly aggressive
// churn, for both churn models (exponential and heavy-tailed Pareto).
//
// Expected shape: graceful degradation — failed predictions and coverage
// loss grow as mean session length shrinks; CEMPaR suffers through dead
// super-peers (until repair), PACE through missed broadcasts.

#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO3: behaviour under churn ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/128,
                                                /*num_tags=*/12);
  CsvWriter csv({"algorithm", "churn_model", "mean_online_sec", "micro_f1",
                 "failed", "attempted", "failures_during_run"});

  struct Point {
    ChurnType type;
    double mean_online;
  };
  std::vector<Point> points = {
      {ChurnType::kNone, 0.0},          {ChurnType::kExponential, 600.0},
      {ChurnType::kExponential, 120.0}, {ChurnType::kExponential, 30.0},
      {ChurnType::kExponential, 10.0},  {ChurnType::kPareto, 120.0},
      {ChurnType::kPareto, 30.0},
  };

  std::printf("%-12s %-12s %12s %8s %10s\n", "algorithm", "churn",
              "mean-online", "microF1", "failed");
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    for (const Point& point : points) {
      ExperimentOptions opt = MacroDefaults(algo, 128);
      opt.env.churn = point.type;
      opt.env.churn_mean_online_sec = point.mean_online;
      opt.env.churn_mean_offline_sec = point.mean_online / 4.0;
      // Give churn time to bite before and during the protocol.
      opt.warmup_sim_seconds = point.type == ChurnType::kNone ? 0.0 : 30.0;
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", AlgorithmTypeToString(algo),
                     r.status().ToString().c_str());
        continue;
      }
      std::printf("%-12s %-12s %12.0f %8.4f %6zu/%zu\n", r->algorithm.c_str(),
                  r->churn.c_str(), point.mean_online, r->metrics.micro_f1,
                  r->failed_predictions, r->test_documents);
      csv.AddRow({r->algorithm, r->churn,
                  std::to_string(point.mean_online),
                  std::to_string(r->metrics.micro_f1),
                  std::to_string(r->failed_predictions),
                  std::to_string(r->test_documents), ""});
    }
    std::printf("\n");
  }
  WriteResults(csv, "demo3_churn.csv");
  return 0;
}
