#include "ml/lsh.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace p2pdt {
namespace {

SparseVector RandomUnit(Rng& rng, uint32_t dim, std::size_t nnz) {
  std::vector<SparseVector::Entry> f;
  for (std::size_t i = 0; i < nnz; ++i) {
    f.emplace_back(static_cast<uint32_t>(rng.NextU64(dim)),
                   rng.Normal());
  }
  SparseVector v = SparseVector::FromPairs(std::move(f));
  v.L2Normalize();
  return v;
}

SparseVector Perturb(const SparseVector& v, Rng& rng, double eps) {
  SparseVector out = v;
  SparseVector noise = RandomUnit(rng, 1000, 5);
  out.Add(noise, eps);
  out.L2Normalize();
  return out;
}

TEST(LshTest, SignatureDeterministicAndSeedDependent) {
  SparseVector v = SparseVector::FromPairs({{1, 1.0}, {5, -2.0}});
  LshOptions a;
  a.seed = 1;
  LshOptions b;
  b.seed = 2;
  CosineLsh la(a), la2(a), lb(b);
  EXPECT_EQ(la.Signature(0, v), la2.Signature(0, v));
  // Different seeds give (almost surely) different hash functions.
  bool any_diff = false;
  for (std::size_t t = 0; t < a.num_tables; ++t) {
    any_diff |= la.Signature(t, v) != lb.Signature(t, v);
  }
  EXPECT_TRUE(any_diff);
}

TEST(LshTest, IdenticalVectorsAlwaysCollide) {
  CosineLsh lsh;
  SparseVector v = SparseVector::FromPairs({{0, 1.0}, {9, 0.5}});
  lsh.Insert(7, v);
  std::vector<std::size_t> hits = lsh.Query(v);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(LshTest, ScaledVectorHasSameSignature) {
  // Cosine LSH ignores magnitude.
  CosineLsh lsh;
  SparseVector v = SparseVector::FromPairs({{2, 1.0}, {4, -1.0}});
  SparseVector w = v;
  w.Scale(5.0);
  for (std::size_t t = 0; t < lsh.options().num_tables; ++t) {
    EXPECT_EQ(lsh.Signature(t, v), lsh.Signature(t, w));
  }
}

TEST(LshTest, NearNeighborsCollideMoreThanRandom) {
  Rng rng(42);
  LshOptions opt;
  opt.num_tables = 6;
  opt.num_bits = 10;
  CosineLsh lsh(opt);

  SparseVector query = RandomUnit(rng, 1000, 30);
  // Insert 50 near copies and 500 random vectors.
  for (std::size_t i = 0; i < 50; ++i) {
    lsh.Insert(i, Perturb(query, rng, 0.15));
  }
  for (std::size_t i = 50; i < 550; ++i) {
    lsh.Insert(i, RandomUnit(rng, 1000, 30));
  }
  std::vector<std::size_t> hits = lsh.Query(query);
  std::size_t near_hits = 0, far_hits = 0;
  for (std::size_t id : hits) {
    (id < 50 ? near_hits : far_hits) += 1;
  }
  double near_rate = near_hits / 50.0;
  double far_rate = far_hits / 500.0;
  EXPECT_GT(near_rate, 0.5);
  EXPECT_LT(far_rate, near_rate / 3.0);
}

TEST(LshTest, QueryAtLeastWidensViaMultiProbe) {
  Rng rng(5);
  LshOptions opt;
  opt.num_tables = 2;
  opt.num_bits = 16;  // narrow buckets: plain query finds little
  CosineLsh lsh(opt);
  for (std::size_t i = 0; i < 100; ++i) {
    lsh.Insert(i, RandomUnit(rng, 200, 10));
  }
  SparseVector q = RandomUnit(rng, 200, 10);
  std::vector<std::size_t> plain = lsh.Query(q);
  std::vector<std::size_t> widened = lsh.QueryAtLeast(q, 10);
  EXPECT_GE(widened.size(), plain.size());
}

TEST(LshTest, EmptyIndexReturnsNothing) {
  CosineLsh lsh;
  EXPECT_TRUE(lsh.Query(SparseVector::FromPairs({{0, 1.0}})).empty());
  EXPECT_TRUE(
      lsh.QueryAtLeast(SparseVector::FromPairs({{0, 1.0}}), 5).empty());
}

TEST(LshTest, SizeCountsInsertions) {
  CosineLsh lsh;
  EXPECT_EQ(lsh.size(), 0u);
  lsh.Insert(0, SparseVector::FromPairs({{0, 1.0}}));
  lsh.Insert(1, SparseVector::FromPairs({{1, 1.0}}));
  EXPECT_EQ(lsh.size(), 2u);
}

TEST(LshTest, TwoIndexesWithSameSeedAgree) {
  // The coordination-free property PACE peers rely on.
  Rng rng(9);
  CosineLsh a, b;
  SparseVector v = RandomUnit(rng, 500, 20);
  for (std::size_t t = 0; t < a.options().num_tables; ++t) {
    EXPECT_EQ(a.Signature(t, v), b.Signature(t, v));
  }
}

}  // namespace
}  // namespace p2pdt
