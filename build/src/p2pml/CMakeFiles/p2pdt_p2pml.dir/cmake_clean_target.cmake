file(REMOVE_RECURSE
  "libp2pdt_p2pml.a"
)
