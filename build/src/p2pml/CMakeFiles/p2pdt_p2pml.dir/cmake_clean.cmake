file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_p2pml.dir/baselines.cc.o"
  "CMakeFiles/p2pdt_p2pml.dir/baselines.cc.o.d"
  "CMakeFiles/p2pdt_p2pml.dir/cempar.cc.o"
  "CMakeFiles/p2pdt_p2pml.dir/cempar.cc.o.d"
  "CMakeFiles/p2pdt_p2pml.dir/pace.cc.o"
  "CMakeFiles/p2pdt_p2pml.dir/pace.cc.o.d"
  "libp2pdt_p2pml.a"
  "libp2pdt_p2pml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_p2pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
