// CLAIM3 — document preprocessing throughput (paper Sec. 2, "Document
// preprocessing"): tokenizer, stop-word filter, Porter stemmer, vectorizer
// and the assembled pipeline, on realistic generated documents.

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "text/preprocessor.h"

namespace {

using namespace p2pdt;

const std::vector<std::string>& SampleTexts() {
  static const std::vector<std::string> texts = [] {
    CorpusOptions opt;
    opt.num_users = 4;
    opt.min_docs_per_user = 64;
    opt.max_docs_per_user = 64;
    opt.vocabulary_size = 2000;
    opt.seed = 5;
    GeneratedCorpus corpus = std::move(GenerateCorpus(opt)).value();
    std::vector<std::string> out;
    for (const auto& doc : corpus.documents) out.push_back(doc.text);
    return out;
  }();
  return texts;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  const auto& texts = SampleTexts();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    const std::string& text = texts[i++ % texts.size()];
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Tokenize);

void BM_StopWordFilter(benchmark::State& state) {
  Tokenizer tokenizer;
  StopWordFilter filter;
  std::vector<std::vector<std::string>> token_lists;
  for (const auto& text : SampleTexts()) {
    token_lists.push_back(tokenizer.Tokenize(text));
  }
  std::size_t i = 0, tokens = 0;
  for (auto _ : state) {
    const auto& list = token_lists[i++ % token_lists.size()];
    benchmark::DoNotOptimize(filter.Filter(list));
    tokens += list.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_StopWordFilter);

void BM_PorterStem(benchmark::State& state) {
  Tokenizer tokenizer;
  PorterStemmer stemmer;
  std::vector<std::string> words;
  for (const auto& text : SampleTexts()) {
    for (auto& t : tokenizer.Tokenize(text)) words.push_back(std::move(t));
    if (words.size() > 20000) break;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stemmer.Stem(words[i++ % words.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PorterStem);

void BM_VectorizeHashed(benchmark::State& state) {
  PreprocessorOptions opt;
  Preprocessor pre(opt);
  Tokenizer tokenizer;
  const auto& texts = SampleTexts();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pre.Process(texts[i++ % texts.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorizeHashed);

void BM_FullPipelinePerDocument(benchmark::State& state) {
  Preprocessor pre;
  const auto& texts = SampleTexts();
  std::size_t i = 0, bytes = 0;
  for (auto _ : state) {
    const std::string& text = texts[i++ % texts.size()];
    benchmark::DoNotOptimize(pre.Process(text));
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelinePerDocument);

void BM_PipelineGrowingVsHashedLexicon(benchmark::State& state) {
  PreprocessorOptions opt;
  opt.hashed_dimensions = state.range(0) ? (1u << 18) : 0;
  const auto& texts = SampleTexts();
  for (auto _ : state) {
    state.PauseTiming();
    Preprocessor pre(opt);  // fresh lexicon per run
    state.ResumeTiming();
    for (const auto& text : texts) {
      benchmark::DoNotOptimize(pre.Process(text));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(texts.size()));
}
BENCHMARK(BM_PipelineGrowingVsHashedLexicon)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
