#ifndef P2PDT_P2PDMT_RUN_REPORT_H_
#define P2PDT_P2PDMT_RUN_REPORT_H_

#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "p2pdmt/experiment.h"

namespace p2pdt {

/// One JSON document joining what a run *achieved* (macro/micro F1), what
/// it *cost* (messages, bytes, retransmits, give-ups) and where the time
/// went (per-phase latency histograms: p50/p95/p99/max from the run's
/// `phase_seconds` metric family). Built from an ExperimentResult plus the
/// metrics snapshot the environment collected — the single artifact an
/// experiment leaves behind for regression tracking.
struct RunReport {
  /// Renders the report as a JSON object (always syntactically valid; an
  /// empty snapshot yields an empty "phases" array).
  static std::string ToJson(const ExperimentResult& result,
                            const MetricsSnapshot& metrics);

  /// Writes ToJson() to `path`.
  static Status Write(const std::string& path,
                      const ExperimentResult& result,
                      const MetricsSnapshot& metrics);
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_RUN_REPORT_H_
