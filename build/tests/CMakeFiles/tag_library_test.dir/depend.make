# Empty dependencies file for tag_library_test.
# This may be replaced when dependencies are built.
