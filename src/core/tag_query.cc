#include "core/tag_query.h"

#include <algorithm>
#include <cctype>
#include <functional>

namespace p2pdt {

namespace {

struct Token {
  enum class Kind { kTag, kAnd, kOr, kNot, kLParen, kRParen, kEnd } kind;
  std::string text;
};

std::vector<Token> Lex(std::string_view query) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < query.size()) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({Token::Kind::kLParen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({Token::Kind::kRParen, ")"});
      ++i;
      continue;
    }
    // A tag word: everything up to whitespace or a parenthesis.
    std::size_t start = i;
    while (i < query.size() &&
           !std::isspace(static_cast<unsigned char>(query[i])) &&
           query[i] != '(' && query[i] != ')') {
      ++i;
    }
    std::string word(query.substr(start, i - start));
    std::string upper = word;
    for (char& ch : upper) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    if (upper == "AND") {
      tokens.push_back({Token::Kind::kAnd, word});
    } else if (upper == "OR") {
      tokens.push_back({Token::Kind::kOr, word});
    } else if (upper == "NOT") {
      tokens.push_back({Token::Kind::kNot, word});
    } else {
      tokens.push_back({Token::Kind::kTag, word});
    }
  }
  tokens.push_back({Token::Kind::kEnd, ""});
  return tokens;
}

}  // namespace

Result<TagQuery> TagQuery::Parse(std::string_view query) {
  const std::vector<Token> tokens = Lex(query);
  std::size_t pos = 0;
  using NodePtr = std::unique_ptr<Node>;
  using ParseFn = std::function<Result<NodePtr>()>;

  // Mutually recursive productions, forward-declared as std::functions.
  ParseFn parse_or;

  ParseFn parse_unary = [&]() -> Result<NodePtr> {
    const Token& tok = tokens[pos];
    switch (tok.kind) {
      case Token::Kind::kNot: {
        ++pos;
        Result<NodePtr> operand = parse_unary();
        if (!operand.ok()) return operand.status();
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kNot;
        node->left = std::move(operand).value();
        return node;
      }
      case Token::Kind::kLParen: {
        ++pos;
        Result<NodePtr> inner = parse_or();
        if (!inner.ok()) return inner.status();
        if (tokens[pos].kind != Token::Kind::kRParen) {
          return Status::InvalidArgument("expected ')'");
        }
        ++pos;
        return inner;
      }
      case Token::Kind::kTag: {
        ++pos;
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kTag;
        node->tag = tok.text;
        return node;
      }
      default:
        return Status::InvalidArgument(
            "expected tag, NOT or '(', got '" +
            (tok.text.empty() ? std::string("end of query") : tok.text) +
            "'");
    }
  };

  auto parse_binary = [&](Token::Kind op, Node::Kind kind,
                          const ParseFn& next) -> Result<NodePtr> {
    Result<NodePtr> left = next();
    if (!left.ok()) return left.status();
    NodePtr node = std::move(left).value();
    while (tokens[pos].kind == op) {
      ++pos;
      Result<NodePtr> right = next();
      if (!right.ok()) return right.status();
      auto parent = std::make_unique<Node>();
      parent->kind = kind;
      parent->left = std::move(node);
      parent->right = std::move(right).value();
      node = std::move(parent);
    }
    return node;
  };

  ParseFn parse_and = [&]() -> Result<NodePtr> {
    return parse_binary(Token::Kind::kAnd, Node::Kind::kAnd, parse_unary);
  };
  parse_or = [&]() -> Result<NodePtr> {
    return parse_binary(Token::Kind::kOr, Node::Kind::kOr, parse_and);
  };

  Result<NodePtr> root = parse_or();
  if (!root.ok()) return root.status();
  if (tokens[pos].kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("unexpected '" + tokens[pos].text +
                                   "' after end of query");
  }
  return TagQuery(std::move(root).value());
}

namespace {

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> Union(const std::vector<DocId>& a,
                         const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Complement(const std::vector<DocId>& universe,
                              const std::vector<DocId>& a) {
  std::vector<DocId> out;
  std::set_difference(universe.begin(), universe.end(), a.begin(), a.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<DocId> TagQuery::Evaluate(const TagLibrary& library) const {
  std::vector<DocId> universe = library.AllDocuments();
  std::function<std::vector<DocId>(const Node&)> eval =
      [&](const Node& node) -> std::vector<DocId> {
    switch (node.kind) {
      case Node::Kind::kTag:
        return library.WithTag(node.tag);
      case Node::Kind::kAnd:
        return Intersect(eval(*node.left), eval(*node.right));
      case Node::Kind::kOr:
        return Union(eval(*node.left), eval(*node.right));
      case Node::Kind::kNot:
        return Complement(universe, eval(*node.left));
    }
    return {};
  };
  return eval(*root_);
}

std::string TagQuery::ToString() const {
  std::function<std::string(const Node&)> render =
      [&](const Node& node) -> std::string {
    switch (node.kind) {
      case Node::Kind::kTag:
        return node.tag;
      case Node::Kind::kAnd:
        return "(" + render(*node.left) + " AND " + render(*node.right) +
               ")";
      case Node::Kind::kOr:
        return "(" + render(*node.left) + " OR " + render(*node.right) + ")";
      case Node::Kind::kNot:
        return "(NOT " + render(*node.left) + ")";
    }
    return "?";
  };
  return render(*root_);
}

}  // namespace p2pdt
