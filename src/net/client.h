#ifndef P2PDT_NET_CLIENT_H_
#define P2PDT_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace p2pdt {

/// Client side of the p2pdtd frame protocol: one TCP connection with the
/// same incremental decoder the daemon uses. Blocking convenience calls
/// (Predict / Ping / ReadFrame with a deadline) for tools and tests, plus
/// non-blocking primitives (fd() + ReadAvailable + PollFrame) for the
/// poll()-driven socket load generator, and raw-byte / abortive-close
/// escape hatches for the fault injector.
class ServiceClient {
 public:
  ServiceClient();
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  /// Connects with a deadline (non-blocking connect + poll, then the socket
  /// returns to blocking mode).
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_seconds = 5.0);

  void Close();

  /// SO_LINGER{on, 0s} then close: the kernel sends RST instead of FIN —
  /// the abrupt-reset fault the daemon must shrug off.
  void AbortiveClose();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Encodes and writes one complete frame (partial writes retried).
  Status SendFrame(FrameType type, const std::string& payload);

  /// Writes arbitrary bytes verbatim — malformed prefixes, dripped partial
  /// frames. Fault injection only.
  Status SendRaw(const std::string& bytes);

  /// Blocks until one full frame arrives or the deadline passes
  /// (DeadlineExceeded). EOF surfaces as IOError.
  Status ReadFrame(Frame& out, double timeout_seconds = 5.0);

  /// Non-blocking read of whatever the kernel has buffered (possibly zero
  /// bytes). A reset surfaces as IOError; a poisoned decoder as DataLoss.
  /// EOF is recorded (see eof()) rather than returned, because the server
  /// may close right after a final frame — drain PollFrame first. Pair
  /// with PollFrame under an external poll() loop.
  Status ReadAvailable();

  /// Extracts the next already-buffered frame; no I/O. False: need more.
  bool PollFrame(Frame& out);

  /// True once the server has sent FIN. Frames buffered before the close
  /// are still retrievable via PollFrame.
  bool eof() const { return eof_; }

  // --- request/response convenience -------------------------------------

  /// Any well-formed reply to a predict request: the answer, a typed
  /// overload shed, or a typed protocol error.
  struct PredictOutcome {
    enum class Kind : uint8_t { kResponse = 0, kOverload, kError };
    Kind kind = Kind::kError;
    PredictResponse response;
    OverloadReject overload;
    ErrorReject error;
  };

  Status Predict(const PredictRequest& request, PredictOutcome& out,
                 double timeout_seconds = 5.0);

  /// Round-trips a token through kPing/kPong — the liveness probe.
  Status Ping(uint64_t token, double timeout_seconds = 5.0);

 private:
  int fd_ = -1;
  bool eof_ = false;
  FrameDecoder decoder_;
};

}  // namespace p2pdt

#endif  // P2PDT_NET_CLIENT_H_
