#ifndef P2PDT_P2PDMT_ACTIVITY_LOG_H_
#define P2PDT_P2PDMT_ACTIVITY_LOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Structured record of simulation activity ("Log activities" in P2PDMT's
/// architecture, Fig. 2): timestamped (actor, category, detail) rows with
/// CSV export, so a run can be audited or charted after the fact.
class ActivityLog {
 public:
  struct Entry {
    SimTime time = 0.0;
    std::string actor;     // "peer/17", "superpeer/3", "system"
    std::string category;  // "churn", "train", "predict", "repair", ...
    std::string detail;
  };

  void Record(SimTime time, std::string actor, std::string category,
              std::string detail);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Entries matching a category, in time order.
  std::vector<Entry> FilterByCategory(const std::string& category) const;

  /// Count of entries in a category.
  std::size_t CountCategory(const std::string& category) const;

  Status WriteCsv(const std::string& path) const;
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_ACTIVITY_LOG_H_
