#ifndef P2PDT_CORPUS_VECTORIZE_H_
#define P2PDT_CORPUS_VECTORIZE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "corpus/generator.h"
#include "ml/dataset.h"
#include "text/preprocessor.h"

namespace p2pdt {

/// A corpus run through the full preprocessing pipeline: every document as
/// a sparse vector, tags as dense ids, plus the user ownership needed to
/// distribute documents onto peers.
struct VectorizedCorpus {
  MultiLabelDataset dataset;
  /// Owning user of dataset example i (parallel to dataset.examples()).
  std::vector<std::size_t> doc_user;
  /// Tag-name universe; index = TagId.
  std::vector<std::string> tag_names;
  std::unordered_map<std::string, TagId> tag_ids;
  std::size_t num_users = 0;
};

/// Preprocesses every document of `corpus` with `preprocessor` (tokenize →
/// filter → stem → vectorize) and maps tag names to dense ids in
/// corpus.tag_names order.
Result<VectorizedCorpus> VectorizeCorpus(const GeneratedCorpus& corpus,
                                         Preprocessor& preprocessor);

/// Convenience: generate + vectorize in one call with a default pipeline.
Result<VectorizedCorpus> MakeVectorizedCorpus(const CorpusOptions& options);

/// A drifting document stream run through the same preprocessing pipeline.
/// The whole stream is vectorized at once (the tag universe and lexicon are
/// fixed up front), so every epoch's documents live in one dataset and
/// per-epoch slices are just index ranges.
struct VectorizedStream {
  VectorizedCorpus corpus;
  /// Epoch of dataset example i (parallel to corpus.dataset).
  std::vector<std::size_t> doc_epoch;
  std::size_t num_epochs = 0;
  /// Earliest epoch any drift event perturbs (num_epochs when stationary).
  std::size_t first_drift_epoch = 0;
};

/// Preprocesses every document of `stream` in stream (epoch-major) order.
Result<VectorizedStream> VectorizeStream(const StreamedCorpus& stream,
                                         Preprocessor& preprocessor);

/// Convenience: generate + vectorize a drifting stream in one call.
Result<VectorizedStream> MakeVectorizedStream(const StreamOptions& options);

}  // namespace p2pdt

#endif  // P2PDT_CORPUS_VECTORIZE_H_
