#include "ml/serialization.h"

#include <cstring>
#include <fstream>

#include "common/cost_ledger.h"

namespace p2pdt {

namespace {

// Byte accounting happens at the model-level entry points only, so nested
// helpers (sparse vectors inside a one-vs-all body) are not double-counted.
void ChargeSerialized(std::size_t bytes) {
  if (CostLedger::enabled()) CostLedger::Tls().serialized_bytes += bytes;
}

void ChargeDeserialized(std::size_t bytes) {
  if (CostLedger::enabled()) CostLedger::Tls().deserialized_bytes += bytes;
}

}  // namespace

namespace wire {

void PutU8(uint8_t v, std::string& out) {
  out.push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string& out) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(uint32_t v, std::string& out) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(double v, std::string& out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

#define P2PDT_NEED(n)                                                \
  do {                                                               \
    if (offset + (n) > data.size()) {                                \
      return Status::InvalidArgument("truncated model buffer");      \
    }                                                                \
  } while (0)

Result<uint8_t> GetU8(const std::string& data, std::size_t& offset) {
  P2PDT_NEED(1);
  return static_cast<uint8_t>(data[offset++]);
}

Result<uint16_t> GetU16(const std::string& data, std::size_t& offset) {
  P2PDT_NEED(2);
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data[offset++]))
         << (8 * i);
  }
  return v;
}

Result<uint32_t> GetU32(const std::string& data, std::size_t& offset) {
  P2PDT_NEED(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset++]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> GetU64(const std::string& data, std::size_t& offset) {
  P2PDT_NEED(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[offset++]))
         << (8 * i);
  }
  return v;
}

Result<double> GetDouble(const std::string& data, std::size_t& offset) {
  Result<uint64_t> bits = GetU64(data, offset);
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

void PutBytes(const std::string& bytes, std::string& out) {
  PutU32(static_cast<uint32_t>(bytes.size()), out);
  out += bytes;
}

Result<std::string> GetBytes(const std::string& data, std::size_t& offset) {
  Result<uint32_t> len = GetU32(data, offset);
  if (!len.ok()) return len.status();
  P2PDT_NEED(len.value());
  std::string bytes = data.substr(offset, len.value());
  offset += len.value();
  return bytes;
}

#undef P2PDT_NEED

}  // namespace wire

namespace {

using namespace wire;  // NOLINT — the serializers are built from these

constexpr uint32_t kMagic = 0x50324454;  // "P2DT"
constexpr uint16_t kVersion = 1;

enum class ModelKind : uint8_t {
  kAbsent = 0,
  kLinear = 1,
  kKernel = 2,
  kConstant = 3,
  kCentroids = 4,
};

Status PutHeader(std::string& out) {
  PutU32(kMagic, out);
  PutU16(kVersion, out);
  return Status::OK();
}

Status CheckHeader(const std::string& data, std::size_t& offset) {
  Result<uint32_t> magic = GetU32(data, offset);
  if (!magic.ok()) return magic.status();
  if (magic.value() != kMagic) {
    return Status::InvalidArgument("bad model magic");
  }
  Result<uint16_t> version = GetU16(data, offset);
  if (!version.ok()) return version.status();
  if (version.value() != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version.value()));
  }
  return Status::OK();
}

void PutKernel(const Kernel& kernel, std::string& out) {
  PutU8(static_cast<uint8_t>(kernel.type), out);
  PutDouble(kernel.gamma, out);
  PutDouble(kernel.coef0, out);
  PutU32(static_cast<uint32_t>(kernel.degree), out);
}

Result<Kernel> GetKernel(const std::string& data, std::size_t& offset) {
  Result<uint8_t> type = GetU8(data, offset);
  if (!type.ok()) return type.status();
  if (type.value() > static_cast<uint8_t>(KernelType::kPolynomial)) {
    return Status::InvalidArgument("unknown kernel type");
  }
  Kernel k;
  k.type = static_cast<KernelType>(type.value());
  Result<double> gamma = GetDouble(data, offset);
  if (!gamma.ok()) return gamma.status();
  k.gamma = gamma.value();
  Result<double> coef0 = GetDouble(data, offset);
  if (!coef0.ok()) return coef0.status();
  k.coef0 = coef0.value();
  Result<uint32_t> degree = GetU32(data, offset);
  if (!degree.ok()) return degree.status();
  k.degree = static_cast<int>(degree.value());
  return k;
}

// Body-only serializers (no header), used for nesting inside OneVsAll.
void PutLinearBody(const LinearSvmModel& model, std::string& out) {
  SerializeSparseVector(model.weights(), out);
  PutDouble(model.bias(), out);
}

Result<LinearSvmModel> GetLinearBody(const std::string& data,
                                     std::size_t& offset) {
  Result<SparseVector> w = DeserializeSparseVector(data, offset);
  if (!w.ok()) return w.status();
  Result<double> bias = GetDouble(data, offset);
  if (!bias.ok()) return bias.status();
  return LinearSvmModel(std::move(w).value(), bias.value());
}

void PutKernelBody(const KernelSvmModel& model, std::string& out) {
  PutKernel(model.kernel(), out);
  PutDouble(model.bias(), out);
  PutU32(static_cast<uint32_t>(model.support_vectors().size()), out);
  for (const SupportVector& sv : model.support_vectors()) {
    SerializeSparseVector(sv.x, out);
    PutDouble(sv.y, out);
    PutDouble(sv.alpha, out);
  }
}

Result<KernelSvmModel> GetKernelBody(const std::string& data,
                                     std::size_t& offset) {
  Result<Kernel> kernel = GetKernel(data, offset);
  if (!kernel.ok()) return kernel.status();
  Result<double> bias = GetDouble(data, offset);
  if (!bias.ok()) return bias.status();
  Result<uint32_t> count = GetU32(data, offset);
  if (!count.ok()) return count.status();
  // Each support vector occupies at least 20 bytes (nnz header + y + alpha);
  // a count beyond that bound is a hostile or corrupt length field — reject
  // before reserving attacker-controlled memory.
  if (static_cast<std::size_t>(count.value()) > (data.size() - offset) / 20) {
    return Status::DataLoss("support-vector count exceeds buffer");
  }
  std::vector<SupportVector> svs;
  svs.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    SupportVector sv;
    Result<SparseVector> x = DeserializeSparseVector(data, offset);
    if (!x.ok()) return x.status();
    sv.x = std::move(x).value();
    Result<double> y = GetDouble(data, offset);
    if (!y.ok()) return y.status();
    sv.y = y.value();
    Result<double> alpha = GetDouble(data, offset);
    if (!alpha.ok()) return alpha.status();
    sv.alpha = alpha.value();
    svs.push_back(std::move(sv));
  }
  return KernelSvmModel(kernel.value(), std::move(svs), bias.value());
}

}  // namespace

void SerializeSparseVector(const SparseVector& v, std::string& out) {
  PutU32(static_cast<uint32_t>(v.nnz()), out);
  for (const auto& [id, w] : v.entries()) {
    PutU32(id, out);
    PutDouble(w, out);
  }
}

Result<SparseVector> DeserializeSparseVector(const std::string& data,
                                             std::size_t& offset) {
  Result<uint32_t> nnz = GetU32(data, offset);
  if (!nnz.ok()) return nnz.status();
  // A claimed entry count beyond the remaining bytes is malformed.
  if (static_cast<std::size_t>(nnz.value()) * 12 > data.size() - offset) {
    return Status::InvalidArgument("sparse vector length exceeds buffer");
  }
  std::vector<SparseVector::Entry> entries;
  entries.reserve(nnz.value());
  for (uint32_t i = 0; i < nnz.value(); ++i) {
    Result<uint32_t> id = GetU32(data, offset);
    if (!id.ok()) return id.status();
    Result<double> w = GetDouble(data, offset);
    if (!w.ok()) return w.status();
    entries.emplace_back(id.value(), w.value());
  }
  return SparseVector::FromPairs(std::move(entries));
}

std::string SerializeLinearSvm(const LinearSvmModel& model) {
  std::string out;
  PutHeader(out);
  PutU8(static_cast<uint8_t>(ModelKind::kLinear), out);
  PutLinearBody(model, out);
  ChargeSerialized(out.size());
  return out;
}

Result<LinearSvmModel> DeserializeLinearSvm(const std::string& data) {
  ChargeDeserialized(data.size());
  std::size_t offset = 0;
  P2PDT_RETURN_IF_ERROR(CheckHeader(data, offset));
  Result<uint8_t> kind = GetU8(data, offset);
  if (!kind.ok()) return kind.status();
  if (kind.value() != static_cast<uint8_t>(ModelKind::kLinear)) {
    return Status::InvalidArgument("buffer does not hold a linear model");
  }
  return GetLinearBody(data, offset);
}

std::string SerializeKernelSvm(const KernelSvmModel& model) {
  std::string out;
  PutHeader(out);
  PutU8(static_cast<uint8_t>(ModelKind::kKernel), out);
  PutKernelBody(model, out);
  ChargeSerialized(out.size());
  return out;
}

Result<KernelSvmModel> DeserializeKernelSvm(const std::string& data) {
  ChargeDeserialized(data.size());
  std::size_t offset = 0;
  P2PDT_RETURN_IF_ERROR(CheckHeader(data, offset));
  Result<uint8_t> kind = GetU8(data, offset);
  if (!kind.ok()) return kind.status();
  if (kind.value() != static_cast<uint8_t>(ModelKind::kKernel)) {
    return Status::InvalidArgument("buffer does not hold a kernel model");
  }
  return GetKernelBody(data, offset);
}

std::string SerializeOneVsAll(const OneVsAllModel& model) {
  std::string out;
  PutHeader(out);
  PutU32(model.num_tags(), out);
  for (TagId t = 0; t < model.num_tags(); ++t) {
    const BinaryClassifier* m = model.model(t);
    if (m == nullptr) {
      PutU8(static_cast<uint8_t>(ModelKind::kAbsent), out);
    } else if (auto* linear = dynamic_cast<const LinearSvmModel*>(m)) {
      PutU8(static_cast<uint8_t>(ModelKind::kLinear), out);
      PutLinearBody(*linear, out);
    } else if (auto* kernel = dynamic_cast<const KernelSvmModel*>(m)) {
      PutU8(static_cast<uint8_t>(ModelKind::kKernel), out);
      PutKernelBody(*kernel, out);
    } else if (auto* constant = dynamic_cast<const ConstantClassifier*>(m)) {
      PutU8(static_cast<uint8_t>(ModelKind::kConstant), out);
      PutDouble(constant->value(), out);
    } else {
      // Unknown classifier implementation: preserve its behaviour at the
      // decision level as a constant of its zero-vector decision. Lossy,
      // but never silently dropped.
      PutU8(static_cast<uint8_t>(ModelKind::kConstant), out);
      PutDouble(m->Decision(SparseVector()), out);
    }
  }
  ChargeSerialized(out.size());
  return out;
}

Result<OneVsAllModel> DeserializeOneVsAll(const std::string& data) {
  ChargeDeserialized(data.size());
  std::size_t offset = 0;
  P2PDT_RETURN_IF_ERROR(CheckHeader(data, offset));
  Result<uint32_t> num_tags = GetU32(data, offset);
  if (!num_tags.ok()) return num_tags.status();
  // At least one kind byte per tag; larger counts cannot be satisfied.
  if (static_cast<std::size_t>(num_tags.value()) > data.size() - offset) {
    return Status::DataLoss("per-tag model count exceeds buffer");
  }
  OneVsAllModel model;
  for (uint32_t t = 0; t < num_tags.value(); ++t) {
    Result<uint8_t> kind = GetU8(data, offset);
    if (!kind.ok()) return kind.status();
    switch (static_cast<ModelKind>(kind.value())) {
      case ModelKind::kAbsent:
        model.SetModel(t, nullptr);
        break;
      case ModelKind::kLinear: {
        Result<LinearSvmModel> m = GetLinearBody(data, offset);
        if (!m.ok()) return m.status();
        model.SetModel(t,
                       std::make_unique<LinearSvmModel>(std::move(m).value()));
        break;
      }
      case ModelKind::kKernel: {
        Result<KernelSvmModel> m = GetKernelBody(data, offset);
        if (!m.ok()) return m.status();
        model.SetModel(t,
                       std::make_unique<KernelSvmModel>(std::move(m).value()));
        break;
      }
      case ModelKind::kConstant: {
        Result<double> v = GetDouble(data, offset);
        if (!v.ok()) return v.status();
        model.SetModel(t, std::make_unique<ConstantClassifier>(v.value()));
        break;
      }
      default:
        return Status::InvalidArgument("unknown per-tag model kind " +
                                       std::to_string(kind.value()));
    }
  }
  if (offset != data.size()) {
    return Status::InvalidArgument("trailing bytes after model");
  }
  return model;
}

std::string SerializeCentroids(const std::vector<SparseVector>& centroids) {
  std::string out;
  PutHeader(out);
  PutU8(static_cast<uint8_t>(ModelKind::kCentroids), out);
  PutU32(static_cast<uint32_t>(centroids.size()), out);
  for (const SparseVector& c : centroids) SerializeSparseVector(c, out);
  ChargeSerialized(out.size());
  return out;
}

Result<std::vector<SparseVector>> DeserializeCentroids(
    const std::string& data) {
  ChargeDeserialized(data.size());
  std::size_t offset = 0;
  P2PDT_RETURN_IF_ERROR(CheckHeader(data, offset));
  Result<uint8_t> kind = GetU8(data, offset);
  if (!kind.ok()) return kind.status();
  if (kind.value() != static_cast<uint8_t>(ModelKind::kCentroids)) {
    return Status::InvalidArgument("buffer does not hold centroids");
  }
  Result<uint32_t> count = GetU32(data, offset);
  if (!count.ok()) return count.status();
  // Each centroid carries at least its 4-byte nnz header.
  if (static_cast<std::size_t>(count.value()) > (data.size() - offset) / 4) {
    return Status::DataLoss("centroid count exceeds buffer");
  }
  std::vector<SparseVector> centroids;
  centroids.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    Result<SparseVector> c = DeserializeSparseVector(data, offset);
    if (!c.ok()) return c.status();
    centroids.push_back(std::move(c).value());
  }
  if (offset != data.size()) {
    return Status::InvalidArgument("trailing bytes after centroids");
  }
  return centroids;
}

Status SaveOneVsAll(const OneVsAllModel& model, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  std::string data = SerializeOneVsAll(model);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<OneVsAllModel> LoadOneVsAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return DeserializeOneVsAll(data);
}

}  // namespace p2pdt
