#ifndef P2PDT_P2PML_SERVICE_HOST_H_
#define P2PDT_P2PML_SERVICE_HOST_H_

#include <cstdint>

#include "p2pml/p2p_classifier.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Bridges the sim-time classifier API onto a synchronous call for the
/// real-socket service: P2PClassifier::Predict fires its callback from
/// simulated events, so ServiceHost issues the request and single-steps the
/// simulator until the callback lands. The caller's thread *is* the
/// simulator driver thread — exactly the discipline the epoll daemon keeps
/// by being single-threaded.
///
/// Bounded on two axes so a wedged protocol cannot wedge the daemon: a
/// per-request event budget and a simulated-time budget. Exhausting either
/// yields a failed (success=false) prediction, never a hang.
class ServiceHost {
 public:
  /// `sim` and `classifier` must outlive the host. The classifier must be
  /// trained (Setup + Train already driven to completion on `sim`).
  ServiceHost(Simulator* sim, P2PClassifier* classifier,
              std::size_t max_events_per_request = 1u << 22,
              double max_sim_seconds_per_request = 600.0);

  /// Synchronous predict: schedules the request and drains simulator events
  /// until the protocol answers (or a budget trips).
  P2PPrediction Predict(NodeId requester, const SparseVector& x);

  uint64_t served() const { return served_; }
  uint64_t budget_exhausted() const { return budget_exhausted_; }

 private:
  Simulator* sim_;
  P2PClassifier* classifier_;
  std::size_t max_events_;
  double max_sim_seconds_;
  uint64_t served_ = 0;
  uint64_t budget_exhausted_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_SERVICE_HOST_H_
