#include "common/logging.h"

#include <cstdio>

namespace p2pdt {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::BeginCapture() {
  std::lock_guard<std::mutex> lock(mu_);
  capturing_ = true;
  capture_.clear();
}

std::string Logger::EndCapture() {
  std::lock_guard<std::mutex> lock(mu_);
  capturing_ = false;
  std::string out;
  out.swap(capture_);
  return out;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (capturing_) {
    capture_ += message;
    capture_ += '\n';
    return;
  }
  std::fprintf(stderr, "%s\n", message.c_str());
}

void LogStructured(
    LogLevel level, const std::string& event,
    std::initializer_list<std::pair<const char*, std::string>> fields) {
  std::string line = event;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    if (value.find_first_of(" \t=\"") != std::string::npos) {
      line += '"';
      for (char c : value) {
        if (c == '"' || c == '\\') line += '\\';
        line += c;
      }
      line += '"';
    } else {
      line += value;
    }
  }
  Logger::Instance().Write(level, line);
}

namespace internal {

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep log lines short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  Logger::Instance().Write(level_, stream_.str());
}

}  // namespace internal
}  // namespace p2pdt
