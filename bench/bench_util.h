#ifndef P2PDT_BENCH_BENCH_UTIL_H_
#define P2PDT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "common/build_info.h"
#include "common/csv.h"
#include "p2pdmt/experiment.h"

namespace p2pdt_bench {

using namespace p2pdt;  // NOLINT — bench-local convenience

/// Corpus used by the macro experiments: Delicious-like, 512 users with
/// 50–200 docs each is too slow to rebuild per bench point, so benches
/// share one sized-down instance per binary (generated once, reused for
/// every sweep point — exactly how the paper reuses its crawl).
inline const VectorizedCorpus& SharedCorpus(std::size_t num_users = 128,
                                            std::size_t num_tags = 12) {
  static const VectorizedCorpus corpus = [num_users, num_tags] {
    CorpusOptions opt;
    opt.num_users = num_users;
    opt.min_docs_per_user = 50;
    opt.max_docs_per_user = 80;
    opt.num_tags = num_tags;
    opt.vocabulary_size = 3000;
    opt.seed = 20100913;  // VLDB 2010 opening day
    Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
    if (!r.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    return std::move(r).value();
  }();
  return corpus;
}

/// Minimal JSON string escape for bench metric/point names.
inline std::string BenchJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// Writes a CSV table under bench_results/, creating the directory, plus a
/// machine-readable JSON mirror (`<name>.json`) so tooling never parses CSV.
inline void WriteResults(const CsvWriter& csv, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path("bench_results/" + name).parent_path(), ec);
  std::string path = "bench_results/" + name;
  Status s = csv.WriteFile(path);
  if (s.ok()) {
    std::printf("\n[results written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
  std::string json = "{\n  \"header\": [";
  for (std::size_t i = 0; i < csv.header().size(); ++i) {
    if (i > 0) json += ", ";
    json += "\"" + BenchJsonEscape(csv.header()[i]) + "\"";
  }
  json += "],\n  \"rows\": [";
  for (std::size_t r = 0; r < csv.rows().size(); ++r) {
    json += r > 0 ? ",\n    [" : "\n    [";
    for (std::size_t i = 0; i < csv.rows()[r].size(); ++i) {
      if (i > 0) json += ", ";
      json += "\"" + BenchJsonEscape(csv.rows()[r][i]) + "\"";
    }
    json += "]";
  }
  json += csv.rows().empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream out(path + ".json", std::ios::binary | std::ios::trunc);
  out << json;
}

/// Machine-readable bench emitter for the regression gate.
///
/// Each bench point carries two metric families: `deterministic` values
/// (ledger op counts, wire bytes, message counts — bit-identical across
/// runs at a fixed seed and toolchain) which tools/bench_diff.py compares
/// against the committed baseline at 0% tolerance, and `advisory` values
/// (wall-clock seconds, throughput) which are reported but never gate.
class BenchEmitter {
 public:
  explicit BenchEmitter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Deterministic(const std::string& point, const std::string& metric,
                     uint64_t value) {
    points_[point].deterministic[metric] = value;
  }
  void Advisory(const std::string& point, const std::string& metric,
                double value) {
    points_[point].advisory[metric] = value;
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + BenchJsonEscape(bench_name_) + "\",\n";
    out += "  \"build_info\": " + BuildInfo::Current().ToJson() + ",\n";
    out += "  \"points\": {";
    bool first_point = true;
    for (const auto& [point, metrics] : points_) {
      if (!first_point) out += ",";
      first_point = false;
      out += "\n    \"" + BenchJsonEscape(point) + "\": {";
      out += "\n      \"deterministic\": {";
      bool first = true;
      for (const auto& [metric, value] : metrics.deterministic) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + BenchJsonEscape(metric) +
               "\": " + std::to_string(value);
      }
      out += "},\n      \"advisory\": {";
      first = true;
      for (const auto& [metric, value] : metrics.advisory) {
        if (!first) out += ", ";
        first = false;
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        out += "\"" + BenchJsonEscape(metric) + "\": " + buf;
      }
      out += "}\n    }";
    }
    out += first_point ? "}\n}\n" : "\n  }\n}\n";
    return out;
  }

  /// Writes bench_results/<name>, creating directories.
  void Write(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path("bench_results/" + name).parent_path(), ec);
    std::string path = "bench_results/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << ToJson();
    if (out.good()) {
      std::printf("[bench json written to %s]\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
    }
  }

 private:
  struct PointMetrics {
    std::map<std::string, uint64_t> deterministic;
    std::map<std::string, double> advisory;
  };
  std::string bench_name_;
  std::map<std::string, PointMetrics> points_;
};

/// Records one experiment's ledger deltas into a bench point's
/// deterministic metrics (plus sim-time, which is deterministic too) and
/// its wall clock into the advisory family.
inline void RecordExperiment(BenchEmitter& emitter, const std::string& point,
                             const ExperimentResult& result) {
  for (const auto& [op, value] : result.train_cost.Scalars()) {
    emitter.Deterministic(point, std::string("train_") + op, value);
  }
  for (const auto& [op, value] : result.predict_cost.Scalars()) {
    emitter.Deterministic(point, std::string("predict_") + op, value);
  }
  emitter.Deterministic(point, "train_wire_bytes",
                        result.train_cost.total_wire_bytes());
  emitter.Deterministic(point, "predict_wire_bytes",
                        result.predict_cost.total_wire_bytes());
  emitter.Deterministic(point, "train_bytes", result.train_bytes);
  emitter.Deterministic(point, "predict_bytes", result.predict_bytes);
  emitter.Deterministic(point, "train_messages", result.train_messages);
  emitter.Deterministic(point, "predict_messages", result.predict_messages);
  emitter.Deterministic(point, "failed_predictions",
                        result.failed_predictions);
  emitter.Advisory(point, "micro_f1", result.metrics.micro_f1);
  emitter.Advisory(point, "train_sim_seconds", result.train_sim_seconds);
  emitter.Advisory(point, "predict_sim_seconds",
                   result.predict_sim_seconds);
  emitter.Advisory(point, "wall_seconds", result.wall_seconds);
}

/// Common experiment defaults for the macro benches.
inline ExperimentOptions MacroDefaults(AlgorithmType algorithm,
                                       std::size_t num_peers) {
  ExperimentOptions opt;
  opt.algorithm = algorithm;
  opt.env.num_peers = num_peers;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 300;
  return opt;
}

}  // namespace p2pdt_bench

#endif  // P2PDT_BENCH_BENCH_UTIL_H_
