#ifndef P2PDT_CORE_TAG_LIBRARY_H_
#define P2PDT_CORE_TAG_LIBRARY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/document.h"

namespace p2pdt {

/// The Library component (demo Sec. 3): "where all tagged documents are
/// tracked to allow users to browse or search documents using tags."
///
/// Maintains an inverted index tag → documents, kept in sync by DocTagger
/// whenever assignments change.
class TagLibrary {
 public:
  /// (Re)indexes a document's current tag set.
  void Index(const Document& doc);

  /// Removes a document from the index entirely.
  void Remove(DocId doc);

  /// All documents carrying `tag`, ascending.
  std::vector<DocId> WithTag(const std::string& tag) const;

  /// Documents carrying *all* of `tags` (AND search).
  std::vector<DocId> WithAllTags(const std::vector<std::string>& tags) const;

  /// Documents carrying *any* of `tags` (OR search / filtering).
  std::vector<DocId> WithAnyTag(const std::vector<std::string>& tags) const;

  /// Every known tag with its document count, alphabetical — the data
  /// behind the Tag Cloud's alphabetical layout (Fig. 3).
  std::vector<std::pair<std::string, std::size_t>> TagCounts() const;

  /// Co-occurrence count of two tags (documents carrying both) — the edge
  /// weights of the Tag Cloud graph (Fig. 4).
  std::size_t CoOccurrence(const std::string& a, const std::string& b) const;

  /// Every indexed (i.e. tagged) document, ascending.
  std::vector<DocId> AllDocuments() const;

  std::size_t num_tags() const { return tag_to_docs_.size(); }
  std::size_t num_documents() const { return doc_to_tags_.size(); }

 private:
  std::map<std::string, std::set<DocId>> tag_to_docs_;
  std::map<DocId, std::set<std::string>> doc_to_tags_;
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_TAG_LIBRARY_H_
