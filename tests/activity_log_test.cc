#include "p2pdmt/activity_log.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(ActivityLogTest, RecordsInOrder) {
  ActivityLog log;
  log.Record(1.0, "peer/0", "churn", "offline");
  log.Record(2.5, "peer/1", "train", "uploaded model");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.entries()[0].time, 1.0);
  EXPECT_EQ(log.entries()[1].category, "train");
}

TEST(ActivityLogTest, FilterAndCount) {
  ActivityLog log;
  log.Record(1, "a", "churn", "x");
  log.Record(2, "b", "train", "y");
  log.Record(3, "c", "churn", "z");
  EXPECT_EQ(log.CountCategory("churn"), 2u);
  EXPECT_EQ(log.CountCategory("train"), 1u);
  EXPECT_EQ(log.CountCategory("missing"), 0u);
  std::vector<ActivityLog::Entry> churn = log.FilterByCategory("churn");
  ASSERT_EQ(churn.size(), 2u);
  EXPECT_EQ(churn[1].actor, "c");
}

TEST(ActivityLogTest, CsvRoundTrip) {
  ActivityLog log;
  log.Record(0.5, "peer/3", "predict", "tags: a,b");
  std::string path = ::testing::TempDir() + "/p2pdt_activity.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("time,actor,category,detail"), std::string::npos);
  EXPECT_NE(content.find("\"tags: a,b\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ActivityLogTest, ClearEmpties) {
  ActivityLog log;
  log.Record(1, "a", "b", "c");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace p2pdt
