#include "p2psim/stats.h"

#include <cstdio>

#include "common/string_util.h"

namespace p2pdt {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kOverlayMaintenance:
      return "overlay_maintenance";
    case MessageType::kLookup:
      return "lookup";
    case MessageType::kModelUpload:
      return "model_upload";
    case MessageType::kModelBroadcast:
      return "model_broadcast";
    case MessageType::kPredictionRequest:
      return "prediction_request";
    case MessageType::kPredictionResponse:
      return "prediction_response";
    case MessageType::kDataTransfer:
      return "data_transfer";
    case MessageType::kGossip:
      return "gossip";
    case MessageType::kCount:
      return "count";
  }
  return "unknown";
}

void NetworkStats::RecordSend(MessageType type, std::size_t bytes) {
  std::size_t i = static_cast<std::size_t>(type);
  ++sent_[i];
  bytes_[i] += bytes;
  ++total_sent_;
  total_bytes_ += bytes;
}

void NetworkStats::RecordDelivery(MessageType type) {
  ++delivered_[static_cast<std::size_t>(type)];
  ++total_delivered_;
}

void NetworkStats::RecordDrop(MessageType type) {
  ++dropped_[static_cast<std::size_t>(type)];
  ++total_dropped_;
}

void NetworkStats::Reset() {
  sent_.fill(0);
  bytes_.fill(0);
  delivered_.fill(0);
  dropped_.fill(0);
  total_sent_ = total_delivered_ = total_dropped_ = total_bytes_ = 0;
}

std::string NetworkStats::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total: %llu msgs, %s, %llu delivered, %llu dropped\n",
                static_cast<unsigned long long>(total_sent_),
                HumanBytes(static_cast<double>(total_bytes_)).c_str(),
                static_cast<unsigned long long>(total_delivered_),
                static_cast<unsigned long long>(total_dropped_));
  out += buf;
  for (std::size_t i = 0; i < kNumTypes; ++i) {
    if (sent_[i] == 0 && dropped_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-20s %10llu msgs %12s\n",
                  MessageTypeToString(static_cast<MessageType>(i)),
                  static_cast<unsigned long long>(sent_[i]),
                  HumanBytes(static_cast<double>(bytes_[i])).c_str());
    out += buf;
  }
  return out;
}

}  // namespace p2pdt
