#include "corpus/vectorize.h"

namespace p2pdt {

Result<VectorizedCorpus> VectorizeCorpus(const GeneratedCorpus& corpus,
                                         Preprocessor& preprocessor) {
  VectorizedCorpus out;
  out.tag_names = corpus.tag_names;
  out.num_users = corpus.num_users();
  for (std::size_t t = 0; t < corpus.tag_names.size(); ++t) {
    out.tag_ids.emplace(corpus.tag_names[t], static_cast<TagId>(t));
  }
  out.dataset.set_num_tags(static_cast<TagId>(corpus.tag_names.size()));

  for (const RawDocument& doc : corpus.documents) {
    MultiLabelExample ex;
    ex.x = preprocessor.Process(doc.text);
    for (const std::string& tag : doc.tags) {
      auto it = out.tag_ids.find(tag);
      if (it == out.tag_ids.end()) {
        return Status::Internal("document references unknown tag: " + tag);
      }
      ex.tags.push_back(it->second);
    }
    out.doc_user.push_back(doc.user);
    out.dataset.Add(std::move(ex));
  }
  return out;
}

Result<VectorizedCorpus> MakeVectorizedCorpus(const CorpusOptions& options) {
  Result<GeneratedCorpus> corpus = GenerateCorpus(options);
  if (!corpus.ok()) return corpus.status();
  Preprocessor preprocessor;
  return VectorizeCorpus(corpus.value(), preprocessor);
}

}  // namespace p2pdt
