#include "p2psim/fault.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

struct Fixture {
  Simulator sim;
  PhysicalNetwork net;
  FaultInjector fault;

  explicit Fixture(std::size_t nodes, PhysicalNetworkOptions popt = {})
      : net(sim, popt), fault(sim, net) {
    net.AddNodes(nodes);
  }

  /// Sends one message at absolute time `when`; flips `*delivered` on
  /// arrival.
  void SendAt(double when, NodeId from, NodeId to, MessageType type,
              std::shared_ptr<bool> delivered) {
    sim.ScheduleAt(when, [this, from, to, type, delivered] {
      net.Send(from, to, 100, type, [delivered] { *delivered = true; });
    });
  }
};

TEST(FaultInjectionTest, BurstLossDropsOnlyInsideWindow) {
  Fixture f(4);
  f.fault.AddBurstLoss(1.0, 2.0, 1.0);
  f.fault.Arm();

  auto before = std::make_shared<bool>(false);
  auto inside = std::make_shared<bool>(false);
  auto after = std::make_shared<bool>(false);
  f.SendAt(0.5, 0, 1, MessageType::kModelUpload, before);
  f.SendAt(1.5, 0, 1, MessageType::kModelUpload, inside);
  f.SendAt(2.5, 0, 1, MessageType::kModelUpload, after);
  f.sim.RunUntil(10.0);

  EXPECT_TRUE(*before);
  EXPECT_FALSE(*inside);
  EXPECT_TRUE(*after);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kInjectedFault), 1u);
  EXPECT_EQ(f.fault.injected_drops(), 1u);
}

TEST(FaultInjectionTest, TypeDropTargetsOneMessageType) {
  Fixture f(4);
  f.fault.AddMessageTypeDrop(0.0, 10.0, MessageType::kModelUpload, 1.0);
  f.fault.Arm();

  auto upload = std::make_shared<bool>(false);
  auto lookup = std::make_shared<bool>(false);
  f.SendAt(1.0, 0, 1, MessageType::kModelUpload, upload);
  f.SendAt(1.0, 0, 1, MessageType::kLookup, lookup);
  f.sim.RunUntil(10.0);

  EXPECT_FALSE(*upload);
  EXPECT_TRUE(*lookup);
}

TEST(FaultInjectionTest, PartitionBlocksCrossGroupBothDirections) {
  Fixture f(4);
  f.fault.AddPartition(0.0, 5.0, {0, 1}, {2, 3});
  f.fault.Arm();

  auto cross_ab = std::make_shared<bool>(false);
  auto cross_ba = std::make_shared<bool>(false);
  auto within_a = std::make_shared<bool>(false);
  auto within_b = std::make_shared<bool>(false);
  auto healed = std::make_shared<bool>(false);
  f.SendAt(1.0, 0, 2, MessageType::kGossip, cross_ab);
  f.SendAt(1.0, 3, 1, MessageType::kGossip, cross_ba);
  f.SendAt(1.0, 0, 1, MessageType::kGossip, within_a);
  f.SendAt(1.0, 2, 3, MessageType::kGossip, within_b);
  f.SendAt(6.0, 0, 2, MessageType::kGossip, healed);
  f.sim.RunUntil(10.0);

  EXPECT_FALSE(*cross_ab);
  EXPECT_FALSE(*cross_ba);
  EXPECT_TRUE(*within_a);
  EXPECT_TRUE(*within_b);
  EXPECT_TRUE(*healed);
  EXPECT_EQ(f.fault.injected_drops(), 2u);
}

TEST(FaultInjectionTest, LatencySpikeDelaysButDelivers) {
  Fixture f(4);
  f.fault.AddLatencySpike(0.0, 5.0, 2.0);
  f.fault.Arm();

  double delivered_at = -1.0;
  f.sim.ScheduleAt(1.0, [&] {
    f.net.Send(0, 1, 100, MessageType::kGossip,
               [&] { delivered_at = f.sim.Now(); });
  });
  f.sim.RunUntil(10.0);
  // Base one-way latency is far below 1 s; the spike dominates.
  EXPECT_GE(delivered_at, 3.0);
  EXPECT_LT(delivered_at, 4.0);
  EXPECT_EQ(f.net.stats().messages_dropped(), 0u);
}

TEST(FaultInjectionTest, ScriptedCrashAndRecoverNotifyListeners) {
  Fixture f(4);
  f.fault.AddCrash(1.0, 2);
  f.fault.AddRecover(2.0, 2);
  std::vector<std::pair<NodeId, bool>> transitions;
  f.fault.AddTransitionListener([&](NodeId node, bool online) {
    transitions.emplace_back(node, online);
  });
  f.fault.Arm();
  EXPECT_EQ(f.fault.num_scheduled_transitions(), 2u);

  bool down_mid_window = false;
  f.sim.ScheduleAt(1.5, [&] { down_mid_window = !f.net.IsOnline(2); });
  f.sim.RunUntil(3.0);

  EXPECT_TRUE(down_mid_window);
  EXPECT_TRUE(f.net.IsOnline(2));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<NodeId, bool>{2, false}));
  EXPECT_EQ(transitions[1], (std::pair<NodeId, bool>{2, true}));
}

TEST(FaultInjectionTest, AddPlanComposesAllRuleKinds) {
  FaultPlanSpec spec;
  spec.burst_loss.push_back({0.0, 1.0, 0.5});
  spec.type_drops.push_back({0.0, 1.0, MessageType::kAck, 1.0});
  spec.partitions.push_back({0.0, 1.0, {0}, {1}});
  spec.latency_spikes.push_back({0.0, 1.0, 0.1});
  spec.crashes.push_back({0.5, 3});
  spec.recoveries.push_back({0.8, 3});
  EXPECT_FALSE(spec.empty());

  Fixture f(4);
  f.fault.AddPlan(spec);
  EXPECT_EQ(f.fault.num_message_rules(), 4u);
  EXPECT_EQ(f.fault.num_scheduled_transitions(), 2u);
}

TEST(FaultInjectionTest, ArmedInactivePlanDoesNotPerturbBaselineLoss) {
  // The underlay always draws its baseline Bernoulli sample, so a fault
  // plan whose windows never match leaves the random-loss stream — and
  // therefore the delivered/dropped pattern — bit-identical.
  PhysicalNetworkOptions popt;
  popt.loss_rate = 0.3;

  auto run = [&](bool with_plan) {
    Fixture f(4, popt);
    if (with_plan) {
      f.fault.AddBurstLoss(1000.0, 1001.0, 1.0);  // never reached
      f.fault.Arm();
    }
    std::vector<bool> outcome;
    for (int i = 0; i < 50; ++i) {
      auto ok = std::make_shared<bool>(false);
      f.SendAt(0.1 * i, 0, 1, MessageType::kGossip, ok);
      f.sim.ScheduleAt(0.1 * i + 5.0, [&outcome, ok] {
        outcome.push_back(*ok);
      });
    }
    f.sim.RunUntil(100.0);
    return outcome;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjectionTest, ProbabilisticRulesAreDeterministicAcrossRuns) {
  PhysicalNetworkOptions popt;
  auto run = [&] {
    Fixture f(4, popt);
    f.fault.AddBurstLoss(0.0, 100.0, 0.5);
    f.fault.Arm();
    std::vector<bool> outcome;
    for (int i = 0; i < 50; ++i) {
      auto ok = std::make_shared<bool>(false);
      f.SendAt(0.1 * i, 0, 1, MessageType::kGossip, ok);
      f.sim.ScheduleAt(0.1 * i + 5.0, [&outcome, ok] {
        outcome.push_back(*ok);
      });
    }
    f.sim.RunUntil(100.0);
    return outcome;
  };
  std::vector<bool> a = run();
  EXPECT_EQ(a, run());
  // A 50% burst over 50 messages drops some but not all.
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

}  // namespace
}  // namespace p2pdt
