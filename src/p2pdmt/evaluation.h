#ifndef P2PDT_P2PDMT_EVALUATION_H_
#define P2PDT_P2PDMT_EVALUATION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Deterministic k-of-n sample without replacement, sorted ascending.
///
/// The draw uses a local Rng seeded from `seed` alone, so the same
/// (n, k, seed) triple yields the same sample on every run, at every thread
/// and shard count, regardless of what any other RNG in the process has
/// consumed. This is what lets sampled evaluation at 100k peers (a
/// requester pool instead of the full network) stay a pure function of the
/// experiment seed. k >= n returns the full range [0, n).
std::vector<std::size_t> DeterministicSample(std::size_t n, std::size_t k,
                                             uint64_t seed);

/// Periodic evaluation scheduling — P2PDMT's "frequency and timings of
/// evaluations" knob (paper Sec. 2). Registers measurement callbacks that
/// fire at configured simulated times (or on a fixed period) and collects
/// the resulting rows into a time series exportable as CSV.
///
/// The callback returns one row of named values; rows are stamped with the
/// simulated time they were taken at. Typical use: measure accuracy and
/// online-peer count every N simulated seconds while churn runs (see
/// examples/simulation_campaign for the manual version of this loop).
class EvaluationSchedule {
 public:
  /// `metric_names` labels the values the callback returns (sans the
  /// leading "time" column, which is added automatically).
  EvaluationSchedule(Simulator& sim, std::vector<std::string> metric_names);

  /// The measurement hook; invoked at each firing. Must return exactly
  /// metric_names.size() values (rows of other widths are recorded as
  /// all-NaN and counted in dropped_rows()).
  using Probe = std::function<std::vector<double>()>;

  /// Schedules firings at each absolute simulated time in `times`.
  void ScheduleAt(std::vector<SimTime> times, Probe probe);

  /// Schedules `count` firings every `period` seconds, starting at
  /// Now() + period.
  void SchedulePeriodic(double period, std::size_t count, Probe probe);

  /// Rows collected so far; row[0] is the simulated timestamp.
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  std::size_t dropped_rows() const { return dropped_; }

  /// Renders the time series as CSV (header: time, metric names...).
  CsvWriter ToCsv() const;
  Status WriteCsv(const std::string& path) const;

 private:
  void Fire(const Probe& probe);

  Simulator& sim_;
  std::vector<std::string> metric_names_;
  std::vector<std::vector<double>> rows_;
  std::size_t dropped_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_EVALUATION_H_
