#ifndef P2PDT_TEXT_PREPROCESSOR_H_
#define P2PDT_TEXT_PREPROCESSOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/sparse_vector.h"
#include "text/lexicon.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vectorizer.h"

namespace p2pdt {

/// The complete Document Preprocessing stage of Fig. 1, as one component:
///
///   raw text → tokenize → stop-word & sensitive-word filter
///            → Porter stem → sparse TF vector over a shared lexicon.
///
/// One `Preprocessor` is owned per peer; with a hashed lexicon all peers
/// produce id-compatible vectors without exchanging vocabulary state.
struct PreprocessorOptions {
  TokenizerOptions tokenizer;
  VectorizerOptions vectorizer;
  /// When > 0 the lexicon uses the hashing trick with this many
  /// dimensions; when 0 ids grow densely in first-seen order.
  uint32_t hashed_dimensions = 1 << 18;
  /// User-specified sensitive words removed before anything leaves the
  /// machine (paper Sec. 2).
  std::vector<std::string> sensitive_words;
};

class Preprocessor {
 public:
  using Options = PreprocessorOptions;

  explicit Preprocessor(Options options = Options());

  /// Runs the token pipeline only (no vectorization): tokenize, filter,
  /// stem. Useful for inspection and for IDF fitting.
  std::vector<std::string> Analyze(std::string_view text) const;

  /// Full pipeline: raw text to sparse vector, growing the lexicon.
  SparseVector Process(std::string_view text);

  /// Full pipeline against the frozen lexicon (test-time path).
  SparseVector ProcessConst(std::string_view text) const;

  Lexicon& lexicon() { return lexicon_; }
  const Lexicon& lexicon() const { return lexicon_; }
  StopWordFilter& stop_words() { return stop_words_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }

 private:
  Options options_;
  Tokenizer tokenizer_;
  StopWordFilter stop_words_;
  PorterStemmer stemmer_;
  Vectorizer vectorizer_;
  Lexicon lexicon_;
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_PREPROCESSOR_H_
