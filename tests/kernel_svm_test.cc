#include "ml/kernel_svm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace p2pdt {
namespace {

Example Make(std::vector<SparseVector::Entry> f, double y) {
  return {SparseVector::FromPairs(std::move(f)), y};
}

TEST(KernelTest, LinearKernelIsDot) {
  Kernel k = Kernel::Linear();
  SparseVector a = SparseVector::FromPairs({{0, 2.0}});
  SparseVector b = SparseVector::FromPairs({{0, 3.0}});
  EXPECT_DOUBLE_EQ(k(a, b), 6.0);
}

TEST(KernelTest, RbfKernelBounds) {
  Kernel k = Kernel::Rbf(1.0);
  SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  SparseVector b = SparseVector::FromPairs({{1, 1.0}});
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);  // K(x,x) = 1
  EXPECT_NEAR(k(a, b), std::exp(-2.0), 1e-12);
}

TEST(KernelTest, PolynomialKernel) {
  Kernel k = Kernel::Polynomial(1.0, 1.0, 2);
  SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  EXPECT_DOUBLE_EQ(k(a, a), 4.0);  // (1*1 + 1)^2
}

TEST(KernelTest, ToStringNamesFamily) {
  EXPECT_EQ(Kernel::Linear().ToString(), "linear");
  EXPECT_NE(Kernel::Rbf(0.5).ToString().find("rbf"), std::string::npos);
  EXPECT_NE(Kernel::Polynomial(1, 0, 3).ToString().find("poly"),
            std::string::npos);
}

TEST(KernelSvmTest, RejectsEmptyData) {
  EXPECT_FALSE(TrainKernelSvm({}).ok());
}

TEST(KernelSvmTest, SeparableLinear) {
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Decision(data[0].x), 0.0);
  EXPECT_LT(model->Decision(data[1].x), 0.0);
  EXPECT_GE(model->num_support_vectors(), 2u);
}

TEST(KernelSvmTest, XorNeedsNonLinearKernel) {
  // XOR in 2D: not linearly separable; RBF must solve it.
  std::vector<Example> data = {
      Make({{0, 1.0}, {1, 1.0}}, -1), Make({}, -1),
      Make({{0, 1.0}}, 1), Make({{1, 1.0}}, 1)};
  KernelSvmOptions rbf;
  rbf.kernel = Kernel::Rbf(2.0);
  rbf.c = 100.0;
  Result<KernelSvmModel> model = TrainKernelSvm(data, rbf);
  ASSERT_TRUE(model.ok());
  for (const Example& ex : data) {
    EXPECT_EQ(model->Predict(ex.x), ex.y) << ex.x.ToString();
  }
}

TEST(KernelSvmTest, SingleClassDegeneratesToConstant) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, 1)};
  Result<KernelSvmModel> model = TrainKernelSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_support_vectors(), 0u);
  EXPECT_GT(model->Decision(SparseVector()), 0.0);

  for (Example& ex : data) ex.y = -1;
  model = TrainKernelSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Decision(SparseVector()), 0.0);
}

TEST(KernelSvmTest, DualCoefficientsRespectBox) {
  Rng rng(3);
  std::vector<Example> data;
  for (int i = 0; i < 30; ++i) {
    data.push_back(Make({{static_cast<uint32_t>(rng.NextU64(4)), 1.0},
                         {4 + static_cast<uint32_t>(i % 2), 1.0}},
                        i % 2 ? 1.0 : -1.0));
  }
  KernelSvmOptions opt;
  opt.c = 2.5;
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok());
  double balance = 0.0;
  for (const SupportVector& sv : model->support_vectors()) {
    EXPECT_GT(sv.alpha, 0.0);
    EXPECT_LE(sv.alpha, 2.5 + 1e-9);
    balance += sv.alpha * sv.y;
  }
  // Equality constraint yᵀα = 0 must hold at the solution.
  EXPECT_NEAR(balance, 0.0, 1e-6);
}

TEST(KernelSvmTest, MarginsOnSeparableData) {
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  opt.c = 100.0;
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{0, -1.0}}, -1)};
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Decision(data[0].x), 1.0, 0.05);
  EXPECT_NEAR(model->Decision(data[1].x), -1.0, 0.05);
}

TEST(KernelSvmTest, AgreesWithLinearSvmOnSeparableClusters) {
  Rng rng(8);
  std::vector<Example> data;
  for (int i = 0; i < 60; ++i) {
    uint32_t base = (i % 2 == 0) ? 0 : 4;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 4; ++j) {
      f.emplace_back(base + j, rng.Uniform(0.5, 1.5));
    }
    data.push_back(Make(std::move(f), i % 2 == 0 ? 1.0 : -1.0));
  }
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok());
  int correct = 0;
  for (const Example& ex : data) {
    if (model->Predict(ex.x) == ex.y) ++correct;
  }
  EXPECT_EQ(correct, 60);
}

// Property sweep over kernels: each must classify its separable problem
// and keep dual variables inside the box.
class KernelSweep : public ::testing::TestWithParam<Kernel> {};

TEST_P(KernelSweep, SeparableProblemSolvedWithinBox) {
  Rng rng(55);
  std::vector<Example> data;
  for (int i = 0; i < 40; ++i) {
    uint32_t base = (i % 2 == 0) ? 0 : 5;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 4; ++j) {
      f.emplace_back(base + j, rng.Uniform(0.4, 1.2));
    }
    SparseVector x = SparseVector::FromPairs(std::move(f));
    x.L2Normalize();
    data.push_back({std::move(x), (i % 2 == 0) ? 1.0 : -1.0});
  }
  KernelSvmOptions opt;
  opt.kernel = GetParam();
  opt.c = 10.0;
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok()) << opt.kernel.ToString();
  std::size_t correct = 0;
  double balance = 0.0;
  for (const Example& ex : data) {
    if (model->Predict(ex.x) == ex.y) ++correct;
  }
  for (const SupportVector& sv : model->support_vectors()) {
    EXPECT_GT(sv.alpha, 0.0);
    EXPECT_LE(sv.alpha, opt.c + 1e-9);
    balance += sv.alpha * sv.y;
  }
  EXPECT_NEAR(balance, 0.0, 1e-6) << opt.kernel.ToString();
  EXPECT_GE(correct, 38u) << opt.kernel.ToString();
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelSweep,
                         ::testing::Values(Kernel::Linear(), Kernel::Rbf(0.5),
                                           Kernel::Rbf(2.0),
                                           Kernel::Polynomial(1.0, 1.0, 2),
                                           Kernel::Polynomial(0.5, 0.0,
                                                              3)));

TEST(KernelSvmTest, WireSizeGrowsWithSupportVectors) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<KernelSvmModel> model = TrainKernelSvm(data);
  ASSERT_TRUE(model.ok());
  std::size_t expected = 8 + 16;
  for (const auto& sv : model->support_vectors()) {
    expected += sv.x.WireSize() + 16;
  }
  EXPECT_EQ(model->WireSize(), expected);
}

TEST(KernelSvmTest, CloneIsDeep) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<KernelSvmModel> model = TrainKernelSvm(data);
  ASSERT_TRUE(model.ok());
  std::unique_ptr<BinaryClassifier> clone = model->Clone();
  EXPECT_DOUBLE_EQ(clone->Decision(data[0].x), model->Decision(data[0].x));
}

}  // namespace
}  // namespace p2pdt
