
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/p2pdt_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/p2pdt_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/vectorize.cc" "src/corpus/CMakeFiles/p2pdt_corpus.dir/vectorize.cc.o" "gcc" "src/corpus/CMakeFiles/p2pdt_corpus.dir/vectorize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/p2pdt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2pdt_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
