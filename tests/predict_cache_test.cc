#include "p2pml/predict_cache.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

SparseVector MakeVec(std::initializer_list<std::pair<uint32_t, double>> kv) {
  SparseVector v;
  for (const auto& [i, w] : kv) v.PushBack(i, w);
  return v;
}

P2PPrediction MakePrediction(std::initializer_list<TagId> tags) {
  P2PPrediction p;
  p.tags = tags;
  for (std::size_t i = 0; i < p.tags.size(); ++i) p.scores.push_back(0.5);
  return p;
}

PredictCacheOptions Enabled(std::size_t capacity = 8, double ttl = 100.0) {
  PredictCacheOptions opt;
  opt.enabled = true;
  opt.capacity = capacity;
  opt.ttl_seconds = ttl;
  return opt;
}

TEST(PredictCacheTest, FingerprintDistinguishesContent) {
  const SparseVector a = MakeVec({{1, 0.5}, {7, 1.25}});
  const SparseVector b = MakeVec({{1, 0.5}, {7, 1.25}});
  const SparseVector c = MakeVec({{1, 0.5}, {7, 1.251}});
  const SparseVector d = MakeVec({{2, 0.5}, {7, 1.25}});
  EXPECT_EQ(FingerprintVector(a), FingerprintVector(b));
  EXPECT_NE(FingerprintVector(a), FingerprintVector(c));
  EXPECT_NE(FingerprintVector(a), FingerprintVector(d));
}

TEST(PredictCacheTest, HitAfterInsert) {
  PredictionCache cache(Enabled());
  const uint64_t key = 42;
  cache.Insert(key, /*epoch=*/1, /*now=*/0.0, MakePrediction({2, 5}));

  CacheOutcome outcome;
  const P2PPrediction* hit = cache.Lookup(key, 1, 1.0, &outcome);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  EXPECT_EQ(hit->tags, (std::vector<TagId>{2, 5}));
  EXPECT_EQ(cache.hits(), 1u);

  EXPECT_EQ(cache.Lookup(99, 1, 1.0, &outcome), nullptr);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PredictCacheTest, EpochBumpInvalidates) {
  PredictionCache cache(Enabled());
  cache.Insert(7, /*epoch=*/1, /*now=*/0.0, MakePrediction({1}));

  CacheOutcome outcome;
  EXPECT_EQ(cache.Lookup(7, /*epoch=*/2, 0.5, &outcome), nullptr);
  EXPECT_EQ(outcome, CacheOutcome::kStale);
  EXPECT_EQ(cache.stale(), 1u);
  // Stale entries are erased on contact — the next lookup is a plain miss.
  EXPECT_EQ(cache.Lookup(7, 2, 0.5, &outcome), nullptr);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PredictCacheTest, TtlExpires) {
  PredictionCache cache(Enabled(8, /*ttl=*/10.0));
  cache.Insert(7, 1, /*now=*/0.0, MakePrediction({1}));

  CacheOutcome outcome;
  EXPECT_NE(cache.Lookup(7, 1, 9.9, &outcome), nullptr);
  EXPECT_EQ(cache.Lookup(7, 1, 10.1, &outcome), nullptr);
  EXPECT_EQ(outcome, CacheOutcome::kStale);
}

TEST(PredictCacheTest, ReinsertRefreshes) {
  PredictionCache cache(Enabled(8, 10.0));
  cache.Insert(7, 1, 0.0, MakePrediction({1}));
  cache.Insert(7, 2, 8.0, MakePrediction({3}));

  CacheOutcome outcome;
  const P2PPrediction* hit = cache.Lookup(7, 2, 15.0, &outcome);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->tags, (std::vector<TagId>{3}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredictCacheTest, LruEvictsOldest) {
  PredictionCache cache(Enabled(/*capacity=*/3));
  cache.Insert(1, 1, 0.0, MakePrediction({1}));
  cache.Insert(2, 1, 0.0, MakePrediction({2}));
  cache.Insert(3, 1, 0.0, MakePrediction({3}));
  // Touch key 1 so key 2 becomes the LRU victim.
  CacheOutcome outcome;
  EXPECT_NE(cache.Lookup(1, 1, 0.1, &outcome), nullptr);
  cache.Insert(4, 1, 0.2, MakePrediction({4}));

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(2, 1, 0.3, &outcome), nullptr);
  EXPECT_NE(cache.Lookup(1, 1, 0.3, &outcome), nullptr);
  EXPECT_NE(cache.Lookup(3, 1, 0.3, &outcome), nullptr);
  EXPECT_NE(cache.Lookup(4, 1, 0.3, &outcome), nullptr);
}

TEST(PredictCacheTest, SetAggregatesPerNodeCounters) {
  PredictCacheSet set(Enabled());
  set.ForNode(0).Insert(1, 1, 0.0, MakePrediction({1}));
  set.ForNode(5).Insert(1, 1, 0.0, MakePrediction({2}));

  CacheOutcome outcome;
  EXPECT_NE(set.ForNode(0).Lookup(1, 1, 0.1, &outcome), nullptr);
  EXPECT_NE(set.ForNode(5).Lookup(1, 1, 0.1, &outcome), nullptr);
  EXPECT_EQ(set.ForNode(9).Lookup(1, 1, 0.1, &outcome), nullptr);
  // Caches are per-requester: node 5's entry for key 1 is its own.
  EXPECT_EQ(set.hits(), 2u);
  EXPECT_EQ(set.misses(), 1u);
  EXPECT_EQ(set.stale(), 0u);
}

}  // namespace
}  // namespace p2pdt
