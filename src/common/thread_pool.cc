#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/logging.h"

namespace p2pdt {

namespace {

thread_local bool t_in_pool_worker = false;

std::size_t ResolveConcurrencyFromEnvironment() {
  if (const char* env = std::getenv("P2PDT_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return std::min<std::size_t>(v, 256);
    }
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

// Guards the global pool singleton and its configured concurrency.
std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;
std::size_t g_global_concurrency = 0;  // 0 = not yet resolved

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers, std::size_t max_queued)
    : max_queued_(std::max<std::size_t>(max_queued, 1)) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    try {
      task();
    } catch (const std::exception& e) {
      P2PDT_LOG(Error) << "thread pool task threw: " << e.what();
    } catch (...) {
      P2PDT_LOG(Error) << "thread pool task threw a non-std exception";
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    try {
      task();
    } catch (const std::exception& e) {
      P2PDT_LOG(Error) << "thread pool task threw: " << e.what();
    } catch (...) {
      P2PDT_LOG(Error) << "thread pool task threw a non-std exception";
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return stop_ || queue_.size() < max_queued_; });
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_threads) {
  if (end <= begin) return;
  if (chunk == 0) chunk = 1;
  const std::size_t total = end - begin;
  const std::size_t num_chunks = (total + chunk - 1) / chunk;

  // Serial path: no workers, a single chunk, or a nested call from inside a
  // worker (inline to avoid queue deadlock and oversubscription).
  std::size_t helpers = workers_.size();
  if (max_threads > 0) helpers = std::min(helpers, max_threads - 1);
  helpers = std::min(helpers, num_chunks - 1);
  if (helpers == 0 || InWorker()) {
    body(begin, end);
    return;
  }

  // The shared state lives on the caller's stack; helper tasks hold only a
  // raw pointer. The completion handshake (active-count under done_mu)
  // guarantees every helper's last touch of the state happens-before the
  // caller wakes, so the caller alone owns, reads and destroys the
  // recorded exceptions — no cross-thread exception_ptr lifetime.
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::size_t begin, end, chunk, num_chunks;
    const std::function<void(std::size_t, std::size_t)>* body;
    // Exceptions recorded per chunk so the rethrown one is the
    // lowest-indexed — independent of scheduling order.
    std::vector<std::exception_ptr> errors;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t active = 0;
  };
  SharedState state;
  state.begin = begin;
  state.end = end;
  state.chunk = chunk;
  state.num_chunks = num_chunks;
  state.body = &body;
  state.errors.assign(num_chunks, nullptr);
  state.active = helpers;

  auto drain = [](SharedState& s) {
    for (;;) {
      std::size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.num_chunks) return;
      std::size_t lo = s.begin + c * s.chunk;
      std::size_t hi = std::min(s.end, lo + s.chunk);
      try {
        (*s.body)(lo, hi);
      } catch (...) {
        s.errors[c] = std::current_exception();
      }
    }
  };

  SharedState* shared = &state;
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([shared, drain] {
      drain(*shared);
      std::lock_guard<std::mutex> lock(shared->done_mu);
      if (--shared->active == 0) shared->done_cv.notify_all();
    });
  }
  drain(state);  // the caller is a full participant
  {
    std::unique_lock<std::mutex> lock(state.done_mu);
    state.done_cv.wait(lock, [&] { return state.active == 0; });
  }
  for (std::exception_ptr& e : state.errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    if (g_global_concurrency == 0) {
      g_global_concurrency = ResolveConcurrencyFromEnvironment();
    }
    g_global_pool = std::make_unique<ThreadPool>(g_global_concurrency - 1);
  }
  return *g_global_pool;
}

std::size_t ThreadPool::GlobalConcurrency() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_concurrency == 0) {
    g_global_concurrency = ResolveConcurrencyFromEnvironment();
  }
  return g_global_concurrency;
}

void ThreadPool::SetGlobalConcurrency(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_concurrency =
      threads > 0 ? threads : ResolveConcurrencyFromEnvironment();
  g_global_pool = std::make_unique<ThreadPool>(g_global_concurrency - 1);
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                 std::size_t threads,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (threads == 1) {  // explicit serial: bypass the pool entirely
    body(begin, end);
    return;
  }
  ThreadPool::Global().ParallelFor(begin, end, chunk, body, threads);
}

}  // namespace p2pdt
