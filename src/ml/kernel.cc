#include "ml/kernel.h"

#include <cstdio>

namespace p2pdt {

std::string Kernel::ToString() const {
  char buf[96];
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      std::snprintf(buf, sizeof(buf), "rbf(gamma=%g)", gamma);
      return buf;
    case KernelType::kPolynomial:
      std::snprintf(buf, sizeof(buf), "poly(gamma=%g, coef0=%g, degree=%d)",
                    gamma, coef0, degree);
      return buf;
  }
  return "unknown";
}

}  // namespace p2pdt
