#ifndef P2PDT_CORPUS_GENERATOR_H_
#define P2PDT_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace p2pdt {

/// Parameters of the synthetic Delicious-like corpus.
///
/// The paper demonstrates on a crawl of delicious.com bookmarks (Wetzker et
/// al. 2008): ~950k users, of whom those with 50–200 annotated bookmarks
/// were kept. That dataset is not redistributable, so this generator
/// produces a corpus with the same statistical shape (see DESIGN.md §2):
///
///  * power-law tag popularity (a few huge tags, a long tail),
///  * multi-label documents (tags drawn per document, 1..max),
///  * per-user topical interest profiles (users are *not* IID — exactly
///    what makes P2P learning hard),
///  * documents whose words are topic-dependent, with background noise,
///    inflectional endings (for the stemmer) and stop words (for the
///    filter),
///  * tag names disjoint from the document vocabulary, reflecting the
///    paper's emphasis that "tags may not necessarily be contained within
///    the documents".
struct CorpusOptions {
  std::size_t num_users = 64;
  /// Paper: users with at least 50 and fewer than 200 bookmarks were kept.
  std::size_t min_docs_per_user = 50;
  std::size_t max_docs_per_user = 200;

  std::size_t num_tags = 20;
  std::size_t vocabulary_size = 4000;
  /// Distinct topical words per tag.
  std::size_t topic_words_per_tag = 60;

  /// Document length in (pre-filter) content words.
  std::size_t min_doc_words = 40;
  std::size_t max_doc_words = 160;

  /// Tags per document: 1 + Binomial-ish up to this cap.
  std::size_t max_tags_per_doc = 4;
  /// Probability of each additional tag beyond the first.
  double extra_tag_probability = 0.45;

  /// Zipf exponent of global tag popularity.
  double tag_popularity_zipf = 0.9;
  /// Zipf exponent of word frequency inside a topic.
  double topic_word_zipf = 1.05;
  /// Fraction of words drawn from the background (all-vocabulary)
  /// distribution instead of the document's topics.
  double background_word_fraction = 0.25;
  /// Zipf exponent of the background word distribution.
  double background_word_zipf = 1.1;

  /// Dirichlet concentration of per-user interest over tags; smaller is
  /// more skewed (each user cares about fewer topics).
  double user_interest_alpha = 0.25;

  /// Probability of appending an inflectional ending (-s/-ing/-ed/...) to
  /// a content word at render time; the Porter stemmer removes these.
  double inflection_probability = 0.20;
  /// Probability of inserting a stop word between content words.
  double stop_word_probability = 0.20;

  uint64_t seed = 2010;
};

/// A generated document: raw text (as the preprocessing pipeline would read
/// it from disk), its ground-truth tags (by name), and the owning user.
struct RawDocument {
  std::string title;
  std::string text;
  std::vector<std::string> tags;
  std::size_t user = 0;
};

/// A full synthetic corpus plus its generation metadata.
struct GeneratedCorpus {
  std::vector<RawDocument> documents;
  /// Tag-name universe, index = dense tag id used downstream.
  std::vector<std::string> tag_names;
  /// Document indexes per user.
  std::vector<std::vector<std::size_t>> user_documents;
  /// Ground-truth topical words per tag (diagnostics / tests).
  std::vector<std::vector<std::string>> topic_words;

  std::size_t num_users() const { return user_documents.size(); }
};

/// Generates a corpus; deterministic in `options.seed`.
Result<GeneratedCorpus> GenerateCorpus(const CorpusOptions& options);

// ---------------------------------------------------------------------------
// Streaming corpus with scripted drift
// ---------------------------------------------------------------------------
//
// Real tagging systems are not stationary: vocabularies grow, tag
// popularity drifts and user attention is bursty (Golder & Huberman;
// Santos-Neto et al.). The stream generator emits the same Delicious-like
// corpus as GenerateCorpus, but as a timed sequence of per-epoch document
// batches whose generating distribution is perturbed by scripted events.

/// The ways a scripted event can perturb the generating distribution.
enum class DriftKind : uint8_t {
  /// Gradual concept drift: the tag's topical word set rotates toward
  /// fresh vocabulary, `magnitude` fraction replaced over the event's
  /// duration (a little each epoch).
  kTopicRotation = 0,
  /// Sudden concept shift: the affected tag's (or every tag's) topical
  /// word set is resampled wholesale at the event epoch. Models trained
  /// before the event become near-useless for the affected tags.
  kVocabularyShift,
  /// Bursty attention: the tag's global popularity weight is multiplied
  /// by `magnitude` for the event's duration, then reverts.
  kPopularitySpike,
  /// Vocabulary growth: a reserved tag (weight zero until now) becomes
  /// active with `magnitude` × the median active-tag weight.
  kNewTag,
};

const char* DriftKindToString(DriftKind kind);

/// One scripted perturbation of the stream's generating distribution.
/// All randomness an event consumes is drawn from a stream keyed by
/// DeriveSeed(seed, event index, epoch), so adding, removing or reordering
/// events never shifts the document-generation RNG streams of untouched
/// epochs — the property the sharded drift harness's determinism rests on.
struct DriftEvent {
  DriftKind kind = DriftKind::kVocabularyShift;
  /// First epoch whose documents are drawn from the perturbed distribution.
  std::size_t epoch = 0;
  /// Epochs a gradual rotation spreads over / a popularity spike lasts.
  std::size_t duration_epochs = 1;
  /// Rotation fraction, spike multiplier, or new-tag weight multiplier.
  double magnitude = 1.0;
  /// Affected tag id, or kAllTags (vocabulary shift only) for every
  /// currently active tag.
  static constexpr std::size_t kAllTags = static_cast<std::size_t>(-1);
  std::size_t tag = kAllTags;
};

/// Parameters of a drifting document stream.
struct StreamOptions {
  /// Shape of the underlying corpus. min/max_docs_per_user are ignored —
  /// per-epoch volume is controlled below.
  CorpusOptions base;
  std::size_t num_epochs = 8;
  /// Documents each user produces per epoch (uniform in [min, max]).
  std::size_t min_docs_per_user_per_epoch = 4;
  std::size_t max_docs_per_user_per_epoch = 8;
  /// Extra inactive tags in the universe available to kNewTag events.
  /// They have topic words and names from the start (so the feature/tag
  /// spaces are fixed) but zero popularity until an event activates them.
  std::size_t reserve_tags = 0;
  /// Scripted drift events; empty = a stationary stream.
  std::vector<DriftEvent> events;
};

/// A generated document stream plus its generation metadata. Documents are
/// ordered epoch-major (all of epoch 0, then epoch 1, ...).
struct StreamedCorpus {
  std::vector<RawDocument> documents;
  /// Epoch of documents[i] (parallel to documents).
  std::vector<std::size_t> doc_epoch;
  /// Full tag universe including reserved (not-yet-active) tags.
  std::vector<std::string> tag_names;
  std::vector<std::vector<std::size_t>> user_documents;
  /// Initial (pre-drift) topical words per tag (diagnostics / tests).
  std::vector<std::vector<std::string>> topic_words;
  std::size_t num_epochs = 0;
  /// Earliest epoch any event perturbs (num_epochs when events is empty).
  std::size_t first_drift_epoch = 0;

  std::size_t num_users() const { return user_documents.size(); }
};

/// Generates a drifting stream; deterministic in (options.base.seed,
/// options.events). Epoch e's documents are drawn from an RNG stream keyed
/// by DeriveSeed(seed, e), independent of every other epoch's stream.
Result<StreamedCorpus> GenerateStream(const StreamOptions& options);

namespace corpus_internal {
/// Generates `count` distinct pronounceable pseudo-words (syllable
/// concatenations); exposed for tests.
std::vector<std::string> MakeWordList(std::size_t count, Rng& rng,
                                      const std::string& prefix = "");
}  // namespace corpus_internal

}  // namespace p2pdt

#endif  // P2PDT_CORPUS_GENERATOR_H_
