file(REMOVE_RECURSE
  "CMakeFiles/tagcloud_explorer.dir/tagcloud_explorer.cpp.o"
  "CMakeFiles/tagcloud_explorer.dir/tagcloud_explorer.cpp.o.d"
  "tagcloud_explorer"
  "tagcloud_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagcloud_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
