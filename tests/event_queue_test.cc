#include "p2psim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "p2psim/simulator.h"

namespace p2pdt {
namespace {

// Reference model: the stable heap the old engine used — a priority queue
// over (time, seq) popping ascending. The calendar queue's contract is to
// reproduce its pop order bit-for-bit.
using RefEvent = std::pair<double, uint64_t>;
using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<>>;

void SkipCancelled(RefQueue& ref,
                   const std::unordered_set<uint64_t>& cancelled) {
  while (!ref.empty() && cancelled.count(ref.top().second) > 0) ref.pop();
}

/// Drives a CalendarQueue and the reference heap through the same random
/// push/cancel/pop schedule and asserts identical observable behavior at
/// every step. `time_scale` stretches the sampled inter-event gaps so one
/// harness covers dense (all events in one bucket day) through sparse
/// (every event many calendar years apart) regimes.
void FuzzAgainstReference(CalendarQueue::Options options, uint64_t seed,
                          int ops, double time_scale, bool with_cancel) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " scale=" << time_scale
               << " buckets=" << options.initial_buckets
               << " width=" << options.initial_width
               << " auto_resize=" << options.auto_resize
               << " cancel=" << with_cancel);
  CalendarQueue q(options);
  RefQueue ref;
  std::vector<uint64_t> pending;  // ids not yet popped or cancelled
  std::unordered_set<uint64_t> cancelled;
  Rng rng(seed);
  double now = 0.0;
  std::vector<double> tie_pool;  // recent times re-used to force ties

  for (int op = 0; op < ops; ++op) {
    const uint64_t roll = rng.NextU64(100);
    if (roll < 55 || q.empty()) {
      double t;
      if (!tie_pool.empty() && rng.NextU64(4) == 0) {
        t = tie_pool[rng.NextU64(tie_pool.size())];
      } else {
        t = now +
            static_cast<double>(rng.NextU64(1000000)) * 1e-6 * time_scale;
        tie_pool.push_back(t);
        if (tie_pool.size() > 32) tie_pool.erase(tie_pool.begin());
      }
      if (t < now) t = now;
      const uint64_t id = q.Push(t, [] {});
      ref.push({t, id});
      pending.push_back(id);
    } else if (with_cancel && roll < 68 && !pending.empty()) {
      const std::size_t k = rng.NextU64(pending.size());
      const uint64_t id = pending[k];
      pending.erase(pending.begin() + k);
      EXPECT_TRUE(q.Cancel(id));
      cancelled.insert(id);
    } else {
      SkipCancelled(ref, cancelled);
      ASSERT_FALSE(ref.empty());  // q was non-empty, sizes must agree
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.MinTime(), ref.top().first);
      SimEvent ev = q.PopMin();
      EXPECT_EQ(ev.time, ref.top().first);
      EXPECT_EQ(ev.seq, ref.top().second);
      now = std::max(now, ev.time);
      ref.pop();
      pending.erase(std::find(pending.begin(), pending.end(), ev.seq));
    }
    EXPECT_EQ(q.size(), pending.size());
  }

  // Drain: the full remaining pop sequence must match the reference.
  while (true) {
    SkipCancelled(ref, cancelled);
    if (ref.empty()) break;
    ASSERT_FALSE(q.empty());
    SimEvent ev = q.PopMin();
    EXPECT_EQ(ev.time, ref.top().first);
    EXPECT_EQ(ev.seq, ref.top().second);
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarQueueTest, FuzzEquivalenceDefaultOptions) {
  for (uint64_t seed : {1u, 42u, 20100913u}) {
    FuzzAgainstReference(CalendarQueue::Options{}, seed, 4000, 1.0, false);
  }
}

TEST(CalendarQueueTest, FuzzEquivalenceWithCancellations) {
  for (uint64_t seed : {7u, 99u, 123457u}) {
    FuzzAgainstReference(CalendarQueue::Options{}, seed, 4000, 1.0, true);
  }
}

TEST(CalendarQueueTest, FuzzEquivalenceAcrossBucketWidths) {
  // Degenerate calendars — one bucket, two buckets, a width so narrow every
  // event lands years apart in slot terms, a width so wide the whole run
  // fits one day — must all still pop in (time, seq) order.
  for (std::size_t buckets : {std::size_t{1}, std::size_t{2},
                              std::size_t{1024}}) {
    for (double width : {1e-7, 0.05, 1e4}) {
      CalendarQueue::Options opt;
      opt.initial_buckets = buckets;
      opt.initial_width = width;
      opt.auto_resize = false;
      FuzzAgainstReference(opt, 5 + buckets, 1500, 1.0, true);
    }
  }
}

TEST(CalendarQueueTest, FuzzEquivalenceSparseAndDenseTimelines) {
  FuzzAgainstReference(CalendarQueue::Options{}, 11, 2500, 1e6, true);
  FuzzAgainstReference(CalendarQueue::Options{}, 13, 2500, 1e-6, true);
}

TEST(CalendarQueueTest, EqualTimestampsPopFifo) {
  CalendarQueue q;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(q.Push(5.0, [] {}));
  // Interleave: pop half, push more at the same timestamp, drain.
  for (int i = 0; i < 500; ++i) {
    SimEvent ev = q.PopMin();
    EXPECT_EQ(ev.time, 5.0);
    EXPECT_EQ(ev.seq, ids[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 100; ++i) ids.push_back(q.Push(5.0, [] {}));
  for (std::size_t i = 500; i < ids.size(); ++i) {
    SimEvent ev = q.PopMin();
    EXPECT_EQ(ev.seq, ids[i]);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, ZeroDelayPushAtCurrentPopTime) {
  // The self-send pattern: an event at time t pushes follow-ups at exactly
  // t. They must run after every already-pending event at t (FIFO) but
  // before anything later.
  CalendarQueue q;
  q.Push(1.0, [] {});
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  SimEvent first = q.PopMin();
  EXPECT_EQ(first.time, 1.0);
  const uint64_t follow = q.Push(1.0, [] {});  // zero-delay self-send
  SimEvent second = q.PopMin();
  EXPECT_EQ(second.time, 1.0);
  EXPECT_NE(second.seq, follow);  // the older t=1 event goes first
  SimEvent third = q.PopMin();
  EXPECT_EQ(third.time, 1.0);
  EXPECT_EQ(third.seq, follow);
  SimEvent fourth = q.PopMin();
  EXPECT_EQ(fourth.time, 2.0);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, BucketBoundaryTimestamps) {
  CalendarQueue::Options opt;
  opt.initial_buckets = 8;
  opt.initial_width = 0.25;
  opt.auto_resize = false;
  CalendarQueue q(opt);
  // Times exactly on bucket boundaries, scheduled out of order, spanning
  // several calendar years.
  std::vector<double> times;
  for (int k = 40; k >= 0; --k) times.push_back(0.25 * k);
  for (double t : times) q.Push(t, [] {});
  double prev = -1.0;
  while (!q.empty()) {
    SimEvent ev = q.PopMin();
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
  }
  EXPECT_EQ(prev, 10.0);
}

TEST(CalendarQueueTest, CancelHeadAndAll) {
  CalendarQueue q;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(q.Push(1.0 + i, [] {}));
  EXPECT_TRUE(q.Cancel(ids[0]));  // cancel the head
  EXPECT_EQ(q.MinTime(), 2.0);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_TRUE(q.Cancel(ids[i]));
  EXPECT_TRUE(q.empty());
  // The queue stays usable after a full cancel.
  q.Push(7.0, [] {});
  EXPECT_EQ(q.MinTime(), 7.0);
  EXPECT_EQ(q.PopMin().time, 7.0);
}

TEST(CalendarQueueTest, AutoResizeGrowsAndShrinksKeepingOrder) {
  CalendarQueue::Options opt;
  opt.initial_buckets = 4;
  opt.initial_width = 0.01;
  CalendarQueue q(opt);
  Rng rng(321);
  RefQueue ref;
  for (int i = 0; i < 20000; ++i) {
    double t = static_cast<double>(rng.NextU64(1000000)) * 1e-4;
    uint64_t id = q.Push(t, [] {});
    ref.push({t, id});
  }
  EXPECT_GT(q.num_buckets(), 4u);  // grew
  EXPECT_GT(q.num_resizes(), 0u);
  while (!ref.empty()) {
    SimEvent ev = q.PopMin();
    EXPECT_EQ(ev.time, ref.top().first);
    EXPECT_EQ(ev.seq, ref.top().second);
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, MoveOnlyPayloadsInvokeExactlyOnce) {
  // Regression for the old priority_queue engine, whose const_cast copy-out
  // of top() silently required copyable callbacks. The calendar queue's
  // events are UniqueFunction: move-only captures flow through untouched.
  CalendarQueue q;
  auto payload = std::make_unique<int>(41);
  int out = 0;
  q.Push(1.0, [p = std::move(payload), &out] { out = *p + 1; });
  SimEvent ev = q.PopMin();
  ev.fn();
  EXPECT_EQ(out, 42);
}

TEST(CalendarQueueTest, SimulatorCarriesMoveOnlyEventPayloads) {
  // End-to-end through Simulator::Schedule / ScheduleCancelable: the
  // scheduling surface the protocols actually use must accept move-only
  // lambdas (it could not before the engine rearchitecture).
  Simulator sim;
  std::vector<int> got;
  sim.Schedule(1.0, [p = std::make_unique<int>(1), &got] {
    got.push_back(*p);
  });
  auto cancelled_payload = std::make_unique<int>(99);
  Simulator::EventId dead = sim.ScheduleCancelable(
      2.0, [p = std::move(cancelled_payload), &got] { got.push_back(*p); });
  sim.ScheduleCancelable(3.0, [p = std::make_unique<int>(3), &got] {
    got.push_back(*p);
  });
  sim.Cancel(dead);
  sim.RunAll();
  EXPECT_EQ(got, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(CalendarQueueTest, TotalPushedCountsAllIds) {
  CalendarQueue q;
  EXPECT_EQ(q.total_pushed(), 0u);
  uint64_t a = q.Push(1.0, [] {});
  uint64_t b = q.Push(1.0, [] {});
  EXPECT_EQ(a + 1, b);
  EXPECT_EQ(q.total_pushed(), 2u);
  q.PopMin();
  q.Cancel(b);
  EXPECT_EQ(q.total_pushed(), 2u);  // ids are never reused
}

}  // namespace
}  // namespace p2pdt
