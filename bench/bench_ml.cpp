// CLAIM4 — base-learner costs: linear SVM (PACE's learner) vs kernel SVM
// (CEMPaR's learner) training and prediction, cascade merging, k-means,
// and LSH retrieval vs. exhaustive scan.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "common/cost_ledger.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "ml/kernel_svm.h"
#include "ml/kmeans.h"
#include "ml/linear_svm.h"
#include "ml/lsh.h"
#include "ml/serialization.h"

namespace {

using namespace p2pdt;

std::vector<Example> MakeProblem(std::size_t n, std::size_t dim,
                                 std::size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool pos = i % 2 == 0;
    std::vector<SparseVector::Entry> f;
    // Class-dependent region of the feature space plus noise.
    uint32_t base = pos ? 0 : static_cast<uint32_t>(dim / 2);
    for (std::size_t j = 0; j < nnz; ++j) {
      f.emplace_back(base + static_cast<uint32_t>(rng.NextU64(dim / 2)),
                     rng.Uniform(0.1, 1.0));
    }
    SparseVector x = SparseVector::FromPairs(std::move(f));
    x.L2Normalize();
    data.push_back({std::move(x), pos ? 1.0 : -1.0});
  }
  return data;
}

void BM_LinearSvmTrain(benchmark::State& state) {
  auto data = MakeProblem(state.range(0), 2000, 40, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainLinearSvm(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinearSvmTrain)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_KernelSvmTrain(benchmark::State& state) {
  auto data = MakeProblem(state.range(0), 2000, 40, 2);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Rbf(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainKernelSvm(data, opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelSvmTrain)->Arg(16)->Arg(64)->Arg(256);

void BM_LinearSvmPredict(benchmark::State& state) {
  auto data = MakeProblem(512, 2000, 40, 3);
  LinearSvmModel model = std::move(TrainLinearSvm(data)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Decision(data[i++ % data.size()].x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearSvmPredict);

void BM_KernelSvmPredict(benchmark::State& state) {
  auto data = MakeProblem(state.range(0), 2000, 40, 4);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Rbf(1.0);
  KernelSvmModel model = std::move(TrainKernelSvm(data, opt)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Decision(data[i++ % data.size()].x));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["support_vectors"] =
      static_cast<double>(model.num_support_vectors());
}
BENCHMARK(BM_KernelSvmPredict)->Arg(64)->Arg(256);

void BM_CascadeMerge(benchmark::State& state) {
  const std::size_t num_models = state.range(0);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<KernelSvmModel> locals;
  for (std::size_t m = 0; m < num_models; ++m) {
    locals.push_back(
        std::move(TrainKernelSvm(MakeProblem(24, 2000, 40, 10 + m), opt))
            .value());
  }
  std::vector<const KernelSvmModel*> ptrs;
  for (const auto& m : locals) ptrs.push_back(&m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CascadeTree(ptrs, opt, 8));
  }
}
BENCHMARK(BM_CascadeMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_KMeans(benchmark::State& state) {
  auto data = MakeProblem(state.range(0), 2000, 40, 5);
  std::vector<SparseVector> points;
  for (const auto& ex : data) points.push_back(ex.x);
  KMeansOptions opt;
  opt.k = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeansCluster(points, opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans)->Arg(64)->Arg(256)->Arg(1024);

// LSH retrieval vs. exhaustive scan over model centroids — the lookup PACE
// does per prediction.
struct LshFixture {
  std::vector<SparseVector> items;
  std::vector<SparseVector> queries;
  CosineLsh index;

  explicit LshFixture(std::size_t n) : index(LshOptions{}) {
    Rng rng(6);
    for (std::size_t i = 0; i < n; ++i) {
      auto data = MakeProblem(1, 2000, 40, 100 + i);
      items.push_back(data[0].x);
      index.Insert(i, items.back());
    }
    for (std::size_t q = 0; q < 64; ++q) {
      queries.push_back(MakeProblem(1, 2000, 40, 900 + q)[0].x);
    }
  }
};

void BM_LshQuery(benchmark::State& state) {
  static LshFixture* fixture = nullptr;
  static int64_t fixture_size = 0;
  if (fixture == nullptr || fixture_size != state.range(0)) {
    delete fixture;
    fixture = new LshFixture(state.range(0));
    fixture_size = state.range(0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture->index.QueryAtLeast(fixture->queries[i++ % 64], 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LshQuery)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExhaustiveScan(benchmark::State& state) {
  static LshFixture* fixture = nullptr;
  static int64_t fixture_size = 0;
  if (fixture == nullptr || fixture_size != state.range(0)) {
    delete fixture;
    fixture = new LshFixture(state.range(0));
    fixture_size = state.range(0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const SparseVector& q = fixture->queries[i++ % 64];
    double best = 1e300;
    std::size_t best_id = 0;
    for (std::size_t id = 0; id < fixture->items.size(); ++id) {
      double d = q.SquaredDistance(fixture->items[id]);
      if (d < best) {
        best = d;
        best_id = id;
      }
    }
    benchmark::DoNotOptimize(best_id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExhaustiveScan)->Arg(256)->Arg(1024)->Arg(4096);

/// Dumps every non-zero ledger scalar of `delta` into `point`'s
/// deterministic metrics and the wall clock into advisory.
void RecordDelta(p2pdt_bench::BenchEmitter& emitter, const std::string& point,
                 const CostCounts& delta, double wall_seconds) {
  for (const auto& [op, value] : delta.Scalars()) {
    if (value != 0) emitter.Deterministic(point, op, value);
  }
  emitter.Advisory(point, "wall_seconds", wall_seconds);
}

/// Deterministic ledger-counting pass over every ML kernel, for the CI
/// bench-regression gate (`--smoke`). The op counts are exact at a fixed
/// seed; wall time rides along as advisory.
int RunSmoke() {
  CostLedger::SetEnabled(true);
  p2pdt_bench::BenchEmitter emitter("bench_ml");

  {
    auto data = MakeProblem(64, 2000, 40, 1);
    CostCounts before = CostLedger::Collect();
    Stopwatch wall;
    auto model = TrainLinearSvm(data);
    if (!model.ok()) return 1;
    RecordDelta(emitter, "linear_svm_train_n64",
                CostLedger::Collect() - before, wall.ElapsedSeconds());
  }
  {
    auto data = MakeProblem(48, 2000, 40, 2);
    KernelSvmOptions opt;
    opt.kernel = Kernel::Rbf(1.0);
    CostCounts before = CostLedger::Collect();
    Stopwatch wall;
    auto model = TrainKernelSvm(data, opt);
    if (!model.ok()) return 1;
    RecordDelta(emitter, "kernel_svm_train_n48",
                CostLedger::Collect() - before, wall.ElapsedSeconds());

    before = CostLedger::Collect();
    Stopwatch predict_wall;
    for (const auto& ex : data) model.value().Decision(ex.x);
    RecordDelta(emitter, "kernel_svm_predict_n48",
                CostLedger::Collect() - before,
                predict_wall.ElapsedSeconds());

    before = CostLedger::Collect();
    Stopwatch wire_wall;
    std::string bytes = SerializeKernelSvm(model.value());
    auto round_trip = DeserializeKernelSvm(bytes);
    if (!round_trip.ok()) return 1;
    RecordDelta(emitter, "kernel_svm_serialize_roundtrip",
                CostLedger::Collect() - before, wire_wall.ElapsedSeconds());
  }
  {
    KernelSvmOptions opt;
    opt.kernel = Kernel::Linear();
    std::vector<KernelSvmModel> locals;
    for (std::size_t m = 0; m < 8; ++m) {
      locals.push_back(
          std::move(TrainKernelSvm(MakeProblem(16, 2000, 40, 10 + m), opt))
              .value());
    }
    std::vector<const KernelSvmModel*> ptrs;
    for (const auto& m : locals) ptrs.push_back(&m);
    CostCounts before = CostLedger::Collect();
    Stopwatch wall;
    auto merged = CascadeTree(ptrs, opt, 4);
    if (!merged.ok()) return 1;
    RecordDelta(emitter, "cascade_merge_8x16", CostLedger::Collect() - before,
                wall.ElapsedSeconds());
  }
  {
    auto data = MakeProblem(128, 2000, 40, 5);
    std::vector<SparseVector> points;
    for (const auto& ex : data) points.push_back(ex.x);
    KMeansOptions opt;
    opt.k = 8;
    CostCounts before = CostLedger::Collect();
    Stopwatch wall;
    auto clusters = KMeansCluster(points, opt);
    if (!clusters.ok()) return 1;
    RecordDelta(emitter, "kmeans_n128_k8", CostLedger::Collect() - before,
                wall.ElapsedSeconds());
  }
  {
    LshFixture fixture(256);
    CostCounts before = CostLedger::Collect();
    Stopwatch wall;
    std::size_t total = 0;
    for (const auto& q : fixture.queries) {
      total += fixture.index.QueryAtLeast(q, 16).size();
    }
    CostCounts delta = CostLedger::Collect() - before;
    RecordDelta(emitter, "lsh_query_n256", delta, wall.ElapsedSeconds());
    emitter.Deterministic("lsh_query_n256", "results", total);
  }

  emitter.Write("perf/bench_ml.json");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
