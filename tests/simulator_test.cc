#include "p2psim/simulator.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NegativeDelayClamped) {
  Simulator sim;
  sim.Schedule(5.0, [] {});
  sim.RunAll();
  bool ran = false;
  sim.Schedule(-3.0, [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);  // time never goes backward
}

TEST(SimulatorTest, ScheduleAtClampsToNow) {
  Simulator sim;
  sim.Schedule(10.0, [] {});
  sim.RunAll();
  double when = -1;
  sim.ScheduleAt(2.0, [&] { when = sim.Now(); });
  sim.RunAll();
  EXPECT_DOUBLE_EQ(when, 10.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1.0, [&] { ++ran; });
  sim.Schedule(2.0, [&] { ++ran; });
  sim.Schedule(2.5, [&] { ++ran; });
  std::size_t count = sim.RunUntil(2.0);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);  // advances even past the last event
  sim.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.RunUntil(42.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 42.0);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now());
    if (times.size() < 4) sim.Schedule(1.0, chain);
  };
  sim.Schedule(0.5, chain);
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(SimulatorTest, RecurringEventBoundedByRunUntil) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    sim.Schedule(1.0, tick);
  };
  sim.Schedule(1.0, tick);
  sim.RunUntil(10.0);
  EXPECT_EQ(ticks, 10);
  EXPECT_GT(sim.pending_events(), 0u);  // next tick still queued
}

TEST(SimulatorTest, ExecutedEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.executed_events(), 7u);
}

}  // namespace
}  // namespace p2pdt
