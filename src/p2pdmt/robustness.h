#ifndef P2PDT_P2PDMT_ROBUSTNESS_H_
#define P2PDT_P2PDMT_ROBUSTNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "p2pdmt/experiment.h"
#include "p2psim/fault.h"

namespace p2pdt {

/// A fault plan with a human-readable label, so sweep output stays
/// interpretable ("burst", "partition", ...).
struct NamedFaultPlan {
  std::string label = "none";
  FaultPlanSpec plan;
};

/// Canonical fault plans the robustness experiments exercise, scaled to a
/// protocol run that trains within the first `horizon` simulated seconds:
///  - "none":       no injected faults (baseline loss only)
///  - "burst":      50 % loss for the middle third of the horizon
///  - "partition":  the first half of the peers is cut off from the second
///                  for the middle third
///  - "spike":      +2 s latency for the middle third (stress timers, not
///                  delivery)
///  - "crash":      the first `num_peers / 8` peers crash at horizon/4 and
///                  recover at 3·horizon/4
std::vector<NamedFaultPlan> CanonicalFaultPlans(std::size_t num_peers,
                                                double horizon);

/// One grid point of the robustness sweep, flattened for reporting.
struct RobustnessRow {
  std::string algorithm;
  std::string plan = "none";
  double loss_rate = 0.0;
  bool reliable = false;

  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  /// Fraction of prediction requests answered (success flag), including
  /// degraded answers.
  double prediction_success_rate = 0.0;
  std::size_t failed_predictions = 0;
  std::size_t degraded_predictions = 0;
  std::size_t test_documents = 0;

  double delivery_rate = 0.0;
  /// Retransmissions per non-maintenance protocol message — the price the
  /// transport pays for its delivery guarantee.
  double retry_overhead = 0.0;
  uint64_t retransmits = 0;
  uint64_t give_ups = 0;
  uint64_t injected_drops = 0;
  /// PACE dissemination convergence (-1 for other algorithms).
  double model_coverage = -1.0;
};

struct RobustnessSweepOptions {
  /// Template for every run; algorithm / loss rate / fault plan / transport
  /// settings are overridden per grid point.
  ExperimentOptions base;
  std::vector<AlgorithmType> algorithms = {AlgorithmType::kCempar,
                                           AlgorithmType::kPace};
  std::vector<double> loss_rates = {0.0, 0.1, 0.2};
  std::vector<NamedFaultPlan> plans = {{}};
  /// Run each point both fire-and-forget and with the reliable transport,
  /// so the delta the retries buy is in the same table.
  bool compare_reliability = true;
  /// Invoked after every completed point (progress reporting); may be null.
  std::function<void(const RobustnessRow&)> on_point;
};

/// Runs the full grid: algorithms × loss rates × fault plans ×
/// {unreliable, reliable}. Failed runs are skipped with a warning rather
/// than aborting the sweep.
std::vector<RobustnessRow> RunRobustnessSweep(
    const VectorizedCorpus& corpus, const RobustnessSweepOptions& options);

/// Flattens sweep rows into the CSV schema bench_fault writes
/// (bench_results/fault.csv).
CsvWriter RobustnessCsv(const std::vector<RobustnessRow>& rows);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_ROBUSTNESS_H_
