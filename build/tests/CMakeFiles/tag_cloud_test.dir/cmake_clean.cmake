file(REMOVE_RECURSE
  "CMakeFiles/tag_cloud_test.dir/tag_cloud_test.cc.o"
  "CMakeFiles/tag_cloud_test.dir/tag_cloud_test.cc.o.d"
  "tag_cloud_test"
  "tag_cloud_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_cloud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
