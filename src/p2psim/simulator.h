#ifndef P2PDT_P2PSIM_SIMULATOR_H_
#define P2PDT_P2PSIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p2pdt {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Discrete-event simulation core: a time-ordered queue of callbacks.
///
/// This is the heart of P2PDMT (the paper's simulation toolkit): every
/// network delivery, churn transition, stabilization round and scheduled
/// evaluation is an event. Events at equal timestamps run in scheduling
/// order (a monotone sequence number breaks ties), which keeps runs
/// fully deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0; negative
  /// delays are clamped to 0).
  void Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute simulated time (clamped to >= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`. Events at exactly `until` are executed. Returns the number of
  /// events executed.
  std::size_t RunUntil(SimTime until);

  /// Runs until the queue is fully drained. Use with care under recurring
  /// (self-rescheduling) events — prefer RunUntil.
  std::size_t RunAll();

  /// Executes at most one pending event; returns false when idle.
  bool Step();

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_SIMULATOR_H_
