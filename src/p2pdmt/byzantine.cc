#include "p2pdmt/byzantine.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"

namespace p2pdt {

FaultPlanSpec MakeAdversaryPlan(std::size_t num_peers,
                                AdversaryBehavior behavior, double fraction,
                                uint64_t seed) {
  FaultPlanSpec plan;
  if (num_peers == 0 || fraction <= 0.0 ||
      behavior == AdversaryBehavior::kHonest) {
    return plan;
  }
  fraction = std::min(fraction, 1.0);
  std::size_t count = static_cast<std::size_t>(fraction *
                                               static_cast<double>(num_peers));
  if (count == 0) count = 1;  // a positive fraction poisons at least one peer
  Rng rng(DeriveSeed(seed, static_cast<uint64_t>(behavior)));
  std::vector<std::size_t> picks = rng.SampleWithoutReplacement(num_peers,
                                                                count);
  std::sort(picks.begin(), picks.end());
  for (std::size_t p : picks) {
    FaultPlanSpec::Adversary adv;
    adv.node = static_cast<NodeId>(p);
    adv.behavior = behavior;
    plan.adversaries.push_back(adv);
  }
  return plan;
}

namespace {

ByzantineRow MakeRow(const ExperimentResult& r, const std::string& adversary,
                     double fraction, std::size_t malicious, bool defended) {
  ByzantineRow row;
  row.algorithm = r.algorithm;
  row.adversary = adversary;
  row.malicious_fraction = fraction;
  row.malicious_peers = malicious;
  row.defended = defended;
  row.micro_f1 = r.metrics.micro_f1;
  row.macro_f1 = r.metrics.macro_f1;
  row.test_documents = r.test_documents;
  row.prediction_success_rate =
      r.test_documents == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.failed_predictions) /
                      static_cast<double>(r.test_documents);
  row.models_rejected = r.models_rejected;
  row.votes_discarded = r.votes_discarded;
  row.quarantined_pairs = r.quarantined_pairs;
  row.trust_observations = r.trust_observations;
  row.train_bytes = r.train_bytes;
  row.train_sim_seconds = r.train_sim_seconds;
  return row;
}

/// One sweep point: configure the arm, run, convert. Returns false when the
/// underlying experiment failed.
bool RunPoint(const VectorizedCorpus& corpus,
              const ByzantineSweepOptions& options, AlgorithmType algo,
              AdversaryBehavior behavior, double fraction, bool defended,
              std::vector<ByzantineRow>& rows) {
  ExperimentOptions opt = options.base;
  opt.algorithm = algo;
  FaultPlanSpec plan = MakeAdversaryPlan(opt.env.num_peers, behavior,
                                         fraction, opt.seed);
  const std::size_t malicious = plan.adversaries.size();
  opt.env.fault = plan;
  opt.cempar.sanitize.enabled = defended;
  opt.pace.sanitize.enabled = defended;
  opt.cempar.reputation.enabled = defended;
  opt.pace.reputation.enabled = defended;

  Result<ExperimentResult> r = RunExperiment(corpus, opt);
  const std::string label = behavior == AdversaryBehavior::kHonest
                                ? "none"
                                : AdversaryBehaviorToString(behavior);
  if (!r.ok()) {
    P2PDT_LOG(Warning) << AlgorithmTypeToString(algo) << " adversary=" << label
                       << " fraction=" << fraction << " defended=" << defended
                       << " failed: " << r.status().ToString();
    return false;
  }
  rows.push_back(MakeRow(*r, label, fraction, malicious, defended));
  if (options.on_point) options.on_point(rows.back());
  return true;
}

}  // namespace

std::vector<ByzantineRow> RunByzantineSweep(
    const VectorizedCorpus& corpus, const ByzantineSweepOptions& options) {
  std::vector<ByzantineRow> rows;
  std::vector<bool> arms;
  if (options.compare_defense) {
    arms = {true, false};
  } else {
    arms = {true};
  }

  for (AlgorithmType algo : options.algorithms) {
    for (bool defended : arms) {
      // Clean baseline for this arm: the reference every degradation in the
      // acceptance criterion is measured against.
      RunPoint(corpus, options, algo, AdversaryBehavior::kHonest, 0.0,
               defended, rows);
      for (double fraction : options.flip_fractions) {
        RunPoint(corpus, options, algo, AdversaryBehavior::kLabelFlip,
                 fraction, defended, rows);
      }
      for (AdversaryBehavior behavior : options.other_behaviors) {
        RunPoint(corpus, options, algo, behavior, options.other_fraction,
                 defended, rows);
      }
    }
  }
  return rows;
}

CsvWriter ByzantineCsv(const std::vector<ByzantineRow>& rows) {
  CsvWriter csv({"algorithm", "adversary", "malicious_fraction",
                 "malicious_peers", "defended", "micro_f1", "macro_f1",
                 "prediction_success_rate", "attempted", "models_rejected",
                 "votes_discarded", "quarantined_pairs", "trust_observations",
                 "train_bytes", "train_sim_seconds"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const ByzantineRow& row : rows) {
    csv.AddRow({row.algorithm, row.adversary, fmt(row.malicious_fraction),
                std::to_string(row.malicious_peers), row.defended ? "1" : "0",
                fmt(row.micro_f1), fmt(row.macro_f1),
                fmt(row.prediction_success_rate),
                std::to_string(row.test_documents),
                std::to_string(row.models_rejected),
                std::to_string(row.votes_discarded),
                std::to_string(row.quarantined_pairs),
                std::to_string(row.trust_observations),
                std::to_string(row.train_bytes), fmt(row.train_sim_seconds)});
  }
  return csv;
}

}  // namespace p2pdt
