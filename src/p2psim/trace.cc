#include "p2psim/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace p2pdt {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Sim seconds → trace microseconds (Chrome's ts/dur unit).
std::string Micros(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", t * 1e6);
  return buf;
}

}  // namespace

TraceContext Tracer::StartTrace(std::string name, SimTime now,
                                std::size_t node, std::string category) {
  TraceContext parent;  // invalid → new root
  return StartSpan(std::move(name), now, node, parent, std::move(category));
}

TraceContext Tracer::StartSpan(std::string name, SimTime now,
                               std::size_t node, const TraceContext& parent,
                               std::string category) {
  TraceContext ctx;
  ctx.trace_id = parent.valid() ? parent.trace_id : next_trace_id_++;
  ctx.span_id = next_span_id_++;
  ctx.parent_span = parent.valid() ? parent.span_id : 0;

  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span = ctx.parent_span;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.start = now;
  rec.end = now;
  rec.node = node;
  open_.emplace(ctx.span_id, spans_.size());
  spans_.push_back(std::move(rec));
  return ctx;
}

TraceContext Tracer::StartAuto(std::string name, SimTime now,
                               std::size_t node, std::string category) {
  return StartSpan(std::move(name), now, node, current_, std::move(category));
}

SpanRecord* Tracer::FindOpen(uint64_t span_id) {
  auto it = open_.find(span_id);
  return it == open_.end() ? nullptr : &spans_[it->second];
}

void Tracer::EndSpan(const TraceContext& ctx, SimTime now) {
  SpanRecord* rec = FindOpen(ctx.span_id);
  if (rec == nullptr) return;  // already ended (idempotent)
  rec->end = now < rec->start ? rec->start : now;
  open_.erase(ctx.span_id);
}

void Tracer::AddArg(const TraceContext& ctx, std::string key,
                    std::string value) {
  SpanRecord* rec = FindOpen(ctx.span_id);
  if (rec == nullptr) return;
  rec->args.emplace_back(std::move(key), std::move(value));
}

void Tracer::Instant(std::string name, SimTime now, std::size_t node,
                     const TraceContext& ctx, std::string category) {
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = next_span_id_++;
  rec.parent_span = ctx.span_id;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.start = now;
  rec.end = now;
  rec.node = node;
  rec.instant = true;
  spans_.push_back(std::move(rec));
}

std::vector<const SpanRecord*> Tracer::SpansForTrace(
    uint64_t trace_id) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& rec : spans_) {
    if (rec.trace_id == trace_id) out.push_back(&rec);
  }
  return out;
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
  current_ = TraceContext{};
  next_trace_id_ = 1;
  next_span_id_ = 1;
}

std::string Tracer::ToChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& rec : spans_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(rec.name) + "\",\"cat\":\"" +
           JsonEscape(rec.category) + "\",\"ph\":\"";
    out += rec.instant ? 'i' : 'X';
    out += "\",\"ts\":" + Micros(rec.start);
    if (!rec.instant) {
      out += ",\"dur\":" + Micros(rec.end - rec.start);
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":1,\"tid\":" +
           std::to_string(rec.node == static_cast<std::size_t>(-1)
                              ? 0
                              : rec.node + 1);
    out += ",\"args\":{\"trace_id\":" + std::to_string(rec.trace_id) +
           ",\"span_id\":" + std::to_string(rec.span_id) +
           ",\"parent_span\":" + std::to_string(rec.parent_span);
    for (const auto& [k, v] : rec.args) {
      out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

namespace {

/// Frame names must not contain the folded format's separators.
std::string FoldedName(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

std::string Tracer::ToCollapsed() const {
  // span_id → index, plus per-parent sum of direct-child durations so each
  // frame reports *self* time (stacked totals then reconstruct the parent).
  std::unordered_map<uint64_t, std::size_t> by_id;
  std::unordered_map<uint64_t, SimTime> child_sum;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& rec = spans_[i];
    if (rec.instant) continue;
    by_id.emplace(rec.span_id, i);
    if (rec.parent_span != 0) {
      child_sum[rec.parent_span] += rec.end - rec.start;
    }
  }
  std::map<std::string, uint64_t> folded;
  for (const SpanRecord& rec : spans_) {
    if (rec.instant) continue;
    SimTime self = rec.end - rec.start;
    auto cs = child_sum.find(rec.span_id);
    if (cs != child_sum.end()) self -= cs->second;
    if (self < 0.0) self = 0.0;
    std::string path = FoldedName(rec.name);
    for (uint64_t p = rec.parent_span; p != 0;) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      const SpanRecord& parent = spans_[it->second];
      path = FoldedName(parent.name) + ";" + path;
      p = parent.parent_span;
    }
    folded[path] += static_cast<uint64_t>(std::llround(self * 1e6));
  }
  std::string out;
  for (const auto& [path, micros] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(micros);
    out += '\n';
  }
  return out;
}

Status Tracer::WriteCollapsed(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToCollapsed();
  out.close();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToChromeTraceJson();
  out.close();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace p2pdt
