#ifndef P2PDT_P2PSIM_FAULT_H_
#define P2PDT_P2PSIM_FAULT_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "p2psim/network.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Declarative description of a composed fault plan — the "churn and
/// node-failure models" surface of P2PDMT, extended to message-level
/// faults. Every field is a list, so plans compose: an experiment can
/// overlap a burst-loss window with a partition and a scripted crash.
/// Times are absolute simulated seconds.
struct FaultPlanSpec {
  struct BurstLoss {
    double start = 0.0;
    double end = 0.0;
    double drop_prob = 1.0;
  };
  struct TypeDrop {
    double start = 0.0;
    double end = 0.0;
    MessageType type = MessageType::kModelBroadcast;
    double drop_prob = 1.0;
  };
  struct Partition {
    double start = 0.0;
    double end = 0.0;
    /// Messages between group_a and group_b (either direction) are dropped.
    std::vector<NodeId> group_a;
    std::vector<NodeId> group_b;
  };
  struct LatencySpike {
    double start = 0.0;
    double end = 0.0;
    double extra_latency_sec = 0.0;
  };
  struct Transition {
    double time = 0.0;
    NodeId node = kInvalidNode;
  };
  /// Scripted adversarial peer: `node` exhibits `behavior` while the
  /// simulated clock is in [start, end). A start in the future makes a
  /// sleeper that turns malicious mid-run; overlapping windows resolve to
  /// the first matching entry.
  struct Adversary {
    NodeId node = kInvalidNode;
    AdversaryBehavior behavior = AdversaryBehavior::kHonest;
    double start = 0.0;
    double end = std::numeric_limits<double>::infinity();
  };

  std::vector<BurstLoss> burst_loss;
  std::vector<TypeDrop> type_drops;
  std::vector<Partition> partitions;
  std::vector<LatencySpike> latency_spikes;
  std::vector<Transition> crashes;
  std::vector<Transition> recoveries;
  std::vector<Adversary> adversaries;
  uint64_t seed = 0xFA017;

  bool empty() const {
    return burst_loss.empty() && type_drops.empty() && partitions.empty() &&
           latency_spikes.empty() && crashes.empty() && recoveries.empty() &&
           adversaries.empty();
  }
};

/// Executes a FaultPlanSpec against one simulation: message-level rules run
/// through PhysicalNetwork's fault hook (drops recorded as
/// DropReason::kInjectedFault), crash/recover sequences run through the
/// Simulator event queue and notify transition listeners (wire the overlay
/// here, exactly like ChurnDriver does).
///
/// Probabilistic rules draw from a dedicated deterministic Rng, so an armed
/// plan perturbs neither the underlay's baseline loss stream nor any other
/// component's randomness.
///
/// Adversarial peers: the injector doubles as the AdversaryDirectory that
/// classifiers consult through PhysicalNetwork::adversaries(). Arm()
/// installs the directory only when the plan scripts at least one
/// adversary; directory queries are pure (per-node corruption seeds come
/// from DeriveSeed over the plan seed, never from the live rng_), so an
/// armed plan with no adversaries — or with sleeper windows that never
/// open — leaves baseline runs bit-identical.
class FaultInjector : public AdversaryDirectory {
 public:
  FaultInjector(Simulator& sim, PhysicalNetwork& net, uint64_t seed = 0xFA017);

  /// Imperative plan construction (all composable; call before Arm).
  void AddBurstLoss(double start, double end, double drop_prob);
  void AddMessageTypeDrop(double start, double end, MessageType type,
                          double drop_prob);
  void AddPartition(double start, double end, std::vector<NodeId> group_a,
                    std::vector<NodeId> group_b);
  void AddLatencySpike(double start, double end, double extra_latency_sec);
  void AddCrash(double time, NodeId node);
  void AddRecover(double time, NodeId node);
  void AddAdversary(NodeId node, AdversaryBehavior behavior, double start = 0.0,
                    double end = std::numeric_limits<double>::infinity());

  /// Appends every rule of `spec` (spec.seed is ignored; the injector keeps
  /// its own stream).
  void AddPlan(const FaultPlanSpec& spec);

  /// Runs after each scripted crash/recover transition is applied.
  void AddTransitionListener(std::function<void(NodeId, bool)> listener);

  /// Installs the message hook and schedules every crash/recover event.
  /// Call once, before driving the simulator through the faulty window.
  void Arm();
  bool armed() const { return armed_; }

  std::size_t num_message_rules() const;
  std::size_t num_scheduled_transitions() const {
    return crashes_.size() + recoveries_.size();
  }

  /// Messages dropped by this injector (also in NetworkStats under
  /// kInjectedFault, which additionally counts other installed hooks).
  uint64_t injected_drops() const { return injected_drops_; }

  std::size_t num_adversaries() const { return adversaries_.size(); }

  /// AdversaryDirectory. kHonest before Arm() and outside every scripted
  /// window; both queries are pure and may run from worker threads.
  AdversaryBehavior BehaviorAt(NodeId node, SimTime now) const override;
  uint64_t CorruptionSeed(NodeId node) const override;

 private:
  FaultDecision Evaluate(NodeId from, NodeId to, MessageType type,
                         SimTime now);
  static bool InWindow(double start, double end, SimTime now) {
    return now >= start && now < end;
  }

  Simulator& sim_;
  PhysicalNetwork& net_;
  Rng rng_;
  uint64_t seed_;
  bool armed_ = false;
  uint64_t injected_drops_ = 0;

  std::vector<FaultPlanSpec::BurstLoss> burst_loss_;
  std::vector<FaultPlanSpec::TypeDrop> type_drops_;
  std::vector<FaultPlanSpec::LatencySpike> latency_spikes_;
  struct PartitionRule {
    double start, end;
    /// side_[n]: 0 = unaffected, 1 = group A, 2 = group B.
    std::vector<uint8_t> side;
  };
  std::vector<PartitionRule> partitions_;
  std::vector<FaultPlanSpec::Transition> crashes_;
  std::vector<FaultPlanSpec::Transition> recoveries_;
  std::vector<FaultPlanSpec::Adversary> adversaries_;
  std::vector<std::function<void(NodeId, bool)>> listeners_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_FAULT_H_
