// OVER1 — overload robustness: replay Zipf-popularity tagging sessions
// against the trained protocols, fire a scripted flash crowd (burst
// multiplier concentrated on a hot document set), and compare the
// undefended arm (finite serving capacity, no protection: queues grow
// without bound and latency blows the SLO) against the defended arm
// (admission control + typed overload rejects with retry-after, versioned
// prediction caching, CEMPaR request batching).
//
// Expected shape: with no burst both arms stay healthy. At the flash crowd
// the undefended arm's p95 tagging latency shoots past the SLO (or its
// goodput collapses outright); the defended arm sheds the excess early,
// serves the hot set from cache, and sustains >= 2x the undefended
// goodput-within-SLO. Disarmed rows (load generator off) carry per-answer
// fingerprints that must match between the two arm configurations — the
// bit-identity witness that idle overload machinery changes no prediction.
//
// `--smoke` runs a small grid and writes the same CSV schema for CI.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "p2pdmt/overload.h"

using namespace p2pdt_bench;

namespace {

void PrintHeader() {
  std::printf("%-8s %-11s %-9s %7s %5s %8s %7s %7s %7s %8s %8s %8s %8s\n",
              "algo", "arm", "burst", "rate", "mult", "offered", "ok",
              "cached", "shed", "goodput", "p95_s", "hit_rate", "giveups");
}

OverloadSweepOptions CommonSweep(std::size_t num_peers) {
  OverloadSweepOptions sweep;
  sweep.base.env.num_peers = num_peers;
  sweep.base.distribution.cls = ClassDistribution::kByUser;
  sweep.base.loadgen.sessions = num_peers;
  sweep.base.loadgen.slo_latency = 1.0;
  sweep.base.loadgen.max_retries = 1;
  sweep.base.loadgen.retry_backoff = 0.5;
  sweep.base.seed = 20100913;
  sweep.on_point = [](const OverloadRow& row) {
    std::printf(
        "%-8s %-11s %-9s %7.3g %5.3g %8llu %7llu %7llu %7llu %8.3f %8.3f "
        "%8.3f %8llu\n",
        row.algorithm.c_str(), row.arm.c_str(), row.burst.c_str(),
        row.arrival_rate, row.burst_multiplier,
        static_cast<unsigned long long>(row.offered),
        static_cast<unsigned long long>(row.ok),
        static_cast<unsigned long long>(row.cached),
        static_cast<unsigned long long>(row.shed), row.goodput_within_slo,
        row.p95_s, row.cache_hit_rate,
        static_cast<unsigned long long>(row.give_ups));
  };
  return sweep;
}

int RunSweep(const OverloadSweepOptions& sweep) {
  PrintHeader();
  Result<std::vector<OverloadRow>> rows =
      RunOverloadSweep(SharedCorpus(sweep.base.env.num_peers, 6), sweep);
  if (!rows.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  if (rows.value().empty()) {
    std::fprintf(stderr, "sweep produced no rows\n");
    return 1;
  }
  WriteResults(OverloadCsv(rows.value()), "overload.csv");
  return 0;
}

int RunSmoke() {
  std::printf("=== OVER1 smoke: flash crowd, defended vs undefended ===\n");
  OverloadSweepOptions sweep = CommonSweep(/*num_peers=*/24);
  // Sessions long enough that the burst catches most of each session's
  // tail (that is what builds the undefended backlog); a single aggregate
  // rate and a hard multiplier keep the separation unambiguous for CI.
  sweep.base.loadgen.min_docs = 20;
  sweep.base.loadgen.max_docs = 32;
  sweep.arrival_rates = {24.0};
  sweep.burst_multiplier = 20.0;
  return RunSweep(sweep);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  std::printf("=== OVER1: offered load x burst x arm x algorithm ===\n\n");
  OverloadSweepOptions sweep = CommonSweep(/*num_peers=*/64);
  sweep.base.loadgen.min_docs = 50;
  sweep.base.loadgen.max_docs = 80;
  sweep.arrival_rates = {32.0, 64.0};
  sweep.burst_multiplier = 8.0;
  return RunSweep(sweep);
}
