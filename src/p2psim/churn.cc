#include "p2psim/churn.h"

namespace p2pdt {

ChurnDriver::ChurnDriver(Simulator& sim, PhysicalNetwork& net,
                         std::shared_ptr<ChurnModel> model, uint64_t seed)
    : sim_(sim), net_(net), model_(std::move(model)), seed_rng_(seed) {}

void ChurnDriver::AddListener(TransitionListener listener) {
  listeners_.push_back(std::move(listener));
}

void ChurnDriver::Start() {
  node_rngs_.clear();
  node_rngs_.reserve(net_.num_nodes());
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    node_rngs_.push_back(seed_rng_.Fork());
  }
  for (NodeId n = 0; n < net_.num_nodes(); ++n) ScheduleNext(n);
}

void ChurnDriver::ScheduleNext(NodeId node) {
  bool online = net_.IsOnline(node);
  double duration = online ? model_->NextOnlineDuration(node_rngs_[node])
                           : model_->NextOfflineDuration(node_rngs_[node]);
  // Effectively-infinite sessions (NoChurn) are never scheduled: the peer
  // simply stays in its state and the event queue stays clean.
  if (duration >= 1e17) return;
  sim_.Schedule(duration, [this, node] {
    bool was_online = net_.IsOnline(node);
    net_.SetOnline(node, !was_online);
    if (was_online) {
      ++num_failures_;
    } else {
      ++num_rejoins_;
    }
    for (const auto& listener : listeners_) listener(node, !was_online);
    ScheduleNext(node);
  });
}

}  // namespace p2pdt
