// DEMO2 — "modifying the network parameters, such as the network size"
// (paper Sec. 3): accuracy and communication cost as the number of peers
// grows from 16 to 512 on the same corpus.
//
// Expected shape: accuracy roughly flat for CEMPaR / Centralized (the same
// pooled knowledge, just spread thinner per peer); PACE degrades slightly
// at scale (top-k of ever-more ever-smaller models); LocalOnly collapses as
// per-peer data shrinks. CEMPaR train bytes grow ~O(N); PACE grows ~O(N²).

#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO2: scalability with network size ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/512,
                                                /*num_tags=*/16);
  CsvWriter csv({"algorithm", "peers", "micro_f1", "train_MiB",
                 "train_KiB_per_peer", "predict_MiB", "failed"});

  std::printf("%-12s %6s %8s %12s %14s %12s\n", "algorithm", "peers",
              "microF1", "train(MiB)", "KiB/peer", "pred(MiB)");
  for (std::size_t peers : {16u, 32u, 64u, 128u, 256u, 512u}) {
    for (AlgorithmType algo :
         {AlgorithmType::kCempar, AlgorithmType::kPace,
          AlgorithmType::kCentralized, AlgorithmType::kLocalOnly}) {
      ExperimentOptions opt = MacroDefaults(algo, peers);
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "%s/%zu failed: %s\n",
                     AlgorithmTypeToString(algo), peers,
                     r.status().ToString().c_str());
        continue;
      }
      std::printf("%-12s %6zu %8.4f %12.2f %14.1f %12.2f\n",
                  r->algorithm.c_str(), peers, r->metrics.micro_f1,
                  r->train_bytes / (1024.0 * 1024.0),
                  r->train_bytes_per_peer() / 1024.0,
                  r->predict_bytes / (1024.0 * 1024.0));
      csv.AddRow({r->algorithm, std::to_string(peers),
                  std::to_string(r->metrics.micro_f1),
                  std::to_string(r->train_bytes / (1024.0 * 1024.0)),
                  std::to_string(r->train_bytes_per_peer() / 1024.0),
                  std::to_string(r->predict_bytes / (1024.0 * 1024.0)),
                  std::to_string(r->failed_predictions)});
    }
    std::printf("\n");
  }
  WriteResults(csv, "demo2_scalability.csv");
  return 0;
}
