# Empty compiler generated dependencies file for p2pdt_p2pml.
# This may be replaced when dependencies are built.
