#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  std::vector<std::vector<TagId>> truth = {{0, 1}, {2}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, truth, 3);
  EXPECT_DOUBLE_EQ(m.micro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.subset_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.jaccard_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.hamming_loss, 0.0);
}

TEST(MetricsTest, CompletelyWrong) {
  std::vector<std::vector<TagId>> truth = {{0}};
  std::vector<std::vector<TagId>> pred = {{1}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, pred, 2);
  EXPECT_DOUBLE_EQ(m.micro_f1, 0.0);
  EXPECT_DOUBLE_EQ(m.subset_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.jaccard_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.hamming_loss, 1.0);  // both decisions wrong over 2 tags
}

TEST(MetricsTest, HandComputedMixedCase) {
  // Doc 0: truth {0,1}, predicted {1,2} → tp(1)=1, fp(2)=1, fn(0)=1.
  // Doc 1: truth {2},   predicted {2}   → tp(2)=1.
  std::vector<std::vector<TagId>> truth = {{0, 1}, {2}};
  std::vector<std::vector<TagId>> pred = {{1, 2}, {2}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, pred, 3);

  // micro: tp=2, fp=1, fn=1 → P=2/3, R=2/3, F1=2/3.
  EXPECT_NEAR(m.micro_precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.micro_recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.micro_f1, 2.0 / 3.0, 1e-12);

  // per-tag: tag0 P=0,R=0,F1=0; tag1 P=1,R=1; tag2 P=1/2·... tp=1 fp=1 → P=.5, R=1, F1=2/3.
  EXPECT_DOUBLE_EQ(m.per_tag[0].f1, 0.0);
  EXPECT_DOUBLE_EQ(m.per_tag[1].f1, 1.0);
  EXPECT_NEAR(m.per_tag[2].f1, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.macro_f1, (0.0 + 1.0 + 2.0 / 3.0) / 3.0, 1e-12);

  // subset: doc1 exact only → 0.5.
  EXPECT_DOUBLE_EQ(m.subset_accuracy, 0.5);
  // jaccard: doc0 |∩|/|∪| = 1/3, doc1 = 1 → mean 2/3.
  EXPECT_NEAR(m.jaccard_accuracy, 2.0 / 3.0, 1e-12);
  // hamming: 2 wrong decisions / (2 docs × 3 tags).
  EXPECT_NEAR(m.hamming_loss, 2.0 / 6.0, 1e-12);
}

TEST(MetricsTest, EmptyPredictionsPenalizeRecallOnly) {
  std::vector<std::vector<TagId>> truth = {{0, 1}};
  std::vector<std::vector<TagId>> pred = {{}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, pred, 2);
  EXPECT_DOUBLE_EQ(m.micro_precision, 0.0);
  EXPECT_DOUBLE_EQ(m.micro_recall, 0.0);
  EXPECT_DOUBLE_EQ(m.micro_f1, 0.0);
}

TEST(MetricsTest, MacroIgnoresAbsentTags) {
  // Tag 1 never occurs in truth; macro-F1 averages only occurring tags.
  std::vector<std::vector<TagId>> truth = {{0}};
  std::vector<std::vector<TagId>> pred = {{0}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, pred, 5);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_EQ(m.per_tag[1].support, 0u);
}

TEST(MetricsTest, EmptyInput) {
  MultiLabelMetrics m = EvaluateMultiLabel({}, {}, 3);
  EXPECT_EQ(m.num_examples, 0u);
  EXPECT_DOUBLE_EQ(m.micro_f1, 0.0);
}

TEST(MetricsTest, BothEmptySetsCountAsJaccardOne) {
  std::vector<std::vector<TagId>> truth = {{}};
  std::vector<std::vector<TagId>> pred = {{}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, pred, 2);
  EXPECT_DOUBLE_EQ(m.jaccard_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.subset_accuracy, 1.0);
}

TEST(MetricsTest, ToStringMentionsHeadlineNumbers) {
  std::vector<std::vector<TagId>> truth = {{0}};
  MultiLabelMetrics m = EvaluateMultiLabel(truth, truth, 1);
  std::string s = m.ToString();
  EXPECT_NE(s.find("microF1"), std::string::npos);
  EXPECT_NE(s.find("1.0000"), std::string::npos);
}

TEST(BinaryAccuracyTest, Basics) {
  EXPECT_DOUBLE_EQ(BinaryAccuracy({1, -1, 1, -1}, {1, -1, -1, -1}), 0.75);
  EXPECT_DOUBLE_EQ(BinaryAccuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(BinaryAccuracy({1}, {0.5}), 1.0);  // sign comparison
}

}  // namespace
}  // namespace p2pdt
