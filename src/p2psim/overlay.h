#ifndef P2PDT_P2PSIM_OVERLAY_H_
#define P2PDT_P2PSIM_OVERLAY_H_

#include <functional>
#include <string>

#include "p2psim/network.h"

namespace p2pdt {

/// Common surface of the overlay networks P2PDMT can generate ("Generate
/// structured P2P network" / "Generate unstructured P2P network", Fig. 2).
///
/// Both structured (Chord) and unstructured (random-graph flooding)
/// overlays can disseminate a payload from one peer to all online peers;
/// only the structured overlay supports key lookups (used by CEMPaR to
/// locate super-peers deterministically).
class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Registers a node with the overlay (node must exist in the underlay).
  virtual void AddNode(NodeId node) = 0;

  /// Notifies the overlay of an underlay online/offline transition, e.g.
  /// wired to ChurnDriver::AddListener.
  virtual void OnTransition(NodeId node, bool online) = 0;

  /// Disseminates `payload_bytes` from `origin` to every reachable online
  /// peer. `on_deliver(receiver)` runs once per peer that receives the
  /// payload (the origin is not called). `on_complete` (optional) runs when
  /// the dissemination has quiesced.
  virtual void Broadcast(NodeId origin, std::size_t payload_bytes,
                         MessageType type,
                         std::function<void(NodeId)> on_deliver,
                         std::function<void()> on_complete) = 0;

  virtual std::string name() const = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_OVERLAY_H_
