# Empty compiler generated dependencies file for unstructured_test.
# This may be replaced when dependencies are built.
