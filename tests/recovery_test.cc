#include "p2pdmt/recovery.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"
#include "p2pdmt/recovery_experiment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

namespace fs = std::filesystem;

// Four tags, each tied to a distinct feature; peers specialize in two tags.
std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

SparseVector TagVector(TagId tag) {
  return SparseVector::FromPairs({{tag * 3u, 1.0}, {tag * 3u + 1, 1.0}});
}

/// Per-test scratch directory (unique per fixture instance, so `ctest -j`
/// and in-process repetition never collide).
std::string ScratchDir(const void* self) {
  return ::testing::TempDir() + "/p2pdt_recovery_" +
         std::to_string(reinterpret_cast<uintptr_t>(self));
}

struct Fixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<P2PClassifier> algo;

  Fixture(AlgorithmType type, std::size_t peers,
          ChurnType churn = ChurnType::kNone) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    eo.churn = churn;
    eo.churn_mean_online_sec = 20.0;
    eo.churn_mean_offline_sec = 5.0;
    env = std::move(Environment::Create(eo)).value();
    if (type == AlgorithmType::kCempar) {
      CemparOptions opt;
      opt.svm.kernel = Kernel::Linear();
      algo = std::make_unique<Cempar>(env->sim(), env->net(), *env->chord(),
                                      opt);
    } else {
      algo = std::make_unique<Pace>(env->sim(), env->net(), env->overlay(),
                                    PaceOptions{});
    }
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(algo->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    algo->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    algo->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }

  void ResyncSync(NodeId peer) {
    bool done = false;
    algo->ResyncPeer(peer, [&] { done = true; });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
  }
};

// --- Snapshot / Restore round trips ------------------------------------

class SnapshotRestoreTest : public ::testing::TestWithParam<AlgorithmType> {};

TEST_P(SnapshotRestoreTest, RoundTripIsByteExact) {
  Fixture f(GetParam(), 10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 1)).ok());
  ASSERT_TRUE(f.algo->SupportsDurability());

  Result<std::string> blob = f.algo->Snapshot(3);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(blob->empty());

  f.algo->EvictPeer(3);
  ASSERT_TRUE(f.algo->Restore(3, *blob).ok());

  Result<std::string> again = f.algo->Snapshot(3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *blob);
}

TEST_P(SnapshotRestoreTest, ColdRestartReproducesSnapshotBitwise) {
  // Deterministic training is the keystone of the recovery design: a cold
  // retrain (plus one anti-entropy round to re-fetch replicated state, e.g.
  // PACE's received-bundle row) must land on exactly the state the
  // checkpoint would have restored.
  Fixture f(GetParam(), 10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 2)).ok());

  Result<std::string> before = f.algo->Snapshot(4);
  ASSERT_TRUE(before.ok());

  f.algo->EvictPeer(4);
  std::size_t refit = f.algo->ColdRestart(4);
  EXPECT_GT(refit, 0u);
  f.ResyncSync(4);

  Result<std::string> after = f.algo->Snapshot(4);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
}

TEST_P(SnapshotRestoreTest, RestoreRejectsGarbage) {
  Fixture f(GetParam(), 8);
  ASSERT_TRUE(f.Train(MakePeerData(8, 6, 3)).ok());
  EXPECT_FALSE(f.algo->Restore(2, "").ok());
  EXPECT_FALSE(f.algo->Restore(2, "not a snapshot").ok());
  Result<std::string> blob = f.algo->Snapshot(2);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(f.algo->Restore(2, blob->substr(0, blob->size() / 2)).ok());
  // Rejection leaves the peer restorable from the intact blob.
  ASSERT_TRUE(f.algo->Restore(2, *blob).ok());
}

INSTANTIATE_TEST_SUITE_P(Protocols, SnapshotRestoreTest,
                         ::testing::Values(AlgorithmType::kCempar,
                                           AlgorithmType::kPace),
                         [](const auto& info) {
                           return std::string(
                               AlgorithmTypeToString(info.param));
                         });

// --- PACE-specific observable state -------------------------------------

TEST(PaceRecoveryTest, RestorePreservesPredictionsBitwise) {
  Fixture f(AlgorithmType::kPace, 10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 4)).ok());
  auto* pace = dynamic_cast<Pace*>(f.algo.get());
  ASSERT_NE(pace, nullptr);
  EXPECT_DOUBLE_EQ(pace->ModelCoverage(), 1.0);

  std::vector<P2PPrediction> baseline;
  for (TagId t = 0; t < 4; ++t) baseline.push_back(f.PredictSync(2, TagVector(t)));

  Result<std::string> blob = f.algo->Snapshot(2);
  ASSERT_TRUE(blob.ok());
  f.algo->EvictPeer(2);
  EXPECT_LT(pace->ModelCoverage(), 1.0);  // the evicted row is really gone
  ASSERT_TRUE(f.algo->Restore(2, *blob).ok());
  EXPECT_DOUBLE_EQ(pace->ModelCoverage(), 1.0);

  for (TagId t = 0; t < 4; ++t) {
    P2PPrediction p = f.PredictSync(2, TagVector(t));
    EXPECT_EQ(p.tags, baseline[t].tags) << "tag " << t;
    EXPECT_EQ(p.scores, baseline[t].scores) << "tag " << t;
  }
}

TEST(PaceRecoveryTest, ColdRestartPlusResyncRecoversCoverage) {
  Fixture f(AlgorithmType::kPace, 10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 5)).ok());
  auto* pace = dynamic_cast<Pace*>(f.algo.get());

  std::vector<P2PPrediction> baseline;
  for (TagId t = 0; t < 4; ++t) baseline.push_back(f.PredictSync(6, TagVector(t)));

  f.algo->EvictPeer(6);
  EXPECT_GT(f.algo->ColdRestart(6), 0u);
  // Own bundle back, everyone else's still missing until anti-entropy runs.
  EXPECT_LT(pace->ModelCoverage(), 1.0);
  f.ResyncSync(6);
  EXPECT_DOUBLE_EQ(pace->ModelCoverage(), 1.0);

  for (TagId t = 0; t < 4; ++t) {
    P2PPrediction p = f.PredictSync(6, TagVector(t));
    EXPECT_EQ(p.tags, baseline[t].tags) << "tag " << t;
    EXPECT_EQ(p.scores, baseline[t].scores) << "tag " << t;
  }
}

// --- RecoveryCoordinator under real churn --------------------------------

class CoordinatorTest : public ::testing::Test {
 protected:
  void TearDown() override { fs::remove_all(ScratchDir(this)); }

  /// Trains on a stable network, checkpoints, then lets churn run with the
  /// coordinator attached. Returns the coordinator's stats.
  RecoveryStats RunChurnWindow(RecoveryOptions options,
                               bool corrupt_checkpoints_on_disk = false) {
    Fixture f(AlgorithmType::kPace, 12, ChurnType::kExponential);
    EXPECT_TRUE(f.Train(MakePeerData(12, 8, 6)).ok());

    CheckpointManager checkpoints(ScratchDir(this));
    options.enabled = true;
    RecoveryCoordinator coord(f.env->sim(), f.env->net(), f.env->churn(),
                              *f.algo, checkpoints, options);
    EXPECT_TRUE(coord.CheckpointAll().ok());
    EXPECT_EQ(checkpoints.Keys().size(), 12u);

    if (corrupt_checkpoints_on_disk) {
      for (const std::string& key : checkpoints.Keys()) {
        std::string path = ScratchDir(this) + "/" + key + ".ckpt";
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        file.seekg(0, std::ios::end);
        std::streamoff size = file.tellg();
        file.seekp(size - 1);
        char last = 0;
        file.seekg(size - 1);
        file.get(last);
        file.seekp(size - 1);
        file.put(static_cast<char>(last ^ 0x5A));
      }
    }

    coord.Attach();
    f.env->StartDynamics();
    bool never = false;
    f.env->RunUntilFlag(never, 240.0);

    EXPECT_GT(f.env->churn().num_failures(), 0u) << "churn never bit";
    EXPECT_EQ(f.env->churn().num_warm_rejoins(), coord.stats().warm_rejoins);
    EXPECT_EQ(f.env->churn().num_cold_rejoins(), coord.stats().cold_rejoins);
    return coord.stats();
  }
};

TEST_F(CoordinatorTest, WarmRejoinRestoresWithoutRetraining) {
  RecoveryOptions opt;
  RecoveryStats stats = RunChurnWindow(opt);
  EXPECT_GT(stats.warm_rejoins, 0u);
  EXPECT_EQ(stats.cold_rejoins, 0u);
  EXPECT_EQ(stats.retrain_examples, 0u);
  EXPECT_EQ(stats.corrupt_checkpoints, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_rejoin_latency_sec(),
                   opt.warm_restore_latency_sec);
}

TEST_F(CoordinatorTest, ColdRejoinRetrains) {
  RecoveryOptions opt;
  opt.warm_rejoin = false;
  RecoveryStats stats = RunChurnWindow(opt);
  EXPECT_EQ(stats.warm_rejoins, 0u);
  EXPECT_GT(stats.cold_rejoins, 0u);
  EXPECT_GT(stats.retrain_examples, 0u);
  // Retraining 8 examples at the default per-example cost dwarfs a restore.
  EXPECT_GT(stats.mean_rejoin_latency_sec(), opt.warm_restore_latency_sec);
}

TEST_F(CoordinatorTest, CorruptCheckpointDegradesToColdNeverCrashes) {
  RecoveryOptions opt;
  opt.recheckpoint_after_cold_restart = false;  // keep every rejoin corrupt
  RecoveryStats stats = RunChurnWindow(opt, /*corrupt_checkpoints_on_disk=*/true);
  EXPECT_EQ(stats.warm_rejoins, 0u);
  EXPECT_GT(stats.cold_rejoins, 0u);
  EXPECT_GT(stats.corrupt_checkpoints, 0u);
  EXPECT_GT(stats.retrain_examples, 0u);
}

TEST_F(CoordinatorTest, RecheckpointAfterColdRestartWarmsNextRejoin) {
  RecoveryOptions opt;  // recheckpoint_after_cold_restart defaults to true
  RecoveryStats stats = RunChurnWindow(opt, /*corrupt_checkpoints_on_disk=*/true);
  // First rejoin per peer is cold (corrupt checkpoint), but the re-written
  // checkpoint makes later rejoins warm again.
  EXPECT_GT(stats.cold_rejoins, 0u);
  EXPECT_GT(stats.corrupt_checkpoints, 0u);
  EXPECT_GT(stats.warm_rejoins, 0u);
}

// --- End-to-end: crash-restore equivalence and experiment wiring ---------

const VectorizedCorpus& SmallCorpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 12;
    opt.min_docs_per_user = 40;
    opt.max_docs_per_user = 50;
    opt.num_tags = 6;
    opt.vocabulary_size = 1200;
    opt.seed = 2024;
    return std::move(MakeVectorizedCorpus(opt)).value();
  }();
  return corpus;
}

ExperimentOptions SmallOptions(AlgorithmType algo) {
  ExperimentOptions opt;
  opt.env.num_peers = 12;
  opt.algorithm = algo;
  opt.max_test_documents = 60;
  opt.distribution.cls = ClassDistribution::kByUser;
  return opt;
}

TEST(CrashRestoreTest, PaceBitIdentical) {
  Result<CrashRestoreReport> report = RunCrashRestoreExperiment(
      SmallCorpus(), SmallOptions(AlgorithmType::kPace),
      /*num_crashed_peers=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->crashed_peers, 4u);
  EXPECT_EQ(report->restored_peers, 4u);
  EXPECT_EQ(report->mismatched_tags, 0u);
  EXPECT_EQ(report->mismatched_scores, 0u);
  EXPECT_EQ(report->resnapshot_mismatches, 0u);
  EXPECT_TRUE(report->bit_identical());
}

TEST(CrashRestoreTest, CemparBitIdentical) {
  Result<CrashRestoreReport> report = RunCrashRestoreExperiment(
      SmallCorpus(), SmallOptions(AlgorithmType::kCempar),
      /*num_crashed_peers=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bit_identical());
}

TEST(RecoveryExperimentTest, WarmStrictlyCheaperThanColdAtEqualQuality) {
  ExperimentOptions warm_opt = SmallOptions(AlgorithmType::kPace);
  warm_opt.env.churn = ChurnType::kExponential;
  warm_opt.env.churn_mean_online_sec = 30.0;
  warm_opt.env.churn_mean_offline_sec = 8.0;
  warm_opt.recovery.enabled = true;
  warm_opt.post_train_sim_seconds = 180.0;
  ExperimentOptions cold_opt = warm_opt;
  cold_opt.recovery.warm_rejoin = false;

  Result<ExperimentResult> warm = RunExperiment(SmallCorpus(), warm_opt);
  Result<ExperimentResult> cold = RunExperiment(SmallCorpus(), cold_opt);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Identical seeds → identical churn schedule and rejoin count.
  ASSERT_GT(warm->churn_rejoins, 0u);
  EXPECT_EQ(warm->churn_rejoins, cold->churn_rejoins);
  EXPECT_GT(warm->warm_rejoins, 0u);
  EXPECT_EQ(warm->cold_rejoins, 0u);
  EXPECT_EQ(cold->warm_rejoins, 0u);
  EXPECT_GT(cold->cold_rejoins, 0u);

  // Strictly cheaper on both recovery-cost axes…
  EXPECT_EQ(warm->retrain_examples, 0u);
  EXPECT_GT(cold->retrain_examples, 0u);
  EXPECT_LT(warm->mean_rejoin_latency_sec, cold->mean_rejoin_latency_sec);
  EXPECT_LT(warm->max_rejoin_latency_sec, cold->max_rejoin_latency_sec);

  // …at equal quality (deterministic retrain reproduces the same models).
  EXPECT_NEAR(warm->metrics.macro_f1, cold->metrics.macro_f1, 0.02);
}

TEST(RecoveryExperimentTest, RecoveryRequiresDurableAlgorithm) {
  ExperimentOptions opt = SmallOptions(AlgorithmType::kLocalOnly);
  opt.recovery.enabled = true;
  EXPECT_EQ(RunExperiment(SmallCorpus(), opt).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecoveryExperimentTest, ChurnCountersSurfacedWithoutRecovery) {
  ExperimentOptions opt = SmallOptions(AlgorithmType::kPace);
  opt.env.churn = ChurnType::kExponential;
  opt.env.churn_mean_online_sec = 30.0;
  opt.env.churn_mean_offline_sec = 8.0;
  opt.warmup_sim_seconds = 60.0;
  Result<ExperimentResult> r = RunExperiment(SmallCorpus(), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->churn_failures, 0u);
  // No recovery layer → nothing classifies the rejoins.
  EXPECT_EQ(r->warm_rejoins + r->cold_rejoins, 0u);
}

TEST(ChurnCsvTest, SchemaAndRows) {
  ChurnRow row;
  row.algorithm = "pace";
  row.churn = "exponential";
  row.rejoin_mode = "warm";
  row.macro_f1 = 0.5;
  row.rejoins = 3;
  CsvWriter csv = ChurnCsv({row});
  std::string out = csv.ToString();
  EXPECT_NE(out.find("rejoin_mode"), std::string::npos);
  EXPECT_NE(out.find("retrain_examples"), std::string::npos);
  EXPECT_NE(out.find("pace,exponential,warm"), std::string::npos);
}

}  // namespace
}  // namespace p2pdt
