#include "p2pdmt/recovery_experiment.h"

#include <cstdio>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "p2pdmt/recovery.h"

namespace p2pdt {

namespace {

/// Everything one pass of the crash-restore experiment produces.
struct PassOutput {
  std::vector<P2PPrediction> predictions;
  std::size_t crashed = 0;
  std::size_t restored = 0;
  std::size_t resnapshot_mismatches = 0;
  uint64_t checkpoint_bytes = 0;
};

/// Runs split → train → (optional crash/checkpoint-restore) → predict with
/// fully deterministic seeding, so two passes differing only in the crash
/// step are comparable prediction-by-prediction.
Result<PassOutput> RunPass(const VectorizedCorpus& corpus,
                           const ExperimentOptions& options,
                           std::size_t num_crashed_peers) {
  PassOutput out;
  CorpusSplit split =
      SplitCorpus(corpus, options.train_fraction, options.seed);
  Result<std::vector<MultiLabelDataset>> peers = DistributeData(
      split.train, options.env.num_peers, options.distribution,
      &split.train_user);
  if (!peers.ok()) return peers.status();

  Result<std::unique_ptr<Environment>> env_result =
      Environment::Create(options.env);
  if (!env_result.ok()) return env_result.status();
  Environment& env = *env_result.value();
  Result<std::unique_ptr<P2PClassifier>> algo_result =
      MakeClassifier(env, options);
  if (!algo_result.ok()) return algo_result.status();
  P2PClassifier& algo = *algo_result.value();
  P2PDT_RETURN_IF_ERROR(
      algo.Setup(std::move(peers).value(), corpus.dataset.num_tags()));

  env.StartDynamics();
  bool train_done = false;
  Status train_status = Status::OK();
  algo.Train([&](Status s) {
    train_status = s;
    train_done = true;
  });
  env.RunUntilFlag(train_done, options.max_train_sim_seconds);
  if (!train_done) return Status::Internal("training did not quiesce");
  P2PDT_RETURN_IF_ERROR(train_status);

  if (num_crashed_peers > 0) {
    if (!algo.SupportsDurability()) {
      return Status::FailedPrecondition(algo.name() +
                                        " does not support durable state");
    }
    // Victims spread across the id space (avoids only testing peer 0's
    // special cases, e.g. owning many Chord keys).
    std::size_t n = env.net().num_nodes();
    std::size_t stride = n / num_crashed_peers;
    if (stride == 0) stride = 1;
    std::vector<NodeId> victims;
    for (std::size_t i = 0; i < num_crashed_peers && i * stride < n; ++i) {
      victims.push_back(static_cast<NodeId>(i * stride));
    }
    out.crashed = victims.size();

    // Checkpoint before the crash, evict (what the crash destroys), then
    // restore from the checkpoint — the exact warm-rejoin path.
    std::vector<std::string> blobs(victims.size());
    for (std::size_t i = 0; i < victims.size(); ++i) {
      Result<std::string> blob = algo.Snapshot(victims[i]);
      if (!blob.ok()) return blob.status();
      blobs[i] = std::move(blob).value();
      out.checkpoint_bytes += blobs[i].size();
    }
    for (NodeId v : victims) algo.EvictPeer(v);
    for (std::size_t i = 0; i < victims.size(); ++i) {
      P2PDT_RETURN_IF_ERROR(algo.Restore(victims[i], blobs[i]));
      ++out.restored;
      // Byte-exact round trip: re-snapshotting a restored peer must
      // reproduce the pre-crash blob.
      Result<std::string> again = algo.Snapshot(victims[i]);
      if (!again.ok() || *again != blobs[i]) ++out.resnapshot_mismatches;
    }
    // One anti-entropy round, as a real rejoin would run.
    std::size_t outstanding = victims.size();
    bool resynced = (outstanding == 0);
    for (NodeId v : victims) {
      algo.ResyncPeer(v, [&] {
        if (--outstanding == 0) resynced = true;
      });
    }
    env.RunUntilFlag(resynced, options.max_train_sim_seconds);
    if (!resynced) return Status::Internal("resync did not quiesce");
  }

  // Identical prediction workload to RunExperiment's evaluation loop.
  Rng eval_rng(options.seed ^ 0xE7A1);
  std::vector<std::size_t> test_idx(split.test.size());
  std::iota(test_idx.begin(), test_idx.end(), 0);
  eval_rng.Shuffle(test_idx);
  if (options.max_test_documents > 0 &&
      test_idx.size() > options.max_test_documents) {
    test_idx.resize(options.max_test_documents);
  }
  out.predictions.resize(test_idx.size());
  std::size_t outstanding = test_idx.size();
  bool predict_done = (outstanding == 0);
  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    const MultiLabelExample& ex = split.test[test_idx[i]];
    NodeId requester = eval_rng.NextU64(env.net().num_nodes());
    algo.Predict(requester, ex.x, [&, i](P2PPrediction p) {
      out.predictions[i] = std::move(p);
      if (--outstanding == 0) predict_done = true;
    });
  }
  env.RunUntilFlag(predict_done, options.max_predict_sim_seconds);
  if (!predict_done) return Status::Internal("prediction did not quiesce");
  return out;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

Result<CrashRestoreReport> RunCrashRestoreExperiment(
    const VectorizedCorpus& corpus, const ExperimentOptions& base,
    std::size_t num_crashed_peers) {
  ExperimentOptions options = base;
  options.env.churn = ChurnType::kNone;  // isolate the restore path
  options.recovery.enabled = false;      // this harness drives recovery itself

  Result<PassOutput> baseline = RunPass(corpus, options, 0);
  if (!baseline.ok()) return baseline.status();
  Result<PassOutput> recovered = RunPass(corpus, options, num_crashed_peers);
  if (!recovered.ok()) return recovered.status();

  CrashRestoreReport report;
  report.algorithm = AlgorithmTypeToString(options.algorithm);
  report.crashed_peers = recovered->crashed;
  report.restored_peers = recovered->restored;
  report.resnapshot_mismatches = recovered->resnapshot_mismatches;
  report.checkpoint_bytes = recovered->checkpoint_bytes;
  report.predictions = baseline->predictions.size();
  if (baseline->predictions.size() != recovered->predictions.size()) {
    return Status::Internal("prediction counts diverged between passes");
  }
  for (std::size_t i = 0; i < baseline->predictions.size(); ++i) {
    const P2PPrediction& a = baseline->predictions[i];
    const P2PPrediction& b = recovered->predictions[i];
    if (a.tags != b.tags) ++report.mismatched_tags;
    if (!SameBits(a.scores, b.scores)) ++report.mismatched_scores;
  }
  return report;
}

namespace {

ChurnRow MakeChurnRow(const ExperimentResult& r, bool warm) {
  ChurnRow row;
  row.algorithm = r.algorithm;
  row.churn = r.churn;
  row.rejoin_mode = warm ? "warm" : "cold";
  row.micro_f1 = r.metrics.micro_f1;
  row.macro_f1 = r.metrics.macro_f1;
  row.failed_predictions = r.failed_predictions;
  row.test_documents = r.test_documents;
  row.failures = r.churn_failures;
  row.rejoins = r.churn_rejoins;
  row.warm_rejoins = r.warm_rejoins;
  row.cold_rejoins = r.cold_rejoins;
  row.corrupt_checkpoints = r.corrupt_checkpoints;
  row.retrain_examples = r.retrain_examples;
  row.checkpoint_bytes = r.checkpoint_bytes;
  row.mean_rejoin_latency_sec = r.mean_rejoin_latency_sec;
  row.max_rejoin_latency_sec = r.max_rejoin_latency_sec;
  return row;
}

}  // namespace

std::vector<ChurnRow> RunWarmColdSweep(const VectorizedCorpus& corpus,
                                       const ChurnSweepOptions& options) {
  std::vector<ChurnRow> rows;
  for (AlgorithmType algo : options.algorithms) {
    for (ChurnType churn : options.churn_models) {
      for (bool warm : {true, false}) {
        ExperimentOptions opt = options.base;
        opt.algorithm = algo;
        opt.env.churn = churn;
        opt.recovery.enabled = true;
        opt.recovery.warm_rejoin = warm;
        opt.post_train_sim_seconds = options.exposure_sim_seconds;
        Result<ExperimentResult> r = RunExperiment(corpus, opt);
        if (!r.ok()) {
          P2PDT_LOG(Warning)
              << AlgorithmTypeToString(algo) << " churn="
              << ChurnTypeToString(churn) << " mode="
              << (warm ? "warm" : "cold")
              << " failed: " << r.status().ToString();
          continue;
        }
        rows.push_back(MakeChurnRow(*r, warm));
        if (options.on_point) options.on_point(rows.back());
      }
    }
  }
  return rows;
}

CsvWriter ChurnCsv(const std::vector<ChurnRow>& rows) {
  CsvWriter csv({"algorithm", "churn", "rejoin_mode", "micro_f1", "macro_f1",
                 "failed", "attempted", "failures", "rejoins", "warm_rejoins",
                 "cold_rejoins", "corrupt_checkpoints", "retrain_examples",
                 "checkpoint_bytes", "mean_rejoin_latency_sec",
                 "max_rejoin_latency_sec"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const ChurnRow& row : rows) {
    csv.AddRow({row.algorithm, row.churn, row.rejoin_mode, fmt(row.micro_f1),
                fmt(row.macro_f1), std::to_string(row.failed_predictions),
                std::to_string(row.test_documents),
                std::to_string(row.failures), std::to_string(row.rejoins),
                std::to_string(row.warm_rejoins),
                std::to_string(row.cold_rejoins),
                std::to_string(row.corrupt_checkpoints),
                std::to_string(row.retrain_examples),
                std::to_string(row.checkpoint_bytes),
                fmt(row.mean_rejoin_latency_sec),
                fmt(row.max_rejoin_latency_sec)});
  }
  return csv;
}

}  // namespace p2pdt
