#include "core/metadata_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/checkpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace p2pdt {

namespace fs = std::filesystem;

MetadataStore::MetadataStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string MetadataStore::PathFor(DocId id) const {
  return directory_ + "/" + std::to_string(id) + ".tags";
}

Status MetadataStore::Save(const Document& doc) const {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IOError("cannot create " + directory_ + ": " +
                           ec.message());
  }
  std::string out;
  for (const TagAssignment& a : doc.tags) {
    out += a.tag;
    out += '\t';
    out += TagSourceToString(a.source);
    out += '\t';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", a.confidence);
    out += buf;
    out += '\n';
  }
  return AtomicWriteFile(PathFor(doc.id), out);
}

Result<std::vector<TagAssignment>> MetadataStore::Load(
    DocId id, std::size_t* skipped_lines) const {
  std::ifstream f(PathFor(id));
  if (!f) return Status::NotFound("no sidecar for doc " + std::to_string(id));
  std::vector<TagAssignment> out;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.empty() || fields[0].empty()) {
      // Torn line (crash mid-append with a pre-atomic writer, or an
      // external editor): salvage the rest of the sidecar.
      ++skipped;
      P2PDT_LOG(Warning) << "skipping malformed sidecar line in "
                         << PathFor(id);
      continue;
    }
    TagAssignment a;
    a.tag = fields[0];
    if (fields.size() > 1) {
      if (fields[1] == "auto") {
        a.source = TagSource::kAuto;
      } else if (fields[1] == "suggested") {
        a.source = TagSource::kSuggested;
      } else {
        a.source = TagSource::kManual;
      }
    }
    if (fields.size() > 2) {
      char* end = nullptr;
      double c = std::strtod(fields[2].c_str(), &end);
      if (end != fields[2].c_str()) a.confidence = c;
    }
    out.push_back(std::move(a));
  }
  if (skipped_lines != nullptr) *skipped_lines = skipped;
  return out;
}

Status MetadataStore::Erase(DocId id) const {
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) return Status::IOError("cannot remove sidecar: " + ec.message());
  return Status::OK();
}

Result<std::vector<DocId>> MetadataStore::ListDocuments() const {
  std::vector<DocId> out;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return out;  // missing directory = empty store
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (!EndsWith(name, ".tags")) continue;
    char* end = nullptr;
    unsigned long long id = std::strtoull(name.c_str(), &end, 10);
    if (end != name.c_str()) out.push_back(static_cast<DocId>(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace p2pdt
