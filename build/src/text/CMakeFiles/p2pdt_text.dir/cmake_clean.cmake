file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_text.dir/lexicon.cc.o"
  "CMakeFiles/p2pdt_text.dir/lexicon.cc.o.d"
  "CMakeFiles/p2pdt_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/p2pdt_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/p2pdt_text.dir/preprocessor.cc.o"
  "CMakeFiles/p2pdt_text.dir/preprocessor.cc.o.d"
  "CMakeFiles/p2pdt_text.dir/stopwords.cc.o"
  "CMakeFiles/p2pdt_text.dir/stopwords.cc.o.d"
  "CMakeFiles/p2pdt_text.dir/tokenizer.cc.o"
  "CMakeFiles/p2pdt_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/p2pdt_text.dir/vectorizer.cc.o"
  "CMakeFiles/p2pdt_text.dir/vectorizer.cc.o.d"
  "libp2pdt_text.a"
  "libp2pdt_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
