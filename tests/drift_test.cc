// Drift-robustness suite: determinism of the drifting stream generator,
// bit-identity of the armed-but-idle drift machinery on stationary
// streams, serial==sharded bit-determinism with drift events and the
// retrain/republish path live, and an end-to-end detection/recovery case
// pinned to the CI smoke configuration.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/vectorize.h"
#include "p2pdmt/drift.h"

namespace p2pdt {
namespace {

StreamOptions TinyStream() {
  StreamOptions stream;
  stream.base.num_users = 8;
  stream.base.num_tags = 3;
  stream.base.vocabulary_size = 300;
  stream.base.topic_words_per_tag = 20;
  stream.base.min_doc_words = 15;
  stream.base.max_doc_words = 40;
  stream.base.seed = 4242;
  stream.num_epochs = 5;
  stream.min_docs_per_user_per_epoch = 3;
  stream.max_docs_per_user_per_epoch = 4;
  stream.reserve_tags = 1;
  return stream;
}

DriftEvent SuddenShift(std::size_t epoch) {
  DriftEvent event;
  event.kind = DriftKind::kVocabularyShift;
  event.epoch = epoch;
  event.tag = DriftEvent::kAllTags;
  event.magnitude = 1.0;
  return event;
}

bool SameDocuments(const StreamedCorpus& a, const StreamedCorpus& b,
                   std::size_t upto_epoch) {
  if (a.documents.size() != b.documents.size()) return false;
  for (std::size_t i = 0; i < a.documents.size(); ++i) {
    if (a.doc_epoch[i] != b.doc_epoch[i]) return false;
    if (a.doc_epoch[i] >= upto_epoch) continue;
    const RawDocument& da = a.documents[i];
    const RawDocument& db = b.documents[i];
    if (da.title != db.title || da.text != db.text || da.tags != db.tags ||
        da.user != db.user) {
      return false;
    }
  }
  return true;
}

TEST(DriftStreamTest, GenerationIsDeterministic) {
  StreamOptions opt = TinyStream();
  opt.events.push_back(SuddenShift(2));
  Result<StreamedCorpus> a = GenerateStream(opt);
  Result<StreamedCorpus> b = GenerateStream(opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().first_drift_epoch, 2u);
  EXPECT_TRUE(SameDocuments(a.value(), b.value(), opt.num_epochs));
}

TEST(DriftStreamTest, EventsLeaveEarlierEpochsUntouched) {
  StreamOptions stationary = TinyStream();
  StreamOptions drifting = TinyStream();
  drifting.events.push_back(SuddenShift(2));
  Result<StreamedCorpus> a = GenerateStream(stationary);
  Result<StreamedCorpus> b = GenerateStream(drifting);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().first_drift_epoch, stationary.num_epochs);
  // Pre-drift epochs draw from RNG streams keyed only by (seed, epoch) —
  // scripting an event at epoch 2 cannot rewrite history before it.
  EXPECT_TRUE(SameDocuments(a.value(), b.value(), 2));
}

TEST(DriftScenarioTest, KnownScenariosProduceEvents) {
  StreamOptions opt = TinyStream();
  for (const char* name :
       {"sudden_vocab", "gradual_rotation", "popularity_spike", "new_tag"}) {
    Result<std::vector<DriftEvent>> events = ScenarioEvents(name, opt);
    ASSERT_TRUE(events.ok()) << name << ": " << events.status().ToString();
    EXPECT_FALSE(events.value().empty()) << name;
  }
  Result<std::vector<DriftEvent>> none = ScenarioEvents("none", opt);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(DriftScenarioTest, NewTagNeedsAReservedTag) {
  StreamOptions opt = TinyStream();
  opt.reserve_tags = 0;
  EXPECT_FALSE(ScenarioEvents("new_tag", opt).ok());
  EXPECT_FALSE(ScenarioEvents("no_such_scenario", TinyStream()).ok());
}

DriftExperimentOptions HarnessOptions(RetrainPolicy policy) {
  DriftExperimentOptions opt;
  opt.algorithm = AlgorithmType::kPace;
  opt.pace.reliable_dissemination = true;
  opt.policy = policy;
  opt.window_documents = 24;
  opt.staleness.window = 8;
  opt.staleness.min_observations = 6;
  opt.staleness.drift_threshold = 0.06;
  opt.staleness.stale_after_docs = 16;
  opt.periodic_interval_epochs = 2;
  return opt;
}

const VectorizedStream& StationaryStream() {
  static const VectorizedStream stream = [] {
    Result<VectorizedStream> r = MakeVectorizedStream(TinyStream());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }();
  return stream;
}

const VectorizedStream& DriftingStream() {
  static const VectorizedStream stream = [] {
    StreamOptions opt = TinyStream();
    opt.events.push_back(SuddenShift(2));
    Result<VectorizedStream> r = MakeVectorizedStream(opt);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }();
  return stream;
}

DriftExperimentResult RunHarness(const VectorizedStream& stream,
                                 DriftExperimentOptions opt) {
  Result<DriftExperimentResult> r = RunDriftExperiment(stream, opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// The ISSUE acceptance contract: on a stationary stream the armed drift
// machinery (trackers fed, detector consulted, refresh path compiled in)
// must be observably invisible — bit-identical to the frozen baseline.
TEST(DriftHarnessTest, StationaryArmedPoliciesAreBitIdentical) {
  // The detection threshold is a per-stream calibration (see bench_drift):
  // on this tiny 8-peer stream the stationary Jaccard-gap noise ceiling
  // sits higher than on the bench streams, so the armed arms run with a
  // threshold above it — fed and consulted every epoch, never firing.
  auto armed = [](RetrainPolicy policy) {
    DriftExperimentOptions opt = HarnessOptions(policy);
    opt.staleness.drift_threshold = 0.35;
    return opt;
  };
  DriftExperimentResult frozen =
      RunHarness(StationaryStream(), armed(RetrainPolicy::kFrozen));
  DriftExperimentResult staleness = RunHarness(
      StationaryStream(), armed(RetrainPolicy::kStalenessTriggered));
  DriftExperimentResult drift =
      RunHarness(StationaryStream(), armed(RetrainPolicy::kDriftTriggered));
  EXPECT_EQ(frozen.retrains, 0u);
  EXPECT_EQ(staleness.retrains, 0u);
  EXPECT_EQ(drift.retrains, 0u);
  EXPECT_EQ(frozen.fingerprint, staleness.fingerprint);
  EXPECT_EQ(frozen.fingerprint, drift.fingerprint);
  EXPECT_GT(frozen.fingerprint, 0u);
}

// Serial vs sharded with drift events live AND the periodic retrain /
// republish path firing every interval: the whole epoch loop — predict,
// track, retrain, republish, re-evaluate — must be bit-deterministic
// across shard and thread counts.
TEST(DriftHarnessTest, SerialMatchesShardedWithRetrainsLive) {
  DriftExperimentOptions serial = HarnessOptions(RetrainPolicy::kPeriodic);
  serial.pace.sim_shards = 1;
  serial.pace.num_threads = 1;
  DriftExperimentOptions sharded = HarnessOptions(RetrainPolicy::kPeriodic);
  sharded.pace.sim_shards = 4;
  sharded.pace.num_threads = 4;
  DriftExperimentResult a = RunHarness(DriftingStream(), serial);
  DriftExperimentResult b = RunHarness(DriftingStream(), sharded);
  EXPECT_GT(a.retrains, 0u);
  EXPECT_EQ(a.retrains, b.retrains);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(DriftHarnessTest, SerialMatchesShardedWithDetectorArmed) {
  DriftExperimentOptions serial =
      HarnessOptions(RetrainPolicy::kDriftTriggered);
  serial.pace.sim_shards = 1;
  serial.pace.num_threads = 1;
  DriftExperimentOptions sharded =
      HarnessOptions(RetrainPolicy::kDriftTriggered);
  sharded.pace.sim_shards = 4;
  sharded.pace.num_threads = 4;
  DriftExperimentResult a = RunHarness(DriftingStream(), serial);
  DriftExperimentResult b = RunHarness(DriftingStream(), sharded);
  EXPECT_EQ(a.retrains, b.retrains);
  EXPECT_EQ(a.drift_detections, b.drift_detections);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// End-to-end detection and recovery, pinned to the CI smoke shape: a
// sudden vocabulary shift under 20 % packet loss. The drift-triggered arm
// must actually fire and must end strictly better than the frozen arm.
TEST(DriftHarnessTest, DetectorFiresAndRecoveryBeatsFrozen) {
  StreamOptions opt;
  opt.base.num_users = 10;
  opt.base.num_tags = 4;
  opt.base.vocabulary_size = 800;
  opt.base.topic_words_per_tag = 40;
  opt.base.min_doc_words = 30;
  opt.base.max_doc_words = 80;
  opt.base.seed = 20100913;
  opt.num_epochs = 6;
  opt.min_docs_per_user_per_epoch = 3;
  opt.max_docs_per_user_per_epoch = 5;
  opt.reserve_tags = 1;
  Result<std::vector<DriftEvent>> events = ScenarioEvents("sudden_vocab", opt);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  opt.events = std::move(events).value();
  Result<VectorizedStream> stream = MakeVectorizedStream(opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  DriftExperimentOptions frozen_opt = HarnessOptions(RetrainPolicy::kFrozen);
  frozen_opt.env.physical.loss_rate = 0.2;
  frozen_opt.window_documents = 40;
  frozen_opt.staleness.window = 12;
  frozen_opt.staleness.min_observations = 8;
  frozen_opt.staleness.fast_alpha = 0.3;
  frozen_opt.staleness.slow_alpha = 0.01;
  frozen_opt.staleness.stale_after_docs = 24;
  DriftExperimentOptions drift_opt = frozen_opt;
  drift_opt.policy = RetrainPolicy::kDriftTriggered;

  DriftExperimentResult frozen = RunHarness(stream.value(), frozen_opt);
  DriftExperimentResult drift = RunHarness(stream.value(), drift_opt);
  EXPECT_EQ(frozen.retrains, 0u);
  EXPECT_GT(drift.retrains, 0u);
  EXPECT_GT(drift.drift_detections, 0u);
  EXPECT_GT(drift.final_f1, frozen.final_f1);
  EXPECT_GT(frozen.max_dip, 0.0);
}

}  // namespace
}  // namespace p2pdt
