// p2pdtd — the real-socket service daemon. Trains the chosen protocol on
// the deterministic demo corpus, then serves tag predictions over TCP with
// the length-prefixed frame codec. Single process, single thread: the epoll
// loop is also the simulator driver thread.
//
// Graceful shutdown: SIGTERM / SIGINT request a drain — stop accepting,
// finish every request already received, flush, exit 0. A second signal
// while draining is ignored (the drain deadline force-closes stragglers).
//
// Run example (see README "Service mode"):
//   p2pdtd --port 7421 --algo pace &
//   p2pdt_client --port 7421 --sessions 16 --rate 40

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "corpus/vectorize.h"
#include "net/daemon.h"
#include "p2pdmt/service_harness.h"

using namespace p2pdt;

namespace {

ServiceDaemon* g_daemon = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: RequestDrain only writes one byte to the loop's
  // self-pipe.
  if (g_daemon != nullptr) g_daemon->RequestDrain();
}

struct Flags {
  uint16_t port = 0;
  std::string bind = "127.0.0.1";
  std::string algo = "pace";
  std::size_t peers = 24;
  std::size_t users = 24;
  std::size_t tags = 6;
  std::size_t max_connections = 256;
  double idle_timeout = 30.0;
  double drain_timeout = 10.0;
  bool admission = false;
  double service_rate = 200.0;
  std::size_t max_depth = 32;
  std::size_t max_docs = 256;
  uint64_t seed = 20100913;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--algo pace|cempar] [--peers N]\n"
      "          [--users N] [--tags N] [--max-connections N]\n"
      "          [--idle-timeout SEC] [--drain-timeout SEC]\n"
      "          [--admission] [--service-rate R] [--max-depth N]\n"
      "          [--max-docs N] [--seed N]\n",
      prog);
}

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--admission") {
      flags.admission = true;
    } else if (arg == "--port" && (v = next())) {
      flags.port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--bind" && (v = next())) {
      flags.bind = v;
    } else if (arg == "--algo" && (v = next())) {
      flags.algo = v;
    } else if (arg == "--peers" && (v = next())) {
      flags.peers = std::strtoull(v, nullptr, 10);
    } else if (arg == "--users" && (v = next())) {
      flags.users = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tags" && (v = next())) {
      flags.tags = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-connections" && (v = next())) {
      flags.max_connections = std::strtoull(v, nullptr, 10);
    } else if (arg == "--idle-timeout" && (v = next())) {
      flags.idle_timeout = std::strtod(v, nullptr);
    } else if (arg == "--drain-timeout" && (v = next())) {
      flags.drain_timeout = std::strtod(v, nullptr);
    } else if (arg == "--service-rate" && (v = next())) {
      flags.service_rate = std::strtod(v, nullptr);
    } else if (arg == "--max-depth" && (v = next())) {
      flags.max_depth = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-docs" && (v = next())) {
      flags.max_docs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) return 2;

  CorpusOptions corpus_options;
  corpus_options.num_users = flags.users;
  corpus_options.min_docs_per_user = 50;
  corpus_options.max_docs_per_user = 80;
  corpus_options.num_tags = flags.tags;
  corpus_options.vocabulary_size = 3000;
  corpus_options.seed = flags.seed;
  Result<VectorizedCorpus> corpus = MakeVectorizedCorpus(corpus_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  ServiceHarnessOptions harness;
  harness.algorithm =
      flags.algo == "cempar" ? AlgorithmType::kCempar : AlgorithmType::kPace;
  harness.env.num_peers = flags.peers;
  harness.max_docs = flags.max_docs;
  harness.seed = flags.seed;
  std::fprintf(stderr, "p2pdtd: training %s on %zu peers...\n",
               flags.algo.c_str(), flags.peers);
  Result<std::unique_ptr<TrainedService>> service =
      BuildTrainedService(*corpus, harness);
  if (!service.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  TrainedService& trained = **service;

  DaemonOptions options;
  options.bind_address = flags.bind;
  options.port = flags.port;
  options.max_connections = flags.max_connections;
  options.idle_timeout = flags.idle_timeout;
  options.drain_timeout = flags.drain_timeout;
  options.serve.enabled = flags.admission;
  options.serve.admission_control = flags.admission;
  options.serve.service_rate = flags.service_rate;
  options.serve.max_depth = flags.max_depth;
  options.metrics = trained.env->metrics();

  ServiceDaemon daemon(options, [&trained](NodeId requester,
                                           const SparseVector& x) {
    return trained.Serve(requester, x);
  });
  Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }

  g_daemon = &daemon;
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Scripts parse this line for the ephemeral port; keep the format stable.
  std::printf("p2pdtd listening on %s:%u (algo=%s catalog=%zu)\n",
              flags.bind.c_str(), daemon.port(), flags.algo.c_str(),
              trained.catalog.size());
  std::fflush(stdout);

  daemon.Run();
  g_daemon = nullptr;

  const DaemonStats& stats = daemon.stats();
  std::printf(
      "p2pdtd exiting: accepted=%llu requests=%llu ok=%llu degraded=%llu "
      "failed=%llu shed=%llu malformed=%llu oversized=%llu reaped=%llu "
      "drain_completed=%d\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.served_ok),
      static_cast<unsigned long long>(stats.served_degraded),
      static_cast<unsigned long long>(stats.served_failed),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.malformed_frames +
                                      stats.malformed_payloads),
      static_cast<unsigned long long>(stats.oversized_frames),
      static_cast<unsigned long long>(stats.reaped_idle),
      stats.drain_completed ? 1 : 0);
  return 0;
}
