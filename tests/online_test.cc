#include "ml/online.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

SparseVector X(std::vector<SparseVector::Entry> f) {
  return SparseVector::FromPairs(std::move(f));
}

TEST(PassiveAggressiveTest, NoUpdateWhenMarginSatisfied) {
  LinearSvmModel model(X({{0, 5.0}}), 0.0);
  SparseVector x = X({{0, 1.0}});
  double before = model.Decision(x);
  double loss = PassiveAggressiveUpdate(model, x, 1.0);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(model.Decision(x), before);
}

TEST(PassiveAggressiveTest, UpdateMovesTowardLabel) {
  LinearSvmModel model;  // zero model
  SparseVector x = X({{0, 1.0}});
  double loss = PassiveAggressiveUpdate(model, x, 1.0);
  EXPECT_DOUBLE_EQ(loss, 1.0);  // hinge at zero decision
  EXPECT_GT(model.Decision(x), 0.0);
}

TEST(PassiveAggressiveTest, NegativeLabelMovesDown) {
  LinearSvmModel model;
  SparseVector x = X({{3, 2.0}});
  PassiveAggressiveUpdate(model, x, -1.0);
  EXPECT_LT(model.Decision(x), 0.0);
}

TEST(PassiveAggressiveTest, RepeatedUpdatesConverge) {
  LinearSvmModel model;
  SparseVector x = X({{0, 1.0}});
  for (int i = 0; i < 20; ++i) {
    PassiveAggressiveUpdate(model, x, 1.0);
  }
  // PA converges toward margin 1 on a single example.
  EXPECT_GT(model.Decision(x), 0.8);
  EXPECT_DOUBLE_EQ(PassiveAggressiveUpdate(model, x, 1.0),
                   std::max(0.0, 1.0 - model.Decision(x)));
}

TEST(PassiveAggressiveTest, LargerCMovesFaster) {
  LinearSvmModel slow, fast;
  SparseVector x = X({{0, 1.0}});
  OnlineUpdateOptions small;
  small.c = 0.1;
  OnlineUpdateOptions big;
  big.c = 10.0;
  PassiveAggressiveUpdate(slow, x, 1.0, small);
  PassiveAggressiveUpdate(fast, x, 1.0, big);
  EXPECT_GT(fast.Decision(x), slow.Decision(x));
}

OneVsAllModel TwoTagModel() {
  OneVsAllModel model;
  model.SetModel(0, std::make_unique<LinearSvmModel>(X({{0, 1.0}}), 0.0));
  model.SetModel(1, std::make_unique<LinearSvmModel>(X({{1, 1.0}}), 0.0));
  return model;
}

TEST(RefineTagsTest, PositiveAndNegativeCorrections) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}, {1, 1.0}});
  // The system predicted {0, 1}; the user corrected to {1}: tag 0 gets a
  // negative update, tag 1 a positive one.
  std::size_t updated = RefineTags(model, x, /*predicted=*/{0, 1},
                                   /*corrected=*/{1});
  EXPECT_EQ(updated, 2u);
  EXPECT_LT(model.model(0)->Decision(x), 1.0);
  EXPECT_GE(model.model(1)->Decision(x), 1.0);
}

TEST(RefineTagsTest, RepeatedRefinementFlipsPrediction) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}});
  ASSERT_GT(model.model(0)->Decision(x), 0.0);
  // The user insists tag 0 does NOT belong on this document.
  for (int i = 0; i < 10; ++i) {
    RefineTags(model, x, {0}, {});
  }
  EXPECT_LT(model.model(0)->Decision(x), 0.0);
}

TEST(RefineTagsTest, UnknownTagsIgnoredGracefully) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}});
  // Corrected tag 9 has no model yet; predicted tag 7 neither.
  std::size_t updated = RefineTags(model, x, {7}, {9});
  EXPECT_EQ(updated, 0u);
}

TEST(RefineTagsTest, NonLinearModelsLeftAlone) {
  OneVsAllModel model;
  // No model at all for tag 0 (nullptr).
  model.SetModel(0, nullptr);
  EXPECT_EQ(RefineTags(model, X({{0, 1.0}}), {0}, {0}), 0u);
}

}  // namespace
}  // namespace p2pdt
