#ifndef P2PDT_COMMON_CRC32_H_
#define P2PDT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace p2pdt {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
/// check on every checkpoint payload. Table-driven, no dependencies; the
/// same polynomial zlib/PNG use, so externally produced checksums can be
/// cross-checked.
uint32_t Crc32(const void* data, std::size_t size);

inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

/// Incremental form: feed `crc` from a previous call to extend a running
/// checksum over multiple buffers. Start from 0.
uint32_t Crc32Update(uint32_t crc, const void* data, std::size_t size);

}  // namespace p2pdt

#endif  // P2PDT_COMMON_CRC32_H_
