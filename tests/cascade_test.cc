#include "ml/kernel_svm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace p2pdt {
namespace {

// Two Gaussian-ish clusters in feature space, split across `parts` shards.
struct Shards {
  std::vector<std::vector<Example>> parts;
  std::vector<Example> all;
  std::vector<Example> test;
};

Shards MakeShardedProblem(std::size_t parts, std::size_t per_part,
                          uint64_t seed) {
  Rng rng(seed);
  Shards s;
  s.parts.resize(parts);
  auto sample = [&](bool pos) {
    uint32_t base = pos ? 0 : 6;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 6; ++j) {
      f.emplace_back(base + j, rng.Uniform(0.2, 1.0));
    }
    // Mild overlap on shared features.
    f.emplace_back(12 + static_cast<uint32_t>(rng.NextU64(4)),
                   rng.NextDouble());
    Example ex{SparseVector::FromPairs(std::move(f)), pos ? 1.0 : -1.0};
    return ex;
  };
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t i = 0; i < per_part; ++i) {
      Example ex = sample(i % 2 == 0);
      s.parts[p].push_back(ex);
      s.all.push_back(ex);
    }
  }
  for (std::size_t i = 0; i < 200; ++i) s.test.push_back(sample(i % 2 == 0));
  return s;
}

double Accuracy(const KernelSvmModel& model,
                const std::vector<Example>& test) {
  std::size_t ok = 0;
  for (const Example& ex : test) {
    if (model.Predict(ex.x) == ex.y) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(test.size());
}

TEST(CascadeTest, MergeOfZeroModelsFails) {
  KernelSvmOptions opt;
  EXPECT_FALSE(CascadeMerge({}, opt).ok());
  EXPECT_FALSE(CascadeTree({}, opt).ok());
}

TEST(CascadeTest, MergeOfOneModelIsIdentity) {
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<Example> data = {{SparseVector::FromPairs({{0, 1.0}}), 1},
                               {SparseVector::FromPairs({{1, 1.0}}), -1}};
  Result<KernelSvmModel> model = TrainKernelSvm(data, opt);
  ASSERT_TRUE(model.ok());
  Result<KernelSvmModel> merged = CascadeMerge({&model.value()}, opt);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_support_vectors(), model->num_support_vectors());
}

TEST(CascadeTest, RejectsSmallFanIn) {
  KernelSvmOptions opt;
  std::vector<Example> data = {{SparseVector::FromPairs({{0, 1.0}}), 1},
                               {SparseVector::FromPairs({{1, 1.0}}), -1}};
  KernelSvmModel m = std::move(TrainKernelSvm(data, opt)).value();
  EXPECT_FALSE(CascadeTree({&m}, opt, 1).ok());
}

TEST(CascadeTest, CascadeApproachesCentralizedAccuracy) {
  // The property CEMPaR rests on: merging per-peer models' support vectors
  // and retraining recovers (nearly) the centrally-trained model.
  Shards s = MakeShardedProblem(8, 20, 17);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();

  Result<KernelSvmModel> central = TrainKernelSvm(s.all, opt);
  ASSERT_TRUE(central.ok());

  std::vector<KernelSvmModel> locals;
  for (const auto& part : s.parts) {
    locals.push_back(std::move(TrainKernelSvm(part, opt)).value());
  }
  std::vector<const KernelSvmModel*> ptrs;
  for (const auto& m : locals) ptrs.push_back(&m);
  Result<KernelSvmModel> cascaded = CascadeTree(ptrs, opt, 4);
  ASSERT_TRUE(cascaded.ok());

  double acc_central = Accuracy(central.value(), s.test);
  double acc_cascade = Accuracy(cascaded.value(), s.test);
  double acc_single = Accuracy(locals[0], s.test);

  EXPECT_GT(acc_central, 0.9);
  EXPECT_GE(acc_cascade, acc_central - 0.05);
  EXPECT_GE(acc_cascade, acc_single - 0.02);
}

TEST(CascadeTest, CascadeCompactsSupportVectors) {
  // The merged model must not keep every input SV: retraining prunes.
  Shards s = MakeShardedProblem(6, 30, 23);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<KernelSvmModel> locals;
  std::size_t total_svs = 0;
  for (const auto& part : s.parts) {
    locals.push_back(std::move(TrainKernelSvm(part, opt)).value());
    total_svs += locals.back().num_support_vectors();
  }
  std::vector<const KernelSvmModel*> ptrs;
  for (const auto& m : locals) ptrs.push_back(&m);
  Result<KernelSvmModel> merged = CascadeMerge(ptrs, opt);
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(merged->num_support_vectors(), total_svs);
  EXPECT_GT(merged->num_support_vectors(), 0u);
}

TEST(CascadeTest, MergeDeduplicatesSharedVectors) {
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<Example> data = {{SparseVector::FromPairs({{0, 1.0}}), 1},
                               {SparseVector::FromPairs({{1, 1.0}}), -1}};
  KernelSvmModel m = std::move(TrainKernelSvm(data, opt)).value();
  // Merging the same model three times must behave like merging it once.
  Result<KernelSvmModel> merged = CascadeMerge({&m, &m, &m}, opt);
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(merged->num_support_vectors(), m.num_support_vectors());
  EXPECT_GT(merged->Decision(data[0].x), 0.0);
  EXPECT_LT(merged->Decision(data[1].x), 0.0);
}

TEST(CascadeTest, AllConstantModelsVote) {
  KernelSvmOptions opt;
  KernelSvmModel pos(opt.kernel, {}, 1.0);
  KernelSvmModel neg(opt.kernel, {}, -1.0);
  Result<KernelSvmModel> merged = CascadeMerge({&pos, &pos, &neg}, opt);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(merged->Decision(SparseVector()), 0.0);
}

TEST(CascadeTest, TreeMatchesFlatMergeOnModestInputs) {
  Shards s = MakeShardedProblem(4, 16, 31);
  KernelSvmOptions opt;
  opt.kernel = Kernel::Linear();
  std::vector<KernelSvmModel> locals;
  for (const auto& part : s.parts) {
    locals.push_back(std::move(TrainKernelSvm(part, opt)).value());
  }
  std::vector<const KernelSvmModel*> ptrs;
  for (const auto& m : locals) ptrs.push_back(&m);
  double acc_flat =
      Accuracy(std::move(CascadeMerge(ptrs, opt)).value(), s.test);
  double acc_tree =
      Accuracy(std::move(CascadeTree(ptrs, opt, 2)).value(), s.test);
  EXPECT_NEAR(acc_flat, acc_tree, 0.05);
}

}  // namespace
}  // namespace p2pdt
