#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json_check.h"

namespace p2pdt {
namespace {

TEST(RenderMetricKeyTest, UnlabeledIsBareName) {
  EXPECT_EQ(RenderMetricKey("messages_total", {}), "messages_total");
}

TEST(RenderMetricKeyTest, LabelsAreSortedByKey) {
  MetricLabels a = {{"phase", "train"}, {"classifier", "pace"}};
  MetricLabels b = {{"classifier", "pace"}, {"phase", "train"}};
  EXPECT_EQ(RenderMetricKey("phase_seconds", a),
            "phase_seconds{classifier=pace,phase=train}");
  EXPECT_EQ(RenderMetricKey("phase_seconds", a),
            RenderMetricKey("phase_seconds", b));
}

TEST(CounterTest, IncrementAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("sends");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same (name, labels) → same object.
  EXPECT_EQ(&reg.GetCounter("sends"), &c);
}

TEST(CounterTest, LabelOrderResolvesToSameFamilyMember) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("drops", {{"type", "ack"}, {"reason", "loss"}});
  Counter& b = reg.GetCounter("drops", {{"reason", "loss"}, {"type", "ack"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.GetCounter("drops", {{"type", "lookup"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("live_homes");
  g.Set(10.0);
  g.Add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(HistogramTest, CountSumMaxMean) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  h.Observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, QuantilesInterpolateAndClampToMax) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {1.0, 2.0, 4.0, 8.0});
  // 100 observations uniformly placed in (0, 1].
  for (int i = 1; i <= 100; ++i) h.Observe(i / 100.0);
  // All mass is in the first bucket: quantiles interpolate within (0, 1]
  // and must be monotone.
  double p50 = h.Quantile(0.50);
  double p95 = h.Quantile(0.95);
  double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1.0);  // clamped to observed max
}

TEST(HistogramTest, SingleBucketQuantilesStayInsideTheBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {2.0});
  h.Observe(1.0);
  h.Observe(1.0);
  h.Observe(1.5);
  // Every observation is in [0, 2): quantiles interpolate inside that
  // bucket and clamp at the observed max, never at the bound.
  EXPECT_GT(h.Quantile(0.50), 0.0);
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.99), 1.5);
}

TEST(HistogramTest, AllMassInOverflowBucketReportsObservedMax) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {1.0});
  for (int i = 0; i < 4; ++i) h.Observe(5.0);
  // The implicit overflow bucket has no upper bound; interpolating within
  // it would fabricate values below every observation. The only honest
  // answer is the observed max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 5.0);
}

TEST(HistogramTest, QuantileAtExactBucketBoundaryIsNotInflated) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {1.0, 2.0, 4.0});
  // Rank lands exactly on the edge of the first bucket: the answer must
  // not exceed the data actually observed there.
  for (int i = 0; i < 10; ++i) h.Observe(0.5);
  EXPECT_LE(h.Quantile(1.0), 0.5);
  EXPECT_LE(h.Quantile(0.50), 1.0);
}

TEST(HistogramTest, P99ClampsToMaxWithOutlier) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {}, {1.0, 2.0});
  for (int i = 0; i < 99; ++i) h.Observe(0.5);
  h.Observe(100.0);  // single overflow outlier
  EXPECT_LE(h.Quantile(0.99), h.max());
  EXPECT_DOUBLE_EQ(h.Quantile(0.999), 100.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat");
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, DefaultBoundsUsedWhenUnspecified) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat");
  EXPECT_EQ(h.bounds(), Histogram::DefaultLatencyBounds());
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("z_metric").Increment(3);
  reg.GetGauge("a_metric").Set(1.5);
  reg.GetHistogram("m_metric").Observe(0.25);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a_metric");
  EXPECT_EQ(snap.entries[1].name, "m_metric");
  EXPECT_EQ(snap.entries[2].name, "z_metric");

  const MetricsSnapshot::Entry* c = snap.Find("z_metric");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricsSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);

  const MetricsSnapshot::Entry* h = snap.Find("m_metric");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricsSnapshot::Kind::kHistogram);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 0.25);

  EXPECT_EQ(snap.Find("missing"), nullptr);
}

TEST(MetricsRegistryTest, DiffSubtractsCountersAndBuckets) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("sends");
  Histogram& h = reg.GetHistogram("lat", {}, {1.0, 2.0});
  Gauge& g = reg.GetGauge("homes");

  c.Increment(5);
  h.Observe(0.5);
  g.Set(2.0);
  MetricsSnapshot before = reg.Snapshot();

  c.Increment(7);
  h.Observe(0.5);
  h.Observe(1.5);
  g.Set(9.0);
  MetricsSnapshot after = reg.Snapshot();

  MetricsSnapshot diff = DiffSnapshots(before, after);
  const MetricsSnapshot::Entry* dc = diff.Find("sends");
  ASSERT_NE(dc, nullptr);
  EXPECT_DOUBLE_EQ(dc->value, 7.0);

  const MetricsSnapshot::Entry* dh = diff.Find("lat");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->count, 2u);
  EXPECT_DOUBLE_EQ(dh->sum, 2.0);
  ASSERT_EQ(dh->buckets.size(), 3u);
  EXPECT_EQ(dh->buckets[0], 1u);
  EXPECT_EQ(dh->buckets[1], 1u);

  // Gauges report the `after` reading, not a delta.
  const MetricsSnapshot::Entry* dg = diff.Find("homes");
  ASSERT_NE(dg, nullptr);
  EXPECT_DOUBLE_EQ(dg->value, 9.0);
}

TEST(MetricsRegistryTest, DiffPassesThroughNewMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("old").Increment(1);
  MetricsSnapshot before = reg.Snapshot();
  reg.GetCounter("fresh").Increment(4);
  MetricsSnapshot diff = DiffSnapshots(before, reg.Snapshot());
  const MetricsSnapshot::Entry* e = diff.Find("fresh");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->value, 4.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsFamilies) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment(3);
  reg.GetGauge("g").Set(2.0);
  reg.GetHistogram("h").Observe(1.0);
  reg.Reset();
  EXPECT_EQ(reg.num_metrics(), 3u);
  EXPECT_EQ(reg.GetCounter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("g").value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("h").count(), 0u);
}

TEST(MetricsRegistryTest, CsvExportHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.GetCounter("sends", {{"type", "lookup"}}).Increment(2);
  reg.GetHistogram("lat", {}, {1.0}).Observe(0.5);
  std::string csv = reg.ToCsv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "name,labels,kind,value,count,sum,mean,max,p50,p95,p99");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2u);
  EXPECT_NE(csv.find("type=lookup"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportIsSyntacticallyValid) {
  MetricsRegistry reg;
  reg.GetCounter("sends", {{"type", "lookup"}, {"dir", "out"}}).Increment(2);
  reg.GetGauge("coverage").Set(0.75);
  reg.GetHistogram("phase_seconds", {{"classifier", "pace"}}).Observe(0.01);
  std::string json = reg.ToJson();
  Status s = CheckJsonSyntax(json);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << json;
  EXPECT_TRUE(JsonHasKey(json, "metrics"));
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"classifier\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonEscapesSpecialCharacters) {
  MetricsRegistry reg;
  reg.GetCounter("odd", {{"path", "a\"b\\c\n"}}).Increment(1);
  std::string json = reg.ToJson();
  Status s = CheckJsonSyntax(json);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << json;
}

TEST(MetricsRegistryTest, WriteFilesRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("sends").Increment(1);
  std::string csv_path = testing::TempDir() + "/metrics_test.csv";
  std::string json_path = testing::TempDir() + "/metrics_test.json";
  ASSERT_TRUE(reg.WriteCsv(csv_path).ok());
  ASSERT_TRUE(reg.WriteJson(json_path).ok());
  std::ifstream jf(json_path);
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_TRUE(CheckJsonSyntax(buf.str()).ok());
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

// Lock-free recording from many threads: exact counts must survive, and
// TSan (ctest -L observability under the tsan preset) must stay quiet.
TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("hits");
  Histogram& h = reg.GetHistogram("work", {}, {0.5, 1.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(0.25 * (1 + (t + i) % 4));  // 0.25 .. 1.0
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(JsonCheckTest, AcceptsValidAndRejectsInvalid) {
  EXPECT_TRUE(CheckJsonSyntax("{}").ok());
  EXPECT_TRUE(CheckJsonSyntax("[1, 2.5, -3e2, \"x\\u0041\", true, null]").ok());
  EXPECT_TRUE(CheckJsonSyntax("{\"a\":{\"b\":[{}]}}").ok());
  EXPECT_FALSE(CheckJsonSyntax("").ok());
  EXPECT_FALSE(CheckJsonSyntax("{").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"a\":}").ok());
  EXPECT_FALSE(CheckJsonSyntax("[1,]").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"a\":1} trailing").ok());
  EXPECT_FALSE(CheckJsonSyntax("\"unterminated").ok());
  EXPECT_TRUE(JsonHasKey("{\"traceEvents\":[]}", "traceEvents"));
  EXPECT_FALSE(JsonHasKey("{\"traceEvents\":[]}", "metrics"));
}

}  // namespace
}  // namespace p2pdt
