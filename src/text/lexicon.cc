#include "text/lexicon.h"

namespace p2pdt {

Lexicon Lexicon::Hashed(uint32_t dimensions) {
  Lexicon lex;
  lex.hashed_ = true;
  lex.dimensions_ = dimensions;
  return lex;
}

uint32_t Lexicon::HashWord(std::string_view word) {
  uint32_t h = 2166136261u;  // FNV offset basis
  for (char c : word) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;  // FNV prime
  }
  return h;
}

uint32_t Lexicon::GetOrAddId(std::string_view word) {
  if (hashed_) {
    uint32_t id = HashWord(word) % dimensions_;
    auto [it, inserted] = word_to_id_.try_emplace(std::string(word), id);
    if (inserted) hash_to_word_.try_emplace(id, it->first);
    return it->second;
  }
  auto it = word_to_id_.find(std::string(word));
  if (it != word_to_id_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(id_to_word_.size());
  id_to_word_.emplace_back(word);
  word_to_id_.emplace(id_to_word_.back(), id);
  return id;
}

Result<uint32_t> Lexicon::GetId(std::string_view word) const {
  if (hashed_) return HashWord(word) % dimensions_;
  auto it = word_to_id_.find(std::string(word));
  if (it == word_to_id_.end()) {
    return Status::NotFound("word not in lexicon: " + std::string(word));
  }
  return it->second;
}

Result<std::string> Lexicon::GetWord(uint32_t id) const {
  if (hashed_) {
    auto it = hash_to_word_.find(id);
    if (it == hash_to_word_.end()) {
      return Status::NotFound("id " + std::to_string(id) +
                              " not reversible in hashed lexicon");
    }
    return it->second;
  }
  if (id >= id_to_word_.size()) {
    return Status::NotFound("id " + std::to_string(id) + " out of range");
  }
  return id_to_word_[id];
}

}  // namespace p2pdt
