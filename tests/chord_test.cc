#include "p2psim/chord.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

struct Ring {
  Simulator sim;
  std::unique_ptr<PhysicalNetwork> net;
  std::unique_ptr<ChordOverlay> chord;

  explicit Ring(std::size_t n, ChordOptions options = {}) {
    net = std::make_unique<PhysicalNetwork>(sim);
    net->AddNodes(n);
    chord = std::make_unique<ChordOverlay>(sim, *net, options);
    for (NodeId i = 0; i < n; ++i) chord->AddNode(i);
    chord->Bootstrap();
  }

  ChordOverlay::LookupResult LookupSync(NodeId origin, uint64_t key) {
    ChordOverlay::LookupResult out;
    bool done = false;
    chord->Lookup(origin, key, [&](ChordOverlay::LookupResult r) {
      out = r;
      done = true;
    });
    sim.RunUntil(sim.Now() + 600.0);
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(ChordTest, KeysAreUniquePerNode) {
  Ring ring(64);
  std::set<uint64_t> keys;
  for (NodeId n = 0; n < 64; ++n) keys.insert(ring.chord->KeyOf(n));
  EXPECT_EQ(keys.size(), 64u);
}

TEST(ChordTest, OwnerOfIsRingSuccessor) {
  Ring ring(16);
  // The owner of a node's own key is the node itself.
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(ring.chord->OwnerOf(ring.chord->KeyOf(n)), n);
  }
}

TEST(ChordTest, LookupsResolveGroundTruthOwner) {
  Ring ring(32);
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    uint64_t key = rng.NextU64();
    NodeId origin = rng.NextU64(32);
    NodeId truth = ring.chord->OwnerOf(key);
    ChordOverlay::LookupResult r = ring.LookupSync(origin, key);
    ASSERT_TRUE(r.success) << "key " << key << " from " << origin;
    EXPECT_EQ(r.owner, truth);
  }
}

TEST(ChordTest, LookupsAgreeAcrossOrigins) {
  Ring ring(48);
  uint64_t key = ring.chord->HashToKey(12345);
  NodeId first = ring.LookupSync(0, key).owner;
  for (NodeId origin = 1; origin < 48; origin += 7) {
    EXPECT_EQ(ring.LookupSync(origin, key).owner, first);
  }
}

TEST(ChordTest, HopsLogarithmicInNetworkSize) {
  for (std::size_t n : {16u, 64u, 256u}) {
    Ring ring(n);
    Rng rng(7);
    double total_hops = 0;
    const int lookups = 40;
    for (int i = 0; i < lookups; ++i) {
      ChordOverlay::LookupResult r =
          ring.LookupSync(rng.NextU64(n), rng.NextU64());
      ASSERT_TRUE(r.success);
      total_hops += r.hops;
    }
    double mean_hops = total_hops / lookups;
    // Mean hop count ≈ ½ log2 N; allow generous headroom but require
    // sub-linear growth.
    EXPECT_LE(mean_hops, 2.0 * std::log2(static_cast<double>(n)))
        << "n=" << n;
    EXPECT_GE(mean_hops, 0.5) << "n=" << n;
  }
}

TEST(ChordTest, LookupFromOfflineOriginFails) {
  Ring ring(8);
  ring.net->SetOnline(3, false);
  ChordOverlay::LookupResult r = ring.LookupSync(3, 42);
  EXPECT_FALSE(r.success);
}

TEST(ChordTest, SingleNodeOwnsEverything) {
  Ring ring(1);
  EXPECT_EQ(ring.chord->OwnerOf(0), 0u);
  ChordOverlay::LookupResult r = ring.LookupSync(0, 999);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.owner, 0u);
  EXPECT_EQ(r.hops, 0);
}

TEST(ChordTest, SuccessorListSurvivesFailures) {
  Ring ring(32);
  uint64_t key = ring.chord->HashToKey(777);
  NodeId owner = ring.chord->OwnerOf(key);
  // Kill the owner: the ground truth moves to the next ring successor, and
  // (after the origin notices the drop) lookups follow the successor list.
  ring.net->SetOnline(owner, false);
  NodeId new_owner = ring.chord->OwnerOf(key);
  EXPECT_NE(new_owner, owner);
  ChordOverlay::LookupResult r = ring.LookupSync(5 == owner ? 6 : 5, key);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.owner, new_owner);
}

TEST(ChordTest, MassFailureStillRoutesViaStabilization) {
  Ring ring(64);
  Rng rng(9);
  // Kill a third of the network, then stabilize once (repairs tables).
  for (NodeId n = 0; n < 64; n += 3) ring.net->SetOnline(n, false);
  ring.chord->Bootstrap();
  int successes = 0;
  for (int i = 0; i < 30; ++i) {
    NodeId origin;
    do {
      origin = rng.NextU64(64);
    } while (!ring.net->IsOnline(origin));
    uint64_t key = rng.NextU64();
    ChordOverlay::LookupResult r = ring.LookupSync(origin, key);
    if (r.success && r.owner == ring.chord->OwnerOf(key)) ++successes;
  }
  EXPECT_GE(successes, 28);
}

TEST(ChordTest, LookupChargesMessages) {
  Ring ring(32);
  uint64_t before = ring.net->stats().messages_sent(MessageType::kLookup);
  ring.LookupSync(0, ring.chord->HashToKey(1));
  uint64_t after = ring.net->stats().messages_sent(MessageType::kLookup);
  EXPECT_GT(after, before);
}

TEST(ChordTest, BootstrapChargesMaintenance) {
  Ring ring(16);
  EXPECT_GT(ring.net->stats().messages_sent(MessageType::kOverlayMaintenance),
            0u);
}

TEST(ChordTest, BroadcastReachesAllOnlinePeers) {
  Ring ring(40);
  std::set<NodeId> reached;
  bool complete = false;
  ring.chord->Broadcast(7, 128, MessageType::kModelBroadcast,
                        [&](NodeId n) { reached.insert(n); },
                        [&] { complete = true; });
  ring.sim.RunUntil(ring.sim.Now() + 600.0);
  EXPECT_TRUE(complete);
  EXPECT_EQ(reached.size(), 39u);  // everyone but the origin
  EXPECT_EQ(reached.count(7), 0u);
}

TEST(ChordTest, BroadcastMessageCountIsLinear) {
  Ring ring(64);
  uint64_t before = ring.net->stats().messages_sent(
      MessageType::kModelBroadcast);
  bool complete = false;
  ring.chord->Broadcast(0, 64, MessageType::kModelBroadcast, nullptr,
                        [&] { complete = true; });
  ring.sim.RunUntil(ring.sim.Now() + 600.0);
  ASSERT_TRUE(complete);
  uint64_t sent =
      ring.net->stats().messages_sent(MessageType::kModelBroadcast) - before;
  // Tree dissemination: exactly N-1 messages on a stable ring.
  EXPECT_EQ(sent, 63u);
}

TEST(ChordTest, BroadcastFromOfflineOriginCompletesEmpty) {
  Ring ring(8);
  ring.net->SetOnline(2, false);
  bool complete = false;
  std::set<NodeId> reached;
  ring.chord->Broadcast(2, 8, MessageType::kGossip,
                        [&](NodeId n) { reached.insert(n); },
                        [&] { complete = true; });
  ring.sim.RunUntil(ring.sim.Now() + 10.0);
  EXPECT_TRUE(complete);
  EXPECT_TRUE(reached.empty());
}

TEST(ChordTest, StabilizationRunsPeriodically) {
  Ring ring(16);
  uint64_t base =
      ring.net->stats().messages_sent(MessageType::kOverlayMaintenance);
  ring.chord->StartStabilization();
  ring.sim.RunUntil(35.0);  // ≥ 3 rounds at the default 10s interval
  uint64_t after =
      ring.net->stats().messages_sent(MessageType::kOverlayMaintenance);
  EXPECT_GT(after, base + 3 * 16);
}

TEST(ChordTest, HashToKeyDeterministicAndMasked) {
  ChordOptions opt;
  opt.key_bits = 16;
  Ring ring(4, opt);
  EXPECT_EQ(ring.chord->HashToKey(5), ring.chord->HashToKey(5));
  EXPECT_LT(ring.chord->HashToKey(5), uint64_t{1} << 16);
}

TEST(ChordTest, LookupsStayConsistentUnderSustainedChurn) {
  // Stress: random failures/rejoins interleaved with stabilization; every
  // lookup must terminate (success or clean failure), and successful
  // lookups from different origins at the same instant must agree.
  Ring ring(48);
  Rng rng(123);
  std::size_t lookups_done = 0, agreements = 0, comparisons = 0;

  for (int round = 0; round < 30; ++round) {
    // Random churn step: toggle a couple of peers.
    for (int t = 0; t < 2; ++t) {
      NodeId victim = rng.NextU64(48);
      bool online = ring.net->IsOnline(victim);
      ring.net->SetOnline(victim, !online);
      ring.chord->OnTransition(victim, !online);
    }
    if (round % 5 == 0) ring.chord->Bootstrap();  // stabilization round

    uint64_t key = rng.NextU64();
    NodeId origin_a, origin_b;
    do {
      origin_a = rng.NextU64(48);
    } while (!ring.net->IsOnline(origin_a));
    do {
      origin_b = rng.NextU64(48);
    } while (!ring.net->IsOnline(origin_b));

    ChordOverlay::LookupResult ra, rb;
    bool done_a = false, done_b = false;
    ring.chord->Lookup(origin_a, key, [&](ChordOverlay::LookupResult r) {
      ra = r;
      done_a = true;
    });
    ring.chord->Lookup(origin_b, key, [&](ChordOverlay::LookupResult r) {
      rb = r;
      done_b = true;
    });
    ring.sim.RunUntil(ring.sim.Now() + 300.0);
    ASSERT_TRUE(done_a && done_b) << "lookup did not terminate";
    lookups_done += 2;
    if (ra.success && rb.success) {
      ++comparisons;
      if (ra.owner == rb.owner) ++agreements;
    }
  }
  EXPECT_EQ(lookups_done, 60u);
  // Concurrent lookups resolved from live (possibly stale) state; the
  // overwhelming majority must agree.
  ASSERT_GT(comparisons, 10u);
  EXPECT_GE(static_cast<double>(agreements) /
                static_cast<double>(comparisons),
            0.9);
}

TEST(ChordTest, RejoinRefreshesOwnState) {
  Ring ring(24);
  NodeId victim = 11;
  ring.net->SetOnline(victim, false);
  ring.chord->OnTransition(victim, false);
  ring.net->SetOnline(victim, true);
  ring.chord->OnTransition(victim, true);
  // The rejoined node can route again.
  uint64_t key = ring.chord->HashToKey(31337);
  ChordOverlay::LookupResult r = ring.LookupSync(victim, key);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.owner, ring.chord->OwnerOf(key));
}

}  // namespace
}  // namespace p2pdt
