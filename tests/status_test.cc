#include "common/status.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IOError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, DataLossDistinctFromIOErrorAndNotFound) {
  Status s = Status::DataLoss("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: checksum mismatch");
  EXPECT_NE(s.code(), Status::IOError("x").code());
  EXPECT_NE(s.code(), Status::NotFound("x").code());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status UsesReturnIfError() {
  P2PDT_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace p2pdt
