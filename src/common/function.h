#ifndef P2PDT_COMMON_FUNCTION_H_
#define P2PDT_COMMON_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace p2pdt {

/// Move-only type-erased `void()` callable with a small-buffer optimization.
///
/// `std::function` requires its target to be copy-constructible, which
/// forbids lambdas that capture move-only payloads (`std::unique_ptr`,
/// etc.). The simulator schedules tens of millions of events at 100k+
/// peers, so its callback type must (a) accept move-only captures — the
/// old `priority_queue::top()` copy-out workaround is gone — and (b) avoid
/// a heap allocation for the common small-capture case.
///
/// Only what the event loop needs is provided: construct from any callable,
/// move, invoke once or more via operator(), test for emptiness. Copying is
/// deliberately deleted.
class UniqueFunction {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT — mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT — converting, like std::function
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(f));
      vtable_ = &InlineVTable<Decayed>::value;
    } else {
      ::new (static_cast<void*>(buffer_))
          Decayed*(new Decayed(std::forward<F>(f)));
      vtable_ = &HeapVTable<Decayed>::value;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  UniqueFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  void operator()() { vtable_->invoke(buffer_); }

  explicit operator bool() const { return vtable_ != nullptr; }

 private:
  static constexpr std::size_t kInlineSize = 48;

  struct VTable {
    void (*invoke)(unsigned char*);
    void (*move)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char*);
  };

  template <typename F>
  struct InlineVTable {
    static void Invoke(unsigned char* buf) {
      (*std::launder(reinterpret_cast<F*>(buf)))();
    }
    static void Move(unsigned char* dst, unsigned char* src) {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (static_cast<void*>(dst)) F(std::move(*from));
      from->~F();
    }
    static void Destroy(unsigned char* buf) {
      std::launder(reinterpret_cast<F*>(buf))->~F();
    }
    static constexpr VTable value = {&Invoke, &Move, &Destroy};
  };

  template <typename F>
  struct HeapVTable {
    static F*& Slot(unsigned char* buf) {
      return *std::launder(reinterpret_cast<F**>(buf));
    }
    static void Invoke(unsigned char* buf) { (*Slot(buf))(); }
    static void Move(unsigned char* dst, unsigned char* src) {
      ::new (static_cast<void*>(dst)) F*(Slot(src));
      Slot(src) = nullptr;
    }
    static void Destroy(unsigned char* buf) { delete Slot(buf); }
    static constexpr VTable value = {&Invoke, &Move, &Destroy};
  };

  void MoveFrom(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->move(buffer_, other.buffer_);
      other.vtable_ = nullptr;
    }
  }

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

template <typename F>
constexpr UniqueFunction::VTable UniqueFunction::InlineVTable<F>::value;
template <typename F>
constexpr UniqueFunction::VTable UniqueFunction::HeapVTable<F>::value;

}  // namespace p2pdt

#endif  // P2PDT_COMMON_FUNCTION_H_
