#include <filesystem>

#include <gtest/gtest.h>

#include "core/doc_tagger.h"

namespace p2pdt {
namespace {

class DocTaggerPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/p2pdt_tagger_meta_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DocTaggerPersistenceTest, SaveLoadRoundTrip) {
  DocTagger tagger;
  DocId a = tagger.AddDocument("a", "alpha beta gamma content");
  DocId b = tagger.AddDocument("b", "delta epsilon words");
  tagger.AddDocument("untagged", "nothing assigned here");
  ASSERT_TRUE(tagger.ManualTag(a, {"research", "notes"}).ok());
  ASSERT_TRUE(tagger.ManualTag(b, {"recipes"}).ok());

  Result<std::size_t> saved = tagger.SaveMetadata(dir_);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved.value(), 2u);  // untagged docs produce no sidecars

  // A fresh session: same documents re-added (same ids), tags restored.
  DocTagger restored;
  restored.AddDocument("a", "alpha beta gamma content");
  restored.AddDocument("b", "delta epsilon words");
  restored.AddDocument("untagged", "nothing assigned here");
  Result<std::size_t> loaded = restored.LoadMetadata(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 2u);

  EXPECT_EQ(restored.GetDocument(a).value()->TagNames(),
            (std::vector<std::string>{"notes", "research"}));
  EXPECT_EQ(restored.GetDocument(b).value()->TagNames(),
            (std::vector<std::string>{"recipes"}));
  // The library is re-indexed...
  EXPECT_EQ(restored.library().WithTag("recipes"), (std::vector<DocId>{b}));
  // ...and tag names are registered (open vocabulary survives restarts).
  EXPECT_EQ(restored.tag_names().size(), 3u);
}

TEST_F(DocTaggerPersistenceTest, PreservesSourceAndConfidence) {
  DocTagger tagger;
  DocId id = tagger.AddDocument("doc", "garlic pasta butter sauce basil");
  tagger.AddDocument("neg", "network routing peers packets");
  ASSERT_TRUE(tagger.ManualTag(id, {"cooking"}).ok());
  ASSERT_TRUE(tagger.ManualTag(1, {"networking"}).ok());
  ASSERT_TRUE(tagger.TrainLocal().ok());
  DocId fresh = tagger.AddDocument("fresh", "pasta with garlic butter");
  ASSERT_TRUE(tagger.AutoTag(fresh).ok());
  ASSERT_TRUE(tagger.SaveMetadata(dir_).ok());

  DocTagger restored;
  restored.AddDocument("doc", "x");
  restored.AddDocument("neg", "x");
  restored.AddDocument("fresh", "x");
  ASSERT_TRUE(restored.LoadMetadata(dir_).ok());
  const Document& doc = *restored.GetDocument(fresh).value();
  ASSERT_FALSE(doc.tags.empty());
  EXPECT_EQ(doc.tags[0].source, TagSource::kAuto);
  EXPECT_GT(doc.tags[0].confidence, 0.0);
  EXPECT_LT(doc.tags[0].confidence, 1.0);
}

TEST_F(DocTaggerPersistenceTest, SidecarsForUnknownDocsIgnored) {
  DocTagger big;
  big.AddDocument("one", "words here");
  big.AddDocument("two", "more words");
  ASSERT_TRUE(big.ManualTag(0, {"x"}).ok());
  ASSERT_TRUE(big.ManualTag(1, {"y"}).ok());
  ASSERT_TRUE(big.SaveMetadata(dir_).ok());

  DocTagger small;
  small.AddDocument("one", "words here");  // only doc 0 exists
  Result<std::size_t> loaded = small.LoadMetadata(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 1u);
}

TEST_F(DocTaggerPersistenceTest, LoadFromEmptyDirectoryIsZero) {
  DocTagger tagger;
  tagger.AddDocument("a", "text");
  Result<std::size_t> loaded = tagger.LoadMetadata(dir_ + "/missing");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 0u);
}

}  // namespace
}  // namespace p2pdt
