#include "p2pdmt/evaluation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "common/rng.h"

namespace p2pdt {

std::vector<std::size_t> DeterministicSample(std::size_t n, std::size_t k,
                                             uint64_t seed) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  Rng rng(seed);
  std::vector<std::size_t> picks = rng.SampleWithoutReplacement(n, k);
  std::sort(picks.begin(), picks.end());
  return picks;
}

EvaluationSchedule::EvaluationSchedule(Simulator& sim,
                                       std::vector<std::string> metric_names)
    : sim_(sim), metric_names_(std::move(metric_names)) {}

void EvaluationSchedule::Fire(const Probe& probe) {
  std::vector<double> values = probe();
  std::vector<double> row;
  row.reserve(metric_names_.size() + 1);
  row.push_back(sim_.Now());
  if (values.size() != metric_names_.size()) {
    ++dropped_;
    row.insert(row.end(), metric_names_.size(),
               std::numeric_limits<double>::quiet_NaN());
  } else {
    row.insert(row.end(), values.begin(), values.end());
  }
  rows_.push_back(std::move(row));
}

void EvaluationSchedule::ScheduleAt(std::vector<SimTime> times, Probe probe) {
  auto shared = std::make_shared<Probe>(std::move(probe));
  for (SimTime t : times) {
    sim_.ScheduleAt(t, [this, shared] { Fire(*shared); });
  }
}

void EvaluationSchedule::SchedulePeriodic(double period, std::size_t count,
                                          Probe probe) {
  std::vector<SimTime> times;
  times.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    times.push_back(sim_.Now() + period * static_cast<double>(i));
  }
  ScheduleAt(std::move(times), std::move(probe));
}

CsvWriter EvaluationSchedule::ToCsv() const {
  std::vector<std::string> header = {"time"};
  header.insert(header.end(), metric_names_.begin(), metric_names_.end());
  CsvWriter csv(std::move(header));
  for (const auto& row : rows_) {
    csv.AddNumericRow(row);
  }
  return csv;
}

Status EvaluationSchedule::WriteCsv(const std::string& path) const {
  return ToCsv().WriteFile(path);
}

}  // namespace p2pdt
