#ifndef P2PDT_P2PDMT_DRIFT_H_
#define P2PDT_P2PDMT_DRIFT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "corpus/vectorize.h"
#include "ml/staleness.h"
#include "p2pdmt/experiment.h"

namespace p2pdt {

/// When (if ever) a peer's model is retrained on its sliding window and
/// republished through the protocol's refresh path.
enum class RetrainPolicy : uint8_t {
  /// Never retrain — the degradation baseline every recovery is measured
  /// against.
  kFrozen = 0,
  /// Every peer refreshes every `periodic_interval_epochs` epochs,
  /// regardless of observed quality (the drift-oblivious upper-cost arm).
  kPeriodic,
  /// A peer refreshes when its staleness score (age × quality gap) crosses
  /// `staleness_trigger`.
  kStalenessTriggered,
  /// A peer refreshes when its tracker declares drift (fast-vs-slow EWMA
  /// gap over the threshold).
  kDriftTriggered,
};

const char* RetrainPolicyToString(RetrainPolicy p);

/// One run of the degradation/recovery harness: stream a drifting corpus
/// epoch by epoch, auto-tag every arriving document through the live P2P
/// protocol, track per-peer staleness, and retrain per `policy`.
struct DriftExperimentOptions {
  AlgorithmType algorithm = AlgorithmType::kPace;
  /// Environment template. num_peers is overridden to the stream's user
  /// count — each simulated user is one peer.
  EnvironmentOptions env;
  CemparOptions cempar;
  PaceOptions pace;

  RetrainPolicy policy = RetrainPolicy::kFrozen;
  StalenessOptions staleness;
  /// Staleness score at which kStalenessTriggered refreshes a peer.
  double staleness_trigger = 0.5;
  /// Refresh cadence of kPeriodic (in epochs).
  std::size_t periodic_interval_epochs = 2;
  /// Per-peer sliding-window capacity (documents); oldest aged out first.
  std::size_t window_documents = 48;
  /// A post-drift epoch within this macro-F1 distance of the pre-drift
  /// level counts as re-converged.
  double recovery_margin = 0.02;
  /// Simulated-time budget for each epoch's prediction + refresh traffic.
  double max_epoch_sim_seconds = 3600.0;
  /// Budget for the initial training protocol.
  double max_train_sim_seconds = 3600.0;
};

/// Quality and cost of one streamed epoch.
struct DriftEpochStats {
  std::size_t epoch = 0;
  std::size_t documents = 0;
  double macro_f1 = 0.0;
  double micro_f1 = 0.0;
  /// Mean staleness score across peers *before* this epoch's retrains.
  double mean_staleness = 0.0;
  /// Peers whose tracker newly crossed into drift this epoch.
  std::size_t drift_detections = 0;
  /// Peers refreshed at the end of this epoch.
  std::size_t retrained_peers = 0;
  /// Network traffic during the epoch (predictions + refresh republish).
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

struct DriftExperimentResult {
  std::string algorithm;
  std::string policy;
  std::size_t num_peers = 0;
  std::size_t num_epochs = 0;
  /// Earliest perturbed epoch (num_epochs when the stream is stationary).
  std::size_t first_drift_epoch = 0;

  std::vector<DriftEpochStats> epochs;  ///< epochs 1..num_epochs-1

  /// Macro-F1 of the last pre-drift epoch (or of the last epoch overall
  /// when stationary) — the reference level for dip and recovery.
  double pre_drift_f1 = 0.0;
  /// Worst macro-F1 at or after the first drift epoch.
  double min_post_drift_f1 = 0.0;
  /// Macro-F1 of the final epoch.
  double final_f1 = 0.0;
  /// pre_drift_f1 − min_post_drift_f1, floored at 0.
  double max_dip = 0.0;
  /// Epochs from the first drift epoch until macro-F1 re-entered
  /// pre_drift_f1 − recovery_margin (0 when it never dipped below;
  /// num_epochs when it never re-converged).
  std::size_t recovery_epochs = 0;
  bool reconverged = true;

  uint64_t retrains = 0;
  uint64_t drift_detections = 0;
  uint64_t give_ups = 0;
  uint64_t suspected_peers = 0;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  double train_sim_seconds = 0.0;

  /// Order-sensitive FNV-1a digest over every epoch's macro-F1 bit pattern,
  /// document count, retrain count and traffic — two runs with the same
  /// digest observed the same quality trajectory *and* the same simulated
  /// protocol behavior. The serial==sharded and armed-vs-idle bit-identity
  /// tests compare exactly this.
  uint64_t fingerprint = 0;
};

/// Runs the harness over an already-vectorized stream (share one stream
/// across the policy/loss arms of a sweep — generation dominates setup).
/// Epoch 0 seeds the initial per-peer windows and the initial training;
/// epochs 1.. are streamed: predict (auto-tag) every arriving document from
/// its owner peer, feed the outcome to the owner's staleness tracker, slide
/// the window, then retrain per policy.
Result<DriftExperimentResult> RunDriftExperiment(
    const VectorizedStream& stream, const DriftExperimentOptions& options);

/// Scripted drift scenarios the sweep iterates. "none" is the stationary
/// control arm; the rest inject one event family at num_epochs / 2.
/// "new_tag" requires stream.reserve_tags >= 1.
Result<std::vector<DriftEvent>> ScenarioEvents(const std::string& scenario,
                                               const StreamOptions& stream);

/// One grid point of the drift sweep, flattened for the CSV.
struct DriftRow {
  std::string algorithm;
  std::string scenario;
  std::string policy;
  double loss_rate = 0.0;
  bool churn = false;

  std::size_t num_epochs = 0;
  std::size_t first_drift_epoch = 0;
  double pre_drift_f1 = 0.0;
  double min_post_drift_f1 = 0.0;
  double final_f1 = 0.0;
  double max_dip = 0.0;
  std::size_t recovery_epochs = 0;
  bool reconverged = true;
  uint64_t retrains = 0;
  uint64_t drift_detections = 0;
  uint64_t give_ups = 0;
  uint64_t suspected_peers = 0;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t fingerprint = 0;
};

struct DriftSweepOptions {
  /// Stream template; events are overridden per scenario (reserve_tags is
  /// forced to >= 1 so the "new_tag" scenario is always valid).
  StreamOptions stream;
  /// Template for every run; algorithm / policy / loss / churn overridden
  /// per grid point.
  DriftExperimentOptions base;
  std::vector<AlgorithmType> algorithms = {AlgorithmType::kPace,
                                           AlgorithmType::kCempar};
  std::vector<std::string> scenarios = {"none", "sudden_vocab",
                                        "gradual_rotation", "popularity_spike",
                                        "new_tag"};
  std::vector<RetrainPolicy> policies = {RetrainPolicy::kFrozen,
                                         RetrainPolicy::kPeriodic,
                                         RetrainPolicy::kStalenessTriggered,
                                         RetrainPolicy::kDriftTriggered};
  std::vector<double> loss_rates = {0.0, 0.2};
  /// Adds a churn-on arm (exponential churn, every policy) at the headline
  /// scenario ("sudden_vocab") and the highest loss rate.
  bool churn_arm = true;
  /// Invoked after every completed point (progress reporting); may be null.
  std::function<void(const DriftRow&)> on_point;
};

/// Runs the grid: scenarios × algorithms × policies × loss rates, plus the
/// optional churn arm. Failed runs are skipped with a warning.
Result<std::vector<DriftRow>> RunDriftSweep(const DriftSweepOptions& options);

/// Flattens sweep rows into the CSV schema bench_drift writes
/// (bench_results/drift.csv).
CsvWriter DriftCsv(const std::vector<DriftRow>& rows);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_DRIFT_H_
