#ifndef P2PDT_ML_SANITIZE_H_
#define P2PDT_ML_SANITIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sparse_vector.h"
#include "common/status.h"
#include "ml/kernel_svm.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"

namespace p2pdt {

/// Why an ingested model was rejected. kNone means the payload is clean.
/// The lower_snake_case rendering is the `reason` label of the
/// models_rejected metric family and a CSV column value, so the strings are
/// part of the observable surface — keep them stable.
enum class ModelRejectReason : uint8_t {
  kNone = 0,
  /// NaN or infinity anywhere in weights, bias, alphas, labels or
  /// centroids.
  kNonFinite,
  /// A finite value (or a vector norm) exceeds the configured magnitude
  /// bound — the vote-spam signature: a "valid" model whose decision values
  /// drown every honest vote.
  kNormBound,
  /// A feature id beyond the plausible lexicon bound.
  kDimension,
  /// Per-tag vectors (models, tag_accuracy, tag_informed) disagree with the
  /// corpus tag count — truncated or padded uploads.
  kTagMismatch,
  /// Structurally too large: support-vector or centroid counts beyond the
  /// configured caps.
  kOversized,
  /// Contributor is quarantined by the reputation subsystem; the payload
  /// itself may be well-formed. Counted under the same metric family so one
  /// counter answers "how much did ingestion refuse, and why".
  kDistrusted,
};

/// Stable lower_snake_case name (metric label / CSV value).
const char* ModelRejectReasonToString(ModelRejectReason reason);

/// Bounds applied at every model-ingestion point. Defaults are loose enough
/// that every honestly trained model passes (the bit-identical-baseline
/// requirement) while catching NaN/inf payloads, absurd magnitudes and
/// out-of-lexicon dimensions.
struct SanitizeOptions {
  bool enabled = true;
  /// Any single weight, bias, alpha, label or centroid coordinate must have
  /// absolute value <= this.
  double max_abs_value = 1.0e6;
  /// L2 norm bound for weight vectors, support vectors and centroids.
  double max_norm = 1.0e6;
  /// Exclusive upper bound on feature ids (hashed-lexicon head-room; the
  /// synthetic corpus uses a few thousand dimensions).
  uint32_t max_dimension = 1u << 24;
  /// Cap on support vectors per kernel model.
  std::size_t max_support_vectors = 1u << 16;
  /// Cap on centroids per PACE bundle.
  std::size_t max_centroids = 4096;
};

/// Each check returns kNone when the object is within bounds. Checks are
/// pure and cheap (one pass over the data) and never mutate their input.
ModelRejectReason SanitizeVector(const SparseVector& v,
                                 const SanitizeOptions& opts);
ModelRejectReason SanitizeLinear(const LinearSvmModel& model,
                                 const SanitizeOptions& opts);
ModelRejectReason SanitizeKernelModel(const KernelSvmModel& model,
                                      const SanitizeOptions& opts);
/// Checks every per-tag classifier (linear, kernel or constant). When
/// `expected_tags` > 0 the model must cover exactly that many tags.
ModelRejectReason SanitizeOneVsAll(const OneVsAllModel& model,
                                   TagId expected_tags,
                                   const SanitizeOptions& opts);
ModelRejectReason SanitizeCentroids(const std::vector<SparseVector>& centroids,
                                    const SanitizeOptions& opts);

/// Maps a self-reported accuracy into [0, 1]: NaN becomes 0 (a peer that
/// reports garbage gets no vote weight), anything above 1 is clamped to 1,
/// negatives to 0. Identity for every honest value, so applying it
/// unconditionally at bundle receipt keeps baseline runs bit-identical.
double ClampAccuracy(double accuracy);

/// Wraps a reject reason as a kRejectedModel status (never OK — call only
/// with reason != kNone).
Status RejectedModelStatus(ModelRejectReason reason);

}  // namespace p2pdt

#endif  // P2PDT_ML_SANITIZE_H_
