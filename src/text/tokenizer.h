#ifndef P2PDT_TEXT_TOKENIZER_H_
#define P2PDT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace p2pdt {

/// Options controlling tokenization of raw document text.
struct TokenizerOptions {
  /// Lowercase tokens (matches IR convention; the paper's preprocessing is
  /// case-insensitive because tags and words are matched by id).
  bool lowercase = true;
  /// Minimum token length after normalization; shorter tokens are dropped.
  std::size_t min_token_length = 2;
  /// Maximum token length; longer tokens (base64 blobs, URLs run-ons) are
  /// dropped rather than truncated.
  std::size_t max_token_length = 40;
  /// Keep tokens containing digits ("win32", "2010"). Pure punctuation is
  /// always dropped.
  bool keep_alphanumeric = true;
};

/// Splits raw text into word tokens: maximal runs of ASCII letters/digits
/// (plus intra-word apostrophes, which are stripped). Everything else —
/// punctuation, whitespace, control characters — is a separator.
///
/// This is the first stage of the paper's Document Preprocessing step
/// (Sec. 2): tokenize → stop-word / sensitive-word filter → Porter stem →
/// vectorize.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `text` into normalized tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool Keep(const std::string& token) const;

  TokenizerOptions options_;
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_TOKENIZER_H_
