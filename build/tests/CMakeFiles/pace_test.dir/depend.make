# Empty dependencies file for pace_test.
# This may be replaced when dependencies are built.
