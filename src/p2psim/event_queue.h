#ifndef P2PDT_P2PSIM_EVENT_QUEUE_H_
#define P2PDT_P2PSIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/function.h"

namespace p2pdt {

/// One scheduled simulation event: absolute time, monotone sequence number
/// (the FIFO tie-break at equal timestamps that keeps runs reproducible)
/// and the callback. The callback is move-only, so events can carry
/// move-only payloads (`std::unique_ptr` captures and the like).
struct SimEvent {
  double time = 0.0;
  uint64_t seq = 0;
  UniqueFunction fn;
};

/// Indexed calendar queue (Brown 1988): the event scheduler behind the
/// 100k-peer simulator.
///
/// A `std::priority_queue` costs O(log n) per operation and, at tens of
/// millions of pending events, the log factor plus heap churn dominates the
/// simulation loop. A calendar queue hashes events by timestamp into
/// `num_buckets` bucket "days" of `bucket_width` simulated seconds each;
/// with the width tuned so that a bucket holds O(1) events, both enqueue
/// and dequeue-min are O(1) amortized. The queue resizes itself (doubling /
/// halving the calendar, re-estimating the width from the observed
/// inter-event gap) as the population grows and shrinks.
///
/// Ordering contract — the part the equivalence tests pin down: events pop
/// in exactly ascending (time, seq) order, i.e. the *identical* order a
/// stable binary heap over (time, seq) would produce. Equal timestamps pop
/// FIFO in scheduling order. This is what keeps the rearchitected engine
/// bit-identical to the old `priority_queue` one.
///
/// Cancellation: `Push` returns the event's id (its sequence number);
/// `Cancel(id)` marks a *pending* event dead — it is skipped (and its
/// tombstone reclaimed) when its bucket position is reached. Cancelling an
/// id that already popped, or twice, is a contract violation (the
/// tombstone would leak); callers that cannot guarantee this must track
/// execution themselves, which is what `Simulator` does.
class CalendarQueue {
 public:
  struct Options {
    /// Initial calendar size (rounded up to a power of two).
    std::size_t initial_buckets = 16;
    /// Initial bucket width in simulated seconds.
    double initial_width = 0.05;
    /// Automatic calendar resizing; fixable for tests that probe edge
    /// behavior at a forced size/width.
    bool auto_resize = true;
  };

  CalendarQueue();
  explicit CalendarQueue(Options options);

  /// Schedules `fn` at absolute `time` (>= 0); returns the event id.
  uint64_t Push(double time, UniqueFunction fn);

  /// Tombstones a pending event. Returns true (see class contract).
  bool Cancel(uint64_t id);

  /// Live (pending, uncancelled) events.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Timestamp of the next event to pop. Requires !empty().
  double MinTime();

  /// Removes and returns the (time, seq)-minimal live event. Requires
  /// !empty().
  SimEvent PopMin();

  /// Total events ever pushed (== next id).
  uint64_t total_pushed() const { return next_seq_; }

  // Introspection for tests and the resize heuristics.
  std::size_t num_buckets() const { return buckets_.size(); }
  double bucket_width() const { return width_; }
  std::size_t num_resizes() const { return resizes_; }

 private:
  /// One calendar day: events sorted ascending by (time, seq) from `head`
  /// on; slots before `head` are already popped (compacted lazily).
  struct Bucket {
    std::vector<SimEvent> ev;
    std::size_t head = 0;

    bool has_live() const { return head < ev.size(); }
    SimEvent& front() { return ev[head]; }
  };

  uint64_t SlotOf(double time) const;
  void Insert(SimEvent event);
  /// Skips tombstoned events at the bucket head, reclaiming tombstones.
  void PurgeCancelledHead(Bucket& b);
  /// Locates the minimal live event; positions scan state on it. Requires
  /// live_ > 0. Returns its bucket index.
  std::size_t FindMin();
  void MaybeResize();
  void Rebuild(std::size_t new_buckets, double new_width);

  Options options_;
  std::vector<Bucket> buckets_;
  double width_ = 0.05;
  /// Absolute slot index of the scan cursor; the cursor's bucket is
  /// slot_ % num_buckets and its window is [slot_*width, (slot_+1)*width).
  uint64_t slot_ = 0;
  uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t stored_ = 0;  ///< live_ plus pending tombstones
  std::unordered_set<uint64_t> cancelled_;
  /// EWMA of the gap between consecutively popped timestamps; feeds the
  /// width estimate at resize time.
  double avg_gap_ = 0.0;
  double last_pop_time_ = 0.0;
  bool popped_any_ = false;
  std::size_t resizes_ = 0;
  /// Cached FindMin result (bucket index), invalidated by pushes that could
  /// precede it and by cancellations.
  std::size_t cached_min_bucket_ = kNoCache;
  double cached_min_time_ = 0.0;

  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_EVENT_QUEUE_H_
