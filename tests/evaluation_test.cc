#include "p2pdmt/evaluation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(EvaluationScheduleTest, FiresAtConfiguredTimes) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"value"});
  int calls = 0;
  schedule.ScheduleAt({1.0, 5.0, 9.0}, [&] {
    ++calls;
    return std::vector<double>{static_cast<double>(calls)};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][0], 1.0);   // timestamp
  EXPECT_DOUBLE_EQ(schedule.rows()[0][1], 1.0);   // first value
  EXPECT_DOUBLE_EQ(schedule.rows()[2][0], 9.0);
  EXPECT_DOUBLE_EQ(schedule.rows()[2][1], 3.0);
  EXPECT_EQ(schedule.dropped_rows(), 0u);
}

TEST(EvaluationScheduleTest, PeriodicSchedule) {
  Simulator sim;
  sim.Schedule(10.0, [] {});
  sim.RunAll();  // advance to t=10
  EvaluationSchedule schedule(sim, {"x"});
  schedule.SchedulePeriodic(2.5, 4, [] {
    return std::vector<double>{42.0};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 4u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][0], 12.5);
  EXPECT_DOUBLE_EQ(schedule.rows()[3][0], 20.0);
}

TEST(EvaluationScheduleTest, WrongWidthRowsCountedAndNaN) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"a", "b"});
  schedule.ScheduleAt({1.0}, [] {
    return std::vector<double>{1.0};  // too narrow
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 1u);
  EXPECT_EQ(schedule.dropped_rows(), 1u);
  EXPECT_TRUE(std::isnan(schedule.rows()[0][1]));
}

TEST(EvaluationScheduleTest, CsvExport) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"accuracy", "online"});
  schedule.ScheduleAt({2.0}, [] {
    return std::vector<double>{0.9, 31.0};
  });
  sim.RunAll();
  std::string csv = schedule.ToCsv().ToString();
  EXPECT_NE(csv.find("time,accuracy,online"), std::string::npos);
  EXPECT_NE(csv.find("0.9"), std::string::npos);
  EXPECT_NE(csv.find("31"), std::string::npos);
}

TEST(EvaluationScheduleTest, InterleavesWithOtherEvents) {
  // The probe observes state mutated by other simulation events.
  Simulator sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<double>(i), [&counter] { ++counter; });
  }
  EvaluationSchedule schedule(sim, {"counter"});
  schedule.ScheduleAt({5.5}, [&] {
    return std::vector<double>{static_cast<double>(counter)};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][1], 5.0);  // events at t=1..5 ran
}

}  // namespace
}  // namespace p2pdt
