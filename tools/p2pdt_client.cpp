// p2pdt_client — drives a running p2pdtd. Three modes:
//
//   --ping            liveness probe (one ping round-trip)
//   --sessions N ...  replay the PR 8 session schedule over real sockets
//   --faults          run the SocketFaultInjector scenario script
//
// The replay reconstructs the daemon's document catalog deterministically
// from the same (corpus seed, split seed) — no document transfer needed;
// both sides derive identical bytes. Flags --users/--tags/--seed/--max-docs
// must therefore match the daemon's.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "corpus/vectorize.h"
#include "net/client.h"
#include "net/socket_fault.h"
#include "p2pdmt/service_harness.h"
#include "p2pdmt/service_loadgen.h"

using namespace p2pdt;

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool ping = false;
  bool faults = false;
  std::size_t sessions = 0;
  std::size_t min_docs = 10;
  std::size_t max_docs_per_session = 20;
  double rate = 40.0;
  bool closed_loop = false;
  double slo = 1.0;
  std::size_t retries = 1;
  // Corpus/catalog parameters — must match the daemon's.
  std::size_t users = 24;
  std::size_t tags = 6;
  std::size_t max_docs = 256;
  uint64_t seed = 20100913;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--host ADDR] (--ping | --faults | --sessions N)\n"
      "          [--rate R] [--min-docs N] [--max-docs-per-session N]\n"
      "          [--closed-loop] [--slo SEC] [--retries N]\n"
      "          [--users N] [--tags N] [--max-docs N] [--seed N]\n",
      prog);
}

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--ping") {
      flags.ping = true;
    } else if (arg == "--faults") {
      flags.faults = true;
    } else if (arg == "--closed-loop") {
      flags.closed_loop = true;
    } else if (arg == "--host" && (v = next())) {
      flags.host = v;
    } else if (arg == "--port" && (v = next())) {
      flags.port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--sessions" && (v = next())) {
      flags.sessions = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rate" && (v = next())) {
      flags.rate = std::strtod(v, nullptr);
    } else if (arg == "--min-docs" && (v = next())) {
      flags.min_docs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-docs-per-session" && (v = next())) {
      flags.max_docs_per_session = std::strtoull(v, nullptr, 10);
    } else if (arg == "--slo" && (v = next())) {
      flags.slo = std::strtod(v, nullptr);
    } else if (arg == "--retries" && (v = next())) {
      flags.retries = std::strtoull(v, nullptr, 10);
    } else if (arg == "--users" && (v = next())) {
      flags.users = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tags" && (v = next())) {
      flags.tags = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-docs" && (v = next())) {
      flags.max_docs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

Result<std::vector<SparseVector>> MakeCatalog(const Flags& flags) {
  CorpusOptions corpus_options;
  corpus_options.num_users = flags.users;
  corpus_options.min_docs_per_user = 50;
  corpus_options.max_docs_per_user = 80;
  corpus_options.num_tags = flags.tags;
  corpus_options.vocabulary_size = 3000;
  corpus_options.seed = flags.seed;
  Result<VectorizedCorpus> corpus = MakeVectorizedCorpus(corpus_options);
  if (!corpus.ok()) return corpus.status();
  return BuildServiceCatalog(*corpus, /*train_fraction=*/0.2, flags.max_docs,
                             flags.seed);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) return 2;
  if (flags.port == 0) {
    Usage(argv[0]);
    return 2;
  }

  if (flags.ping) {
    ServiceClient client;
    Status st = client.Connect(flags.host, flags.port);
    if (st.ok()) st = client.Ping(0x9109);
    if (!st.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  if (flags.faults) {
    Result<std::vector<SparseVector>> catalog = MakeCatalog(flags);
    if (!catalog.ok()) {
      std::fprintf(stderr, "catalog failed: %s\n",
                   catalog.status().ToString().c_str());
      return 1;
    }
    SocketFaultOptions fault_options;
    fault_options.host = flags.host;
    fault_options.port = flags.port;
    if (!catalog->empty()) fault_options.doc = (*catalog)[0];
    Result<SocketFaultReport> report = RunSocketFaults(fault_options);
    if (!report.ok()) {
      std::fprintf(stderr, "fault script FAILED: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "faults ok: resets=%d stalls=%d partial=%d malformed=%d "
        "typed_errors=%d predicts=%d liveness=%d\n",
        report->resets_done, report->stalls_opened, report->partial_frames_ok,
        report->malformed_sent, report->typed_errors_received,
        report->predicts_ok, report->liveness_ok ? 1 : 0);
    return 0;
  }

  if (flags.sessions == 0) {
    Usage(argv[0]);
    return 2;
  }
  Result<std::vector<SparseVector>> catalog = MakeCatalog(flags);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  ServiceLoadOptions load;
  load.host = flags.host;
  load.port = flags.port;
  load.schedule.sessions = flags.sessions;
  load.schedule.min_docs = flags.min_docs;
  load.schedule.max_docs = flags.max_docs_per_session;
  load.schedule.arrival_rate = flags.rate;
  load.schedule.closed_loop = flags.closed_loop;
  load.schedule.slo_latency = flags.slo;
  load.schedule.max_retries = flags.retries;
  load.schedule.seed = flags.seed;
  Result<ServiceLoadResult> result = RunServiceLoad(load, *catalog);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const LoadGenResult& r = result->load;
  std::printf(
      "offered=%llu completed=%llu ok=%llu cached=%llu degraded=%llu "
      "failed=%llu shed=%llu retries=%llu within_slo=%llu p50=%.4fs "
      "p95=%.4fs p99=%.4fs rate=%.1f/s io_errors=%llu wall=%.2fs "
      "fingerprint=%016llx\n",
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.cached),
      static_cast<unsigned long long>(r.degraded),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.within_slo), r.p50_latency,
      r.p95_latency, r.p99_latency, result->achieved_rate,
      static_cast<unsigned long long>(result->io_errors),
      result->wall_seconds,
      static_cast<unsigned long long>(r.fingerprint));
  // Any failed request or lost connection is a nonzero exit — scripts use
  // this as the robustness verdict.
  return (r.failed == 0 && result->io_errors == 0) ? 0 : 3;
}
