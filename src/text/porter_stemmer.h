#ifndef P2PDT_TEXT_PORTER_STEMMER_H_
#define P2PDT_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>
#include <vector>

namespace p2pdt {

/// Classic Porter stemming algorithm (Porter, 1980), steps 1a–5b.
///
/// The paper normalizes words with "the porter stemming algorithm to remove
/// the commoner morphological and inflexional endings (English)" (Sec. 2).
/// This is a faithful implementation of the original 1980 rule set — not
/// Porter2/Snowball — matching the reference behaviour (e.g. "caresses" →
/// "caress", "ponies" → "poni", "relational" → "relat").
///
/// Input is expected to be lowercase ASCII; non-alphabetic input is returned
/// unchanged.
class PorterStemmer {
 public:
  /// Stems one token.
  std::string Stem(std::string_view word) const;

  /// Stems every token in place.
  void StemAll(std::vector<std::string>& tokens) const;
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_PORTER_STEMMER_H_
