file(REMOVE_RECURSE
  "libp2pdt_p2pdmt.a"
)
