#include "p2psim/network.h"

#include <cassert>
#include <cmath>

#include "common/cost_ledger.h"
#include "p2psim/trace.h"

namespace p2pdt {

const char* AdversaryBehaviorToString(AdversaryBehavior behavior) {
  switch (behavior) {
    case AdversaryBehavior::kHonest:
      return "honest";
    case AdversaryBehavior::kLabelFlip:
      return "label_flip";
    case AdversaryBehavior::kGarbageModel:
      return "garbage_model";
    case AdversaryBehavior::kDimensionMismatch:
      return "dimension_mismatch";
    case AdversaryBehavior::kAccuracyInflate:
      return "accuracy_inflate";
    case AdversaryBehavior::kVoteSpam:
      return "vote_spam";
  }
  return "unknown";
}

PhysicalNetwork::PhysicalNetwork(Simulator& sim,
                                 PhysicalNetworkOptions options)
    : sim_(sim), options_(options), rng_(options.seed) {}

NodeId PhysicalNetwork::AddNode() {
  coords_.emplace_back(rng_.NextDouble(), rng_.NextDouble());
  online_.push_back(true);
  ++num_online_;
  return coords_.size() - 1;
}

void PhysicalNetwork::AddNodes(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) AddNode();
}

void PhysicalNetwork::SetOnline(NodeId node, bool online) {
  assert(node < online_.size());
  if (online_[node] == online) return;
  online_[node] = online;
  num_online_ += online ? 1 : -1;
}

double PhysicalNetwork::Latency(NodeId from, NodeId to) const {
  assert(from < coords_.size() && to < coords_.size());
  if (from == to) return 0.0;
  double dx = coords_[from].first - coords_[to].first;
  double dy = coords_[from].second - coords_[to].second;
  // Unit-square diagonal is sqrt(2); scale distance into [min, max].
  double frac = std::sqrt(dx * dx + dy * dy) / std::sqrt(2.0);
  return options_.min_latency +
         frac * (options_.max_latency - options_.min_latency);
}

void PhysicalNetwork::Send(NodeId from, NodeId to, std::size_t bytes,
                           MessageType type,
                           std::function<void()> on_deliver,
                           std::function<void()> on_drop) {
  assert(from < online_.size() && to < online_.size());
  stats_.RecordSend(type, bytes);
  if (CostLedger::enabled()) {
    auto idx = static_cast<std::size_t>(type);
    if (idx < CostCounts::kNumWireTypes) {
      CostCounts& c = CostLedger::Tls();
      ++c.wire_messages_by_type[idx];
      c.wire_bytes_by_type[idx] += bytes;
    }
  }

  // Message span: child of whatever span is being executed right now, so
  // causality flows through the event queue without an explicit message
  // object. Tracing draws no randomness and schedules nothing — the event
  // sequence is bit-identical with or without it.
  TraceContext span;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan(MessageTypeToString(type), sim_.Now(), from,
                              tracer_->current(), "message");
    tracer_->AddArg(span, "to", std::to_string(to));
  }

  if (!online_[from]) {
    stats_.RecordDrop(type, DropReason::kSendOffline);
    if (tracer_ != nullptr) {
      tracer_->AddArg(span, "drop",
                      DropReasonToString(DropReason::kSendOffline));
      tracer_->EndSpan(span, sim_.Now());
    }
    if (on_drop) {
      sim_.Schedule(0.0, [this, span, on_drop = std::move(on_drop)] {
        ScopedTraceContext scope(tracer_, span);
        on_drop();
      });
    }
    return;
  }

  double delay = Latency(from, to) +
                 static_cast<double>(bytes) / options_.bandwidth_bytes_per_sec;
  // The baseline loss draw always happens, even when a fault rule already
  // condemned the message — identical RNG streams with and without a plan.
  bool lost_random = rng_.Bernoulli(options_.loss_rate);
  bool lost_injected = false;
  if (fault_hook_) {
    FaultDecision fd = fault_hook_(from, to, type, sim_.Now());
    lost_injected = fd.drop;
    delay += fd.extra_latency;
  }

  sim_.Schedule(delay, [this, to, type, lost_random, lost_injected, span,
                        on_deliver = std::move(on_deliver),
                        on_drop = std::move(on_drop)]() {
    if (lost_injected || lost_random || !online_[to]) {
      DropReason reason = lost_injected  ? DropReason::kInjectedFault
                          : lost_random ? DropReason::kRandomLoss
                                        : DropReason::kRecvOffline;
      stats_.RecordDrop(type, reason);
      if (tracer_ != nullptr) {
        tracer_->AddArg(span, "drop", DropReasonToString(reason));
        tracer_->EndSpan(span, sim_.Now());
      }
      if (on_drop) {
        ScopedTraceContext scope(tracer_, span);
        on_drop();
      }
      return;
    }
    stats_.RecordDelivery(type);
    if (tracer_ != nullptr) tracer_->EndSpan(span, sim_.Now());
    if (on_deliver) {
      // The receiver reacts on behalf of this message: responses, ACKs and
      // forwarded hops all become children of the message span.
      ScopedTraceContext scope(tracer_, span);
      on_deliver();
    }
  });
}

}  // namespace p2pdt
