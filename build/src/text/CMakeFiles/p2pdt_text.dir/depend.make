# Empty dependencies file for p2pdt_text.
# This may be replaced when dependencies are built.
