#include "p2pml/cempar.h"

#include <set>

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"

namespace p2pdt {
namespace {

// Four tags, each tied to a distinct feature; peers specialize in two tags.
std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

SparseVector TagVector(TagId tag) {
  return SparseVector::FromPairs({{tag * 3u, 1.0}, {tag * 3u + 1, 1.0}});
}

struct Fixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Cempar> cempar;

  explicit Fixture(std::size_t peers, CemparOptions options = {}) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    env = std::move(Environment::Create(eo)).value();
    if (options.svm.kernel.type == KernelType::kRbf) {
      options.svm.kernel = Kernel::Linear();
    }
    cempar = std::make_unique<Cempar>(env->sim(), env->net(), *env->chord(),
                                      options);
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(cempar->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    cempar->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    cempar->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(CemparTest, SetupRequiresMatchingPeerCount) {
  Fixture f(8);
  EXPECT_FALSE(f.cempar->Setup(std::vector<MultiLabelDataset>(3), 4).ok());
}

TEST(CemparTest, TrainBuildsHomesForEveryTag) {
  Fixture f(12);
  ASSERT_TRUE(f.Train(MakePeerData(12, 8, 1)).ok());
  EXPECT_EQ(f.cempar->NumLiveHomes(), 4u);
  EXPECT_GT(f.cempar->TotalRegionalSupportVectors(), 0u);
}

TEST(CemparTest, PredictionsRecoverTagStructure) {
  Fixture f(12);
  ASSERT_TRUE(f.Train(MakePeerData(12, 10, 2)).ok());
  for (TagId t = 0; t < 4; ++t) {
    P2PPrediction p = f.PredictSync(3, TagVector(t));
    ASSERT_TRUE(p.success);
    ASSERT_EQ(p.scores.size(), 4u);
    EXPECT_EQ(p.tags, (std::vector<TagId>{t})) << "tag " << t;
  }
}

TEST(CemparTest, PredictionsWorkFromEveryRequester) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 3)).ok());
  for (NodeId r = 0; r < 10; ++r) {
    P2PPrediction p = f.PredictSync(r, TagVector(1));
    ASSERT_TRUE(p.success) << "requester " << r;
    EXPECT_EQ(p.tags, (std::vector<TagId>{1}));
  }
}

TEST(CemparTest, PredictBeforeTrainFails) {
  Fixture f(6);
  ASSERT_TRUE(f.cempar->Setup(MakePeerData(6, 4, 4), 4).ok());
  P2PPrediction p = f.PredictSync(0, TagVector(0));
  EXPECT_FALSE(p.success);
}

TEST(CemparTest, OfflineRequesterFails) {
  Fixture f(8);
  ASSERT_TRUE(f.Train(MakePeerData(8, 6, 5)).ok());
  f.env->net().SetOnline(2, false);
  P2PPrediction p = f.PredictSync(2, TagVector(0));
  EXPECT_FALSE(p.success);
}

TEST(CemparTest, TrainingChargesUploadsAndLookups) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 6, 6)).ok());
  const NetworkStats& stats = f.env->net().stats();
  EXPECT_GT(stats.messages_sent(MessageType::kModelUpload), 0u);
  EXPECT_GT(stats.messages_sent(MessageType::kLookup), 0u);
  EXPECT_EQ(stats.messages_sent(MessageType::kModelBroadcast), 0u);
}

TEST(CemparTest, PredictionChargesRequestTraffic) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 6, 7)).ok());
  uint64_t before = f.env->net().stats().messages_sent(
      MessageType::kPredictionRequest);
  f.PredictSync(1, TagVector(2));
  EXPECT_GT(f.env->net().stats().messages_sent(
                MessageType::kPredictionRequest),
            before);
}

TEST(CemparTest, SuperPeerFailureDegradesThenRepairRestores) {
  Fixture f(16);
  ASSERT_TRUE(f.Train(MakePeerData(16, 8, 8)).ok());
  ASSERT_EQ(f.cempar->NumLiveHomes(), 4u);

  // Kill every current super-peer.
  std::set<NodeId> killed;
  for (NodeId owner : f.cempar->HomeOwners()) {
    if (owner != kInvalidNode && killed.insert(owner).second) {
      f.env->net().SetOnline(owner, false);
    }
  }
  EXPECT_EQ(f.cempar->NumLiveHomes(), 0u);

  // Stabilize the ring so lookups route around the dead nodes, then repair.
  f.env->chord()->Bootstrap();
  bool repaired = false;
  f.cempar->RepairRound([&] { repaired = true; });
  f.env->RunUntilFlag(repaired, 3600);
  ASSERT_TRUE(repaired);
  EXPECT_EQ(f.cempar->NumLiveHomes(), 4u);

  // The system answers correctly again (no single point of failure).
  NodeId requester = 0;
  while (killed.count(requester)) ++requester;
  P2PPrediction p = f.PredictSync(requester, TagVector(0));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.tags, (std::vector<TagId>{0}));
}

TEST(CemparTest, MultipleRegionsAlsoWork) {
  CemparOptions opt;
  opt.regions_per_tag = 2;
  Fixture f(12, opt);
  ASSERT_TRUE(f.Train(MakePeerData(12, 10, 9)).ok());
  EXPECT_EQ(f.cempar->NumLiveHomes(), 8u);  // 4 tags × 2 regions
  P2PPrediction p = f.PredictSync(5, TagVector(3));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.tags, (std::vector<TagId>{3}));
}

TEST(CemparTest, PeersWithoutDataDontContribute) {
  Fixture f(8);
  std::vector<MultiLabelDataset> data = MakePeerData(8, 6, 10);
  data[3] = MultiLabelDataset(4);  // peer 3 empty
  ASSERT_TRUE(f.Train(std::move(data)).ok());
  // Empty peers can still request predictions.
  P2PPrediction p = f.PredictSync(3, TagVector(1));
  EXPECT_TRUE(p.success);
}

}  // namespace
}  // namespace p2pdt
