#include "p2psim/event_queue.h"

#include <algorithm>
#include <cmath>

namespace p2pdt {

namespace {

/// Floor for the bucket width: at equal-timestamp bursts the measured gap
/// collapses to zero, and a zero width would make every slot computation
/// divide by nothing.
constexpr double kMinWidth = 1.0e-9;

/// Ceiling for slot indices: times are simulated seconds (bounded in
/// practice), but a pathological time / tiny width must not overflow the
/// 64-bit slot arithmetic.
constexpr double kMaxSlot = 1.0e18;

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool EventLess(const SimEvent& a, double time, uint64_t seq) {
  if (a.time != time) return a.time < time;
  return a.seq < seq;
}

}  // namespace

CalendarQueue::CalendarQueue() : CalendarQueue(Options()) {}

CalendarQueue::CalendarQueue(Options options) : options_(options) {
  if (options_.initial_buckets == 0) options_.initial_buckets = 1;
  width_ = std::max(options_.initial_width, kMinWidth);
  buckets_.resize(RoundUpPow2(options_.initial_buckets));
}

uint64_t CalendarQueue::SlotOf(double time) const {
  double s = time / width_;
  if (s < 0.0) s = 0.0;
  if (s > kMaxSlot) s = kMaxSlot;
  return static_cast<uint64_t>(s);
}

void CalendarQueue::Insert(SimEvent event) {
  Bucket& b = buckets_[SlotOf(event.time) % buckets_.size()];
  // Fast path: events usually arrive in nondecreasing (time, seq) order
  // within their bucket, so appending keeps it sorted.
  if (!b.has_live() ||
      !EventLess(event, b.ev.back().time, b.ev.back().seq)) {
    if (!b.has_live()) {
      // Whole bucket is popped prefix — reclaim it instead of growing.
      b.ev.clear();
      b.head = 0;
    }
    b.ev.push_back(std::move(event));
    return;
  }
  auto pos = std::upper_bound(
      b.ev.begin() + static_cast<std::ptrdiff_t>(b.head), b.ev.end(), event,
      [](const SimEvent& x, const SimEvent& y) {
        return EventLess(x, y.time, y.seq);
      });
  b.ev.insert(pos, std::move(event));
}

uint64_t CalendarQueue::Push(double time, UniqueFunction fn) {
  if (time < 0.0 || !std::isfinite(time)) time = 0.0;
  const uint64_t id = next_seq_++;
  SimEvent event;
  event.time = time;
  event.seq = id;
  event.fn = std::move(fn);
  // An event earlier than the scan cursor's window would be missed by the
  // forward scan — rewind the cursor to its slot.
  const uint64_t slot = SlotOf(time);
  if (slot < slot_) slot_ = slot;
  if (cached_min_bucket_ != kNoCache && time < cached_min_time_) {
    cached_min_bucket_ = kNoCache;
  }
  Insert(std::move(event));
  ++live_;
  ++stored_;
  MaybeResize();
  return id;
}

bool CalendarQueue::Cancel(uint64_t id) {
  cancelled_.insert(id);
  if (live_ > 0) --live_;
  cached_min_bucket_ = kNoCache;
  return true;
}

void CalendarQueue::PurgeCancelledHead(Bucket& b) {
  while (b.head < b.ev.size() && !cancelled_.empty() &&
         cancelled_.count(b.ev[b.head].seq) > 0) {
    cancelled_.erase(b.ev[b.head].seq);
    ++b.head;
    --stored_;
  }
  // Compact long popped prefixes so memory tracks the live population.
  if (b.head > 32 && b.head * 2 > b.ev.size()) {
    b.ev.erase(b.ev.begin(), b.ev.begin() + static_cast<std::ptrdiff_t>(b.head));
    b.head = 0;
  }
}

std::size_t CalendarQueue::FindMin() {
  if (cached_min_bucket_ != kNoCache) return cached_min_bucket_;
  const std::size_t nb = buckets_.size();
  for (;;) {
    // One pass over the current calendar year, starting at the cursor.
    // Membership in the cursor's window is tested with the same division
    // Insert keys buckets by (SlotOf), never by multiplying the width back
    // up: `(slot+1) * width` can round down onto the event's exact time,
    // and a strict `<` against it would skip the event forever.
    for (std::size_t scanned = 0; scanned < nb; ++scanned) {
      Bucket& b = buckets_[slot_ % nb];
      PurgeCancelledHead(b);
      if (b.has_live() && SlotOf(b.front().time) <= slot_) {
        cached_min_bucket_ = slot_ % nb;
        cached_min_time_ = b.front().time;
        return cached_min_bucket_;
      }
      ++slot_;
    }
    // Nothing due this year: jump the cursor straight to the globally
    // minimal event instead of spinning through empty years.
    std::size_t best = kNoCache;
    double best_time = 0.0;
    uint64_t best_seq = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      Bucket& b = buckets_[i];
      PurgeCancelledHead(b);
      if (!b.has_live()) continue;
      const SimEvent& e = b.front();
      if (best == kNoCache || EventLess(e, best_time, best_seq)) {
        best = i;
        best_time = e.time;
        best_seq = e.seq;
      }
    }
    // live_ > 0 guarantees best found.
    slot_ = SlotOf(best_time);
    // Loop once more: the scan pass re-validates that no event in the
    // min's slot window precedes it (same-window earlier buckets).
  }
}

double CalendarQueue::MinTime() {
  Bucket& b = buckets_[FindMin()];
  return b.front().time;
}

SimEvent CalendarQueue::PopMin() {
  Bucket& b = buckets_[FindMin()];
  SimEvent out = std::move(b.front());
  ++b.head;
  --stored_;
  --live_;
  cached_min_bucket_ = kNoCache;
  PurgeCancelledHead(b);
  if (popped_any_) {
    const double gap = out.time - last_pop_time_;
    avg_gap_ = avg_gap_ == 0.0 ? gap : 0.9 * avg_gap_ + 0.1 * gap;
  }
  popped_any_ = true;
  last_pop_time_ = out.time;
  MaybeResize();
  return out;
}

void CalendarQueue::MaybeResize() {
  if (!options_.auto_resize) return;
  const std::size_t nb = buckets_.size();
  if (live_ > 2 * nb) {
    Rebuild(nb * 2, std::max(avg_gap_ * 2.0, kMinWidth));
  } else if (nb > RoundUpPow2(options_.initial_buckets) && live_ * 2 < nb) {
    Rebuild(nb / 2, std::max(avg_gap_ * 2.0, kMinWidth));
  }
}

void CalendarQueue::Rebuild(std::size_t new_buckets, double new_width) {
  std::vector<SimEvent> all;
  all.reserve(stored_);
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.ev.size(); ++i) {
      if (!cancelled_.empty() && cancelled_.count(b.ev[i].seq) > 0) {
        cancelled_.erase(b.ev[i].seq);
        continue;
      }
      all.push_back(std::move(b.ev[i]));
    }
  }
  buckets_.clear();
  buckets_.resize(new_buckets);
  stored_ = all.size();
  // live_ is unchanged: tombstones were reclaimed above.
  double min_time = 0.0;
  double max_time = 0.0;
  bool any = false;
  for (SimEvent& e : all) {
    if (!any || e.time < min_time) min_time = e.time;
    if (!any || e.time > max_time) max_time = e.time;
    any = true;
  }
  // A resize before any pop has no gap estimate (avg_gap_ == 0, so the
  // caller passes the kMinWidth floor). Derive the width from the stored
  // population's spread instead — the floor would smear a seconds-scale
  // timeline across ~1e9 slots and make every pop a full-year scan.
  if (new_width <= kMinWidth && all.size() > 1 && max_time > min_time) {
    new_width = (max_time - min_time) / static_cast<double>(all.size());
  }
  width_ = std::max(new_width, kMinWidth);
  slot_ = any ? SlotOf(min_time) : 0;
  cached_min_bucket_ = kNoCache;
  // Re-inserting in (time, seq) order keeps every bucket append-only here.
  std::sort(all.begin(), all.end(), [](const SimEvent& a, const SimEvent& b) {
    return EventLess(a, b.time, b.seq);
  });
  for (SimEvent& e : all) Insert(std::move(e));
  ++resizes_;
}

}  // namespace p2pdt
