#include "p2pdmt/visualize.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace p2pdt {

namespace {

std::string NodeLabel(NodeId n) { return "n" + std::to_string(n); }

void EmitNode(std::string& out, NodeId n, bool online) {
  out += "  " + NodeLabel(n) + " [label=\"" + std::to_string(n) + "\"";
  if (!online) out += ", style=dashed, color=gray";
  out += "];\n";
}

}  // namespace

std::string UnstructuredToDot(const UnstructuredOverlay& overlay,
                              const PhysicalNetwork& net) {
  std::string out = "graph unstructured {\n  layout=neato;\n";
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EmitNode(out, n, net.IsOnline(n));
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    for (NodeId nb : overlay.Neighbors(n)) {
      if (n < nb) {  // undirected: emit each edge once
        out += "  " + NodeLabel(n) + " -- " + NodeLabel(nb) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::string ChordToDot(const ChordOverlay& overlay, const PhysicalNetwork& net,
                       std::size_t max_finger_edges_per_node) {
  std::string out = "digraph chord {\n  layout=circo;\n";
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EmitNode(out, n, net.IsOnline(n));
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    std::vector<NodeId> succ = overlay.SuccessorsOf(n);
    if (!succ.empty()) {
      out += "  " + NodeLabel(n) + " -> " + NodeLabel(succ.front()) +
             " [penwidth=2];\n";
    }
    std::vector<NodeId> fingers = overlay.FingersOf(n);
    std::size_t emitted = 0;
    for (NodeId f : fingers) {
      if (!succ.empty() && f == succ.front()) continue;
      if (emitted++ >= max_finger_edges_per_node) break;
      out += "  " + NodeLabel(n) + " -> " + NodeLabel(f) +
             " [style=dashed, color=gray, constraint=false];\n";
    }
  }
  out += "}\n";
  return out;
}

Status WriteDotFile(const std::string& dot, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  f << dot;
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace p2pdt
