#ifndef P2PDT_CORE_TAG_CLOUD_H_
#define P2PDT_CORE_TAG_CLOUD_H_

#include <string>
#include <vector>

#include "core/tag_library.h"

namespace p2pdt {

/// The Tag Cloud interface of the demo (Figs. 3–4): tags sized by usage,
/// with edges between tags that co-occur in documents. The paper points
/// out that the edge structure "captures higher level concepts", showing
/// "two clusters of highly interconnected tags bridged by the word
/// 'navigation'" — clusters and bridge tags are first-class here.
struct TagCloudOptions {
  /// Minimum co-occurrence for an edge to be drawn.
  std::size_t min_edge_weight = 1;
  /// Font scale assigned to the most-used tag (linear in log-count).
  double max_font_scale = 3.0;
};

class TagCloud {
 public:
  using Options = TagCloudOptions;

  struct Node {
    std::string tag;
    std::size_t count = 0;      // documents carrying the tag
    double font_scale = 1.0;    // 1.0 (rare) .. max_font_scale (top tag)
    std::size_t cluster = 0;    // connected-component id
  };
  struct Edge {
    std::size_t a = 0;  // node indexes
    std::size_t b = 0;
    std::size_t weight = 0;  // co-occurrence count
  };

  /// Builds the cloud from the library's current index.
  static TagCloud Build(const TagLibrary& library, Options options = Options());

  /// Nodes in alphabetical order (the demo arranges suggestions
  /// alphabetically).
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t num_clusters() const { return num_clusters_; }

  /// Tags that bridge otherwise-separate groups: articulation points of
  /// the co-occurrence graph (removing one disconnects its component) —
  /// the "navigation" phenomenon of Fig. 4.
  std::vector<std::string> BridgeTags() const;

  /// Graphviz rendering (node size ~ font scale, edge width ~ weight).
  std::string ToDot() const;

  /// Terminal rendering: alphabetical list with font-size markers and
  /// strongest co-occurrence per tag.
  std::string Render() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;  // node -> edge idxs
  std::size_t num_clusters_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_TAG_CLOUD_H_
