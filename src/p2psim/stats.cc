#include "p2psim/stats.h"

#include <cstdio>

#include "common/string_util.h"

namespace p2pdt {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kOverlayMaintenance:
      return "overlay_maintenance";
    case MessageType::kLookup:
      return "lookup";
    case MessageType::kModelUpload:
      return "model_upload";
    case MessageType::kModelBroadcast:
      return "model_broadcast";
    case MessageType::kPredictionRequest:
      return "prediction_request";
    case MessageType::kPredictionResponse:
      return "prediction_response";
    case MessageType::kDataTransfer:
      return "data_transfer";
    case MessageType::kGossip:
      return "gossip";
    case MessageType::kAck:
      return "ack";
    case MessageType::kModelReplicate:
      return "model_replicate";
    case MessageType::kOverloadNack:
      return "overload_nack";
    case MessageType::kCount:
      return "count";
  }
  return "unknown";
}

const char* DropReasonToString(DropReason reason) {
  switch (reason) {
    case DropReason::kSendOffline:
      return "send_offline";
    case DropReason::kRecvOffline:
      return "recv_offline";
    case DropReason::kRandomLoss:
      return "random_loss";
    case DropReason::kInjectedFault:
      return "injected_fault";
    case DropReason::kOverloadShed:
      return "overload_shed";
    case DropReason::kCount:
      return "count";
  }
  return "unknown";
}

void NetworkStats::RecordSend(MessageType type, std::size_t bytes) {
  std::size_t i = static_cast<std::size_t>(type);
  ++sent_[i];
  bytes_[i] += bytes;
  ++total_sent_;
  total_bytes_ += bytes;
}

void NetworkStats::RecordDelivery(MessageType type) {
  ++delivered_[static_cast<std::size_t>(type)];
  ++total_delivered_;
}

void NetworkStats::RecordDrop(MessageType type, DropReason reason) {
  ++dropped_[static_cast<std::size_t>(type)];
  ++dropped_by_reason_[static_cast<std::size_t>(reason)];
  ++total_dropped_;
}

void NetworkStats::RecordRetransmit(MessageType type) {
  ++retransmits_[static_cast<std::size_t>(type)];
  ++total_retransmits_;
}

void NetworkStats::RecordAckReceived() { ++acks_received_; }

void NetworkStats::RecordGiveUp(MessageType type) {
  ++give_ups_[static_cast<std::size_t>(type)];
  ++total_give_ups_;
}

void NetworkStats::Reset() {
  sent_.fill(0);
  bytes_.fill(0);
  delivered_.fill(0);
  dropped_.fill(0);
  retransmits_.fill(0);
  give_ups_.fill(0);
  dropped_by_reason_.fill(0);
  total_sent_ = total_delivered_ = total_dropped_ = total_bytes_ = 0;
  total_retransmits_ = total_give_ups_ = acks_received_ = 0;
}

std::string NetworkStats::ToString() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "total: %llu msgs, %s, %llu delivered, %llu dropped\n",
                static_cast<unsigned long long>(total_sent_),
                HumanBytes(static_cast<double>(total_bytes_)).c_str(),
                static_cast<unsigned long long>(total_delivered_),
                static_cast<unsigned long long>(total_dropped_));
  out += buf;
  for (std::size_t i = 0; i < kNumTypes; ++i) {
    if (sent_[i] == 0 && dropped_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-20s %10llu msgs %12s\n",
                  MessageTypeToString(static_cast<MessageType>(i)),
                  static_cast<unsigned long long>(sent_[i]),
                  HumanBytes(static_cast<double>(bytes_[i])).c_str());
    out += buf;
  }
  if (total_dropped_ > 0) {
    out += "drops by reason:\n";
    for (std::size_t i = 0; i < kNumDropReasons; ++i) {
      if (dropped_by_reason_[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "  %-20s %10llu msgs\n",
                    DropReasonToString(static_cast<DropReason>(i)),
                    static_cast<unsigned long long>(dropped_by_reason_[i]));
      out += buf;
    }
  }
  if (total_retransmits_ > 0 || acks_received_ > 0 || total_give_ups_ > 0) {
    std::snprintf(buf, sizeof(buf),
                  "reliable transport: %llu retransmits, %llu acks received, "
                  "%llu give-ups\n",
                  static_cast<unsigned long long>(total_retransmits_),
                  static_cast<unsigned long long>(acks_received_),
                  static_cast<unsigned long long>(total_give_ups_));
    out += buf;
  }
  return out;
}

}  // namespace p2pdt
