#include "common/sparse_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/cost_ledger.h"

namespace p2pdt {

SparseVector SparseVector::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  SparseVector out;
  out.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().first == e.first) {
      out.entries_.back().second += e.second;
    } else {
      out.entries_.push_back(e);
    }
  }
  // Drop zeros that may result from summing cancelling duplicates.
  out.entries_.erase(
      std::remove_if(out.entries_.begin(), out.entries_.end(),
                     [](const Entry& e) { return e.second == 0.0; }),
      out.entries_.end());
  return out;
}

SparseVector SparseVector::FromDense(const std::vector<double>& dense) {
  SparseVector out;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) {
      out.entries_.emplace_back(static_cast<Index>(i), dense[i]);
    }
  }
  return out;
}

void SparseVector::PushBack(Index id, double weight) {
  assert(entries_.empty() || entries_.back().first < id);
  if (weight == 0.0) return;
  entries_.emplace_back(id, weight);
}

double SparseVector::Get(Index id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, Index key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0;
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  std::size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    Index a = entries_[i].first, b = other.entries_[j].first;
    if (a == b) {
      sum += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  // Charged once per call with the merge-step aggregate (i + j), so the
  // inner loop stays branch-free when the ledger is off.
  if (CostLedger::enabled()) {
    CostCounts& c = CostLedger::Tls();
    ++c.sparse_dot_calls;
    c.sparse_dot_ops += i + j;
  }
  return sum;
}

double SparseVector::DotDense(const std::vector<double>& dense) const {
  double sum = 0.0;
  for (const Entry& e : entries_) {
    if (e.first < dense.size()) sum += e.second * dense[e.first];
  }
  if (CostLedger::enabled()) {
    CostCounts& c = CostLedger::Tls();
    ++c.sparse_dot_calls;
    c.sparse_dot_ops += entries_.size();
  }
  return sum;
}

double SparseVector::Norm() const { return std::sqrt(SquaredNorm()); }

double SparseVector::SquaredNorm() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.second * e.second;
  return sum;
}

double SparseVector::Sum() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.second;
  return sum;
}

void SparseVector::Scale(double factor) {
  if (factor == 0.0) {
    entries_.clear();
    return;
  }
  for (Entry& e : entries_) e.second *= factor;
}

void SparseVector::L2Normalize() {
  double n = Norm();
  if (n > 0.0) Scale(1.0 / n);
}

void SparseVector::Add(const SparseVector& other, double alpha) {
  if (alpha == 0.0 || other.empty()) return;
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].first < other.entries_[j].first)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].first < entries_[i].first) {
      merged.emplace_back(other.entries_[j].first,
                          alpha * other.entries_[j].second);
      ++j;
    } else {
      double w = entries_[i].second + alpha * other.entries_[j].second;
      if (w != 0.0) merged.emplace_back(entries_[i].first, w);
      ++i;
      ++j;
    }
  }
  if (CostLedger::enabled()) CostLedger::Tls().sparse_axpy_ops += i + j;
  entries_ = std::move(merged);
}

double SparseVector::SquaredDistance(const SparseVector& other) const {
  // ||a - b||² = ||a||² + ||b||² - 2 a·b, computed with one merge pass for
  // numerical symmetry.
  double sum = 0.0;
  std::size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].first < other.entries_[j].first)) {
      sum += entries_[i].second * entries_[i].second;
      ++i;
    } else if (i >= entries_.size() ||
               other.entries_[j].first < entries_[i].first) {
      sum += other.entries_[j].second * other.entries_[j].second;
      ++j;
    } else {
      double d = entries_[i].second - other.entries_[j].second;
      sum += d * d;
      ++i;
      ++j;
    }
  }
  if (CostLedger::enabled()) {
    CostCounts& c = CostLedger::Tls();
    ++c.sparse_dist_calls;
    c.sparse_dist_ops += i + j;
  }
  return sum;
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm(), nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

SparseVector::Index SparseVector::DimensionBound() const {
  if (entries_.empty()) return 0;
  return entries_.back().first + 1;
}

std::string SparseVector::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%u:%.4g", entries_[i].first,
                  entries_[i].second);
    out += buf;
  }
  out += "}";
  return out;
}

void DenseAccumulator::Add(const SparseVector& v, double alpha) {
  for (const SparseVector::Entry& e : v.entries()) {
    if (e.first >= values_.size()) values_.resize(e.first + 1, 0.0);
    values_[e.first] += alpha * e.second;
  }
}

void DenseAccumulator::Scale(double factor) {
  for (double& x : values_) x *= factor;
}

SparseVector DenseAccumulator::ToSparse() const {
  return SparseVector::FromDense(values_);
}

}  // namespace p2pdt
