// Interactive responsiveness — the demo lets the audience "interact with
// the system to assign or refine the tags" (Sec. 3), so time-to-answer for
// a Suggest/AutoTag request matters. This bench measures the *simulated*
// latency distribution of predictions (request issue → answer) for each
// algorithm, at two network scales.
//
// Percentiles come from the same per-request tagging-latency histogram the
// overload SLO harness quotes (TaggingLatencyHistogram), so LAT and OVER1
// numbers are directly comparable.
//
// Expected shape: PACE answers locally (≈0 network latency); CEMPaR pays
// one DHT resolution (first query per requester) then cached
// request/response round-trips; centralized pays exactly one RTT to the
// coordinator. Cold (first query, cache misses) vs warm separates the
// lookup cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "p2pdmt/loadgen.h"

using namespace p2pdt_bench;

namespace {

struct LatencyStats {
  double p50 = 0, p95 = 0, p99 = 0, max = 0;
};

}  // namespace

int main() {
  std::printf("=== prediction latency (simulated seconds) ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(64, 12);
  CorpusSplit split = SplitCorpus(corpus, 0.2, 21);
  CsvWriter csv({"algorithm", "peers", "phase", "p50_ms", "p95_ms", "p99_ms",
                 "max_ms"});

  for (std::size_t peers : {64u, 128u}) {
    std::printf("-- %zu peers --\n", peers);
    std::printf("%-12s %-6s %10s %10s %10s %10s\n", "algorithm", "phase",
                "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)");
    for (AlgorithmType algo :
         {AlgorithmType::kCempar, AlgorithmType::kPace,
          AlgorithmType::kCentralized}) {
      ExperimentOptions opt = MacroDefaults(algo, peers);
      auto env = std::move(Environment::Create(opt.env)).value();
      auto classifier = std::move(MakeClassifier(*env, opt)).value();
      auto peer_data =
          std::move(DistributeData(split.train, peers, opt.distribution,
                                   &split.train_user))
              .value();
      if (!classifier->Setup(std::move(peer_data),
                             corpus.dataset.num_tags())
               .ok()) {
        continue;
      }
      bool trained = false;
      classifier->Train([&](Status) { trained = true; });
      env->RunUntilFlag(trained, 3600);

      // Cold phase: every requester's first query (lookup-heavy for
      // CEMPaR). Warm phase: repeat queries from the same requesters.
      // Each phase observes into its own tagging-latency histogram — the
      // exact instrument the SLO harness quantiles.
      Rng rng(500 + peers);
      auto measure = [&](std::size_t count, bool reuse_requester) {
        MetricsRegistry metrics;
        Histogram& hist =
            TaggingLatencyHistogram(metrics, classifier->name());
        NodeId fixed = rng.NextU64(peers);
        for (std::size_t i = 0; i < count; ++i) {
          const auto& ex = split.test[i % split.test.size()];
          NodeId requester = reuse_requester ? fixed : rng.NextU64(peers);
          double issued = env->sim().Now();
          bool done = false;
          classifier->Predict(requester, ex.x, [&](P2PPrediction) {
            done = true;
          });
          // Step event-by-event so Now() stops exactly at the answer
          // (RunUntilFlag's coarse slices would quantize latencies).
          while (!done && env->sim().Step()) {
          }
          hist.Observe(env->sim().Now() - issued);
        }
        LatencyStats out;
        out.p50 = hist.Quantile(0.5) * 1e3;
        out.p95 = hist.Quantile(0.95) * 1e3;
        out.p99 = hist.Quantile(0.99) * 1e3;
        out.max = hist.max() * 1e3;
        return out;
      };

      LatencyStats cold = measure(60, /*reuse_requester=*/false);
      LatencyStats warm = measure(60, /*reuse_requester=*/true);
      std::printf("%-12s %-6s %10.1f %10.1f %10.1f %10.1f\n",
                  classifier->name().c_str(), "cold", cold.p50, cold.p95,
                  cold.p99, cold.max);
      std::printf("%-12s %-6s %10.1f %10.1f %10.1f %10.1f\n",
                  classifier->name().c_str(), "warm", warm.p50, warm.p95,
                  warm.p99, warm.max);
      csv.AddRow({classifier->name(), std::to_string(peers), "cold",
                  std::to_string(cold.p50), std::to_string(cold.p95),
                  std::to_string(cold.p99), std::to_string(cold.max)});
      csv.AddRow({classifier->name(), std::to_string(peers), "warm",
                  std::to_string(warm.p50), std::to_string(warm.p95),
                  std::to_string(warm.p99), std::to_string(warm.max)});
    }
    std::printf("\n");
  }
  WriteResults(csv, "latency.csv");
  return 0;
}
