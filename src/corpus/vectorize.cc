#include "corpus/vectorize.h"

namespace p2pdt {

Result<VectorizedCorpus> VectorizeCorpus(const GeneratedCorpus& corpus,
                                         Preprocessor& preprocessor) {
  VectorizedCorpus out;
  out.tag_names = corpus.tag_names;
  out.num_users = corpus.num_users();
  for (std::size_t t = 0; t < corpus.tag_names.size(); ++t) {
    out.tag_ids.emplace(corpus.tag_names[t], static_cast<TagId>(t));
  }
  out.dataset.set_num_tags(static_cast<TagId>(corpus.tag_names.size()));

  for (const RawDocument& doc : corpus.documents) {
    MultiLabelExample ex;
    ex.x = preprocessor.Process(doc.text);
    for (const std::string& tag : doc.tags) {
      auto it = out.tag_ids.find(tag);
      if (it == out.tag_ids.end()) {
        return Status::Internal("document references unknown tag: " + tag);
      }
      ex.tags.push_back(it->second);
    }
    out.doc_user.push_back(doc.user);
    out.dataset.Add(std::move(ex));
  }
  return out;
}

Result<VectorizedCorpus> MakeVectorizedCorpus(const CorpusOptions& options) {
  Result<GeneratedCorpus> corpus = GenerateCorpus(options);
  if (!corpus.ok()) return corpus.status();
  Preprocessor preprocessor;
  return VectorizeCorpus(corpus.value(), preprocessor);
}

Result<VectorizedStream> VectorizeStream(const StreamedCorpus& stream,
                                         Preprocessor& preprocessor) {
  VectorizedStream out;
  out.num_epochs = stream.num_epochs;
  out.first_drift_epoch = stream.first_drift_epoch;
  out.doc_epoch = stream.doc_epoch;

  VectorizedCorpus& vc = out.corpus;
  vc.tag_names = stream.tag_names;
  vc.num_users = stream.num_users();
  for (std::size_t t = 0; t < stream.tag_names.size(); ++t) {
    vc.tag_ids.emplace(stream.tag_names[t], static_cast<TagId>(t));
  }
  vc.dataset.set_num_tags(static_cast<TagId>(stream.tag_names.size()));

  for (const RawDocument& doc : stream.documents) {
    MultiLabelExample ex;
    ex.x = preprocessor.Process(doc.text);
    for (const std::string& tag : doc.tags) {
      auto it = vc.tag_ids.find(tag);
      if (it == vc.tag_ids.end()) {
        return Status::Internal("stream document references unknown tag: " +
                                tag);
      }
      ex.tags.push_back(it->second);
    }
    vc.doc_user.push_back(doc.user);
    vc.dataset.Add(std::move(ex));
  }
  return out;
}

Result<VectorizedStream> MakeVectorizedStream(const StreamOptions& options) {
  Result<StreamedCorpus> stream = GenerateStream(options);
  if (!stream.ok()) return stream.status();
  Preprocessor preprocessor;
  return VectorizeStream(stream.value(), preprocessor);
}

}  // namespace p2pdt
