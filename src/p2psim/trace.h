#ifndef P2PDT_P2PSIM_TRACE_H_
#define P2PDT_P2PSIM_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Causal identity carried by simulated work: which end-to-end operation
/// (trace) a piece of activity belongs to and which span caused it. A
/// default-constructed context is "not tracing" — trace_id 0 is reserved.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// One recorded interval (or instant) of simulated activity.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  std::string name;
  std::string category;
  /// Sim-time interval. Instants have end == start.
  SimTime start = 0.0;
  SimTime end = 0.0;
  /// Acting peer (rendered as the Chrome trace tid); SIZE_MAX = system.
  std::size_t node = static_cast<std::size_t>(-1);
  bool instant = false;
  /// Free-form annotations (drop reason, hop count, key, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Sim-time causal tracer.
///
/// The simulator has no explicit message object — a "message" is a pair of
/// callbacks scheduled on the event queue — so causality is carried by a
/// *current context*: the span on whose behalf the driver thread is
/// currently executing. PhysicalNetwork stamps the current context onto
/// every send as the new span's parent, and restores that span as current
/// around the delivery callback; anything the receiver sends in response
/// therefore chains into the same trace, across transport retries, DHT
/// hops and cascade uploads.
///
/// Determinism: the tracer draws no randomness, schedules no events and
/// never influences control flow — a run with tracing enabled executes the
/// exact same event sequence as one without. All span mutation happens on
/// the simulator driver thread (pool workers never send messages), so no
/// locking is needed or provided here.
///
/// Export is Chrome trace_event JSON ("X" complete events + "i" instants),
/// loadable in chrome://tracing or https://ui.perfetto.dev. Sim-seconds map
/// to microseconds 1:1 on the timeline.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a root span of a fresh trace.
  TraceContext StartTrace(std::string name, SimTime now, std::size_t node,
                          std::string category = "op");
  /// Opens a child span of `parent` (same trace). An invalid parent makes
  /// this a root span of a new trace.
  TraceContext StartSpan(std::string name, SimTime now, std::size_t node,
                         const TraceContext& parent,
                         std::string category = "op");
  /// Child of the current context when one is active, fresh root otherwise
  /// — the common entry-point idiom (a prediction issued by the harness is
  /// a root; one issued inside another traced operation nests).
  TraceContext StartAuto(std::string name, SimTime now, std::size_t node,
                         std::string category = "op");

  void EndSpan(const TraceContext& ctx, SimTime now);
  /// Attaches a key=value annotation to a still-open span.
  void AddArg(const TraceContext& ctx, std::string key, std::string value);
  /// Records a zero-duration marker (retransmit, give-up, drop, ...).
  void Instant(std::string name, SimTime now, std::size_t node,
               const TraceContext& ctx, std::string category = "mark");

  /// Span being executed on behalf of right now (invalid when idle).
  const TraceContext& current() const { return current_; }
  void set_current(const TraceContext& ctx) { current_ = ctx; }

  std::size_t num_spans() const { return spans_.size(); }
  std::size_t num_traces() const { return next_trace_id_ - 1; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::vector<const SpanRecord*> SpansForTrace(uint64_t trace_id) const;

  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Collapsed-stack ("folded") flamegraph text: one line per unique span
  /// path, `root;child;leaf <self_micros>`, sorted by path. Self time is a
  /// span's sim-time duration minus the duration of its direct children, so
  /// stack totals match the parent's span. Instants contribute nothing.
  std::string ToCollapsed() const;
  Status WriteCollapsed(const std::string& path) const;

  void Clear();

 private:
  SpanRecord* FindOpen(uint64_t span_id);

  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  TraceContext current_;
  std::vector<SpanRecord> spans_;
  /// span_id -> index into spans_ for spans not yet ended.
  std::unordered_map<uint64_t, std::size_t> open_;
};

/// Restores the tracer's previous current context on scope exit. A null
/// tracer makes this a no-op, so call sites stay branch-free.
class ScopedTraceContext {
 public:
  ScopedTraceContext(Tracer* tracer, const TraceContext& ctx)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      saved_ = tracer_->current();
      tracer_->set_current(ctx);
    }
  }
  ~ScopedTraceContext() {
    if (tracer_ != nullptr) tracer_->set_current(saved_);
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  Tracer* tracer_;
  TraceContext saved_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_TRACE_H_
