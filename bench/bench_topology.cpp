// DEMO4 — "topology of the P2P network" (paper Sec. 3): structured (Chord)
// vs. unstructured (random-graph flooding) overlays. Measures (a) routing:
// Chord lookup hops vs. network size, (b) dissemination: delivery ratio and
// message cost of a broadcast on both overlays, (c) end-to-end: PACE (the
// topology-agnostic protocol) trained over both.
//
// Expected shape: Chord hops grow ~log N; tree broadcast uses exactly N−1
// messages vs. flooding's ~N·degree duplicates; PACE accuracy matches on
// both while unstructured pays a large message premium.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "p2psim/unstructured.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO4: structured vs unstructured overlays ===\n\n");
  CsvWriter csv({"experiment", "overlay", "peers", "value1", "value2"});

  // (a) Chord routing hops vs N.
  std::printf("-- Chord lookup hops (mean over 200 lookups) --\n");
  std::printf("%6s %10s %10s\n", "peers", "hops", "log2(N)");
  for (std::size_t n : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(n);
    ChordOverlay chord(sim, net, {});
    for (NodeId i = 0; i < n; ++i) chord.AddNode(i);
    chord.Bootstrap();
    Rng rng(n);
    double hops = 0;
    int done_count = 0;
    for (int i = 0; i < 200; ++i) {
      chord.Lookup(rng.NextU64(n), rng.NextU64(),
                   [&](ChordOverlay::LookupResult r) {
                     if (r.success) {
                       hops += r.hops;
                       ++done_count;
                     }
                   });
    }
    sim.RunUntil(sim.Now() + 600.0);
    double mean_hops = done_count ? hops / done_count : -1;
    std::printf("%6zu %10.2f %10.2f\n", n, mean_hops,
                std::log2(static_cast<double>(n)));
    csv.AddRow({"lookup_hops", "chord", std::to_string(n),
                std::to_string(mean_hops),
                std::to_string(std::log2(static_cast<double>(n)))});
  }

  // (b) Broadcast cost and coverage on both overlays.
  std::printf("\n-- Broadcast: delivery ratio and messages --\n");
  std::printf("%-14s %6s %10s %10s\n", "overlay", "peers", "delivered",
              "messages");
  for (std::size_t n : {64u, 256u}) {
    for (int mode = 0; mode < 3; ++mode) {
      Simulator sim;
      PhysicalNetwork net(sim);
      net.AddNodes(n);
      std::unique_ptr<Overlay> overlay;
      if (mode == 0) {
        auto chord = std::make_unique<ChordOverlay>(sim, net, ChordOptions{});
        for (NodeId i = 0; i < n; ++i) chord->AddNode(i);
        chord->Bootstrap();
        overlay = std::move(chord);
      } else {
        UnstructuredOptions uo;
        if (mode == 2) {
          uo.mode = DisseminationMode::kGossip;
          uo.flood_ttl = 12;  // gossip needs more rounds for coverage
        }
        auto flood = std::make_unique<UnstructuredOverlay>(sim, net, uo);
        for (NodeId i = 0; i < n; ++i) flood->AddNode(i);
        overlay = std::move(flood);
      }
      net.stats().Reset();
      std::set<NodeId> reached;
      bool complete = false;
      overlay->Broadcast(0, 1024, MessageType::kModelBroadcast,
                         [&](NodeId id) { reached.insert(id); },
                         [&] { complete = true; });
      sim.RunUntil(sim.Now() + 600.0);
      double ratio =
          static_cast<double>(reached.size()) / static_cast<double>(n - 1);
      uint64_t messages =
          net.stats().messages_sent(MessageType::kModelBroadcast);
      std::printf("%-14s %6zu %10.3f %10llu %s\n", overlay->name().c_str(),
                  n, ratio, static_cast<unsigned long long>(messages),
                  complete ? "" : "(incomplete)");
      csv.AddRow({"broadcast", overlay->name(), std::to_string(n),
                  std::to_string(ratio), std::to_string(messages)});
    }
  }

  // (c) PACE end-to-end on both topologies.
  std::printf("\n-- PACE trained over each overlay (128 peers) --\n");
  const VectorizedCorpus& corpus = SharedCorpus(128, 12);
  for (OverlayType overlay :
       {OverlayType::kChord, OverlayType::kUnstructured}) {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kPace, 128);
    opt.env.overlay = overlay;
    Result<ExperimentResult> r = RunExperiment(corpus, opt);
    if (!r.ok()) {
      std::fprintf(stderr, "pace failed: %s\n",
                   r.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s microF1=%.4f train=%.1f MiB\n", r->overlay.c_str(),
                r->metrics.micro_f1, r->train_bytes / (1024.0 * 1024.0));
    csv.AddRow({"pace_e2e", r->overlay, "128",
                std::to_string(r->metrics.micro_f1),
                std::to_string(r->train_bytes / (1024.0 * 1024.0))});
  }
  WriteResults(csv, "demo4_topology.csv");
  return 0;
}
