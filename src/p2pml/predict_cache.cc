#include "p2pml/predict_cache.h"

#include <cstring>

namespace p2pdt {

uint64_t FingerprintVector(const SparseVector& x) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& [index, weight] : x.entries()) {
    mix_bytes(&index, sizeof(index));
    double w = weight;
    uint64_t bits = 0;
    std::memcpy(&bits, &w, sizeof(bits));
    mix_bytes(&bits, sizeof(bits));
  }
  return h;
}

const P2PPrediction* PredictionCache::Lookup(uint64_t key, uint64_t epoch,
                                             double now,
                                             CacheOutcome* outcome) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if (outcome) *outcome = CacheOutcome::kMiss;
    return nullptr;
  }
  Entry& e = *it->second;
  if (e.epoch != epoch || now - e.inserted_at > options_.ttl_seconds) {
    // Stale: wrong model version or past TTL. Erase on contact so a stale
    // answer can never be served later by accident.
    lru_.erase(it->second);
    map_.erase(it);
    ++stale_;
    if (outcome) *outcome = CacheOutcome::kStale;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (outcome) *outcome = CacheOutcome::kHit;
  return &it->second->value;
}

void PredictionCache::Insert(uint64_t key, uint64_t epoch, double now,
                             P2PPrediction value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->epoch = epoch;
    it->second->inserted_at = now;
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, epoch, now, std::move(value)});
  map_[key] = lru_.begin();
  while (map_.size() > options_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

PredictionCache& PredictCacheSet::ForNode(NodeId node) {
  if (node >= caches_.size()) caches_.resize(node + 1);
  if (!caches_[node]) {
    caches_[node] = std::make_unique<PredictionCache>(options_);
  }
  return *caches_[node];
}

uint64_t PredictCacheSet::hits() const {
  uint64_t n = 0;
  for (const auto& c : caches_) {
    if (c) n += c->hits();
  }
  return n;
}

uint64_t PredictCacheSet::misses() const {
  uint64_t n = 0;
  for (const auto& c : caches_) {
    if (c) n += c->misses();
  }
  return n;
}

uint64_t PredictCacheSet::stale() const {
  uint64_t n = 0;
  for (const auto& c : caches_) {
    if (c) n += c->stale();
  }
  return n;
}

}  // namespace p2pdt
