#ifndef P2PDT_P2PSIM_STATS_H_
#define P2PDT_P2PSIM_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace p2pdt {

/// Classification of simulated messages, so experiments can break
/// communication cost down by purpose (training vs. prediction vs. overlay
/// maintenance) the way the CEMPaR/PACE papers report it.
enum class MessageType : uint8_t {
  kOverlayMaintenance = 0,  // joins, stabilization, finger fixes
  kLookup,                  // DHT routing hops
  kModelUpload,             // CEMPaR: SVs to super-peer
  kModelBroadcast,          // PACE: linear models + centroids to all peers
  kPredictionRequest,       // untagged vector sent for tagging
  kPredictionResponse,      // predicted tags coming back
  kDataTransfer,            // raw training data (centralized baseline)
  kGossip,                  // unstructured overlay dissemination
  kAck,                     // reliable-transport acknowledgement
  kModelReplicate,          // CEMPaR: regional model to standby super-peer
  kOverloadNack,            // typed kOverloaded reject from a shedding peer
  kCount,                   // sentinel
};

const char* MessageTypeToString(MessageType type);

/// Why a message failed to reach its receiver. Fault-injection experiments
/// need this breakdown: "dropped" alone cannot distinguish churn losses
/// from injected faults from baseline random loss.
enum class DropReason : uint8_t {
  kSendOffline = 0,  // sender was offline at send time
  kRecvOffline,      // receiver was offline at delivery time
  kRandomLoss,       // baseline probabilistic loss (loss_rate)
  kInjectedFault,    // dropped by an armed fault plan
  kOverloadShed,     // shed by admission control at an overloaded server
  kCount,            // sentinel
};

const char* DropReasonToString(DropReason reason);

/// Message/byte accounting for one simulation run. The headline
/// "communication cost" numbers in the experiments come straight from here;
/// the retry/ACK counters quantify the overhead the reliable transport pays
/// for its delivery guarantees.
class NetworkStats {
 public:
  static constexpr std::size_t kNumTypes =
      static_cast<std::size_t>(MessageType::kCount);
  static constexpr std::size_t kNumDropReasons =
      static_cast<std::size_t>(DropReason::kCount);

  void RecordSend(MessageType type, std::size_t bytes);
  void RecordDelivery(MessageType type);
  void RecordDrop(MessageType type, DropReason reason);

  /// Reliable-transport accounting (the transport layer drives these).
  void RecordRetransmit(MessageType type);
  void RecordAckReceived();
  void RecordGiveUp(MessageType type);

  uint64_t messages_sent() const { return total_sent_; }
  uint64_t messages_delivered() const { return total_delivered_; }
  uint64_t messages_dropped() const { return total_dropped_; }
  uint64_t bytes_sent() const { return total_bytes_; }

  uint64_t messages_sent(MessageType type) const {
    return sent_[static_cast<std::size_t>(type)];
  }
  uint64_t delivered(MessageType type) const {
    return delivered_[static_cast<std::size_t>(type)];
  }
  uint64_t bytes_sent(MessageType type) const {
    return bytes_[static_cast<std::size_t>(type)];
  }
  uint64_t dropped(MessageType type) const {
    return dropped_[static_cast<std::size_t>(type)];
  }
  uint64_t dropped(DropReason reason) const {
    return dropped_by_reason_[static_cast<std::size_t>(reason)];
  }

  uint64_t retransmits() const { return total_retransmits_; }
  uint64_t retransmits(MessageType type) const {
    return retransmits_[static_cast<std::size_t>(type)];
  }
  uint64_t acks_received() const { return acks_received_; }
  uint64_t give_ups() const { return total_give_ups_; }
  uint64_t give_ups(MessageType type) const {
    return give_ups_[static_cast<std::size_t>(type)];
  }

  /// Fraction of sent messages that were delivered (1.0 when nothing was
  /// sent, so a quiet network reads as healthy).
  double delivery_rate() const {
    return total_sent_ == 0 ? 1.0
                            : static_cast<double>(total_delivered_) /
                                  static_cast<double>(total_sent_);
  }

  void Reset();

  /// Multi-line per-type breakdown plus drop-reason and retry summaries.
  std::string ToString() const;

 private:
  std::array<uint64_t, kNumTypes> sent_{};
  std::array<uint64_t, kNumTypes> bytes_{};
  std::array<uint64_t, kNumTypes> delivered_{};
  std::array<uint64_t, kNumTypes> dropped_{};
  std::array<uint64_t, kNumTypes> retransmits_{};
  std::array<uint64_t, kNumTypes> give_ups_{};
  std::array<uint64_t, kNumDropReasons> dropped_by_reason_{};
  uint64_t total_sent_ = 0;
  uint64_t total_delivered_ = 0;
  uint64_t total_dropped_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t total_retransmits_ = 0;
  uint64_t total_give_ups_ = 0;
  uint64_t acks_received_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_STATS_H_
