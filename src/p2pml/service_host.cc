#include "p2pml/service_host.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace p2pdt {

namespace {

/// Completion slot shared with the protocol's callback. Heap-allocated and
/// reference-counted so that an abandoned request (budget exhausted) whose
/// callback fires during a *later* request writes into harmless memory
/// instead of a dead stack frame.
struct PredictSlot {
  bool done = false;
  P2PPrediction prediction;
};

}  // namespace

ServiceHost::ServiceHost(Simulator* sim, P2PClassifier* classifier,
                         std::size_t max_events_per_request,
                         double max_sim_seconds_per_request)
    : sim_(sim),
      classifier_(classifier),
      max_events_(max_events_per_request),
      max_sim_seconds_(max_sim_seconds_per_request) {}

P2PPrediction ServiceHost::Predict(NodeId requester, const SparseVector& x) {
  auto slot = std::make_shared<PredictSlot>();
  classifier_->Predict(requester, x, [slot](P2PPrediction p) {
    slot->prediction = std::move(p);
    slot->done = true;
  });
  const double deadline = sim_->Now() + max_sim_seconds_;
  std::size_t steps = 0;
  while (!slot->done) {
    if (steps >= max_events_ || sim_->Now() > deadline) {
      // The protocol is spinning on recurring maintenance events or wedged;
      // answer failure rather than stall the serving thread. The abandoned
      // callback keeps `slot` alive, so a late completion is harmless.
      ++budget_exhausted_;
      P2PDT_LOG(Warning) << "predict budget exhausted after " << steps
                         << " events (sim now=" << sim_->Now() << ")";
      P2PPrediction failed;
      failed.success = false;
      return failed;
    }
    if (!sim_->Step()) {
      // Queue drained without an answer: the protocol dropped the request
      // (e.g. every serving peer offline). Fail cleanly.
      P2PPrediction failed;
      failed.success = false;
      return failed;
    }
    ++steps;
  }
  ++served_;
  return slot->prediction;
}

}  // namespace p2pdt
