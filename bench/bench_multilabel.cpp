// CLAIM2 — the paper argues that decomposing multi-label tagging into
// one-against-all binary problems "does not incur additional cost compared
// with the single label classification approach" because SVMs already
// handle multi-class that way. This bench measures the actual scaling of
// one-vs-all training and prediction with the number of tags.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"

namespace {

using namespace p2pdt;

MultiLabelDataset MakeDataset(std::size_t n, TagId num_tags, uint64_t seed) {
  Rng rng(seed);
  MultiLabelDataset data(num_tags);
  for (std::size_t i = 0; i < n; ++i) {
    TagId primary = static_cast<TagId>(i % num_tags);
    MultiLabelExample ex;
    std::vector<SparseVector::Entry> f;
    for (int j = 0; j < 30; ++j) {
      f.emplace_back(primary * 50 + static_cast<uint32_t>(rng.NextU64(50)),
                     rng.Uniform(0.1, 1.0));
    }
    ex.x = SparseVector::FromPairs(std::move(f));
    ex.x.L2Normalize();
    ex.tags = {primary};
    if (rng.Bernoulli(0.4)) {
      ex.tags.push_back(static_cast<TagId>((primary + 1) % num_tags));
    }
    data.Add(std::move(ex));
  }
  return data;
}

BinaryTrainer LinearTrainer() {
  return [](const std::vector<Example>& ex)
             -> Result<std::unique_ptr<BinaryClassifier>> {
    Result<LinearSvmModel> m = TrainLinearSvm(ex);
    if (!m.ok()) return m.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(m).value()));
  };
}

void BM_OneVsAllTrain(benchmark::State& state) {
  const TagId num_tags = static_cast<TagId>(state.range(0));
  MultiLabelDataset data = MakeDataset(256, num_tags, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainOneVsAll(data, LinearTrainer()));
  }
  state.counters["tags"] = num_tags;
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_OneVsAllTrain)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OneVsAllPredict(benchmark::State& state) {
  const TagId num_tags = static_cast<TagId>(state.range(0));
  MultiLabelDataset data = MakeDataset(256, num_tags, 2);
  OneVsAllModel model =
      std::move(TrainOneVsAll(data, LinearTrainer())).value();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictTags(data[i++ % data.size()].x));
  }
  state.counters["tags"] = num_tags;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneVsAllPredict)->Arg(2)->Arg(8)->Arg(32);

void BM_OneVsAllWireSize(benchmark::State& state) {
  // Not a timing bench per se: reports how the broadcast payload scales
  // with the tag universe (what PACE ships per peer).
  const TagId num_tags = static_cast<TagId>(state.range(0));
  MultiLabelDataset data = MakeDataset(256, num_tags, 3);
  OneVsAllModel model =
      std::move(TrainOneVsAll(data, LinearTrainer())).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.WireSize());
  }
  state.counters["wire_bytes"] = static_cast<double>(model.WireSize());
  state.counters["tags"] = num_tags;
}
BENCHMARK(BM_OneVsAllWireSize)->Arg(2)->Arg(8)->Arg(32);

void BM_DecideTags(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> scores(state.range(0));
  for (auto& s : scores) s = rng.Uniform(-1.0, 1.0);
  TagDecisionPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideTags(scores, policy));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecideTags)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
