# Empty dependencies file for bench_data_distribution.
# This may be replaced when dependencies are built.
