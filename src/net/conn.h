#ifndef P2PDT_NET_CONN_H_
#define P2PDT_NET_CONN_H_

#include <cstdint>
#include <string>

#include "net/deadline_wheel.h"
#include "net/frame.h"

namespace p2pdt {

/// One accepted service connection: a non-blocking fd plus bounded read and
/// write buffers and the framing decoder. The daemon drives the state
/// machine:
///
///   open ──backpressure──▶ read-paused ──buffer drained──▶ open
///     │                                                      │
///     ├─ protocol error / drain ─▶ flush-then-close ─▶ closed
///     └─ idle deadline / RST / write-cap breach ─────▶ closed
///
/// Bounds, all enforced here: the decoder caps buffered request bytes at
/// one max-size frame; the write buffer pauses reads above the high
/// watermark (EPOLLIN dropped, re-armed when drained — backpressure instead
/// of unbounded growth) and the connection is closed outright above the
/// hard cap (a consumer that never drains is a slowloris on the write
/// side).
class Connection {
 public:
  Connection(int fd, std::string peer_name,
             std::size_t max_frame_payload = kMaxFramePayload);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  enum class IoResult : uint8_t {
    kOk = 0,     // progressed; buffers may hold more work
    kEof,        // peer closed its write side
    kError,      // fatal socket error (ECONNRESET et al.)
    kOverflow,   // decoder buffer bound exceeded
  };

  int fd() const { return fd_; }
  const std::string& peer_name() const { return peer_name_; }

  /// Drains the socket into the frame decoder until EAGAIN / EOF / error.
  IoResult ReadIntoDecoder(std::size_t& bytes_read);

  FrameDecoder& decoder() { return decoder_; }

  /// Appends bytes to the write buffer (no I/O; call TryFlush after).
  void QueueWrite(const std::string& bytes);

  /// Writes as much of the buffer as the socket accepts.
  IoResult TryFlush(std::size_t& bytes_written);

  std::size_t write_buffered() const { return write_buf_.size() - write_off_; }
  bool write_empty() const { return write_buffered() == 0; }

  /// Closes the fd (idempotent).
  void CloseFd();
  bool closed() const { return fd_ < 0; }

  // --- daemon-managed state --------------------------------------------
  bool close_after_flush = false;  // finish writes, then close
  bool read_paused = false;        // EPOLLIN dropped for backpressure
  double last_activity = 0.0;      // loop-clock time of last I/O progress
  DeadlineWheel::TimerId idle_timer = DeadlineWheel::kInvalidTimer;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;

 private:
  int fd_;
  std::string peer_name_;
  FrameDecoder decoder_;
  std::string write_buf_;
  std::size_t write_off_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_NET_CONN_H_
