# Empty dependencies file for tag_cloud_test.
# This may be replaced when dependencies are built.
