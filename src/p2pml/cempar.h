#ifndef P2PDT_P2PML_CEMPAR_H_
#define P2PDT_P2PML_CEMPAR_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/kernel_svm.h"
#include "ml/multilabel.h"
#include "ml/sanitize.h"
#include "p2pml/p2p_classifier.h"
#include "p2pml/predict_cache.h"
#include "p2pml/reputation.h"
#include "p2psim/chord.h"
#include "p2psim/serve_queue.h"
#include "p2psim/transport.h"

namespace p2pdt {

struct CemparOptions {
  /// Base learner for local and cascaded models.
  KernelSvmOptions svm;
  /// Fan-in of the cascade tree at super-peers.
  std::size_t cascade_fan_in = 8;
  /// Number of regions per tag. With R regions, peer p uploads its tag-t
  /// model to the super-peer owning Hash(t, p mod R); predictions query all
  /// R regional models and combine by weighted majority voting. R = 1
  /// reproduces the single-super-peer reading of the paper; R > 1 matches
  /// CEMPaR's regional cascades and bounds any single cascade's size.
  std::size_t regions_per_tag = 1;
  /// Tag-assignment policy applied to the voted scores.
  TagDecisionPolicy policy;
  /// Requesters cache tag→super-peer resolutions learned from lookups and
  /// invalidate them when a request is dropped.
  bool cache_super_peer_lookups = true;
  /// Threads for the (peer × tag) local SVM grid in Train (0 = global
  /// P2PDT_THREADS setting, 1 = serial). Only the SMO fitting fans out;
  /// uploads and all other simulator traffic are issued afterwards on the
  /// driver thread in the same order as a serial run, so the simulated
  /// protocol — and the trained models (SMO is deterministic) — are
  /// bit-identical for every value.
  std::size_t num_threads = 0;
  /// Contiguous shards the training grid is split into for the sharded
  /// compute/commit phase (0 = one shard per available thread). Purely a
  /// scheduling knob: compute is keyed by data identity and all simulator
  /// traffic is committed in grid order on the driver thread, so results
  /// are bit-identical for every value.
  std::size_t sim_shards = 0;
  /// Reliable delivery (ACK / RTT-derived timeout / backoff / bounded
  /// retries) for upload, replication and prediction traffic. Off by
  /// default: fire-and-forget is the baseline the original experiments
  /// measured; the robustness harness compares both.
  bool reliable_transport = false;
  ReliableTransportOptions transport;
  /// With the reliable transport on, each (tag, region) cascade model is
  /// replicated to the owner's first live successor. When the transport
  /// suspects the primary dead (consecutive give-ups), the standby is
  /// promoted and a fresh replica is pushed to the next successor.
  bool replicate_regional_models = true;
  /// Model sanitation at every ingestion point (super-peer SV intake,
  /// cascade merge, checkpoint restore) plus the requester-side vote gate.
  /// On by default: honest models always pass, so baselines are
  /// bit-identical.
  SanitizeOptions sanitize;
  /// Cross-validation reputation + quarantine at super-peers (opt-in
  /// defense layer).
  ReputationOptions reputation;
  /// With reputation on, a response score deviating more than this from the
  /// per-tag median (3+ votes) is discarded as an outlier — the trimmed
  /// vote that stops under-the-radar spam the magnitude gate admits. Honest
  /// regional models for one tag never disagree by anything close to this
  /// (|decision| is bounded by C · #SV + |bias|), so the trim is inert in
  /// clean runs.
  double vote_outlier_threshold = 1.0e4;
  /// Finite serving capacity + admission control at super-peers: accepted
  /// prediction requests queue behind the super-peer's evaluations, shed
  /// ones come back as a typed overload reject the requester handles by
  /// retry-after (reliable transport) or degraded local fallback. Off by
  /// default (bit-identical).
  ServeOptions serve;
  /// Requester-side versioned prediction cache. Off by default.
  PredictCacheOptions predict_cache;
  /// Coalesce prediction requests queued for the same super-peer into one
  /// round-trip (reliable transport only). A batch pays one admission
  /// charge and one ACK exchange for up to max_batch documents — the
  /// flash-crowd amortization. Off by default.
  bool batch_predictions = false;
  /// How long the first queued request waits for companions (sim seconds).
  double batch_window_seconds = 0.02;
  std::size_t max_batch = 16;
};

/// CEMPaR (Ang et al., ECML/PKDD 2009): communication-efficient P2P
/// classification via cascade SVM over a DHT.
///
/// Training: every peer trains one non-linear SVM per tag on its local
/// documents (one-against-all) and uploads the support vectors *once* to
/// the tag's super-peer — the DHT owner of Hash(tag, region) — located
/// with a Chord lookup. Super-peers cascade the collected local models
/// into regional models.
///
/// Prediction: the requester sends the untagged document vector to each
/// (distinct) super-peer it resolves, which evaluates all its regional tag
/// models and replies with scores; tags are chosen by weighted majority
/// voting across regions.
///
/// Fault tolerance: when a super-peer fails, the DHT re-resolves the tag
/// key to the next owner. RepairRound() lets peers re-upload their local
/// models to the new owner, restoring regional models — this is what the
/// fault-tolerance experiment (CLAIM6) drives.
class Cempar final : public P2PClassifier {
 public:
  Cempar(Simulator& sim, PhysicalNetwork& net, ChordOverlay& chord,
         CemparOptions options = {});

  Status Setup(std::vector<MultiLabelDataset> peer_data,
               TagId num_tags) override;
  /// Native flyweight path: stores the shard views directly — per-peer
  /// training data is never copied, only indexed. Training is lazy: the
  /// one-against-all reductions materialize per (peer, tag) cell at fit
  /// time and are dropped right after.
  Status SetupShards(std::vector<DatasetShard> peer_data,
                     TagId num_tags) override;
  void Train(std::function<void(Status)> on_complete) override;
  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override;
  std::string name() const override { return "cempar"; }

  /// Re-resolves every (tag, region) home and re-uploads local models to
  /// homes whose owner changed (e.g. after super-peer failures);
  /// `on_complete` fires when the repair traffic quiesces.
  void RepairRound(std::function<void()> on_complete);

  // Durability: a CEMPaR peer's crash-volatile state is its locally
  // trained per-(tag, region) kernel SVMs (regional cascades live at
  // super-peers and are repaired through the DHT, not checkpointed here).
  bool SupportsDurability() const override { return true; }
  /// Blob: format version, num_tags/regions guards, then each local model
  /// as (home index, serialized kernel SVM).
  Result<std::string> Snapshot(NodeId peer) const override;
  Status Restore(NodeId peer, const std::string& blob) override;
  /// Drops the peer's local models and its cached super-peer resolutions.
  void EvictPeer(NodeId peer) override;
  /// Refits every local per-tag SVM from the peer's retained training data
  /// (deterministic, so the refit models equal the lost ones bit-for-bit).
  std::size_t ColdRestart(NodeId peer) override;
  /// Anti-entropy for a rejoined peer: one RepairRound, which re-uploads
  /// local models to any home whose collection point died while the peer
  /// was away and re-cascades.
  void ResyncPeer(NodeId peer, std::function<void()> done) override;

  // Online refresh (drift adaptation): the peer refits its local per-tag
  // SVMs on its current sliding window and re-uploads them with a bumped
  // version stamp through the normal reliable-upload path. At each home
  // the stamped upload *replaces* the peer's previous local model iff it
  // is strictly newer — duplicate and out-of-order deliveries are no-ops —
  // then the home re-cascades. That is the stale-vs-fresh reconciliation:
  // an old version can never clobber a refreshed one, and a refreshed one
  // evicts the old the moment it lands.
  bool SupportsOnlineRefresh() const override { return true; }
  Status ReplacePeerData(NodeId peer, DatasetShard window) override;
  void RefreshPeer(NodeId peer, std::function<void()> done) override;
  uint64_t ModelVersion(NodeId peer) const override;

  /// Number of (tag, region) homes whose regional model is currently
  /// hosted on an *online* node.
  std::size_t NumLiveHomes() const;

  /// Total support vectors across all regional models (diagnostics).
  std::size_t TotalRegionalSupportVectors() const;

  /// Current collection-point node of every (tag, region) home
  /// (kInvalidNode where none was established). Used by fault-injection
  /// experiments to kill exactly the super-peers.
  std::vector<NodeId> HomeOwners() const;

  /// Non-null when options.reliable_transport is set. Exposed so tests and
  /// harnesses can inspect suspicion state.
  ReliableTransport* transport() { return transport_.get(); }

  /// Number of homes whose regional model currently has a standby replica.
  std::size_t NumReplicatedHomes() const;

  /// Byzantine-defense counters (sanitation rejections, quarantines, ...).
  DefenseStats defense_stats() const override;

  /// Non-null when options.reputation.enabled (test access).
  ReputationManager* reputation() { return reputation_.get(); }

  /// Non-null when options.serve.enabled / options.predict_cache.enabled
  /// (test access).
  ServeQueueSet* serve_queue() { return serve_.get(); }
  PredictCacheSet* predict_cache() { return cache_.get(); }

  /// Model-publish epoch: bumped whenever any regional model (or a peer's
  /// visibility of them) changes. The prediction cache's version key.
  uint64_t publish_epoch() const { return publish_epoch_; }

 private:
  struct Home {
    NodeId owner = kInvalidNode;
    /// Local models uploaded by peers, keyed by contributor.
    std::map<NodeId, KernelSvmModel> locals;
    /// Version stamp of each stored local (absent = 0, the initial
    /// publish). Guards the replace-iff-strictly-newer intake rule.
    std::map<NodeId, uint32_t> local_versions;
    KernelSvmModel regional;
    bool has_regional = false;
    /// Locals changed since the last cascade.
    bool dirty = false;
    /// Vote weight: number of contributing local models.
    double weight = 0.0;
    /// Standby super-peer holding a replica of the regional model
    /// (kInvalidNode / false until a replica was delivered).
    NodeId standby = kInvalidNode;
    bool standby_ready = false;
  };

  std::size_t HomeIndex(TagId tag, std::size_t region) const {
    return static_cast<std::size_t>(tag) * options_.regions_per_tag + region;
  }
  uint64_t HomeKey(TagId tag, std::size_t region) const;
  /// Uploads `model` (publish version `version`) to the (tag, region)
  /// home. The install intake replaces the peer's stored local iff the
  /// incoming version is strictly newer than the held one.
  void UploadModel(NodeId peer, TagId tag, std::size_t region,
                   KernelSvmModel model, uint32_t version,
                   std::shared_ptr<std::function<void()>> barrier);
  void CascadeAll();
  /// Pushes a replica of home `h`'s regional model from its owner to the
  /// owner's first live successor.
  void ReplicateHome(std::size_t h);
  void ReplicateRegionals();
  /// Suspicion hook: promote standbys of every home owned by `suspect` and
  /// drop cached resolutions pointing at it.
  void OnSuspect(NodeId suspect);
  /// Degraded-mode scoring from the peer's own local models; returns false
  /// when the peer trained nothing.
  bool LocalScores(NodeId peer, const SparseVector& x,
                   std::vector<double>& scores) const;
  /// Bumps models_rejected_ and the models_rejected{classifier,reason}
  /// counter.
  void RecordRejected(ModelRejectReason reason);
  /// Drops every local model `contributor` uploaded to homes collected at
  /// `observer` (called once, on the quarantine transition edge) and marks
  /// those homes dirty so the next CascadeAll rebuilds without them.
  void PurgeContributor(NodeId observer, NodeId contributor);

  /// One per-tag score from one super-peer response.
  struct PredictVote {
    TagId tag;
    double score;
    double weight;
  };

  /// Super-peer side of a prediction: evaluates the queried homes `owner`
  /// actually hosts against document `x` (honoring the vote-spam
  /// adversary). Shared by the single-request and batched paths.
  std::vector<PredictVote> EvaluateHomes(
      NodeId owner, const std::vector<std::size_t>& home_list,
      const SparseVector& x);

  /// Charges one request against `owner`'s serving queue and surfaces the
  /// queue-health metrics. serve_ must be non-null.
  Admission AdmitServe(NodeId owner);

  /// Bumps the model-publish epoch (cache invalidation). Cheap and
  /// unconditional; over-invalidation is safe, serving stale is not.
  void BumpPublishEpoch() { ++publish_epoch_; }

  /// One queued request awaiting a coalesced super-peer round-trip.
  struct BatchMember {
    SparseVector x;
    std::vector<std::size_t> home_list;
    /// Runs at the requester when the batched response lands.
    std::function<void(const std::vector<PredictVote>&)> deliver;
    /// Runs at the requester when either leg of the round-trip gives up.
    std::function<void()> fail;
  };
  struct PendingBatch {
    std::vector<BatchMember> members;
    /// Stamp guarding the flush timer: a timer for a generation that was
    /// already flushed (size-triggered) finds a different stamp and stands
    /// down.
    uint64_t generation = 0;
  };
  void EnqueueBatch(NodeId requester, NodeId owner, BatchMember member);
  void FlushBatch(NodeId requester, NodeId owner);

  Simulator& sim_;
  PhysicalNetwork& net_;
  ChordOverlay& chord_;
  CemparOptions options_;
  std::unique_ptr<ReliableTransport> transport_;
  std::unique_ptr<ServeQueueSet> serve_;
  std::unique_ptr<PredictCacheSet> cache_;
  uint64_t publish_epoch_ = 0;
  /// Batches being assembled, keyed by (requester, owner).
  std::map<std::pair<NodeId, NodeId>, PendingBatch> batches_;
  uint64_t batch_generation_ = 0;

  /// Per-peer flyweight views into the shared training corpus (legacy
  /// Setup wraps its materialized datasets into single-peer shards).
  std::vector<DatasetShard> peer_data_;
  TagId num_tags_ = 0;
  std::vector<Home> homes_;  // indexed by HomeIndex
  /// Per-peer locally trained models (kept for repair rounds).
  std::vector<std::map<std::size_t, KernelSvmModel>> local_models_;
  /// Per-peer publish version counter (0 until the first online refresh;
  /// store-side metadata, not checkpointed).
  std::vector<uint32_t> model_version_;
  /// Per-requester cache: home index -> last known owner.
  std::vector<std::unordered_map<std::size_t, NodeId>> owner_cache_;
  bool trained_ = false;

  /// Non-null when options_.reputation.enabled.
  std::unique_ptr<ReputationManager> reputation_;
  uint64_t models_rejected_ = 0;
  uint64_t votes_discarded_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_CEMPAR_H_
