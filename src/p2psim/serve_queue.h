#ifndef P2PDT_P2PSIM_SERVE_QUEUE_H_
#define P2PDT_P2PSIM_SERVE_QUEUE_H_

#include <cstdint>
#include <vector>

#include "p2psim/network.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Finite serving capacity at a peer. Disabled by default: every request is
/// admitted instantly, so runs without an overload configuration are
/// bit-identical to the pre-overload code.
struct ServeOptions {
  bool enabled = false;
  /// Predictions per simulated second one peer can evaluate (the token
  /// refill rate of its serving queue).
  double service_rate = 50.0;
  /// Bounded queue + load shedding (the defended arm). Off: the queue is
  /// unbounded and every request waits its full backlog — the undefended
  /// collapse mode a flash crowd drives.
  bool admission_control = false;
  /// Shed when this many requests are already queued.
  std::size_t max_depth = 32;
  /// Shed when the predicted queueing delay exceeds this (seconds); keeps
  /// admitted requests inside the latency SLO instead of serving answers
  /// nobody is still waiting for.
  double max_wait = 0.5;
  /// Server-suggested backoff carried in the overload reject.
  double retry_after = 0.25;
};

/// Why a request was shed (or not).
enum class AdmitOutcome : uint8_t {
  kAccept = 0,
  kShedQueueFull,  // queue depth at max_depth
  kShedWait,       // predicted wait beyond max_wait
};

const char* AdmitOutcomeToString(AdmitOutcome outcome);

/// Verdict of one admission attempt.
struct Admission {
  AdmitOutcome outcome = AdmitOutcome::kAccept;
  /// Queueing + service delay until this request's evaluation completes
  /// (0 when the feature is disabled).
  double delay = 0.0;
  /// Suggested retry time on shed.
  double retry_after = 0.0;
  /// Queue depth observed at admission time (before this request).
  std::size_t depth = 0;
};

/// Analytic per-node serving queues in simulated time: each node is a
/// single server draining one request per 1/service_rate seconds. No
/// per-job state is stored — only the virtual time the server becomes free
/// — so a 100k-peer simulation pays one double per node. All calls run on
/// the simulator driver thread.
class ServeQueueSet {
 public:
  explicit ServeQueueSet(ServeOptions options);

  /// Admits (or sheds) one request at node `node` at sim-time `now`.
  /// Accepting consumes capacity: the node's backlog grows by one service
  /// interval. Shedding consumes nothing.
  Admission Admit(NodeId node, SimTime now);

  /// Requests queued (including in service) at `node` as of `now`.
  std::size_t Depth(NodeId node, SimTime now) const;

  uint64_t accepted() const { return accepted_; }
  uint64_t shed() const { return shed_full_ + shed_wait_; }
  uint64_t shed_queue_full() const { return shed_full_; }
  uint64_t shed_wait() const { return shed_wait_; }
  std::size_t max_depth_seen() const { return max_depth_seen_; }

  const ServeOptions& options() const { return options_; }

 private:
  ServeOptions options_;
  /// Virtual time each node's server becomes idle (index = NodeId; grown
  /// lazily so idle nodes cost nothing).
  std::vector<SimTime> busy_until_;
  uint64_t accepted_ = 0;
  uint64_t shed_full_ = 0;
  uint64_t shed_wait_ = 0;
  std::size_t max_depth_seen_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_SERVE_QUEUE_H_
