#include "p2psim/stats.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(NetworkStatsTest, PerTypeBreakdown) {
  NetworkStats stats;
  stats.RecordSend(MessageType::kLookup, 64);
  stats.RecordSend(MessageType::kLookup, 64);
  stats.RecordSend(MessageType::kModelUpload, 1000);
  stats.RecordDelivery(MessageType::kLookup);

  EXPECT_EQ(stats.messages_sent(), 3u);
  EXPECT_EQ(stats.bytes_sent(), 1128u);
  EXPECT_EQ(stats.messages_sent(MessageType::kLookup), 2u);
  EXPECT_EQ(stats.bytes_sent(MessageType::kLookup), 128u);
  EXPECT_EQ(stats.messages_sent(MessageType::kModelUpload), 1u);
  EXPECT_EQ(stats.delivered(MessageType::kLookup), 1u);
  EXPECT_EQ(stats.delivered(MessageType::kModelUpload), 0u);
  EXPECT_EQ(stats.messages_sent(MessageType::kGossip), 0u);
}

TEST(NetworkStatsTest, PerReasonDropBreakdown) {
  NetworkStats stats;
  stats.RecordSend(MessageType::kLookup, 64);
  stats.RecordSend(MessageType::kAck, 24);
  stats.RecordSend(MessageType::kGossip, 128);
  stats.RecordDrop(MessageType::kLookup, DropReason::kRandomLoss);
  stats.RecordDrop(MessageType::kAck, DropReason::kRandomLoss);
  stats.RecordDrop(MessageType::kGossip, DropReason::kRecvOffline);

  EXPECT_EQ(stats.messages_dropped(), 3u);
  EXPECT_EQ(stats.dropped(DropReason::kRandomLoss), 2u);
  EXPECT_EQ(stats.dropped(DropReason::kRecvOffline), 1u);
  EXPECT_EQ(stats.dropped(DropReason::kSendOffline), 0u);
  EXPECT_EQ(stats.dropped(DropReason::kInjectedFault), 0u);
  EXPECT_EQ(stats.dropped(MessageType::kLookup), 1u);
  EXPECT_EQ(stats.dropped(MessageType::kGossip), 1u);
}

TEST(NetworkStatsTest, DeliveryRate) {
  NetworkStats stats;
  // No traffic yet: rate degrades to 1.0, not a division by zero.
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);
  for (int i = 0; i < 4; ++i) stats.RecordSend(MessageType::kLookup, 64);
  for (int i = 0; i < 3; ++i) stats.RecordDelivery(MessageType::kLookup);
  stats.RecordDrop(MessageType::kLookup, DropReason::kRandomLoss);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 0.75);
}

TEST(NetworkStatsTest, RetransmitAndGiveUpAccounting) {
  NetworkStats stats;
  stats.RecordRetransmit(MessageType::kModelUpload);
  stats.RecordRetransmit(MessageType::kModelUpload);
  stats.RecordRetransmit(MessageType::kPredictionRequest);
  stats.RecordAckReceived();
  stats.RecordGiveUp(MessageType::kPredictionRequest);

  EXPECT_EQ(stats.retransmits(), 3u);
  EXPECT_EQ(stats.retransmits(MessageType::kModelUpload), 2u);
  EXPECT_EQ(stats.retransmits(MessageType::kPredictionRequest), 1u);
  EXPECT_EQ(stats.acks_received(), 1u);
  EXPECT_EQ(stats.give_ups(), 1u);
  EXPECT_EQ(stats.give_ups(MessageType::kPredictionRequest), 1u);
  EXPECT_EQ(stats.give_ups(MessageType::kModelUpload), 0u);
}

TEST(NetworkStatsTest, ToStringContainsBreakdowns) {
  NetworkStats stats;
  stats.RecordSend(MessageType::kModelUpload, 2048);
  stats.RecordDelivery(MessageType::kModelUpload);
  stats.RecordSend(MessageType::kLookup, 64);
  stats.RecordDrop(MessageType::kLookup, DropReason::kInjectedFault);
  stats.RecordRetransmit(MessageType::kModelUpload);
  stats.RecordAckReceived();

  std::string s = stats.ToString();
  EXPECT_NE(s.find("2 msgs"), std::string::npos);        // totals line
  EXPECT_NE(s.find("model_upload"), std::string::npos);  // per-type rows
  EXPECT_NE(s.find("lookup"), std::string::npos);
  EXPECT_NE(s.find("drops by reason:"), std::string::npos);
  EXPECT_NE(s.find("injected_fault"), std::string::npos);
  EXPECT_NE(s.find("1 retransmits"), std::string::npos);
  EXPECT_NE(s.find("1 acks received"), std::string::npos);
}

TEST(NetworkStatsTest, ToStringOmitsEmptySections) {
  NetworkStats stats;
  stats.RecordSend(MessageType::kGossip, 10);
  std::string s = stats.ToString();
  EXPECT_EQ(s.find("drops by reason:"), std::string::npos);
  EXPECT_EQ(s.find("reliable transport:"), std::string::npos);
  // Unused message types are not listed.
  EXPECT_EQ(s.find("model_upload"), std::string::npos);
}

TEST(NetworkStatsTest, ResetZeroesEverything) {
  NetworkStats stats;
  stats.RecordSend(MessageType::kLookup, 64);
  stats.RecordDelivery(MessageType::kLookup);
  stats.RecordDrop(MessageType::kAck, DropReason::kRandomLoss);
  stats.RecordRetransmit(MessageType::kLookup);
  stats.RecordAckReceived();
  stats.RecordGiveUp(MessageType::kLookup);
  stats.Reset();

  EXPECT_EQ(stats.messages_sent(), 0u);
  EXPECT_EQ(stats.messages_delivered(), 0u);
  EXPECT_EQ(stats.messages_dropped(), 0u);
  EXPECT_EQ(stats.bytes_sent(), 0u);
  EXPECT_EQ(stats.messages_sent(MessageType::kLookup), 0u);
  EXPECT_EQ(stats.dropped(DropReason::kRandomLoss), 0u);
  EXPECT_EQ(stats.retransmits(), 0u);
  EXPECT_EQ(stats.acks_received(), 0u);
  EXPECT_EQ(stats.give_ups(), 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);
}

TEST(NetworkStatsTest, EnumNamesAreStable) {
  // Exported artifacts (metrics labels, trace span names) key on these.
  EXPECT_STREQ(MessageTypeToString(MessageType::kLookup), "lookup");
  EXPECT_STREQ(MessageTypeToString(MessageType::kAck), "ack");
  EXPECT_STREQ(DropReasonToString(DropReason::kRandomLoss), "random_loss");
  EXPECT_STREQ(DropReasonToString(DropReason::kSendOffline), "send_offline");
}

}  // namespace
}  // namespace p2pdt
