#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "common/profile.h"
#include "common/rng.h"

namespace p2pdt {

Result<LinearSvmModel> TrainLinearSvm(const std::vector<Example>& data,
                                      const LinearSvmOptions& options) {
  PhaseScope profile("linear_svm");
  if (data.empty()) {
    return Status::InvalidArgument("cannot train linear SVM on empty data");
  }
  if (options.c <= 0.0) {
    return Status::InvalidArgument("linear SVM requires C > 0");
  }

  // Compact the (possibly hashed, very sparse) global feature space so the
  // dense weight array is proportional to the features actually observed.
  FeatureRemapper remap;
  for (const auto& ex : data) remap.Observe(ex.x);
  const std::size_t dim = remap.num_features();
  // One extra slot for the bias (feature augmentation: x' = [x; 1]).
  const std::size_t wdim = dim + (options.use_bias ? 1 : 0);

  std::vector<SparseVector> x(data.size());
  std::vector<double> y(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    x[i] = remap.ToCompact(data[i].x);
    y[i] = data[i].y >= 0.0 ? 1.0 : -1.0;
  }

  // Dual coordinate descent (Hsieh et al. 2008), L1-loss:
  //   min_α  ½ αᵀ Q̄ α − eᵀα,  0 ≤ α_i ≤ C,  Q̄_ij = y_i y_j x_iᵀx_j.
  std::vector<double> alpha(data.size(), 0.0);
  std::vector<double> w(wdim, 0.0);
  std::vector<double> qii(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    qii[i] = x[i].SquaredNorm() + (options.use_bias ? 1.0 : 0.0);
    if (qii[i] <= 0.0) qii[i] = 1e-12;  // all-zero vector guard
  }

  auto wdot = [&](std::size_t i) {
    double d = x[i].DotDense(w);
    if (options.use_bias) d += w[dim];
    return d;
  };
  auto axpy_w = [&](std::size_t i, double step) {
    for (const auto& [id, v] : x[i].entries()) w[id] += step * v;
    if (options.use_bias) w[dim] += step;
  };

  Rng rng(options.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    rng.Shuffle(order);
    double max_violation = 0.0;
    for (std::size_t i : order) {
      // Gradient of the dual objective w.r.t. α_i.
      double g = y[i] * wdot(i) - 1.0;
      // Projected gradient.
      double pg = g;
      if (alpha[i] <= 0.0) {
        pg = std::min(g, 0.0);
      } else if (alpha[i] >= options.c) {
        pg = std::max(g, 0.0);
      }
      max_violation = std::max(max_violation, std::fabs(pg));
      if (pg == 0.0) continue;
      double old_alpha = alpha[i];
      alpha[i] = std::clamp(old_alpha - g / qii[i], 0.0, options.c);
      double delta = (alpha[i] - old_alpha) * y[i];
      if (delta != 0.0) axpy_w(i, delta);
    }
    if (max_violation < options.tolerance) break;
  }

  double bias = options.use_bias ? w[dim] : 0.0;
  if (options.use_bias) w.pop_back();
  return LinearSvmModel(remap.DenseToGlobal(w), bias);
}

}  // namespace p2pdt
