#ifndef P2PDT_P2PML_REPUTATION_H_
#define P2PDT_P2PML_REPUTATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "ml/dataset.h"
#include "ml/multilabel.h"
#include "p2psim/network.h"

namespace p2pdt {

/// Tuning for the reputation subsystem. Disabled by default: reputation is
/// an opt-in defense layer, and the acceptance bar is that enabling it with
/// zero adversaries leaves every run bit-identical — which holds because
/// all of its interventions are *gates* (quarantine, suspect-only
/// re-weighting) that never trigger for honest contributors.
struct ReputationOptions {
  bool enabled = false;
  /// Examples in the local held-out validation slice. The slice is a
  /// deterministic subsample of the peer's local data and is NOT removed
  /// from training, so trained models are unchanged by enabling reputation.
  std::size_t holdout_size = 16;
  /// EWMA smoothing for trust updates after the first observation (the
  /// first observation sets trust outright, so one delivery of an
  /// anti-correlated model is enough to quarantine its author).
  double ewma_alpha = 0.4;
  /// Trust below this quarantines the contributor: its models are excluded
  /// from voting and new uploads are refused.
  double quarantine_threshold = 0.3;
  /// A quarantined contributor is re-admitted when probation observations
  /// push trust back above this (hysteresis: readmit > quarantine).
  double readmit_threshold = 0.5;
  /// Below this (but above quarantine) a contributor is "suspect": its
  /// self-reported accuracy is replaced by min(self, observed) and its
  /// vote weight is scaled by trust.
  double suspect_threshold = 0.45;
  /// Every Nth prediction a requester re-scores its contributors
  /// (probation): quarantined peers that retrained honestly climb back
  /// above readmit_threshold, sleepers that turned malicious decay.
  std::size_t probation_interval = 8;
  uint64_t seed = 0x5EED7;
};

/// Cross-validation-based trust ledger, the paper-adjacent answer to "PACE
/// weights votes by *self-reported* accuracy" (pace.h): every peer scores
/// the models it receives on a small local held-out slice and maintains an
/// EWMA trust per contributor.
///
/// Scoring uses per-tag *balanced* accuracy (mean of true-positive and
/// true-negative rate) over tags with both classes present in the holdout:
/// a label-flipped model lands near 0 (both rates collapse), any honest
/// model — including the degenerate one-class models that non-IID peers
/// legitimately produce — lands at or above 0.5. That 0.5 floor is what
/// lets the quarantine threshold sit safely below every honest score.
///
/// All state is index-addressed vectors (no hashing), all queries are pure,
/// and updates run only on the simulator driver thread, so the subsystem
/// adds no cross-thread traffic and keeps serial == parallel determinism.
class ReputationManager {
 public:
  /// `metrics` may be null (no-op recording); `classifier` labels the
  /// emitted metric families (peer_trust, quarantined_peers).
  ReputationManager(const ReputationOptions& options, MetricsRegistry* metrics,
                    std::string classifier);

  /// Sizes the trust matrix for `num_peers` contributors per observer and
  /// clears all state.
  void Reset(std::size_t num_peers);

  /// Installs `observer`'s held-out slice: a deterministic subsample of its
  /// local data (seeded from options.seed and the peer id only).
  void SetHoldout(NodeId observer, const MultiLabelDataset& local);
  /// Flyweight overload: same deterministic draws, same holdout, no
  /// materialization of the peer's data.
  void SetHoldout(NodeId observer, const DatasetShard& local);
  bool HasHoldout(NodeId observer) const;

  /// Scores a multi-tag model on the observer's holdout. Only tags with
  /// both classes present are evaluable; `informed` (when non-null)
  /// restricts scoring to tags the contributor claims competence on.
  /// Returns the mean per-tag balanced accuracy in [0, 1], or -1 when
  /// nothing was evaluable (no holdout, no overlapping tags).
  double ScoreOneVsAll(NodeId observer, const OneVsAllModel& model,
                       const std::vector<bool>* informed) const;

  /// Scores one binary classifier for one tag; -1 when the holdout lacks a
  /// class for that tag.
  double ScoreBinary(NodeId observer, const BinaryClassifier& model,
                     TagId tag) const;

  /// Folds an observation (a Score* result >= 0) into the observer's trust
  /// for `contributor`. Returns true when this observation pushed the
  /// contributor *into* quarantine (the transition edge, so callers can
  /// purge already-merged contributions exactly once).
  bool Observe(NodeId observer, NodeId contributor, double score);

  /// Current trust in [0, 1]; 1 for never-observed contributors (open
  /// system: unknown peers are trusted until evidence arrives, which keeps
  /// the no-adversary fast path untouched).
  double Trust(NodeId observer, NodeId contributor) const;
  bool IsQuarantined(NodeId observer, NodeId contributor) const;
  /// Low-trust but not quarantined: votes survive with penalized weight.
  bool IsSuspect(NodeId observer, NodeId contributor) const;
  /// EWMA of observed scores; 1 for never-observed contributors. This is
  /// the "observed" side of PACE's min(self_reported, observed) rule.
  double ObservedAccuracy(NodeId observer, NodeId contributor) const {
    return Trust(observer, contributor);
  }

  /// (observer, contributor) pairs currently in quarantine.
  std::size_t num_quarantined() const { return current_quarantined_; }
  uint64_t total_quarantines() const { return total_quarantines_; }
  uint64_t total_readmissions() const { return total_readmissions_; }
  uint64_t observations() const { return observations_; }

  const ReputationOptions& options() const { return options_; }

 private:
  struct PairState {
    double trust = 1.0;
    bool seen = false;
    bool quarantined = false;
  };
  struct Holdout {
    std::vector<MultiLabelExample> examples;
    /// Positives per tag within the holdout.
    std::vector<std::size_t> positives;
  };

  double BalancedAccuracy(const Holdout& holdout, const BinaryClassifier& model,
                          TagId tag) const;

  template <typename Data>
  void SetHoldoutImpl(NodeId observer, const Data& local);

  ReputationOptions options_;
  MetricsRegistry* metrics_;
  std::string classifier_;
  std::vector<std::vector<PairState>> pairs_;  // [observer][contributor]
  std::vector<Holdout> holdouts_;
  std::size_t current_quarantined_ = 0;
  uint64_t total_quarantines_ = 0;
  uint64_t total_readmissions_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_REPUTATION_H_
