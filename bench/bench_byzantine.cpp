// BYZ1 — poisoning resistance: sweep malicious-peer fraction × adversary
// behavior for CEMPaR and PACE, with the sanitation + reputation defense
// stack off (undefended: what the original protocols do) and on.
//
// Expected shape: undefended macro-F1 collapses as the malicious fraction
// grows (label-flipped and garbage models enter every cascade / ensemble);
// defended macro-F1 stays within a few points of the clean baseline — at
// 30 % label-flip the acceptance bar is a <= 5-point drop — because
// sanitation rejects malformed uploads at ingestion and cross-validation
// quarantines anti-correlated contributors before they vote.
//
// `--smoke` runs a small clean + 30 %-label-flip grid (both algorithms,
// both arms) and writes the same CSV schema for CI validation.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "p2pdmt/byzantine.h"

using namespace p2pdt_bench;

namespace {

void ApplyDefenseTuning(ExperimentOptions& opt) {
  // Three regions per tag give every prediction three regional votes — the
  // minimum the requester-side median trim needs a majority over.
  opt.cempar.regions_per_tag = 3;
  // IID class distribution: the poisoning sweep isolates the adversary
  // effect from data heterogeneity. It also matters for the defense itself:
  // cross-validation can only score a contributor on tags whose holdout has
  // both classes, so under heavily non-IID splits much of the trust matrix
  // is unobservable (documented in DESIGN.md §10).
  opt.distribution.cls = ClassDistribution::kIid;
}

void PrintHeader() {
  std::printf("%-8s %-18s %5s %4s %4s %8s %8s %9s %9s %7s\n", "algo",
              "adversary", "frac", "bad", "def", "macroF1", "microF1",
              "rejected", "discarded", "quarant");
}

ByzantineSweepOptions CommonSweep(ExperimentOptions base) {
  ByzantineSweepOptions sweep;
  sweep.base = std::move(base);
  ApplyDefenseTuning(sweep.base);
  sweep.on_point = [](const ByzantineRow& row) {
    std::printf(
        "%-8s %-18s %5.2f %4zu %4s %8.4f %8.4f %9llu %9llu %7llu\n",
        row.algorithm.c_str(), row.adversary.c_str(), row.malicious_fraction,
        row.malicious_peers, row.defended ? "on" : "off", row.macro_f1,
        row.micro_f1, static_cast<unsigned long long>(row.models_rejected),
        static_cast<unsigned long long>(row.votes_discarded),
        static_cast<unsigned long long>(row.quarantined_pairs));
  };
  return sweep;
}

int RunSmoke() {
  std::printf("=== BYZ1 smoke: clean + 30%% label-flip for CI ===\n");
  CorpusOptions copt;
  copt.num_users = 10;
  copt.min_docs_per_user = 30;
  copt.max_docs_per_user = 40;
  copt.num_tags = 5;
  copt.vocabulary_size = 1000;
  copt.seed = 4242;
  Result<VectorizedCorpus> corpus = MakeVectorizedCorpus(copt);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  ByzantineSweepOptions sweep = CommonSweep(MacroDefaults(
      AlgorithmType::kPace, /*num_peers=*/10));
  sweep.base.max_test_documents = 40;
  sweep.flip_fractions = {0.3};
  sweep.other_behaviors = {AdversaryBehavior::kGarbageModel};
  PrintHeader();
  std::vector<ByzantineRow> rows = RunByzantineSweep(corpus.value(), sweep);
  if (rows.empty()) {
    std::fprintf(stderr, "smoke sweep produced no rows\n");
    return 1;
  }
  WriteResults(ByzantineCsv(rows), "byzantine.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  std::printf("=== BYZ1: adversary fraction x behavior x defense ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/128,
                                                /*num_tags=*/12);

  ByzantineSweepOptions sweep = CommonSweep(MacroDefaults(
      AlgorithmType::kPace, /*num_peers=*/64));
  sweep.base.max_test_documents = 200;
  PrintHeader();
  std::vector<ByzantineRow> rows = RunByzantineSweep(corpus, sweep);
  WriteResults(ByzantineCsv(rows), "byzantine.csv");
  return 0;
}
