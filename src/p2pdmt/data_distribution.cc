#include "p2pdmt/data_distribution.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace p2pdt {

const char* SizeDistributionToString(SizeDistribution d) {
  switch (d) {
    case SizeDistribution::kUniform:
      return "uniform";
    case SizeDistribution::kZipf:
      return "zipf";
  }
  return "unknown";
}

const char* ClassDistributionToString(ClassDistribution d) {
  switch (d) {
    case ClassDistribution::kIid:
      return "iid";
    case ClassDistribution::kNonIidDirichlet:
      return "non_iid_dirichlet";
    case ClassDistribution::kByUser:
      return "by_user";
  }
  return "unknown";
}

Result<std::vector<std::vector<uint32_t>>> DistributeIndices(
    const MultiLabelDataset& data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user) {
  if (num_peers == 0) {
    return Status::InvalidArgument("need at least one peer");
  }
  std::vector<std::vector<uint32_t>> peers(num_peers);
  const std::size_t n = data.size();
  if (n == 0) return peers;

  Rng rng(options.seed);

  if (options.cls == ClassDistribution::kByUser) {
    if (doc_user == nullptr || doc_user->size() != n) {
      return Status::InvalidArgument(
          "by-user distribution requires doc_user parallel to the dataset");
    }
    for (std::size_t i = 0; i < n; ++i) {
      peers[(*doc_user)[i] % num_peers].push_back(static_cast<uint32_t>(i));
    }
    return peers;
  }

  // Per-peer quotas.
  std::vector<double> quota_weight(num_peers, 1.0);
  if (options.size == SizeDistribution::kZipf) {
    ZipfSampler zipf(num_peers, options.size_zipf_exponent);
    for (std::size_t p = 0; p < num_peers; ++p) {
      quota_weight[p] = zipf.Pmf(p);
    }
    rng.Shuffle(quota_weight);  // decouple peer id from rank
  }
  double weight_total =
      std::accumulate(quota_weight.begin(), quota_weight.end(), 0.0);
  std::vector<std::size_t> quota(num_peers, 0);
  std::size_t assigned = 0;
  for (std::size_t p = 0; p < num_peers; ++p) {
    quota[p] = static_cast<std::size_t>(quota_weight[p] / weight_total *
                                        static_cast<double>(n));
    assigned += quota[p];
  }
  // Distribute rounding remainder one by one, weighted.
  while (assigned < n) {
    std::size_t p = rng.Categorical(quota_weight);
    if (p >= num_peers) p = rng.NextU64(num_peers);
    ++quota[p];
    ++assigned;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  if (options.cls == ClassDistribution::kIid) {
    std::size_t cursor = 0;
    for (std::size_t p = 0; p < num_peers; ++p) {
      for (std::size_t j = 0; j < quota[p] && cursor < n; ++j) {
        peers[p].push_back(static_cast<uint32_t>(order[cursor++]));
      }
    }
    return peers;
  }

  // Non-IID: each peer draws documents whose first tag matches a sample
  // from its Dirichlet tag preference; falls back to any remaining
  // document when the preferred pools run dry.
  const TagId num_tags = data.num_tags();
  std::vector<std::vector<std::size_t>> tag_pool(num_tags);
  for (std::size_t idx : order) {
    const auto& ex = data[idx];
    TagId primary = ex.tags.empty() ? 0 : ex.tags.front();
    if (primary < num_tags) tag_pool[primary].push_back(idx);
  }
  std::vector<std::size_t> leftovers;

  for (std::size_t p = 0; p < num_peers; ++p) {
    std::vector<double> pref =
        rng.Dirichlet(std::max<std::size_t>(num_tags, 1),
                      options.dirichlet_alpha);
    for (std::size_t j = 0; j < quota[p]; ++j) {
      std::size_t t = rng.Categorical(pref);
      bool placed = false;
      // Probe the sampled tag, then the rest, for a non-empty pool.
      for (TagId probe = 0; probe < num_tags; ++probe) {
        TagId tag = static_cast<TagId>((t + probe) % num_tags);
        if (!tag_pool[tag].empty()) {
          peers[p].push_back(static_cast<uint32_t>(tag_pool[tag].back()));
          tag_pool[tag].pop_back();
          placed = true;
          break;
        }
      }
      if (!placed) break;  // everything assigned
    }
  }
  // Any stragglers (possible when quotas overshoot pool drain order) go to
  // random peers.
  for (const auto& pool : tag_pool) {
    for (std::size_t idx : pool) leftovers.push_back(idx);
  }
  for (std::size_t idx : leftovers) {
    peers[rng.NextU64(num_peers)].push_back(static_cast<uint32_t>(idx));
  }
  return peers;
}

Result<std::vector<MultiLabelDataset>> DistributeData(
    const MultiLabelDataset& data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user) {
  Result<std::vector<std::vector<uint32_t>>> indices =
      DistributeIndices(data, num_peers, options, doc_user);
  if (!indices.ok()) return indices.status();
  std::vector<MultiLabelDataset> peers(num_peers,
                                       MultiLabelDataset(data.num_tags()));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (uint32_t idx : indices.value()[p]) peers[p].Add(data[idx]);
  }
  return peers;
}

Result<std::vector<DatasetShard>> DistributeDataShared(
    std::shared_ptr<const MultiLabelDataset> data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user) {
  if (data == nullptr) {
    return Status::InvalidArgument("DistributeDataShared needs a corpus");
  }
  Result<std::vector<std::vector<uint32_t>>> indices =
      DistributeIndices(*data, num_peers, options, doc_user);
  if (!indices.ok()) return indices.status();
  std::vector<DatasetShard> shards;
  shards.reserve(num_peers);
  for (std::vector<uint32_t>& idx : indices.value()) {
    idx.shrink_to_fit();  // the footprint bound counts capacity
    shards.emplace_back(data, std::move(idx));
  }
  return shards;
}

namespace {

/// Shared implementation over anything with size()/TagCounts() — the
/// materialized and flyweight views summarize identically.
template <typename PeerData>
DistributionSummary SummarizeImpl(const std::vector<PeerData>& peers,
                                  TagId num_tags) {
  DistributionSummary s;
  s.num_peers = peers.size();
  if (peers.empty()) return s;

  std::vector<std::size_t> sizes;
  sizes.reserve(peers.size());
  double coverage_sum = 0.0;
  for (const auto& peer : peers) {
    sizes.push_back(peer.size());
    s.num_examples += peer.size();
    if (num_tags > 0) {
      std::vector<std::size_t> counts = peer.TagCounts();
      std::size_t present = 0;
      for (TagId t = 0; t < num_tags && t < counts.size(); ++t) {
        if (counts[t] > 0) ++present;
      }
      coverage_sum +=
          static_cast<double>(present) / static_cast<double>(num_tags);
    }
  }
  s.min_peer_size = *std::min_element(sizes.begin(), sizes.end());
  s.max_peer_size = *std::max_element(sizes.begin(), sizes.end());
  s.mean_peer_size =
      static_cast<double>(s.num_examples) / static_cast<double>(peers.size());
  s.mean_tag_coverage = coverage_sum / static_cast<double>(peers.size());

  // Gini via the sorted-rank formula.
  std::sort(sizes.begin(), sizes.end());
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    weighted += static_cast<double>(2 * (i + 1)) *
                static_cast<double>(sizes[i]);
    total += static_cast<double>(sizes[i]);
  }
  if (total > 0.0) {
    double nn = static_cast<double>(sizes.size());
    s.size_gini = weighted / (nn * total) - (nn + 1.0) / nn;
  }
  return s;
}

}  // namespace

DistributionSummary SummarizeDistribution(
    const std::vector<MultiLabelDataset>& peers, TagId num_tags) {
  return SummarizeImpl(peers, num_tags);
}

DistributionSummary SummarizeDistribution(
    const std::vector<DatasetShard>& peers, TagId num_tags) {
  return SummarizeImpl(peers, num_tags);
}

std::string DistributionSummary::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "peers=%zu docs=%zu size[min=%zu mean=%.1f max=%zu "
                "gini=%.3f] tag_coverage=%.3f",
                num_peers, num_examples, min_peer_size, mean_peer_size,
                max_peer_size, size_gini, mean_tag_coverage);
  return buf;
}

}  // namespace p2pdt
