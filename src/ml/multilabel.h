#ifndef P2PDT_ML_MULTILABEL_H_
#define P2PDT_ML_MULTILABEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace p2pdt {

/// Trains a binary classifier from {-1,+1}-labeled examples. Plug in the
/// linear-SVM trainer for PACE or the kernel-SVM trainer for CEMPaR — the
/// paper stresses that "the P2P classification algorithm in P2PDocTagger is
/// a pluggable component" (Sec. 2), and this is the plug point at the
/// single-machine layer.
using BinaryTrainer =
    std::function<Result<std::unique_ptr<BinaryClassifier>>(
        const std::vector<Example>&)>;

/// Tag-aware variant: also receives the tag being trained so the trainer
/// can derive a per-(peer, tag) RNG stream (see DeriveSeed in common/rng.h).
/// Per-tag training runs on the thread pool, so the trainer must be
/// thread-safe: calls for different tags may run concurrently and must not
/// share mutable state.
using IndexedBinaryTrainer =
    std::function<Result<std::unique_ptr<BinaryClassifier>>(
        const std::vector<Example>&, TagId)>;

/// Controls the per-tag training fan-out of TrainOneVsAll.
struct OneVsAllTrainOptions {
  /// 0 = the global P2PDT_THREADS setting, 1 = serial (no pool), N > 1 caps
  /// concurrency at N. Results are bit-identical for every value.
  std::size_t num_threads = 0;
  /// Tags claimed per task; 1 gives the best balance under Zipf-skewed
  /// per-tag cost.
  std::size_t grain = 1;
};

/// Constant decision function; used for degenerate single-class tags (a
/// peer that has only ever seen — or never seen — a tag has nothing to
/// learn, just a fixed opinion).
class ConstantClassifier final : public BinaryClassifier {
 public:
  explicit ConstantClassifier(double value) : value_(value) {}
  double Decision(const SparseVector&) const override { return value_; }
  std::size_t WireSize() const override { return 8; }
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<ConstantClassifier>(value_);
  }
  double value() const { return value_; }

 private:
  double value_;
};

/// How predicted scores are turned into a tag set.
struct TagDecisionPolicy {
  /// A tag is assigned when its decision value exceeds this threshold.
  double threshold = 0.0;
  /// When no score clears the threshold, fall back to the single best tag
  /// (documents in the corpus always carry at least one tag, so an empty
  /// prediction is strictly worse than guessing the argmax).
  bool assign_best_when_empty = true;
  /// Optional hard cap on the number of tags per document (0 = no cap).
  std::size_t max_tags = 0;
};

/// One-against-all multi-label model: one binary classifier per tag
/// (paper Sec. 2: "for each c ∈ Y, we learn a function f_c : X → Y_c").
class OneVsAllModel {
 public:
  OneVsAllModel() = default;
  explicit OneVsAllModel(std::vector<std::unique_ptr<BinaryClassifier>> m)
      : models_(std::move(m)) {}

  OneVsAllModel(const OneVsAllModel& other) { *this = other; }
  OneVsAllModel& operator=(const OneVsAllModel& other);
  OneVsAllModel(OneVsAllModel&&) = default;
  OneVsAllModel& operator=(OneVsAllModel&&) = default;

  TagId num_tags() const { return static_cast<TagId>(models_.size()); }

  /// Raw decision value per tag.
  std::vector<double> Scores(const SparseVector& x) const;

  /// Tags whose decision clears the policy, sorted ascending.
  std::vector<TagId> PredictTags(const SparseVector& x,
                                 const TagDecisionPolicy& policy = {}) const;

  /// Access the per-tag classifier (nullptr when a tag had no model).
  const BinaryClassifier* model(TagId tag) const {
    return tag < models_.size() ? models_[tag].get() : nullptr;
  }
  BinaryClassifier* mutable_model(TagId tag) {
    return tag < models_.size() ? models_[tag].get() : nullptr;
  }

  /// Replaces the model for one tag (used by refinement).
  void SetModel(TagId tag, std::unique_ptr<BinaryClassifier> m);

  /// Total wire size of all per-tag models.
  std::size_t WireSize() const;

 private:
  std::vector<std::unique_ptr<BinaryClassifier>> models_;
};

/// Converts raw per-tag scores into a tag set under `policy`.
std::vector<TagId> DecideTags(const std::vector<double>& scores,
                              const TagDecisionPolicy& policy);

/// Trains one binary classifier per tag with the supplied trainer. Tags
/// with no positive examples get a degenerate always-negative model rather
/// than failing — in the P2P setting most peers only hold a few tags.
///
/// The per-tag loop is the dominant cost of every local training step and
/// fans out across the thread pool; results are bit-identical to a serial
/// run because each tag's subproblem is independent and any trainer
/// randomness is seeded from data identity, not thread identity. On error,
/// the failure of the lowest-numbered failing tag is returned.
Result<OneVsAllModel> TrainOneVsAll(const MultiLabelDataset& data,
                                    const BinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options = {});

Result<OneVsAllModel> TrainOneVsAll(const MultiLabelDataset& data,
                                    const IndexedBinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options = {});

/// Flyweight overloads: train directly from a DatasetShard view without
/// materializing the peer's data. Bit-identical to training on
/// `data.Materialize()`.
Result<OneVsAllModel> TrainOneVsAll(const DatasetShard& data,
                                    const BinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options = {});

Result<OneVsAllModel> TrainOneVsAll(const DatasetShard& data,
                                    const IndexedBinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options = {});

}  // namespace p2pdt

#endif  // P2PDT_ML_MULTILABEL_H_
