# Empty compiler generated dependencies file for bench_p2pdmt.
# This may be replaced when dependencies are built.
