#include "p2psim/chord.h"

#include <algorithm>
#include <cassert>

#include "common/metrics.h"

namespace p2pdt {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ChordOverlay::ChordOverlay(Simulator& sim, PhysicalNetwork& net,
                           ChordOptions options)
    : sim_(sim), net_(net), options_(options), rng_(options.seed) {
  assert(options_.key_bits >= 8 && options_.key_bits <= 64);
  key_mask_ = options_.key_bits == 64
                  ? ~uint64_t{0}
                  : ((uint64_t{1} << options_.key_bits) - 1);
}

uint64_t ChordOverlay::HashToKey(uint64_t value) const {
  return Mix64(value ^ 0x9E3779B97F4A7C15ULL) & key_mask_;
}

uint64_t ChordOverlay::KeyOf(NodeId node) const {
  assert(node < state_.size() && state_[node].member);
  return state_[node].key;
}

void ChordOverlay::AddNode(NodeId node) {
  if (node >= state_.size()) state_.resize(node + 1);
  NodeState& s = state_[node];
  if (s.member) return;
  // Draw a unique ring key.
  uint64_t key;
  do {
    key = rng_.NextU64() & key_mask_;
  } while (members_.count(key) > 0);
  s.key = key;
  s.member = true;
  members_.emplace(key, node);
  RefreshNode(node);
}

void ChordOverlay::OnTransition(NodeId node, bool online) {
  if (node >= state_.size() || !state_[node].member) return;
  if (online) {
    // Rejoin: rebuild this node's routing state (others stay stale until
    // their next stabilization round).
    RefreshNode(node);
  }
  // On failure nothing happens — stale fingers elsewhere are the point.
}

bool ChordOverlay::InHalfOpen(uint64_t key, uint64_t a, uint64_t b) const {
  if (a == b) return true;  // full ring (single-node case)
  if (a < b) return key > a && key <= b;
  return key > a || key <= b;  // wrapped interval
}

NodeId ChordOverlay::SuccessorOnRing(uint64_t key) const {
  if (members_.empty()) return kInvalidNode;
  // First online member clockwise from `key` (inclusive).
  auto it = members_.lower_bound(key);
  for (std::size_t scanned = 0; scanned < members_.size(); ++scanned) {
    if (it == members_.end()) it = members_.begin();
    if (net_.IsOnline(it->second)) return it->second;
    ++it;
  }
  return kInvalidNode;
}

NodeId ChordOverlay::OwnerOf(uint64_t key) const {
  return SuccessorOnRing(key & key_mask_);
}

void ChordOverlay::RefreshNode(NodeId node) {
  NodeState& s = state_[node];
  if (!s.member || !net_.IsOnline(node)) return;

  // Successor list: the next `successor_list_size` online members clockwise.
  s.successors.clear();
  auto it = members_.upper_bound(s.key);
  for (std::size_t scanned = 0;
       scanned < members_.size() &&
       s.successors.size() < options_.successor_list_size;
       ++scanned) {
    if (it == members_.end()) it = members_.begin();
    if (it->second != node && net_.IsOnline(it->second)) {
      s.successors.push_back(it->second);
    }
    ++it;
  }

  // Finger table: finger[i] = successor(key + 2^i).
  s.fingers.assign(options_.key_bits, kInvalidNode);
  for (std::size_t i = 0; i < options_.key_bits; ++i) {
    uint64_t target = (s.key + (uint64_t{1} << i)) & key_mask_;
    NodeId f = SuccessorOnRing(target);
    if (f != node) s.fingers[i] = f;
  }

  // Charge maintenance traffic: one probe per distinct routing-table entry.
  std::vector<NodeId> distinct = s.successors;
  for (NodeId f : s.fingers) {
    if (f != kInvalidNode) distinct.push_back(f);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (NodeId target : distinct) {
    net_.Send(node, target, options_.maintenance_message_bytes,
              MessageType::kOverlayMaintenance, nullptr, nullptr);
  }
}

std::vector<NodeId> ChordOverlay::SuccessorsOf(NodeId node) const {
  if (node >= state_.size() || !state_[node].member) return {};
  return state_[node].successors;
}

std::vector<NodeId> ChordOverlay::FingersOf(NodeId node) const {
  if (node >= state_.size() || !state_[node].member) return {};
  std::vector<NodeId> out;
  for (NodeId f : state_[node].fingers) {
    if (f != kInvalidNode) out.push_back(f);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ChordOverlay::StartStabilization() {
  if (stabilizing_) return;
  stabilizing_ = true;
  sim_.Schedule(options_.stabilize_interval_sec, [this] {
    stabilizing_ = false;
    StabilizeRound();
    StartStabilization();
  });
}

void ChordOverlay::StabilizeRound() {
  for (const auto& [key, node] : members_) {
    if (net_.IsOnline(node)) RefreshNode(node);
  }
}

NodeId ChordOverlay::NextHop(NodeId current, uint64_t key,
                             NodeId avoid) const {
  const NodeState& s = state_[current];
  // Closest preceding routing entry: among fingers and successors whose key
  // lies strictly within (current.key, key), pick the one closest to `key`.
  NodeId best = kInvalidNode;
  uint64_t best_key = 0;
  auto consider = [&](NodeId cand) {
    if (cand == kInvalidNode || cand == current || cand == avoid) return;
    const NodeState& cs = state_[cand];
    if (!cs.member) return;
    // Strictly-inside check: cand.key in (s.key, key) on the ring.
    uint64_t rel_cand = (cs.key - s.key) & key_mask_;
    uint64_t rel_key = (key - s.key) & key_mask_;
    if (rel_cand == 0 || rel_cand >= rel_key) return;
    uint64_t rel_best = (best_key - s.key) & key_mask_;
    if (best == kInvalidNode || rel_cand > rel_best) {
      best = cand;
      best_key = cs.key;
    }
  };
  for (NodeId f : s.fingers) consider(f);
  for (NodeId f : s.successors) consider(f);
  return best;
}

void ChordOverlay::Lookup(NodeId origin, uint64_t key,
                          std::function<void(LookupResult)> done) {
  key &= key_mask_;
  auto ctx = std::make_shared<LookupContext>();
  ctx->key = key;
  ctx->current = origin;
  Tracer* tracer = net_.tracer();
  if (tracer != nullptr || net_.metrics() != nullptr) {
    if (tracer != nullptr) {
      ctx->trace = tracer->StartSpan("lookup", sim_.Now(), origin,
                                     tracer->current(), "dht");
      tracer->AddArg(ctx->trace, "key", std::to_string(key));
    }
    // Wrap the continuation once so every completion path — success, hop
    // cap, dead ring, offline origin — closes the span and charges the hop
    // histogram; individual exit sites stay oblivious.
    ctx->done = [this, trace = ctx->trace,
                 done = std::move(done)](LookupResult r) {
      if (MetricsRegistry* metrics = net_.metrics()) {
        metrics
            ->GetCounter("dht_lookups",
                         {{"success", r.success ? "true" : "false"}})
            .Increment();
        metrics
            ->GetHistogram("dht_lookup_hops", {},
                           {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64})
            .Observe(static_cast<double>(r.hops));
      }
      Tracer* t = net_.tracer();
      if (t != nullptr) {
        t->AddArg(trace, "hops", std::to_string(r.hops));
        t->AddArg(trace, "success", r.success ? "true" : "false");
        t->EndSpan(trace, sim_.Now());
      }
      // Whatever the caller does next (upload, vote request, …) stays in
      // this trace, parented on the lookup span.
      ScopedTraceContext scope(t, trace);
      done(r);
    };
  } else {
    ctx->done = std::move(done);
  }
  if (origin >= state_.size() || !state_[origin].member ||
      !net_.IsOnline(origin)) {
    sim_.Schedule(0.0, [ctx] { ctx->done({false, kInvalidNode, 0}); });
    return;
  }
  // The first hop is issued under the lookup span; later hops chain off
  // the previous hop's message span via the network's context propagation.
  ScopedTraceContext scope(tracer, ctx->trace);
  Step(std::move(ctx));
}

void ChordOverlay::Step(std::shared_ptr<LookupContext> ctx) {
  if (ctx->hops >= options_.max_hops) {
    ctx->done({false, kInvalidNode, ctx->hops});
    return;
  }
  const NodeId cur = ctx->current;
  const NodeState& s = state_[cur];

  // Ring of one: the current node owns everything it can see.
  if (s.successors.empty()) {
    ctx->done({true, cur, ctx->hops});
    return;
  }

  // Terminal case 1: the key lies between this node's predecessor region
  // and itself — approximate with "key in (last known predecessor, me]"
  // using the ground-truth check that the key's ring successor (by this
  // node's view) is the node itself.
  // Terminal case 2: key in (me, first live successor] → the successor owns
  // it. Try the successor-list entries in order; each attempt costs one
  // message.
  uint64_t succ_key = state_[s.successors.front()].key;
  if (InHalfOpen(ctx->key, s.key, succ_key)) {
    // Try successors in order until one answers.
    auto try_successor = [this, ctx](auto&& self, std::size_t idx) -> void {
      const NodeState& cs = state_[ctx->current];
      if (idx >= cs.successors.size() || ctx->hops >= options_.max_hops) {
        ctx->done({false, kInvalidNode, ctx->hops});
        return;
      }
      NodeId target = cs.successors[idx];
      ++ctx->hops;
      net_.Send(
          ctx->current, target, options_.lookup_message_bytes,
          MessageType::kLookup,
          [ctx, target] { ctx->done({true, target, ctx->hops}); },
          [self, ctx, idx] { self(self, idx + 1); });
    };
    try_successor(try_successor, 0);
    return;
  }

  // Forwarding case: route greedily to the closest preceding entry, with
  // fallback to the next-best candidate when the hop target is dead.
  auto try_forward = [this, ctx](auto&& self, NodeId avoid) -> void {
    // Every retry costs a hop; without this cap two stale candidates could
    // ping-pong the retry loop forever (Step's check only guards entry).
    if (ctx->hops >= options_.max_hops) {
      ctx->done({false, kInvalidNode, ctx->hops});
      return;
    }
    NodeId next = NextHop(ctx->current, ctx->key, avoid);
    if (next == kInvalidNode) {
      // No routing entry precedes the key: fall back to the first
      // successor (classic Chord behaviour).
      const NodeState& cs = state_[ctx->current];
      next = cs.successors.empty() ? kInvalidNode : cs.successors.front();
      if (next == kInvalidNode || next == avoid) {
        ctx->done({false, kInvalidNode, ctx->hops});
        return;
      }
    }
    ++ctx->hops;
    net_.Send(
        ctx->current, next, options_.lookup_message_bytes,
        MessageType::kLookup,
        [this, ctx, next] {
          ctx->current = next;
          Step(ctx);
        },
        [self, next] { self(self, next); });
  };
  try_forward(try_forward, kInvalidNode);
}

void ChordOverlay::Broadcast(NodeId origin, std::size_t payload_bytes,
                             MessageType type,
                             std::function<void(NodeId)> on_deliver,
                             std::function<void()> on_complete) {
  // DHT broadcast along finger tables (El-Ansary et al. 2003): each node
  // covers the ring interval (its key, limit); it delegates disjoint
  // sub-intervals to its fingers inside that range. O(N) messages, O(log N)
  // depth, no duplicates on a stable ring. Drops prune whole subtrees —
  // exactly how churn hurts dissemination in practice.
  struct BcastState {
    std::size_t pending = 0;
    std::vector<bool> delivered;
    std::function<void(NodeId)> on_deliver;
    std::function<void()> on_complete;
    std::function<void(NodeId, uint64_t)> spread;
  };
  auto st = std::make_shared<BcastState>();
  st->delivered.resize(state_.size(), false);
  st->on_deliver = std::move(on_deliver);
  st->on_complete = std::move(on_complete);

  auto finish_one = [this, st] {
    if (--st->pending > 0) return;
    if (st->on_complete) sim_.Schedule(0.0, std::move(st->on_complete));
    st->spread = nullptr;  // break the shared_ptr cycle
  };

  st->spread = [this, st, payload_bytes, type, finish_one](NodeId at,
                                                           uint64_t limit) {
    // Collect distinct fingers inside (key(at), limit), ascending by ring
    // distance from `at`.
    const NodeState& s = state_[at];
    uint64_t rel_limit = (limit - s.key) & key_mask_;
    if (rel_limit == 0) rel_limit = key_mask_;  // root covers the full ring
    std::vector<NodeId> targets;
    for (NodeId f : s.fingers) {
      if (f == kInvalidNode || f == at) continue;
      uint64_t rel_f = (state_[f].key - s.key) & key_mask_;
      if (rel_f == 0 || rel_f >= rel_limit) continue;
      targets.push_back(f);
    }
    std::sort(targets.begin(), targets.end(), [&](NodeId a, NodeId b) {
      return ((state_[a].key - s.key) & key_mask_) <
             ((state_[b].key - s.key) & key_mask_);
    });
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());

    for (std::size_t i = 0; i < targets.size(); ++i) {
      NodeId t = targets[i];
      uint64_t sub_limit =
          (i + 1 < targets.size()) ? state_[targets[i + 1]].key : limit;
      ++st->pending;
      net_.Send(
          at, t, payload_bytes, type,
          [st, t, sub_limit, finish_one] {
            if (t < st->delivered.size() && !st->delivered[t]) {
              st->delivered[t] = true;
              if (st->on_deliver) st->on_deliver(t);
            }
            if (st->spread) st->spread(t, sub_limit);
            finish_one();
          },
          finish_one);
    }
  };

  ++st->pending;  // root task
  if (origin < state_.size() && state_[origin].member &&
      net_.IsOnline(origin)) {
    st->delivered[origin] = true;
    st->spread(origin, state_[origin].key);
  }
  finish_one();
}

}  // namespace p2pdt
