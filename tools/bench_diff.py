#!/usr/bin/env python3
"""Bench-regression gate: diffs bench JSON emissions against a baseline.

Usage:
  bench_diff.py [--strict] [--baseline FILE] [--results DIR]
  bench_diff.py --update [--baseline FILE] [--results DIR]
  bench_diff.py --selfcheck [--baseline FILE] [--results DIR]

Reads every ``*.json`` emitted by the bench ``--smoke`` modes under
``--results`` (default ``bench_results/perf``) and compares it against the
committed baseline (default ``BENCH_baseline.json``, a map of bench name to
its emission).

Two metric families, two policies:

* ``deterministic`` — ledger op counts, wire bytes, message counts. These
  are bit-identical across runs at a fixed seed, so ANY difference is a
  real behavior change: the diff is reported and, under ``--strict``,
  fails the gate. New or vanished points/metrics also gate — silent
  coverage loss is a regression too.
* ``advisory`` — wall-clock, throughput, F1. Reported with a percentage
  delta, never gates (CI machines differ; quality gates live in ctest).

``--update`` rewrites the baseline from the current results (commit the
file afterwards). ``--selfcheck`` proves the gate can fail: it corrupts a
copy of the baseline in memory and asserts the strict diff catches it.

Pure stdlib. Exit codes: 0 ok, 1 regression (strict) or selfcheck failure,
2 usage/IO error.
"""

import argparse
import copy
import glob
import json
import os
import sys


def load_results(results_dir):
    """Returns {bench_name: emission} from every JSON file in the dir."""
    benches = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "*.json"))):
        with open(path) as f:
            doc = json.load(f)
        name = doc.get("bench")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{path}: missing 'bench' name")
        if not isinstance(doc.get("points"), dict):
            raise ValueError(f"{path}: missing 'points' object")
        benches[name] = doc
    return benches


def diff_benches(baseline, current):
    """Compares two {bench: emission} maps.

    Returns (regressions, advisories): lists of human-readable strings.
    Only `regressions` gates.
    """
    regressions = []
    advisories = []

    for bench in sorted(set(baseline) | set(current)):
        if bench not in current:
            regressions.append(f"{bench}: bench missing from results")
            continue
        if bench not in baseline:
            regressions.append(
                f"{bench}: not in baseline (run --update to record it)")
            continue
        base_points = baseline[bench].get("points", {})
        cur_points = current[bench].get("points", {})
        for point in sorted(set(base_points) | set(cur_points)):
            where = f"{bench}/{point}"
            if point not in cur_points:
                regressions.append(f"{where}: point missing from results")
                continue
            if point not in base_points:
                regressions.append(f"{where}: point not in baseline")
                continue
            base_det = base_points[point].get("deterministic", {})
            cur_det = cur_points[point].get("deterministic", {})
            for metric in sorted(set(base_det) | set(cur_det)):
                b = base_det.get(metric)
                c = cur_det.get(metric)
                if b is None:
                    regressions.append(
                        f"{where}: new deterministic metric '{metric}'={c}")
                elif c is None:
                    regressions.append(
                        f"{where}: deterministic metric '{metric}' vanished"
                        f" (baseline {b})")
                elif b != c:
                    regressions.append(
                        f"{where}: {metric} {b} -> {c}"
                        f" ({c - b:+d})")
            base_adv = base_points[point].get("advisory", {})
            cur_adv = cur_points[point].get("advisory", {})
            for metric in sorted(set(base_adv) & set(cur_adv)):
                b, c = base_adv[metric], cur_adv[metric]
                if b and abs(c - b) / abs(b) > 0.10:
                    advisories.append(
                        f"{where}: {metric} {b:.4g} -> {c:.4g}"
                        f" ({100.0 * (c - b) / b:+.1f}%)")
    return regressions, advisories


def selfcheck(baseline):
    """Negative test: a corrupted baseline must produce regressions."""
    if not baseline:
        print("selfcheck FAIL: empty baseline, nothing to corrupt")
        return False
    corrupted = copy.deepcopy(baseline)
    mutations = 0
    for bench in corrupted.values():
        for point in bench.get("points", {}).values():
            for metric in point.get("deterministic", {}):
                point["deterministic"][metric] += 1
                mutations += 1
                break  # one metric per point is plenty
    if mutations == 0:
        print("selfcheck FAIL: baseline has no deterministic metrics")
        return False
    regressions, _ = diff_benches(baseline, corrupted)
    if len(regressions) != mutations:
        print(f"selfcheck FAIL: corrupted {mutations} metrics but the diff "
              f"reported {len(regressions)} regressions")
        return False
    print(f"selfcheck OK: {mutations} injected corruptions, all detected")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--results", default="bench_results/perf")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any deterministic difference")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from current results")
    ap.add_argument("--selfcheck", action="store_true",
                    help="verify the gate detects an injected corruption")
    args = ap.parse_args()

    try:
        if args.selfcheck:
            with open(args.baseline) as f:
                baseline = json.load(f)
            return 0 if selfcheck(baseline) else 1

        current = load_results(args.results)
        if not current:
            print(f"no bench JSON found under {args.results}/")
            return 2

        if args.update:
            with open(args.baseline, "w") as f:
                json.dump(current, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"baseline {args.baseline} updated "
                  f"({len(current)} benches)")
            return 0

        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"error: {e}")
        return 2

    regressions, advisories = diff_benches(baseline, current)
    for line in regressions:
        print(f"DIFF: {line}")
    for line in advisories:
        print(f"advisory: {line}")
    if not regressions:
        n_points = sum(len(b.get("points", {})) for b in current.values())
        print(f"bench_diff OK: {len(current)} benches, {n_points} points, "
              "deterministic metrics identical")
        return 0
    print(f"{len(regressions)} deterministic difference(s) vs "
          f"{args.baseline}")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
