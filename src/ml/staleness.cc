#include "ml/staleness.h"

#include <algorithm>
#include <cmath>

namespace p2pdt {

namespace {

double Clamp01(double v) {
  if (!(v > 0.0)) return 0.0;  // also catches NaN
  return v < 1.0 ? v : 1.0;
}

/// One EWMA step with seeding: the first observation anchors both averages
/// so the gap starts at zero instead of decaying from an arbitrary prior.
void Ewma(double& fast, double& slow, bool& seeded, double fast_alpha,
          double slow_alpha, double value) {
  if (!seeded) {
    fast = value;
    slow = value;
    seeded = true;
    return;
  }
  fast += fast_alpha * (value - fast);
  slow += slow_alpha * (value - slow);
}

}  // namespace

ModelStalenessTracker::ModelStalenessTracker(StalenessOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
  options_.fast_alpha = Clamp01(options_.fast_alpha);
  options_.slow_alpha = Clamp01(options_.slow_alpha);
  if (options_.stale_after_docs == 0) options_.stale_after_docs = 1;
  window_.reserve(options_.window);
}

void ModelStalenessTracker::RecordTrained() {
  docs_since_train_ = 0;
  observations_since_train_ = 0;
  window_.clear();
  window_sum_ = 0.0;
  // The refreshed model defines a new regime: the accuracy reference
  // re-anchors on the first post-retrain window (a pre-retrain collapse
  // must not keep the drift latch armed against the new model), and the
  // fast confidence EWMA re-joins the slow one.
  accuracy_seeded_ = false;
  fast_confidence_ = slow_confidence_;
}

void ModelStalenessTracker::RecordDocument(std::size_t count) {
  docs_since_train_ += count;
}

void ModelStalenessTracker::RecordHoldout(double correctness,
                                          double confidence) {
  ++observations_since_train_;
  correctness = Clamp01(correctness);  // also maps NaN to 0

  if (window_.size() == options_.window) {
    window_sum_ -= window_.front();
    window_.erase(window_.begin());
  }
  window_.push_back(correctness);
  window_sum_ += correctness;

  if (!accuracy_seeded_) {
    // Anchor phase: the first min_observations grades form the reference
    // level. Seeding from one near-binary grade would hand the slow EWMA a
    // reference that is itself pure noise.
    if (observations_since_train_ >= options_.min_observations) {
      fast_accuracy_ = window_accuracy();
      slow_accuracy_ = fast_accuracy_;
      accuracy_seeded_ = true;
    }
  } else {
    fast_accuracy_ += options_.fast_alpha * (correctness - fast_accuracy_);
    slow_accuracy_ += options_.slow_alpha * (correctness - slow_accuracy_);
    fast_accuracy_ = Clamp01(fast_accuracy_);
    slow_accuracy_ = Clamp01(slow_accuracy_);
  }

  if (std::isfinite(confidence)) {
    Ewma(fast_confidence_, slow_confidence_, confidence_seeded_,
         options_.fast_alpha, options_.slow_alpha, Clamp01(confidence));
    fast_confidence_ = Clamp01(fast_confidence_);
    slow_confidence_ = Clamp01(slow_confidence_);
  }
}

double ModelStalenessTracker::window_accuracy() const {
  if (window_.empty()) return 1.0;
  return window_sum_ / static_cast<double>(window_.size());
}

double ModelStalenessTracker::drift_score() const {
  // Accuracy arm: long-run EWMA vs the holdout *window* mean. The window
  // mean's variance shrinks with window size, so the signal does not
  // flicker over thresholds on stationary data the way a fast
  // per-observation EWMA would; until the reference is anchored there is
  // no gap to speak of.
  const double accuracy_gap =
      (!accuracy_seeded_ || window_.empty())
          ? 0.0
          : slow_accuracy_ - window_accuracy();
  // Confidence arm: the classifier's raw scores are continuous (low per-
  // observation variance), so here the fast EWMA is both quick and quiet.
  const double confidence_gap =
      options_.confidence_weight * (slow_confidence_ - fast_confidence_);
  return std::max(0.0, std::max(accuracy_gap, confidence_gap));
}

bool ModelStalenessTracker::DriftDetected() const {
  return observations_since_train_ >= options_.min_observations &&
         drift_score() > options_.drift_threshold;
}

double ModelStalenessTracker::staleness() const {
  const double age =
      std::min(1.0, static_cast<double>(docs_since_train_) /
                        static_cast<double>(options_.stale_after_docs));
  // Deadband below the drift threshold: any gap that would not trip the
  // drift detector contributes exactly nothing here, so stationary peers
  // cannot creep past retrain triggers on age + sampling noise. Above the
  // threshold the gate ramps linearly, saturating at twice the threshold.
  const double t = options_.drift_threshold;
  const double score = drift_score();
  const double gap =
      t > 0.0 ? Clamp01((score - t) / t) : (score > 0.0 ? 1.0 : 0.0);
  return Clamp01(age * (0.25 + 0.75 * gap));
}

}  // namespace p2pdt
