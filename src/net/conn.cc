#include "net/conn.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <utility>

namespace p2pdt {

Connection::Connection(int fd, std::string peer_name,
                       std::size_t max_frame_payload)
    : fd_(fd), peer_name_(std::move(peer_name)), decoder_(max_frame_payload) {}

Connection::~Connection() { CloseFd(); }

void Connection::CloseFd() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Connection::IoResult Connection::ReadIntoDecoder(std::size_t& bytes_read) {
  bytes_read = 0;
  char buf[16384];
  for (;;) {
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      bytes_read += static_cast<std::size_t>(n);
      if (!decoder_.Feed(buf, static_cast<std::size_t>(n))) {
        return IoResult::kOverflow;
      }
      continue;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

void Connection::QueueWrite(const std::string& bytes) {
  // Compact lazily so the buffer stays bounded by outstanding bytes, not
  // by lifetime traffic.
  if (write_off_ > 0 && write_off_ >= write_buf_.size() / 2) {
    write_buf_.erase(0, write_off_);
    write_off_ = 0;
  }
  write_buf_ += bytes;
}

Connection::IoResult Connection::TryFlush(std::size_t& bytes_written) {
  bytes_written = 0;
  while (write_off_ < write_buf_.size()) {
    const ssize_t n = write(fd_, write_buf_.data() + write_off_,
                            write_buf_.size() - write_off_);
    if (n > 0) {
      write_off_ += static_cast<std::size_t>(n);
      bytes_written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::kOk;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kError;
  }
  if (write_off_ == write_buf_.size()) {
    write_buf_.clear();
    write_off_ = 0;
  }
  return IoResult::kOk;
}

}  // namespace p2pdt
