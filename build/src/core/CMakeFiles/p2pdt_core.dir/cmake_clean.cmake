file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_core.dir/doc_tagger.cc.o"
  "CMakeFiles/p2pdt_core.dir/doc_tagger.cc.o.d"
  "CMakeFiles/p2pdt_core.dir/document.cc.o"
  "CMakeFiles/p2pdt_core.dir/document.cc.o.d"
  "CMakeFiles/p2pdt_core.dir/metadata_store.cc.o"
  "CMakeFiles/p2pdt_core.dir/metadata_store.cc.o.d"
  "CMakeFiles/p2pdt_core.dir/tag_cloud.cc.o"
  "CMakeFiles/p2pdt_core.dir/tag_cloud.cc.o.d"
  "CMakeFiles/p2pdt_core.dir/tag_library.cc.o"
  "CMakeFiles/p2pdt_core.dir/tag_library.cc.o.d"
  "CMakeFiles/p2pdt_core.dir/tag_query.cc.o"
  "CMakeFiles/p2pdt_core.dir/tag_query.cc.o.d"
  "libp2pdt_core.a"
  "libp2pdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
