#include "p2psim/unstructured.h"

#include <algorithm>

namespace p2pdt {

UnstructuredOverlay::UnstructuredOverlay(Simulator& sim, PhysicalNetwork& net,
                                         UnstructuredOptions options)
    : sim_(sim), net_(net), options_(options), rng_(options.seed) {}

void UnstructuredOverlay::Connect(NodeId a, NodeId b) {
  if (a == b) return;
  auto& na = adjacency_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adjacency_[b].push_back(a);
}

void UnstructuredOverlay::AddNode(NodeId node) {
  if (node >= adjacency_.size()) {
    adjacency_.resize(node + 1);
    member_.resize(node + 1, false);
  }
  if (member_[node]) return;
  member_[node] = true;

  // Attach to `degree` random existing members (bootstrap-server model);
  // early nodes get linked by later arrivals, giving a connected
  // Gnutella-like random graph.
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < member_.size(); ++n) {
    if (n != node && member_[n]) candidates.push_back(n);
  }
  rng_.Shuffle(candidates);
  std::size_t links = std::min(options_.degree, candidates.size());
  for (std::size_t i = 0; i < links; ++i) Connect(node, candidates[i]);
}

void UnstructuredOverlay::OnTransition(NodeId node, bool online) {
  if (!online) return;
  // A rejoining peer re-bootstraps if it lost all neighbors to departures;
  // the graph itself is kept (peers remember their neighbor lists).
  if (node < adjacency_.size() && member_[node] &&
      adjacency_[node].empty()) {
    member_[node] = false;
    AddNode(node);
  }
}

double UnstructuredOverlay::MeanDegree() const {
  std::size_t total = 0, count = 0;
  for (NodeId n = 0; n < adjacency_.size(); ++n) {
    if (member_[n]) {
      total += adjacency_[n].size();
      ++count;
    }
  }
  return count == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(count);
}

void UnstructuredOverlay::Broadcast(NodeId origin, std::size_t payload_bytes,
                                    MessageType type,
                                    std::function<void(NodeId)> on_deliver,
                                    std::function<void()> on_complete) {
  struct FloodState {
    std::size_t pending = 0;
    std::vector<bool> seen;
    std::function<void(NodeId)> on_deliver;
    std::function<void()> on_complete;
    std::function<void(NodeId, int)> relay;
  };
  auto st = std::make_shared<FloodState>();
  st->seen.resize(adjacency_.size(), false);
  st->on_deliver = std::move(on_deliver);
  st->on_complete = std::move(on_complete);

  auto finish_one = [this, st] {
    if (--st->pending > 0) return;
    if (st->on_complete) sim_.Schedule(0.0, std::move(st->on_complete));
    st->relay = nullptr;  // break the cycle
  };

  std::size_t bytes = payload_bytes + options_.header_bytes;
  st->relay = [this, st, bytes, type, finish_one](NodeId at, int ttl) {
    if (ttl <= 0) return;
    // Flooding forwards to every neighbor; gossip samples a fanout-sized
    // random subset per hop.
    std::vector<NodeId> targets = adjacency_[at];
    if (options_.mode == DisseminationMode::kGossip &&
        targets.size() > options_.gossip_fanout) {
      rng_.Shuffle(targets);
      targets.resize(options_.gossip_fanout);
    }
    for (NodeId nb : targets) {
      // Senders do not know receiver liveness; they do suppress neighbors
      // they already heard the message from (via `seen` bookkeeping at the
      // receiving end only — the sender-side check models the standard
      // "don't echo back" rule imperfectly but cheaply).
      ++st->pending;
      net_.Send(
          at, nb, bytes, type,
          [st, nb, ttl, finish_one] {
            if (!st->seen[nb]) {
              st->seen[nb] = true;
              if (st->on_deliver) st->on_deliver(nb);
              if (st->relay) st->relay(nb, ttl - 1);
            }
            finish_one();
          },
          finish_one);
    }
  };

  ++st->pending;  // root task
  if (origin < adjacency_.size() && member_[origin] &&
      net_.IsOnline(origin)) {
    st->seen[origin] = true;
    st->relay(origin, options_.flood_ttl);
  }
  finish_one();
}

}  // namespace p2pdt
