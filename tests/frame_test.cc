// Frame codec: encode/decode round-trips for every message type, stream
// reassembly across arbitrary split points (TCP is a byte stream), typed
// header rejects detected before any payload allocation, and poisoning
// semantics (no resync after an unrecoverable reject).

#include "net/frame.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/serialization.h"

namespace p2pdt {
namespace {

SparseVector TestDoc() {
  SparseVector v;
  v.PushBack(3, 0.5);
  v.PushBack(17, -1.25);
  v.PushBack(2999, 3.0);
  return v;
}

std::string PutU32Le(uint32_t v) {
  std::string out;
  wire::PutU32(v, out);
  return out;
}

/// Raw header + payload with full control over every field — how the tests
/// forge what EncodeFrame refuses to produce.
std::string RawFrame(uint32_t magic, uint8_t type, uint32_t len,
                     const std::string& payload) {
  std::string out = PutU32Le(magic);
  out.push_back(static_cast<char>(type));
  out += PutU32Le(len);
  out += payload;
  return out;
}

/// Feeds `bytes` in chunks and collects every decoded frame.
std::vector<Frame> DecodeChunked(const std::string& bytes,
                                 std::size_t chunk) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    EXPECT_TRUE(decoder.Feed(bytes.data() + off, n));
    Frame frame;
    while (decoder.Poll(frame) == FrameDecoder::Next::kFrame) {
      frames.push_back(frame);
    }
  }
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered(), 0u);
  return frames;
}

TEST(FrameCodec, PredictRequestRoundTrip) {
  PredictRequest req;
  req.id = 0x0123456789ABCDEFull;
  req.requester = 42;
  req.doc = TestDoc();
  Result<PredictRequest> back =
      DecodePredictRequest(EncodePredictRequest(req));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->requester, req.requester);
  EXPECT_EQ(back->doc.entries(), req.doc.entries());
}

TEST(FrameCodec, PredictResponseRoundTrip) {
  PredictResponse resp;
  resp.id = 7;
  resp.success = true;
  resp.degraded = true;
  resp.cached = false;
  resp.tags = {0, 3, 11};
  resp.scores = {0.25, -1.0, 3.5};
  Result<PredictResponse> back =
      DecodePredictResponse(EncodePredictResponse(resp));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, resp.id);
  EXPECT_TRUE(back->success);
  EXPECT_TRUE(back->degraded);
  EXPECT_FALSE(back->cached);
  EXPECT_EQ(back->tags, resp.tags);
  EXPECT_EQ(back->scores, resp.scores);
}

TEST(FrameCodec, OverloadAndErrorAndPingRoundTrip) {
  OverloadReject over;
  over.id = 99;
  over.reason = 2;
  over.retry_after = 0.75;
  Result<OverloadReject> over_back =
      DecodeOverloadReject(EncodeOverloadReject(over));
  ASSERT_TRUE(over_back.ok());
  EXPECT_EQ(over_back->id, over.id);
  EXPECT_EQ(over_back->reason, over.reason);
  EXPECT_DOUBLE_EQ(over_back->retry_after, over.retry_after);

  ErrorReject err;
  err.id = 5;
  err.code = WireError::kOversized;
  err.message = "way too big";
  Result<ErrorReject> err_back = DecodeErrorReject(EncodeErrorReject(err));
  ASSERT_TRUE(err_back.ok());
  EXPECT_EQ(err_back->id, err.id);
  EXPECT_EQ(err_back->code, err.code);
  EXPECT_EQ(err_back->message, err.message);

  Result<uint64_t> token = DecodePingPayload(EncodePingPayload(0xFEEDu));
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(*token, 0xFEEDu);
}

TEST(FrameDecoderTest, ByteByByteReassemblyIsBitIdentical) {
  PredictRequest req;
  req.id = 12;
  req.requester = 3;
  req.doc = TestDoc();
  const std::string one =
      EncodeFrame(FrameType::kPredictRequest, EncodePredictRequest(req));
  const std::string two =
      EncodeFrame(FrameType::kPing, EncodePingPayload(0xAB));
  const std::string stream = one + two;

  // Whole-buffer decode is the reference; every split must reproduce it.
  const std::vector<Frame> reference = DecodeChunked(stream, stream.size());
  ASSERT_EQ(reference.size(), 2u);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{7}, std::size_t{9}}) {
    const std::vector<Frame> frames = DecodeChunked(stream, chunk);
    ASSERT_EQ(frames.size(), reference.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, reference[i].type) << "chunk=" << chunk;
      EXPECT_EQ(frames[i].payload, reference[i].payload)
          << "chunk=" << chunk;
    }
  }
}

TEST(FrameDecoderTest, RandomSplitPointsReassemble) {
  Rng rng(DeriveSeed(20100913, 0xF7A3E));
  std::string stream;
  std::vector<std::string> want_payloads;
  for (int i = 0; i < 16; ++i) {
    std::string payload;
    const int len = 1 + static_cast<int>(rng.UniformInt(0, 63));
    for (int b = 0; b < len; ++b) {
      payload.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    want_payloads.push_back(payload);
    stream += EncodeFrame(FrameType::kPing, payload);
  }

  FrameDecoder decoder;
  std::vector<Frame> frames;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        1 + static_cast<std::size_t>(rng.UniformInt(0, 10)),
        stream.size() - off);
    ASSERT_TRUE(decoder.Feed(stream.data() + off, n));
    off += n;
    Frame frame;
    while (decoder.Poll(frame) == FrameDecoder::Next::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), want_payloads.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].payload, want_payloads[i]);
  }
}

TEST(FrameDecoderTest, HeaderRejectsAreTypedAndPoison) {
  struct Case {
    std::string bytes;
    FrameDecoder::Next want;
    WireError wire;
  };
  const Case cases[] = {
      {RawFrame(0xDEADBEEF, 5, 4, "abcd"), FrameDecoder::Next::kBadMagic,
       WireError::kBadMagic},
      {RawFrame(kFrameMagic, 0, 4, "abcd"), FrameDecoder::Next::kBadType,
       WireError::kBadType},
      {RawFrame(kFrameMagic, 200, 4, "abcd"), FrameDecoder::Next::kBadType,
       WireError::kBadType},
      {RawFrame(kFrameMagic, 5, 0, ""), FrameDecoder::Next::kZeroPayload,
       WireError::kZeroPayload},
      {RawFrame(kFrameMagic, 5,
                static_cast<uint32_t>(kMaxFramePayload) + 1, ""),
       FrameDecoder::Next::kOversized, WireError::kOversized},
  };
  for (const Case& c : cases) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(c.bytes.data(), c.bytes.size()));
    Frame frame;
    EXPECT_EQ(decoder.Poll(frame), c.want);
    EXPECT_EQ(FrameDecoder::RejectToError(c.want), c.wire);
    EXPECT_TRUE(decoder.poisoned());
    // No resync: the verdict repeats and further bytes are refused.
    EXPECT_EQ(decoder.Poll(frame), c.want);
    EXPECT_FALSE(decoder.Feed("x", 1));
  }
}

TEST(FrameDecoderTest, OversizedLengthRejectedBeforePayloadArrives) {
  // Only the 9 header bytes are delivered; the hostile length field must
  // be rejected from those alone — no waiting for (or sizing a buffer to)
  // the claimed 256 MiB.
  const std::string header = RawFrame(kFrameMagic, 1, 1u << 28, "");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(header.data(), header.size()));
  Frame frame;
  EXPECT_EQ(decoder.Poll(frame), FrameDecoder::Next::kOversized);
  EXPECT_LE(decoder.buffered(), header.size());
}

TEST(FrameDecoderTest, FeedBoundsTotalBuffer) {
  // A stream that never completes a frame cannot grow the buffer past
  // header + max_payload.
  FrameDecoder decoder(/*max_payload=*/64);
  const std::string header = RawFrame(kFrameMagic, 5, 64, "");
  ASSERT_TRUE(decoder.Feed(header.data(), header.size()));
  std::string chunk(64, 'a');
  EXPECT_TRUE(decoder.Feed(chunk.data(), chunk.size()));
  // Frame is complete but unpolled; one more byte exceeds the bound.
  EXPECT_FALSE(decoder.Feed("b", 1));
}

TEST(FrameDecoderTest, PayloadBoundsCheckedBeforeAllocation) {
  // A response whose tag count claims more entries than the payload holds
  // must fail without reserving for the claimed count.
  PredictResponse resp;
  resp.id = 1;
  resp.success = true;
  std::string bytes = EncodePredictResponse(resp);
  // Patch the tag-count u32 (offset 8 id + 1 flags) to a huge value.
  const std::string huge = PutU32Le(0x7FFFFFFF);
  bytes.replace(9, 4, huge);
  Result<PredictResponse> back = DecodePredictResponse(bytes);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kDataLoss);
}

TEST(FrameDecoderTest, ConsumedPrefixCompactsButFramesSurvive) {
  // Many frames through one decoder: the lazy compaction must never lose
  // or corrupt a frame boundary.
  FrameDecoder decoder;
  for (int i = 0; i < 200; ++i) {
    const std::string bytes =
        EncodeFrame(FrameType::kPing, EncodePingPayload(i));
    ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()));
    Frame frame;
    ASSERT_EQ(decoder.Poll(frame), FrameDecoder::Next::kFrame);
    Result<uint64_t> token = DecodePingPayload(frame.payload);
    ASSERT_TRUE(token.ok());
    EXPECT_EQ(*token, static_cast<uint64_t>(i));
  }
}

}  // namespace
}  // namespace p2pdt
