// FIG2 — P2PDMT itself: the simulation toolkit's capabilities and costs.
// Exercises every architecture box of Fig. 2 headlessly: event-engine
// throughput, physical-network message rates, overlay generation time,
// stabilization overhead, and churn processing.

#include <benchmark/benchmark.h>

#include "p2pdmt/environment.h"

namespace {

using namespace p2pdt;

void BM_EventEngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = 100000;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.Schedule(static_cast<double>(i % 977) * 1e-3,
                   [&fired] { ++fired; });
    }
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_EventEngineThroughput);

void BM_MessageDelivery(benchmark::State& state) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(64);
  Rng rng(1);
  for (auto _ : state) {
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
      net.Send(rng.NextU64(64), rng.NextU64(64), 128,
               MessageType::kGossip, nullptr);
    }
    sim.RunAll();
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_MessageDelivery);

void BM_BuildChordOverlay(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(n);
    ChordOverlay chord(sim, net, {});
    for (NodeId i = 0; i < n; ++i) chord.AddNode(i);
    chord.Bootstrap();
    benchmark::DoNotOptimize(chord.num_members());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildChordOverlay)->Arg(64)->Arg(256)->Arg(1024);

void BM_BuildUnstructuredOverlay(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(n);
    UnstructuredOverlay overlay(sim, net, {});
    for (NodeId i = 0; i < n; ++i) overlay.AddNode(i);
    benchmark::DoNotOptimize(overlay.MeanDegree());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildUnstructuredOverlay)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChordLookup(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(n);
  ChordOverlay chord(sim, net, {});
  for (NodeId i = 0; i < n; ++i) chord.AddNode(i);
  chord.Bootstrap();
  Rng rng(2);
  for (auto _ : state) {
    bool done = false;
    chord.Lookup(rng.NextU64(n), rng.NextU64(),
                 [&done](ChordOverlay::LookupResult) { done = true; });
    while (!done && sim.Step()) {
    }
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChordLookup)->Arg(64)->Arg(512)->Arg(2048);

void BM_StabilizationRound(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(n);
  ChordOverlay chord(sim, net, {});
  for (NodeId i = 0; i < n; ++i) chord.AddNode(i);
  for (auto _ : state) {
    chord.Bootstrap();  // a full refresh of every node
    sim.RunUntil(sim.Now() + 1.0);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StabilizationRound)->Arg(64)->Arg(512);

void BM_ChurnProcessing(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(256);
    ChurnDriver driver(sim, net,
                       std::make_shared<ExponentialChurn>(10.0, 5.0), 3);
    driver.Start();
    sim.RunUntil(120.0);
    benchmark::DoNotOptimize(driver.num_failures());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(driver.num_failures() +
                                                 driver.num_rejoins()));
  }
}
BENCHMARK(BM_ChurnProcessing);

void BM_FullEnvironmentSetup(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    EnvironmentOptions opt;
    opt.num_peers = n;
    opt.churn = ChurnType::kExponential;
    auto env = std::move(Environment::Create(opt)).value();
    env->StartDynamics();
    env->sim().RunUntil(5.0);
    benchmark::DoNotOptimize(env->net().num_online());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullEnvironmentSetup)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
