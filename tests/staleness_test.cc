#include "ml/staleness.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

StalenessOptions SmallOptions() {
  StalenessOptions opt;
  opt.window = 4;
  opt.min_observations = 4;
  opt.fast_alpha = 0.25;
  opt.slow_alpha = 0.05;
  opt.drift_threshold = 0.2;
  opt.confidence_weight = 0.5;
  opt.stale_after_docs = 10;
  return opt;
}

TEST(StalenessTrackerTest, WindowEvictsOldestFirst) {
  ModelStalenessTracker tracker(SmallOptions());
  for (double g : {1.0, 1.0, 1.0, 0.0, 0.0, 0.0}) {
    tracker.RecordHoldout(g, 0.5);
  }
  // Capacity 4: the two leading 1.0s were evicted -> window {1, 0, 0, 0}.
  EXPECT_EQ(tracker.window_size(), 4u);
  EXPECT_DOUBLE_EQ(tracker.window_accuracy(), 0.25);
}

TEST(StalenessTrackerTest, WindowAccuracyIsOneWhileEmpty) {
  ModelStalenessTracker tracker(SmallOptions());
  EXPECT_DOUBLE_EQ(tracker.window_accuracy(), 1.0);
  EXPECT_EQ(tracker.window_size(), 0u);
}

TEST(StalenessTrackerTest, OutOfRangeGradesAreClamped) {
  ModelStalenessTracker tracker(SmallOptions());
  tracker.RecordHoldout(7.5, 0.5);
  tracker.RecordHoldout(-3.0, 0.5);
  EXPECT_DOUBLE_EQ(tracker.window_accuracy(), 0.5);  // {1, 0}
}

TEST(StalenessTrackerTest, NanCorrectnessCountsAsZero) {
  ModelStalenessTracker tracker(SmallOptions());
  tracker.RecordHoldout(std::nan(""), 0.5);
  EXPECT_EQ(tracker.window_size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.window_accuracy(), 0.0);
}

TEST(StalenessTrackerTest, NanConfidenceIsMissingNotZero) {
  ModelStalenessTracker tracker(SmallOptions());
  tracker.RecordHoldout(1.0, 0.8);
  const double fast = tracker.fast_confidence();
  const double slow = tracker.slow_confidence();
  tracker.RecordHoldout(1.0, std::nan(""));
  tracker.RecordHoldout(1.0, std::numeric_limits<double>::infinity());
  // The confidence EWMAs are untouched by missing signals...
  EXPECT_DOUBLE_EQ(tracker.fast_confidence(), fast);
  EXPECT_DOUBLE_EQ(tracker.slow_confidence(), slow);
  // ...but the accuracy observations were still recorded.
  EXPECT_EQ(tracker.observations_since_train(), 3u);
  EXPECT_EQ(tracker.window_size(), 3u);
}

TEST(StalenessTrackerTest, NoDriftBeforeMinObservations) {
  ModelStalenessTracker tracker(SmallOptions());
  // Total collapse, but only 3 of the 4 required observations.
  for (int i = 0; i < 3; ++i) tracker.RecordHoldout(0.0, 0.5);
  EXPECT_FALSE(tracker.DriftDetected());
  // Before the anchor forms there is no accuracy reference, so no gap.
  EXPECT_DOUBLE_EQ(tracker.drift_score(), 0.0);
}

TEST(StalenessTrackerTest, AnchorsOnFirstWindowThenDetectsCollapse) {
  ModelStalenessTracker tracker(SmallOptions());
  for (int i = 0; i < 4; ++i) tracker.RecordHoldout(1.0, 0.9);
  // Anchored at the mean of the first min_observations grades.
  EXPECT_DOUBLE_EQ(tracker.slow_accuracy(), 1.0);
  EXPECT_FALSE(tracker.DriftDetected());
  // Sustained collapse: the window mean falls far below the slow EWMA.
  for (int i = 0; i < 8; ++i) tracker.RecordHoldout(0.0, 0.9);
  EXPECT_DOUBLE_EQ(tracker.window_accuracy(), 0.0);
  EXPECT_GT(tracker.drift_score(), SmallOptions().drift_threshold);
  EXPECT_TRUE(tracker.DriftDetected());
}

TEST(StalenessTrackerTest, StationaryGradesNeverDetect) {
  ModelStalenessTracker tracker(SmallOptions());
  for (int i = 0; i < 100; ++i) tracker.RecordHoldout(0.75, 0.6);
  EXPECT_FALSE(tracker.DriftDetected());
  EXPECT_DOUBLE_EQ(tracker.drift_score(), 0.0);
}

TEST(StalenessTrackerTest, ConfidenceCollapseAloneCanDetect) {
  StalenessOptions opt = SmallOptions();
  opt.confidence_weight = 1.0;
  ModelStalenessTracker tracker(opt);
  // Accuracy stays flat; confidence collapses. The fast EWMA races ahead
  // of the slow one and their (weighted) gap carries the whole signal.
  for (int i = 0; i < 4; ++i) tracker.RecordHoldout(0.8, 0.9);
  for (int i = 0; i < 20; ++i) tracker.RecordHoldout(0.8, 0.0);
  EXPECT_GT(tracker.drift_score(), opt.drift_threshold);
  EXPECT_TRUE(tracker.DriftDetected());
}

TEST(StalenessTrackerTest, RetrainResetsAndReanchors) {
  ModelStalenessTracker tracker(SmallOptions());
  tracker.RecordDocument(7);
  for (int i = 0; i < 4; ++i) tracker.RecordHoldout(1.0, 0.9);
  for (int i = 0; i < 8; ++i) tracker.RecordHoldout(0.0, 0.9);
  ASSERT_TRUE(tracker.DriftDetected());

  tracker.RecordTrained();
  EXPECT_EQ(tracker.docs_since_train(), 0u);
  EXPECT_EQ(tracker.observations_since_train(), 0u);
  EXPECT_EQ(tracker.window_size(), 0u);
  EXPECT_FALSE(tracker.DriftDetected());

  // The new model's quality level is the new reference: a *lower but
  // stable* post-retrain level must not keep the drift latch armed.
  for (int i = 0; i < 10; ++i) tracker.RecordHoldout(0.6, 0.9);
  EXPECT_FALSE(tracker.DriftDetected());
  EXPECT_DOUBLE_EQ(tracker.drift_score(), 0.0);
}

TEST(StalenessTrackerTest, AgeAloneCapsStalenessAtQuarter) {
  StalenessOptions opt = SmallOptions();
  ModelStalenessTracker tracker(opt);
  tracker.RecordDocument(opt.stale_after_docs * 3);  // far past saturation
  // No holdouts at all: zero gap, pure age.
  EXPECT_DOUBLE_EQ(tracker.staleness(), 0.25);
}

TEST(StalenessTrackerTest, SubThresholdGapIsDeadbanded) {
  StalenessOptions opt = SmallOptions();
  ModelStalenessTracker tracker(opt);
  tracker.RecordDocument(opt.stale_after_docs);
  for (int i = 0; i < 4; ++i) tracker.RecordHoldout(1.0, 0.9);
  // A mild wobble: gap stays below the drift threshold.
  tracker.RecordHoldout(0.8, 0.9);
  ASSERT_GT(tracker.drift_score(), 0.0);
  ASSERT_LT(tracker.drift_score(), opt.drift_threshold);
  // The gate contributes exactly nothing below the threshold.
  EXPECT_DOUBLE_EQ(tracker.staleness(), 0.25);
}

TEST(StalenessTrackerTest, AgedAndDriftingApproachesOne) {
  StalenessOptions opt = SmallOptions();
  ModelStalenessTracker tracker(opt);
  tracker.RecordDocument(opt.stale_after_docs);
  for (int i = 0; i < 4; ++i) tracker.RecordHoldout(1.0, 0.9);
  for (int i = 0; i < 8; ++i) tracker.RecordHoldout(0.0, 0.9);
  // Gap >= 2x threshold saturates the gate; age is saturated too.
  ASSERT_GE(tracker.drift_score(), 2.0 * opt.drift_threshold);
  EXPECT_DOUBLE_EQ(tracker.staleness(), 1.0);
}

TEST(StalenessTrackerTest, DegenerateOptionsAreRepaired) {
  StalenessOptions opt;
  opt.window = 0;
  opt.stale_after_docs = 0;
  opt.fast_alpha = 17.0;
  opt.slow_alpha = -2.0;
  ModelStalenessTracker tracker(opt);
  tracker.RecordHoldout(0.5, 0.5);
  tracker.RecordHoldout(1.0, 0.5);
  EXPECT_EQ(tracker.window_size(), 1u);  // window repaired to 1
  tracker.RecordDocument(5);
  EXPECT_GE(tracker.staleness(), 0.0);
  EXPECT_LE(tracker.staleness(), 1.0);
}

}  // namespace
}  // namespace p2pdt
