#ifndef P2PDT_NET_EVENT_LOOP_H_
#define P2PDT_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "net/deadline_wheel.h"

namespace p2pdt {

/// Monotonic wall clock in seconds (steady_clock); the time base for the
/// event loop, the deadline wheel and the serving-queue admission math in
/// service mode.
double MonotonicSeconds();

/// Single-threaded, level-triggered epoll event loop — the real-socket
/// sibling of the simulator's event queue. Fd handlers and wheel timers
/// all run on the thread that calls Run(); nothing here is locked, and the
/// only cross-thread entry point is Wakeup() (a self-pipe write, safe from
/// other threads and signal handlers).
///
/// Level-triggered on purpose: a handler that leaves bytes unread (e.g. a
/// connection pausing reads for backpressure simply drops EPOLLIN from its
/// interest mask) is re-notified when it re-arms, with no starvation bugs
/// from forgotten edge re-arming.
class EpollLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Registers `fd` with the given epoll interest mask (EPOLLIN etc.).
  Status Add(int fd, uint32_t events, FdHandler handler);

  /// Replaces the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Does not close it. Safe to call from inside the
  /// fd's own handler.
  Status Remove(int fd);

  bool Watched(int fd) const { return handlers_.count(fd) != 0; }

  /// Runs until Stop(). Each iteration: epoll_wait bounded by the next
  /// wheel deadline, dispatch ready fds, then advance the wheel.
  void Run();

  /// One iteration with an explicit upper bound on the wait (milliseconds;
  /// -1 = wheel-driven). Returns the number of fd events dispatched.
  int RunOnce(int max_wait_ms);

  /// Makes Run() return after the current iteration. Loop-thread only; from
  /// other threads pair a flag with Wakeup().
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Interrupts a blocking epoll_wait from any thread or a signal handler
  /// (one byte down the self-pipe); the handler registered via OnWakeup
  /// then runs on the loop thread.
  void Wakeup();

  /// Callback invoked (on the loop thread) for every Wakeup() batch.
  void OnWakeup(std::function<void()> handler) {
    wakeup_handler_ = std::move(handler);
  }

  DeadlineWheel& wheel() { return wheel_; }

  /// Clock used for wheel deadlines; virtualized nowhere — service mode is
  /// honest wall time.
  double Now() const { return MonotonicSeconds(); }

 private:
  int epoll_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool stopped_ = false;
  std::unordered_map<int, FdHandler> handlers_;
  std::function<void()> wakeup_handler_;
  DeadlineWheel wheel_;
};

}  // namespace p2pdt

#endif  // P2PDT_NET_EVENT_LOOP_H_
