#ifndef P2PDT_P2PDMT_EXPERIMENT_H_
#define P2PDT_P2PDMT_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cost_ledger.h"
#include "common/status.h"
#include "corpus/vectorize.h"
#include "ml/metrics.h"
#include "p2pdmt/data_distribution.h"
#include "p2pdmt/environment.h"
#include "p2pdmt/recovery.h"
#include "p2pml/baselines.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {

/// The pluggable P2P classification algorithms an experiment can run.
enum class AlgorithmType {
  kCempar,
  kPace,
  kCentralized,
  kLocalOnly,
  kModelAvg,
};

const char* AlgorithmTypeToString(AlgorithmType t);

/// Full description of one experiment run — P2PDMT's "Set parameters"
/// surface (Fig. 2): network, churn, overlay, data distribution, algorithm
/// and evaluation settings.
struct ExperimentOptions {
  EnvironmentOptions env;
  DataDistributionOptions distribution;
  AlgorithmType algorithm = AlgorithmType::kPace;
  CemparOptions cempar;
  PaceOptions pace;
  CentralizedOptions centralized;
  LocalOnlyOptions local_only;
  ModelAveragingOptions model_avg;

  /// Fraction of tagged documents used for training; the paper's
  /// demonstration uses 20 % ("20 percent of the documents with tags are
  /// used for training", Sec. 3).
  double train_fraction = 0.2;
  /// Cap on evaluated test documents (sampled) to bound run time; 0 = all.
  std::size_t max_test_documents = 400;
  /// Cap on distinct requester peers used during evaluation; 0 = the legacy
  /// behavior (any online peer may be drawn per document). At 100k peers
  /// restricting requesters to a deterministic sample bounds per-requester
  /// state (caches, probation clocks) without changing what is measured —
  /// see DeterministicSample in p2pdmt/evaluation.h.
  std::size_t max_eval_peers = 0;
  /// Forwarded into the chosen classifier's sim_shards knob when non-zero
  /// (0 leaves each protocol's own default). Bit-identical results for
  /// every value; see CemparOptions::sim_shards.
  std::size_t sim_shards = 0;
  /// Simulated-time budgets for protocol quiescence.
  double max_train_sim_seconds = 3600.0;
  double max_predict_sim_seconds = 3600.0;
  /// Warm-up simulated seconds before training starts (lets churn and
  /// stabilization reach steady state).
  double warmup_sim_seconds = 0.0;
  /// Durable peer state: checkpoint trained models and recover rejoining
  /// peers warm (restore) or cold (retrain) — see RecoveryCoordinator.
  RecoveryOptions recovery;
  /// Simulated seconds of post-training churn exposure before evaluation
  /// (lets failures/rejoins — and hence recoveries — actually happen).
  double post_train_sim_seconds = 0.0;
  /// Observability artifacts (all optional; empty = don't write). Each
  /// requires the matching env.observe subsystem to be enabled, otherwise
  /// there is nothing to export and the path is an error.
  std::string report_path;   ///< Run report JSON (see RunReport).
  std::string metrics_path;  ///< Raw metrics registry JSON export.
  std::string trace_path;    ///< Chrome trace_event JSON export.
  std::string profile_path;  ///< Collapsed-stack flamegraph text export.
  uint64_t seed = 777;
};

/// Everything one run produces: quality, cost, timing and context.
struct ExperimentResult {
  std::string algorithm;
  std::string overlay;
  std::string churn;
  std::size_t num_peers = 0;
  std::size_t train_documents = 0;
  std::size_t test_documents = 0;

  MultiLabelMetrics metrics;
  std::size_t failed_predictions = 0;
  /// Predictions answered from a degraded path (local-model fallback after
  /// the reliable transport exhausted its retries). Counted as successes.
  std::size_t degraded_predictions = 0;

  /// Delivery / reliability accounting over the whole run.
  double delivery_rate = 1.0;
  uint64_t dropped_messages = 0;
  uint64_t injected_drops = 0;
  uint64_t retransmits = 0;
  uint64_t acks_received = 0;
  uint64_t give_ups = 0;
  /// Peers the reliable transport currently suspects dead (consecutive
  /// give-ups without a later ACK) at the end of the run; 0 when the
  /// algorithm ran fire-and-forget.
  uint64_t suspected_peers = 0;
  /// PACE only: fraction of (receiver, contributor) pairs holding the
  /// contributor's model after training (-1 for other algorithms).
  double model_coverage = -1.0;

  /// Byzantine-defense counters from the protocol's sanitation + reputation
  /// stack (all 0 for protocols without one, or when nothing was hostile).
  uint64_t models_rejected = 0;
  uint64_t votes_discarded = 0;
  uint64_t quarantined_pairs = 0;
  uint64_t trust_observations = 0;

  /// Communication, split by phase (snapshot deltas around each phase).
  uint64_t train_messages = 0;
  uint64_t train_bytes = 0;
  uint64_t predict_messages = 0;
  uint64_t predict_bytes = 0;
  uint64_t maintenance_messages = 0;
  uint64_t maintenance_bytes = 0;

  double train_sim_seconds = 0.0;
  double predict_sim_seconds = 0.0;
  double wall_seconds = 0.0;

  /// Churn exposure over the run (0 when the churn model is `none`).
  uint64_t churn_failures = 0;
  uint64_t churn_rejoins = 0;
  /// Recovery accounting (all 0 unless options.recovery.enabled).
  uint64_t warm_rejoins = 0;
  uint64_t cold_rejoins = 0;
  uint64_t corrupt_checkpoints = 0;
  uint64_t retrain_examples = 0;
  uint64_t checkpoint_bytes = 0;
  double mean_rejoin_latency_sec = 0.0;
  double max_rejoin_latency_sec = 0.0;

  DistributionSummary distribution;

  /// Snapshot of every metric the environment collected (empty unless
  /// env.observe.metrics was set) — phase latency histograms live here.
  MetricsSnapshot observability;

  /// Deterministic hot-path cost ledger deltas per phase (all zero unless
  /// env.observe.cost_ledger was set). Bit-identical across shard/thread
  /// configurations at a fixed seed.
  bool cost_ledger_enabled = false;
  CostCounts train_cost;
  CostCounts predict_cost;

  /// Mean bytes per peer spent on training — the per-user cost the paper's
  /// efficiency argument is about.
  double train_bytes_per_peer() const {
    return num_peers == 0 ? 0.0
                          : static_cast<double>(train_bytes) /
                                static_cast<double>(num_peers);
  }
  /// Mean bytes per prediction request.
  double predict_bytes_per_doc() const {
    return test_documents == 0 ? 0.0
                               : static_cast<double>(predict_bytes) /
                                     static_cast<double>(test_documents);
  }

  std::string ToString() const;
};

/// Runs one experiment end to end: split → distribute → build environment
/// → train protocol → evaluate predictions, all in simulated time.
/// `corpus` can be shared across many runs (it is read-only here), so
/// sweeps re-use one expensive preprocessing pass.
Result<ExperimentResult> RunExperiment(const VectorizedCorpus& corpus,
                                       const ExperimentOptions& options);

/// Builds the classifier for `options` against an environment (exposed for
/// benches that need direct protocol access, e.g. fault injection).
Result<std::unique_ptr<P2PClassifier>> MakeClassifier(
    Environment& env, const ExperimentOptions& options);

/// Deterministically splits `corpus` into train/test keeping the user
/// mapping (needed for by-user distribution).
struct CorpusSplit {
  MultiLabelDataset train;
  std::vector<std::size_t> train_user;
  MultiLabelDataset test;
  std::vector<std::size_t> test_user;
};
CorpusSplit SplitCorpus(const VectorizedCorpus& corpus, double train_fraction,
                        uint64_t seed);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_EXPERIMENT_H_
