file(REMOVE_RECURSE
  "CMakeFiles/doc_tagger_persistence_test.dir/doc_tagger_persistence_test.cc.o"
  "CMakeFiles/doc_tagger_persistence_test.dir/doc_tagger_persistence_test.cc.o.d"
  "doc_tagger_persistence_test"
  "doc_tagger_persistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_tagger_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
