#ifndef P2PDT_COMMON_LOGGING_H_
#define P2PDT_COMMON_LOGGING_H_

#include <atomic>
#include <initializer_list>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

namespace p2pdt {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logger with a settable severity threshold and an optional
/// capture sink for tests. Write() is thread-safe (training fans out over
/// the thread pool and workers log failures), and the threshold is atomic
/// so it may be adjusted while workers are logging; capture mode is still
/// expected to be configured from a single thread before any parallel
/// region starts.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Redirects output into an internal buffer instead of stderr. Tests use
  /// this to assert on log content without polluting test output.
  void BeginCapture();
  /// Stops capturing and returns everything captured since BeginCapture().
  std::string EndCapture();

  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarning};
  std::mutex mu_;  // serializes sink access across pool workers
  bool capturing_ = false;
  std::string capture_;
};

/// Structured log line: `event key=value key=value ...` — one greppable
/// line per event; values containing whitespace or '=' are double-quoted.
/// The observability layer reports exports and summaries this way.
void LogStructured(
    LogLevel level, const std::string& event,
    std::initializer_list<std::pair<const char*, std::string>> fields);

namespace internal {

/// Stream-style single-message builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace p2pdt

#define P2PDT_LOG(level)                                               \
  ::p2pdt::internal::LogMessage(::p2pdt::LogLevel::k##level, __FILE__, \
                                __LINE__)

#endif  // P2PDT_COMMON_LOGGING_H_
