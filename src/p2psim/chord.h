#ifndef P2PDT_P2PSIM_CHORD_H_
#define P2PDT_P2PSIM_CHORD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "p2psim/overlay.h"
#include "p2psim/simulator.h"
#include "p2psim/trace.h"

namespace p2pdt {

struct ChordOptions {
  /// Key-space width in bits (m in the Chord paper); also the finger count.
  std::size_t key_bits = 32;
  /// Successor-list length for fault tolerance.
  std::size_t successor_list_size = 8;
  /// Wire size of one routing hop request.
  std::size_t lookup_message_bytes = 64;
  /// Wire size of one maintenance probe.
  std::size_t maintenance_message_bytes = 48;
  /// Period of the stabilization round that refreshes successor lists and
  /// finger tables (seconds). Between rounds, routing state goes stale —
  /// this staleness is what churn experiments measure.
  double stabilize_interval_sec = 10.0;
  /// Safety cap on routing hops before a lookup is declared failed.
  int max_hops = 64;
  uint64_t seed = 11;
};

/// Chord DHT overlay (Stoica et al. 2001) on top of the simulated underlay.
///
/// Peers get uniformly random keys in a 2^key_bits ring. Routing is
/// iterative greedy closest-preceding-finger with successor-list fallback;
/// every hop is a real simulated message with latency and loss. Finger
/// tables and successor lists are refreshed only at stabilization rounds,
/// so a churned peer leaves stale routing state behind — lookups then pay
/// extra hops (retries via the successor list) or fail, exactly the
/// degradation the churn experiments (DEMO3) quantify.
///
/// This is the substrate CEMPaR runs on: "super-peers ... are located in a
/// deterministic manner, made possible through the use of the DHT-based
/// P2P network" (paper Sec. 2) — the super-peer for a tag is the owner of
/// the tag's hashed key.
class ChordOverlay final : public Overlay {
 public:
  ChordOverlay(Simulator& sim, PhysicalNetwork& net, ChordOptions options = {});

  void AddNode(NodeId node) override;
  void OnTransition(NodeId node, bool online) override;
  std::string name() const override { return "chord"; }

  /// Starts periodic stabilization (charges maintenance traffic).
  void StartStabilization();

  /// Refreshes every member's routing state from the current ring. Call
  /// once after the initial batch of AddNode() calls: joining node k only
  /// builds its *own* tables, so earlier joiners still hold pre-k state —
  /// exactly what periodic stabilization repairs, but a freshly deployed
  /// network has converged long before an application runs on it. Charged
  /// as maintenance traffic like any stabilization round.
  void Bootstrap() { StabilizeRound(); }

  /// Chord key of a node.
  uint64_t KeyOf(NodeId node) const;

  /// Ground-truth owner (successor) of `key` among online members, or
  /// kInvalidNode when the ring is empty. Used by tests and by experiment
  /// harnesses to verify routing correctness.
  NodeId OwnerOf(uint64_t key) const;

  struct LookupResult {
    bool success = false;
    NodeId owner = kInvalidNode;
    int hops = 0;
  };

  /// Asynchronously routes a lookup for `key` starting at `origin`;
  /// `done` is invoked exactly once with the outcome.
  void Lookup(NodeId origin, uint64_t key,
              std::function<void(LookupResult)> done);

  /// Ring broadcast along finger tables: O(N) messages, O(log N) depth.
  void Broadcast(NodeId origin, std::size_t payload_bytes, MessageType type,
                 std::function<void(NodeId)> on_deliver,
                 std::function<void()> on_complete) override;

  /// Hashes an arbitrary 64-bit value into the key space. Peers use this on
  /// tag ids so everyone independently agrees where a tag's super-peer
  /// lives.
  uint64_t HashToKey(uint64_t value) const;

  std::size_t num_members() const { return members_.size(); }
  const ChordOptions& options() const { return options_; }

  /// Immediately refreshes one node's routing state from the current ring
  /// (also charged as maintenance traffic). Exposed for tests.
  void RefreshNode(NodeId node);

  /// Current successor list of a node (possibly stale). Empty for
  /// non-members.
  std::vector<NodeId> SuccessorsOf(NodeId node) const;

  /// Distinct valid finger targets of a node (possibly stale).
  std::vector<NodeId> FingersOf(NodeId node) const;

 private:
  struct NodeState {
    uint64_t key = 0;
    bool member = false;
    std::vector<NodeId> fingers;     // finger[i] ≈ successor(key + 2^i)
    std::vector<NodeId> successors;  // successor list, nearest first
  };

  struct LookupContext {
    uint64_t key;
    NodeId current;
    int hops = 0;
    std::function<void(LookupResult)> done;
    /// Lookup span: every routing hop nests under it (hop N+1 chains off
    /// hop N's message span via the network's context propagation).
    TraceContext trace;
  };

  // True when `key` lies in the half-open ring interval (a, b].
  bool InHalfOpen(uint64_t key, uint64_t a, uint64_t b) const;
  NodeId SuccessorOnRing(uint64_t key) const;  // ground truth, online only
  void Step(std::shared_ptr<LookupContext> ctx);
  NodeId NextHop(NodeId current, uint64_t key, NodeId avoid) const;
  void StabilizeRound();

  Simulator& sim_;
  PhysicalNetwork& net_;
  ChordOptions options_;
  Rng rng_;
  uint64_t key_mask_;
  std::vector<NodeState> state_;       // indexed by NodeId
  std::map<uint64_t, NodeId> members_; // key -> node, all members (on+off)
  bool stabilizing_ = false;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_CHORD_H_
