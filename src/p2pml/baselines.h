#ifndef P2PDT_P2PML_BASELINES_H_
#define P2PDT_P2PML_BASELINES_H_

#include <memory>
#include <vector>

#include "ml/linear_svm.h"
#include "ml/multilabel.h"
#include "p2pml/p2p_classifier.h"
#include "p2psim/overlay.h"
#include "p2psim/simulator.h"

namespace p2pdt {

struct CentralizedOptions {
  LinearSvmOptions svm;
  TagDecisionPolicy policy;
  /// Underlay node acting as the central server.
  NodeId coordinator = 0;
};

/// The centralized strawman the paper argues against: every peer ships its
/// raw training documents to one coordinator, which trains a single global
/// model and answers every prediction request. Its accuracy is the upper
/// bound CEMPaR/PACE are compared to; its costs are (a) raw data on the
/// wire — the privacy problem — and (b) a single point of failure: when
/// the coordinator is offline, every prediction fails.
class CentralizedClassifier final : public P2PClassifier {
 public:
  CentralizedClassifier(Simulator& sim, PhysicalNetwork& net,
                        CentralizedOptions options = {});

  Status Setup(std::vector<MultiLabelDataset> peer_data,
               TagId num_tags) override;
  void Train(std::function<void(Status)> on_complete) override;
  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override;
  std::string name() const override { return "centralized"; }

 private:
  Simulator& sim_;
  PhysicalNetwork& net_;
  CentralizedOptions options_;
  std::vector<MultiLabelDataset> peer_data_;
  TagId num_tags_ = 0;
  MultiLabelDataset pooled_;
  OneVsAllModel model_;
  bool trained_ = false;
};

struct LocalOnlyOptions {
  LinearSvmOptions svm;
  TagDecisionPolicy policy;
};

/// The no-collaboration strawman: each peer trains only on its own few
/// documents and never talks to anyone. Zero communication, but accuracy
/// collapses on tags the peer has never seen — the gap to CEMPaR/PACE is
/// the value of collaboration, the paper's central claim.
class LocalOnlyClassifier final : public P2PClassifier {
 public:
  LocalOnlyClassifier(Simulator& sim, PhysicalNetwork& net,
                      LocalOnlyOptions options = {});

  Status Setup(std::vector<MultiLabelDataset> peer_data,
               TagId num_tags) override;
  void Train(std::function<void(Status)> on_complete) override;
  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override;
  std::string name() const override { return "local_only"; }

 private:
  Simulator& sim_;
  PhysicalNetwork& net_;
  LocalOnlyOptions options_;
  std::vector<MultiLabelDataset> peer_data_;
  TagId num_tags_ = 0;
  std::vector<OneVsAllModel> models_;
  std::vector<bool> has_model_;
  bool trained_ = false;
};

struct ModelAveragingOptions {
  LinearSvmOptions svm;
  TagDecisionPolicy policy;
};

/// A simple distributed baseline between LocalOnly and PACE: peers
/// broadcast their linear models and every receiver keeps the running
/// *average* weight vector per tag (no centroids, no locality weighting).
/// Ablates PACE's adaptive ensemble: the delta PACE−ModelAvg is what the
/// accuracy/distance weighting buys.
class ModelAveragingClassifier final : public P2PClassifier {
 public:
  ModelAveragingClassifier(Simulator& sim, PhysicalNetwork& net,
                           Overlay& overlay,
                           ModelAveragingOptions options = {});

  Status Setup(std::vector<MultiLabelDataset> peer_data,
               TagId num_tags) override;
  void Train(std::function<void(Status)> on_complete) override;
  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override;
  std::string name() const override { return "model_avg"; }

 private:
  Simulator& sim_;
  PhysicalNetwork& net_;
  Overlay& overlay_;
  ModelAveragingOptions options_;
  std::vector<MultiLabelDataset> peer_data_;
  TagId num_tags_ = 0;
  /// Per-contributor linear models (shared storage; receipt is tracked).
  std::vector<std::vector<LinearSvmModel>> contributed_;
  std::vector<bool> contributor_valid_;
  /// received_[q] lists contributors whose models reached peer q.
  std::vector<std::vector<NodeId>> received_;
  bool trained_ = false;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_BASELINES_H_
