#ifndef P2PDT_COMMON_JSON_CHECK_H_
#define P2PDT_COMMON_JSON_CHECK_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace p2pdt {

/// Validates that `text` is one syntactically well-formed JSON value
/// (object, array, string, number, true/false/null) with nothing but
/// whitespace after it. Returns InvalidArgument with a byte offset on the
/// first violation.
///
/// This is a structural checker, not a parser: the observability exporters
/// emit JSON by hand (Chrome trace_event files can reach millions of
/// events; a DOM would double peak memory), and tests + the CI smoke job
/// use this to prove every emitted artifact is loadable by real tooling.
Status CheckJsonSyntax(std::string_view text);

/// True when well-formed `text` contains `"key":` at top level or below —
/// a cheap presence probe the export tests use alongside CheckJsonSyntax.
bool JsonHasKey(std::string_view text, const std::string& key);

}  // namespace p2pdt

#endif  // P2PDT_COMMON_JSON_CHECK_H_
