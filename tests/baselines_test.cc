#include "p2pml/baselines.h"

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"

namespace p2pdt {
namespace {

std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(3));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 3);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 2 + static_cast<uint32_t>(rng.NextU64(2)), 1.0}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

SparseVector TagVector(TagId tag) {
  return SparseVector::FromPairs({{tag * 2u, 1.0}, {tag * 2u + 1, 1.0}});
}

template <typename Algo>
P2PPrediction PredictSync(Environment& env, Algo& algo, NodeId requester,
                          const SparseVector& x) {
  P2PPrediction out;
  bool done = false;
  algo.Predict(requester, x, [&](P2PPrediction p) {
    out = std::move(p);
    done = true;
  });
  env.RunUntilFlag(done, 3600);
  EXPECT_TRUE(done);
  return out;
}

template <typename Algo>
Status TrainSync(Environment& env, Algo& algo,
                 std::vector<MultiLabelDataset> data, TagId num_tags) {
  P2PDT_RETURN_IF_ERROR(algo.Setup(std::move(data), num_tags));
  bool done = false;
  Status status = Status::OK();
  algo.Train([&](Status s) {
    status = s;
    done = true;
  });
  env.RunUntilFlag(done, 3600);
  EXPECT_TRUE(done);
  return status;
}

std::unique_ptr<Environment> MakeEnv(std::size_t peers) {
  EnvironmentOptions eo;
  eo.num_peers = peers;
  return std::move(Environment::Create(eo)).value();
}

TEST(CentralizedTest, TrainsAndPredictsFromAnyPeer) {
  auto env = MakeEnv(8);
  CentralizedClassifier algo(env->sim(), env->net());
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(8, 10, 1), 3).ok());
  for (NodeId r = 0; r < 8; ++r) {
    P2PPrediction p = PredictSync(*env, algo, r, TagVector(1));
    ASSERT_TRUE(p.success) << r;
    EXPECT_EQ(p.tags, (std::vector<TagId>{1}));
  }
}

TEST(CentralizedTest, ShipsRawDataToCoordinator) {
  auto env = MakeEnv(8);
  CentralizedClassifier algo(env->sim(), env->net());
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(8, 10, 2), 3).ok());
  EXPECT_GT(env->net().stats().bytes_sent(MessageType::kDataTransfer), 0u);
}

TEST(CentralizedTest, CoordinatorIsSinglePointOfFailure) {
  auto env = MakeEnv(8);
  CentralizedOptions opt;
  opt.coordinator = 2;
  CentralizedClassifier algo(env->sim(), env->net(), opt);
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(8, 10, 3), 3).ok());
  ASSERT_TRUE(PredictSync(*env, algo, 0, TagVector(0)).success);
  env->net().SetOnline(2, false);
  EXPECT_FALSE(PredictSync(*env, algo, 0, TagVector(0)).success);
}

TEST(CentralizedTest, RejectsBadCoordinator) {
  auto env = MakeEnv(4);
  CentralizedOptions opt;
  opt.coordinator = 99;
  CentralizedClassifier algo(env->sim(), env->net(), opt);
  EXPECT_FALSE(algo.Setup(MakePeerData(4, 4, 4), 3).ok());
}

TEST(LocalOnlyTest, ZeroCommunication) {
  auto env = MakeEnv(6);
  env->net().stats().Reset();  // discard overlay bootstrap traffic
  LocalOnlyClassifier algo(env->sim(), env->net());
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(6, 9, 5), 3).ok());
  EXPECT_EQ(env->net().stats().messages_sent(), 0u);
  P2PPrediction p = PredictSync(*env, algo, 2, TagVector(0));
  EXPECT_TRUE(p.success);
  EXPECT_EQ(env->net().stats().messages_sent(), 0u);
}

TEST(LocalOnlyTest, PeerWithoutModelFails) {
  auto env = MakeEnv(4);
  LocalOnlyClassifier algo(env->sim(), env->net());
  std::vector<MultiLabelDataset> data = MakePeerData(4, 6, 6);
  data[1] = MultiLabelDataset(3);
  ASSERT_TRUE(TrainSync(*env, algo, std::move(data), 3).ok());
  EXPECT_FALSE(PredictSync(*env, algo, 1, TagVector(0)).success);
  EXPECT_TRUE(PredictSync(*env, algo, 0, TagVector(0)).success);
}

TEST(LocalOnlyTest, MissesTagsThePeerNeverSaw) {
  auto env = MakeEnv(3);
  LocalOnlyClassifier algo(env->sim(), env->net());
  // Peer 0 only ever sees tag 0.
  std::vector<MultiLabelDataset> peers(3, MultiLabelDataset(3));
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    MultiLabelExample ex;
    ex.x = SparseVector::FromPairs(
        {{static_cast<uint32_t>(rng.NextU64(2)), 1.0}});
    ex.tags = {0};
    peers[0].Add(ex);
    MultiLabelExample other;
    other.x = SparseVector::FromPairs(
        {{2 + static_cast<uint32_t>(rng.NextU64(2)), 1.0}});
    other.tags = {1};
    peers[1].Add(other);
    peers[2].Add(other);
  }
  ASSERT_TRUE(TrainSync(*env, algo, std::move(peers), 3).ok());
  P2PPrediction p = PredictSync(*env, algo, 0, TagVector(1));
  ASSERT_TRUE(p.success);
  // Peer 0 cannot produce tag 1 — the collaboration gap the paper targets.
  EXPECT_EQ(p.tags, (std::vector<TagId>{0}));
}

TEST(ModelAvgTest, TrainsViaBroadcastAndPredictsLocally) {
  auto env = MakeEnv(8);
  ModelAveragingClassifier algo(env->sim(), env->net(), env->overlay());
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(8, 10, 7), 3).ok());
  EXPECT_GT(
      env->net().stats().messages_sent(MessageType::kModelBroadcast), 0u);
  uint64_t before = env->net().stats().messages_sent();
  P2PPrediction p = PredictSync(*env, algo, 5, TagVector(2));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.tags, (std::vector<TagId>{2}));
  EXPECT_EQ(env->net().stats().messages_sent(), before);
}

TEST(ModelAvgTest, AveragingBeatsLonePeer) {
  auto env = MakeEnv(6);
  ModelAveragingClassifier algo(env->sim(), env->net(), env->overlay());
  ASSERT_TRUE(TrainSync(*env, algo, MakePeerData(6, 6, 8), 3).ok());
  // Every peer, even one whose local data misses a tag, can now tag it.
  for (TagId t = 0; t < 3; ++t) {
    P2PPrediction p = PredictSync(*env, algo, 0, TagVector(t));
    ASSERT_TRUE(p.success);
    EXPECT_EQ(p.tags, (std::vector<TagId>{t}));
  }
}

}  // namespace
}  // namespace p2pdt
