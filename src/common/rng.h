#ifndef P2PDT_COMMON_RNG_H_
#define P2PDT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace p2pdt {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64) with the sampling distributions the corpus generator and the
/// P2P simulator need.
///
/// Every stochastic component in the library takes an explicit `Rng` (or a
/// seed) so that corpora, peer data partitions, overlay topologies and churn
/// traces are exactly reproducible from a scenario seed. The standard
/// library's distributions are deliberately avoided: their output is
/// implementation-defined, which would make experiment outputs differ across
/// standard libraries.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0xA02DCCF3ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given mean (= 1/rate). Used by churn models for
  /// session lifetimes.
  double Exponential(double mean);

  /// Pareto (heavy-tailed) with scale `xm` > 0 and shape `alpha` > 0. Used by
  /// churn models: peer lifetimes in deployed P2P systems are heavy-tailed.
  double Pareto(double xm, double alpha);

  /// Zipf-distributed integer in [0, n). Exponent `s` >= 0; s = 0 degenerates
  /// to uniform. Implemented by inverting the empirical CDF built once per
  /// (n, s) — callers that sample many values from the same distribution
  /// should prefer ZipfSampler below.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples a probability vector from a symmetric Dirichlet(alpha) of the
  /// given dimension. Small alpha => highly skewed vectors; used to create
  /// non-IID class distributions across peers.
  std::vector<double> Dirichlet(std::size_t dim, double alpha);

  /// Gamma(shape, 1) via Marsaglia–Tsang; building block for Dirichlet.
  double Gamma(double shape);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() when all weights are zero/empty.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextU64(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator; the child's stream does not
  /// overlap this generator's under practical use. Used to give each peer its
  /// own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Mixes a base seed with up to two stream keys into an independent child
/// seed (SplitMix64 finalizer over the concatenation). Parallel trainers
/// key their per-task RNG streams by data identity — DeriveSeed(base, peer,
/// tag) — so results never depend on which thread ran the task.
uint64_t DeriveSeed(uint64_t base, uint64_t key_a, uint64_t key_b = 0);

/// Precomputed inverse-CDF sampler for a Zipf distribution over [0, n).
/// O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  /// `n` > 0; exponent `s` >= 0.
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank `k` (0-based).
  double Pmf(uint64_t k) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_RNG_H_
