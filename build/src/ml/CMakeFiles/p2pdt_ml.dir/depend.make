# Empty dependencies file for p2pdt_ml.
# This may be replaced when dependencies are built.
