#ifndef P2PDT_COMMON_MEMORY_H_
#define P2PDT_COMMON_MEMORY_H_

#include <cstdint>

namespace p2pdt {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss).
/// Monotone over the process lifetime — it never decreases, so per-phase
/// deltas only make sense for phases that grow the footprint. Returns 0 on
/// platforms without the counter.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (/proc/self/statm). Returns 0 where
/// procfs is unavailable.
uint64_t CurrentRssBytes();

}  // namespace p2pdt

#endif  // P2PDT_COMMON_MEMORY_H_
