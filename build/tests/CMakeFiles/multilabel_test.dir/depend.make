# Empty dependencies file for multilabel_test.
# This may be replaced when dependencies are built.
