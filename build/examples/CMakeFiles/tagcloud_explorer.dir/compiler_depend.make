# Empty compiler generated dependencies file for tagcloud_explorer.
# This may be replaced when dependencies are built.
