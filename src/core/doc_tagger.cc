#include "core/doc_tagger.h"

#include <algorithm>
#include <cmath>

#include "core/metadata_store.h"
#include "ml/linear_svm.h"

namespace p2pdt {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

DocTagger::DocTagger(DocTaggerOptions options)
    : options_(std::move(options)), preprocessor_(options_.preprocessor) {}

DocId DocTagger::AddDocument(std::string title, std::string text) {
  Document doc;
  doc.id = documents_.size();
  doc.title = std::move(title);
  doc.vector = preprocessor_.Process(text);
  doc.text = std::move(text);
  documents_.push_back(std::move(doc));
  return documents_.back().id;
}

Result<const Document*> DocTagger::GetDocument(DocId id) const {
  if (id >= documents_.size()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  return &documents_[id];
}

std::vector<DocId> DocTagger::UntaggedDocuments() const {
  std::vector<DocId> out;
  for (const Document& doc : documents_) {
    if (doc.tags.empty()) out.push_back(doc.id);
  }
  return out;
}

TagId DocTagger::RegisterTag(const std::string& name) {
  auto it = tag_ids_.find(name);
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.push_back(name);
  tag_ids_.emplace(name, id);
  return id;
}

void DocTagger::SetTags(Document& doc, std::vector<TagAssignment> tags) {
  doc.tags = std::move(tags);
  library_.Index(doc);
}

Status DocTagger::ManualTag(DocId id,
                            const std::vector<std::string>& tags) {
  if (id >= documents_.size()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  if (tags.empty()) {
    return Status::InvalidArgument("manual tagging needs at least one tag");
  }
  std::vector<TagAssignment> assignments;
  assignments.reserve(tags.size());
  for (const std::string& tag : tags) {
    if (tag.empty()) {
      return Status::InvalidArgument("empty tag name");
    }
    RegisterTag(tag);
    assignments.push_back({tag, TagSource::kManual, 1.0});
  }
  SetTags(documents_[id], std::move(assignments));
  return Status::OK();
}

Status DocTagger::TrainLocal() {
  MultiLabelDataset data(static_cast<TagId>(tag_names_.size()));
  for (const Document& doc : documents_) {
    if (doc.tags.empty()) continue;
    MultiLabelExample ex;
    ex.x = doc.vector;
    for (const TagAssignment& a : doc.tags) {
      auto it = tag_ids_.find(a.tag);
      if (it != tag_ids_.end()) ex.tags.push_back(it->second);
    }
    if (!ex.tags.empty()) data.Add(std::move(ex));
  }
  if (data.empty()) {
    return Status::FailedPrecondition(
        "no tagged documents to train on — manually tag some first");
  }
  data.set_num_tags(static_cast<TagId>(tag_names_.size()));

  LinearSvmOptions svm = options_.svm;
  BinaryTrainer trainer =
      [svm](const std::vector<Example>& examples)
      -> Result<std::unique_ptr<BinaryClassifier>> {
    Result<LinearSvmModel> model = TrainLinearSvm(examples, svm);
    if (!model.ok()) return model.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(model).value()));
  };
  Result<OneVsAllModel> model = TrainOneVsAll(data, trainer);
  if (!model.ok()) return model.status();
  local_model_ = std::move(model).value();
  has_local_model_ = true;
  return Status::OK();
}

void DocTagger::AttachGlobalScorer(GlobalScorer scorer,
                                   const std::vector<std::string>& tag_names) {
  global_scorer_ = std::move(scorer);
  global_tag_map_.clear();
  global_tag_map_.reserve(tag_names.size());
  for (const std::string& name : tag_names) {
    global_tag_map_.push_back(RegisterTag(name));
  }
}

std::vector<double> DocTagger::ScoreVector(const SparseVector& x) const {
  const std::size_t n = tag_names_.size();
  std::vector<double> local(n, 0.0), global(n, 0.0);
  std::vector<bool> has_local(n, false), has_global(n, false);

  if (has_local_model_) {
    std::vector<double> scores = local_model_.Scores(x);
    for (std::size_t t = 0; t < scores.size() && t < n; ++t) {
      if (std::isfinite(scores[t])) {
        local[t] = scores[t];
        has_local[t] = true;
      }
    }
  }
  if (global_scorer_) {
    std::vector<double> scores = global_scorer_(x);
    for (std::size_t i = 0; i < scores.size() && i < global_tag_map_.size();
         ++i) {
      TagId t = global_tag_map_[i];
      if (std::isfinite(scores[i])) {
        global[t] = scores[i];
        has_global[t] = true;
      }
    }
  }

  std::vector<double> combined(n, -1.0);  // default: confidently negative
  for (std::size_t t = 0; t < n; ++t) {
    if (has_local[t] && has_global[t]) {
      combined[t] = options_.global_weight * global[t] +
                    (1.0 - options_.global_weight) * local[t];
    } else if (has_global[t]) {
      combined[t] = global[t];
    } else if (has_local[t]) {
      combined[t] = local[t];
    }
  }
  return combined;
}

Result<std::vector<TagSuggestion>> DocTagger::SuggestTags(
    DocId id, double min_confidence) const {
  if (id >= documents_.size()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  if (!has_local_model_ && !global_scorer_) {
    return Status::FailedPrecondition(
        "no model available — call TrainLocal() or AttachGlobalScorer()");
  }
  std::vector<double> scores = ScoreVector(documents_[id].vector);
  std::vector<TagSuggestion> out;
  for (std::size_t t = 0; t < scores.size(); ++t) {
    double confidence = Sigmoid(scores[t]);
    if (confidence >= min_confidence) {
      out.push_back({tag_names_[t], confidence});
    }
  }
  // Alphabetical, as the demo's Suggestion Cloud displays them.
  std::sort(out.begin(), out.end(),
            [](const TagSuggestion& a, const TagSuggestion& b) {
              return a.tag < b.tag;
            });
  return out;
}

Result<std::vector<std::string>> DocTagger::AutoTag(DocId id) {
  if (id >= documents_.size()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  if (!has_local_model_ && !global_scorer_) {
    return Status::FailedPrecondition(
        "no model available — call TrainLocal() or AttachGlobalScorer()");
  }
  Document& doc = documents_[id];
  std::vector<double> scores = ScoreVector(doc.vector);
  std::vector<TagId> decided = DecideTags(scores, options_.policy);

  // Keep manual tags; replace previous auto tags.
  std::vector<TagAssignment> next;
  for (const TagAssignment& a : doc.tags) {
    if (a.source == TagSource::kManual) next.push_back(a);
  }
  std::vector<std::string> assigned;
  for (TagId t : decided) {
    const std::string& name = tag_names_[t];
    bool already = false;
    for (const TagAssignment& a : next) {
      if (a.tag == name) {
        already = true;
        break;
      }
    }
    if (already) continue;
    next.push_back({name, TagSource::kAuto, Sigmoid(scores[t])});
    assigned.push_back(name);
  }
  SetTags(doc, std::move(next));
  return assigned;
}

Result<std::size_t> DocTagger::AutoTagAll() {
  std::size_t tagged = 0;
  for (DocId id : UntaggedDocuments()) {
    Result<std::vector<std::string>> r = AutoTag(id);
    if (!r.ok()) return r.status();
    if (!r.value().empty()) ++tagged;
  }
  return tagged;
}

Status DocTagger::Refine(DocId id,
                         const std::vector<std::string>& corrected_tags) {
  if (id >= documents_.size()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  Document& doc = documents_[id];

  std::vector<TagId> predicted;
  for (const TagAssignment& a : doc.tags) {
    auto it = tag_ids_.find(a.tag);
    if (it != tag_ids_.end()) predicted.push_back(it->second);
  }
  std::sort(predicted.begin(), predicted.end());

  std::vector<TagId> corrected;
  std::vector<TagAssignment> assignments;
  for (const std::string& tag : corrected_tags) {
    if (tag.empty()) return Status::InvalidArgument("empty tag name");
    corrected.push_back(RegisterTag(tag));
    assignments.push_back({tag, TagSource::kManual, 1.0});
  }
  std::sort(corrected.begin(), corrected.end());
  corrected.erase(std::unique(corrected.begin(), corrected.end()),
                  corrected.end());

  // Online model update (only linear per-tag models are adjustable; tags
  // that appeared for the first time in this correction have no model yet
  // and will be learned at the next TrainLocal()).
  if (has_local_model_) {
    p2pdt::RefineTags(local_model_, doc.vector, predicted, corrected,
                      options_.refinement);
  }
  SetTags(doc, std::move(assignments));
  return Status::OK();
}

TagCloud DocTagger::BuildTagCloud(TagCloud::Options options) const {
  return TagCloud::Build(library_, options);
}

Result<std::size_t> DocTagger::SaveMetadata(
    const std::string& directory) const {
  MetadataStore store(directory);
  std::size_t saved = 0;
  for (const Document& doc : documents_) {
    if (doc.tags.empty()) continue;
    P2PDT_RETURN_IF_ERROR(store.Save(doc));
    ++saved;
  }
  return saved;
}

Result<std::size_t> DocTagger::LoadMetadata(const std::string& directory) {
  MetadataStore store(directory);
  Result<std::vector<DocId>> ids = store.ListDocuments();
  if (!ids.ok()) return ids.status();
  std::size_t restored = 0;
  for (DocId id : ids.value()) {
    if (id >= documents_.size()) continue;  // sidecar for an unknown doc
    Result<std::vector<TagAssignment>> tags = store.Load(id);
    if (!tags.ok()) return tags.status();
    for (const TagAssignment& a : tags.value()) RegisterTag(a.tag);
    SetTags(documents_[id], std::move(tags).value());
    ++restored;
  }
  return restored;
}

}  // namespace p2pdt
