#ifndef P2PDT_ML_KERNEL_H_
#define P2PDT_ML_KERNEL_H_

#include <cmath>
#include <string>

#include "common/cost_ledger.h"
#include "common/sparse_vector.h"

namespace p2pdt {

/// Kernel family for the non-linear SVM (CEMPaR's base learner).
enum class KernelType {
  kLinear,
  kRbf,
  kPolynomial,
};

/// A kernel function K(a, b) with its parameters.
struct Kernel {
  KernelType type = KernelType::kRbf;
  /// RBF: exp(-gamma ||a-b||²); polynomial: (gamma a·b + coef0)^degree.
  double gamma = 1.0;
  double coef0 = 0.0;
  int degree = 3;

  double operator()(const SparseVector& a, const SparseVector& b) const {
    if (CostLedger::enabled()) ++CostLedger::Tls().kernel_evals;
    switch (type) {
      case KernelType::kLinear:
        return a.Dot(b);
      case KernelType::kRbf:
        return std::exp(-gamma * a.SquaredDistance(b));
      case KernelType::kPolynomial: {
        double base = gamma * a.Dot(b) + coef0;
        double out = 1.0;
        for (int i = 0; i < degree; ++i) out *= base;
        return out;
      }
    }
    return 0.0;
  }

  static Kernel Linear() { return {KernelType::kLinear, 0.0, 0.0, 0}; }
  static Kernel Rbf(double gamma) { return {KernelType::kRbf, gamma, 0.0, 0}; }
  static Kernel Polynomial(double gamma, double coef0, int degree) {
    return {KernelType::kPolynomial, gamma, coef0, degree};
  }

  std::string ToString() const;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_KERNEL_H_
