#ifndef P2PDT_ML_KMEANS_H_
#define P2PDT_ML_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/sparse_vector.h"

namespace p2pdt {

struct KMeansOptions {
  /// Number of clusters requested; clamped down to the number of points.
  std::size_t k = 8;
  int max_iterations = 50;
  /// Stop early when no assignment changes between iterations.
  bool early_stop = true;
  uint64_t seed = 1;
  /// Threads for the assignment step on large inputs (0 = global
  /// P2PDT_THREADS setting, 1 = serial). Per-point assignments are
  /// independent, so results are bit-identical for every value; centroid
  /// recomputation stays serial to keep floating-point summation order
  /// fixed.
  std::size_t num_threads = 0;
};

/// Result of a k-means run: cluster centroids (sparse, in the global
/// feature space) and per-point assignments.
struct KMeansResult {
  std::vector<SparseVector> centroids;
  std::vector<std::size_t> assignment;
  double inertia = 0.0;  // sum of squared distances to assigned centroids
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding over sparse vectors.
///
/// PACE clusters each peer's local training data and broadcasts the
/// centroids next to the linear model; receivers use the centroids to index
/// models for locality-sensitive retrieval (paper Sec. 2).
Result<KMeansResult> KMeansCluster(const std::vector<SparseVector>& points,
                                   const KMeansOptions& options = {});

}  // namespace p2pdt

#endif  // P2PDT_ML_KMEANS_H_
