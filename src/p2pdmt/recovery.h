#ifndef P2PDT_P2PDMT_RECOVERY_H_
#define P2PDT_P2PDMT_RECOVERY_H_

#include <string>

#include "common/checkpoint.h"
#include "common/status.h"
#include "p2pml/p2p_classifier.h"
#include "p2psim/churn.h"
#include "p2psim/network.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Knobs of the durable-peer-state layer an experiment can enable.
struct RecoveryOptions {
  /// Master switch: wire peer-state durability through churn transitions.
  bool enabled = false;
  /// Restore from checkpoints on rejoin. false = every rejoin is cold —
  /// the comparison baseline the churn sweep measures warm rejoin against.
  bool warm_rejoin = true;
  /// Directory for checkpoint files. Empty = the experiment creates (and
  /// removes) a unique scratch directory under the system temp dir.
  std::string checkpoint_dir;
  /// Simulated seconds to load + validate a peer's checkpoints on a warm
  /// rejoin (disk read, CRC check, deserialization).
  double warm_restore_latency_sec = 0.25;
  /// Simulated seconds per training example refit on a cold rejoin; the
  /// dominant term of cold-start latency.
  double cold_retrain_latency_per_example_sec = 0.02;
  /// Run one anti-entropy round (CEMPaR RepairRound / PACE bundle repair)
  /// after the peer's state is back, to catch up regional/replicated state.
  bool resync_after_rejoin = true;
  /// Refresh the peer's checkpoint after a cold retrain, so its *next*
  /// rejoin can be warm. Only meaningful with warm_rejoin.
  bool recheckpoint_after_cold_restart = true;
};

/// What the recovery layer did over a run.
struct RecoveryStats {
  uint64_t snapshots_written = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t warm_rejoins = 0;
  uint64_t cold_rejoins = 0;
  /// Checkpoints rejected by the integrity check (torn/corrupted file);
  /// each one degraded to a cold restart instead of a crash or a silently
  /// wrong model.
  uint64_t corrupt_checkpoints = 0;
  /// Training examples refit across all cold restarts — the retrain work
  /// warm rejoin avoids.
  uint64_t retrain_examples = 0;
  /// Simulated seconds peers spent unavailable-while-recovering, summed
  /// and worst-case.
  double total_rejoin_latency_sec = 0.0;
  double max_rejoin_latency_sec = 0.0;
  uint64_t resync_rounds = 0;

  double mean_rejoin_latency_sec() const {
    uint64_t n = warm_rejoins + cold_rejoins;
    return n == 0 ? 0.0 : total_rejoin_latency_sec / static_cast<double>(n);
  }
};

/// Wires a P2P classifier's durability hooks (Snapshot/Restore/EvictPeer/
/// ColdRestart/ResyncPeer) through churn transitions:
///
///  - on failure, the peer's volatile state is evicted — a crash destroys
///    RAM, never the checkpoint on disk;
///  - on rejoin, the coordinator warm-restores from the peer's checkpoint
///    when one exists and validates (CRC + version), otherwise cold-starts
///    by retraining from the peer's retained data; either way one
///    anti-entropy round follows so regional/replicated state catches up;
///  - every rejoin is classified warm/cold on the ChurnDriver's counters
///    and charged a simulated recovery latency.
///
/// Attach() is called after training quiesces (there is nothing worth
/// checkpointing before), typically right after CheckpointAll().
class RecoveryCoordinator {
 public:
  RecoveryCoordinator(Simulator& sim, PhysicalNetwork& net,
                      ChurnDriver& churn, P2PClassifier& classifier,
                      CheckpointManager& checkpoints,
                      RecoveryOptions options);

  /// Registers the churn transition listener. Idempotent.
  void Attach();

  /// Snapshots every online peer to the checkpoint store (called once
  /// training completes — the moment peers first have state worth keeping).
  Status CheckpointAll();

  /// Snapshots one peer (also used to refresh after a cold restart).
  Status CheckpointPeer(NodeId peer);

  const RecoveryStats& stats() const { return stats_; }

  /// Checkpoint key for a peer — stable across runs so a successor process
  /// can warm-start from a predecessor's directory.
  static std::string KeyFor(NodeId peer);

 private:
  void OnTransition(NodeId node, bool online);
  void HandleRejoin(NodeId node);

  Simulator& sim_;
  PhysicalNetwork& net_;
  ChurnDriver& churn_;
  P2PClassifier& classifier_;
  CheckpointManager& checkpoints_;
  RecoveryOptions options_;
  RecoveryStats stats_;
  bool attached_ = false;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_RECOVERY_H_
