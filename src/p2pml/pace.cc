#include "p2pml/pace.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/serialization.h"
#include "p2psim/sharding.h"

namespace p2pdt {

namespace {

/// Version byte of the PACE peer-snapshot layout (the checkpoint envelope
/// already guards integrity; this guards format evolution).
constexpr uint8_t kPaceSnapshotVersion = 1;

/// Per-phase latency family; resolved once per call site so recording
/// stays lock-free (see MetricsRegistry).
Histogram* PhaseHistogram(MetricsRegistry* metrics, const char* phase) {
  if (metrics == nullptr) return nullptr;
  return &metrics->GetHistogram(
      "phase_seconds", {{"classifier", "pace"}, {"phase", phase}});
}

}  // namespace

Pace::Pace(Simulator& sim, PhysicalNetwork& net, Overlay& overlay,
           PaceOptions options)
    : sim_(sim), net_(net), overlay_(overlay), options_(options) {
  if (options_.reliable_dissemination) {
    transport_ =
        std::make_unique<ReliableTransport>(sim_, net_, options_.transport);
  }
  if (options_.serve.enabled) {
    serve_ = std::make_unique<ServeQueueSet>(options_.serve);
  }
  if (options_.predict_cache.enabled) {
    cache_ = std::make_unique<PredictCacheSet>(options_.predict_cache);
  }
}

Status Pace::Setup(std::vector<MultiLabelDataset> peer_data, TagId num_tags) {
  std::vector<DatasetShard> shards;
  shards.reserve(peer_data.size());
  for (MultiLabelDataset& data : peer_data) {
    shards.push_back(DatasetShard::Own(std::move(data)));
  }
  return SetupShards(std::move(shards), num_tags);
}

Status Pace::SetupShards(std::vector<DatasetShard> peer_data, TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  models_.assign(peer_data_.size(), {});
  contributors_.clear();
  contributor_rank_.assign(peer_data_.size(), kNoRank);
  for (NodeId p = 0; p < peer_data_.size(); ++p) {
    if (peer_data_[p].empty()) continue;
    contributor_rank_[p] = static_cast<uint32_t>(contributors_.size());
    contributors_.push_back(p);
  }
  received_.assign(peer_data_.size(),
                   std::vector<bool>(contributors_.size(), false));
  received_version_.assign(peer_data_.size(), {});
  index_ = std::make_unique<CosineLsh>(options_.lsh);
  index_items_.clear();
  trained_ = false;
  bundle_verdict_.assign(peer_data_.size(), -1);
  predict_count_.assign(peer_data_.size(), 0);
  models_rejected_ = 0;
  votes_discarded_ = 0;
  reputation_.reset();
  if (options_.reputation.enabled) {
    reputation_ = std::make_unique<ReputationManager>(options_.reputation,
                                                      net_.metrics(), "pace");
    reputation_->Reset(peer_data_.size());
    // Holdouts are subsamples of (not carve-outs from) the local data, so
    // trained models are unchanged by enabling reputation.
    for (NodeId p = 0; p < peer_data_.size(); ++p) {
      reputation_->SetHoldout(p, peer_data_[p]);
    }
  }
  return Status::OK();
}

void Pace::TrainLocal(NodeId peer) {
  const DatasetShard& data = peer_data_[peer];
  PeerModel& pm = models_[peer];
  bundle_verdict_[peer] = -1;  // any cached sanitation verdict is stale now

  // Scripted adversary check: a pure read of the installed directory (none
  // installed = every peer honest at zero cost). Runs on pool workers while
  // the driver blocks in ParallelFor, so reading sim_.Now() is safe.
  const AdversaryDirectory* adversaries = net_.adversaries();
  const AdversaryBehavior behavior =
      adversaries == nullptr ? AdversaryBehavior::kHonest
                             : adversaries->BehaviorAt(peer, sim_.Now());

  if (behavior == AdversaryBehavior::kGarbageModel) {
    // No training at all: publish NaN/inf/absurd weight vectors with a
    // perfect self-reported accuracy, the classic poisoned-upload shape.
    // Corruption bytes come from a local Rng (per-node derived seed), so
    // the shared fault stream is untouched.
    Rng crng(adversaries->CorruptionSeed(peer));
    OneVsAllModel garbage;
    for (TagId t = 0; t < num_tags_; ++t) {
      std::vector<SparseVector::Entry> entries;
      for (int i = 0; i < 8; ++i) {
        double v = i % 3 == 0   ? std::numeric_limits<double>::quiet_NaN()
                   : i % 3 == 1 ? std::numeric_limits<double>::infinity()
                                : 1.0e30;
        entries.emplace_back(static_cast<uint32_t>(crng.NextU64(4096)), v);
      }
      garbage.SetModel(t, std::make_unique<LinearSvmModel>(
                              SparseVector::FromPairs(std::move(entries)),
                              std::numeric_limits<double>::quiet_NaN()));
    }
    pm.model = std::move(garbage);
    pm.tag_accuracy.assign(num_tags_, 1.0);
    pm.tag_informed.assign(num_tags_, true);
    // Centroids stay finite (huge, not NaN) so index insertion is
    // well-defined; the poison is in the weights.
    pm.centroids.clear();
    for (int c = 0; c < 2; ++c) {
      pm.centroids.push_back(SparseVector::FromPairs(
          {{static_cast<uint32_t>(crng.NextU64(4096)), 1.0e30},
           {static_cast<uint32_t>(crng.NextU64(4096)), -1.0e30}}));
    }
    pm.wire_size = pm.model.WireSize() + 8 * num_tags_;
    for (const auto& c : pm.centroids) pm.wire_size += c.WireSize();
    pm.valid = true;
    return;
  }

  const bool flip = behavior == AdversaryBehavior::kLabelFlip;

  if (behavior == AdversaryBehavior::kVoteSpam) {
    // A "model" whose every decision is a huge positive constant: it claims
    // every tag for every document, loudly enough to drown honest votes in
    // the weighted mean. Magnitude-bound sanitation is the counter.
    OneVsAllModel spam;
    for (TagId t = 0; t < num_tags_; ++t) {
      spam.SetModel(t, std::make_unique<LinearSvmModel>(SparseVector(), 1e9));
    }
    pm.model = std::move(spam);
    pm.tag_accuracy.assign(num_tags_, 1.0);
    pm.tag_informed.assign(num_tags_, true);
  } else {
    // Per-(peer, tag) RNG streams: every binary subproblem draws its
    // coordinate permutations from a seed derived from data identity, so the
    // trained model is the same no matter which thread (or how many) ran it.
    IndexedBinaryTrainer trainer =
        [this, peer, flip](const std::vector<Example>& examples, TagId tag)
        -> Result<std::unique_ptr<BinaryClassifier>> {
      LinearSvmOptions svm_opts = options_.svm;
      svm_opts.seed = DeriveSeed(options_.svm.seed, peer, tag);
      std::vector<Example> flipped;
      if (flip) {
        // Label-flip adversary: the model is genuinely trained — just on
        // negated labels, which makes it anti-correlated with the truth.
        flipped = examples;
        for (Example& ex : flipped) ex.y = -ex.y;
      }
      Result<LinearSvmModel> model =
          TrainLinearSvm(flip ? flipped : examples, svm_opts);
      if (!model.ok()) return model.status();
      return std::unique_ptr<BinaryClassifier>(
          std::make_unique<LinearSvmModel>(std::move(model).value()));
    };

    // Pad to the global tag universe so every peer's model is addressable by
    // any tag id. Copying the shard copies only its index vector, never the
    // documents.
    DatasetShard padded = data;
    padded.set_num_tags(num_tags_);
    OneVsAllTrainOptions ova;
    ova.num_threads = options_.num_threads;
    Result<OneVsAllModel> model = TrainOneVsAll(padded, trainer, ova);
    if (!model.ok()) {
      P2PDT_LOG(Warning) << "peer " << peer
                         << " PACE local training failed: "
                         << model.status().ToString();
      return;
    }
    pm.model = std::move(model).value();

    // Per-tag training accuracy: the vote weight the ensemble uses. The
    // flip adversary measures against its own flipped truth, so it reports
    // a high, plausible-looking accuracy.
    pm.tag_accuracy.assign(num_tags_, 0.0);
    pm.tag_informed.assign(num_tags_, false);
    std::vector<std::size_t> counts = padded.TagCounts();
    for (TagId t = 0; t < num_tags_; ++t) {
      pm.tag_informed[t] = t < counts.size() && counts[t] > 0;
      std::size_t correct = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        const MultiLabelExample& ex = data[i];
        const BinaryClassifier* m = pm.model.model(t);
        if (m == nullptr) continue;
        bool predicted = m->Decision(ex.x) > 0.0;
        bool truth = ex.HasTag(t);
        if (flip) truth = !truth;
        if (predicted == truth) ++correct;
      }
      pm.tag_accuracy[t] = data.empty()
                               ? 0.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(data.size());
    }
    if (behavior == AdversaryBehavior::kAccuracyInflate) {
      // Honest model, dishonest résumé: perfect accuracy on every tag,
      // competence claimed even on tags the peer has never seen.
      pm.tag_accuracy.assign(num_tags_, 1.0);
      pm.tag_informed.assign(num_tags_, true);
    }
  }

  // Cluster local data; centroids describe where this model is competent.
  std::vector<SparseVector> points;
  points.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) points.push_back(data[i].x);
  KMeansOptions km = options_.clustering;
  km.seed = DeriveSeed(options_.clustering.seed, peer);
  km.num_threads = options_.num_threads;
  Result<KMeansResult> clusters = KMeansCluster(points, km);
  if (!clusters.ok()) {
    P2PDT_LOG(Warning) << "peer " << peer << " PACE clustering failed: "
                       << clusters.status().ToString();
    return;
  }
  pm.centroids = std::move(clusters.value().centroids);

  if (behavior == AdversaryBehavior::kDimensionMismatch) {
    // Truncated upload: per-tag vectors shorter than the corpus tag count,
    // plus a centroid with a feature id far outside the lexicon.
    TagId half = num_tags_ > 1 ? num_tags_ / 2 : 1;
    OneVsAllModel truncated;
    for (TagId t = 0; t < half; ++t) {
      const BinaryClassifier* m = pm.model.model(t);
      truncated.SetModel(t, m != nullptr ? m->Clone() : nullptr);
    }
    pm.model = std::move(truncated);
    pm.tag_accuracy.resize(half);
    pm.tag_informed.resize(half);
    pm.centroids.push_back(SparseVector::FromPairs({{1u << 30, 1.0}}));
  }

  pm.wire_size = pm.model.WireSize() + 8 * num_tags_;
  for (const auto& c : pm.centroids) pm.wire_size += c.WireSize();
  pm.valid = true;
}

ModelRejectReason Pace::BundleVerdict(NodeId contributor) {
  int8_t memo = bundle_verdict_[contributor];
  if (memo >= 0) return static_cast<ModelRejectReason>(memo);
  const PeerModel& pm = models_[contributor];
  ModelRejectReason r = SanitizeOneVsAll(pm.model, num_tags_, options_.sanitize);
  if (r == ModelRejectReason::kNone) {
    r = SanitizeCentroids(pm.centroids, options_.sanitize);
  }
  if (r == ModelRejectReason::kNone &&
      (pm.tag_accuracy.size() != num_tags_ ||
       pm.tag_informed.size() != num_tags_)) {
    r = ModelRejectReason::kTagMismatch;
  }
  bundle_verdict_[contributor] = static_cast<int8_t>(r);
  return r;
}

void Pace::RecordRejected(ModelRejectReason reason) {
  ++models_rejected_;
  if (MetricsRegistry* metrics = net_.metrics()) {
    metrics
        ->GetCounter("models_rejected",
                     {{"classifier", "pace"},
                      {"reason", ModelRejectReasonToString(reason)}})
        .Increment();
  }
}

void Pace::AcceptBundle(NodeId receiver, NodeId contributor) {
  if (receiver >= received_.size() || contributor >= models_.size()) return;
  const uint32_t rank = contributor_rank_[contributor];
  if (rank == kNoRank) return;  // no data at setup => nothing to publish
  PeerModel& pm = models_[contributor];
  if (!pm.valid) return;
  // Unconditional trust-hole fix: self-reported accuracy is clamped to
  // [0, 1] (NaN -> 0) the moment a bundle arrives, reputation or not.
  // Identity for honest values, idempotent across repeat deliveries.
  for (double& a : pm.tag_accuracy) a = ClampAccuracy(a);
  if (options_.sanitize.enabled) {
    ModelRejectReason reason = BundleVerdict(contributor);
    if (reason != ModelRejectReason::kNone) {
      RecordRejected(reason);
      return;  // refused: the bundle never becomes visible to this receiver
    }
  }
  if (reputation_ != nullptr && receiver != contributor) {
    double score =
        reputation_->ScoreOneVsAll(receiver, pm.model, &pm.tag_informed);
    if (score >= 0.0) reputation_->Observe(receiver, contributor, score);
    if (reputation_->IsQuarantined(receiver, contributor)) {
      RecordRejected(ModelRejectReason::kDistrusted);
      return;
    }
  }
  received_[receiver][rank] = true;
  // Monotonic version stamp: a late delivery of a superseded bundle can
  // never downgrade a receiver that already ingested the fresh one.
  if (pm.version > HeldVersion(receiver, rank)) {
    SetHeldVersion(receiver, rank, pm.version);
  }
  // The receiver's visible ensemble changed: cached predictions computed
  // without this bundle are now stale.
  BumpPublishEpoch();
}

void Pace::ProbeQuarantined(NodeId requester) {
  // Re-score only quarantined contributors: re-admits any that retrained
  // honestly (trust climbs past readmit_threshold) and keeps decaying ones
  // out. Honest runs have no quarantined pairs, so this is a strict no-op
  // there — the bit-identical-baseline requirement.
  for (NodeId p : contributors_) {
    if (p == requester || !models_[p].valid) continue;
    if (!reputation_->IsQuarantined(requester, p)) continue;
    if (options_.sanitize.enabled &&
        BundleVerdict(p) != ModelRejectReason::kNone) {
      continue;  // still malformed; nothing to re-evaluate
    }
    double score = reputation_->ScoreOneVsAll(requester, models_[p].model,
                                              &models_[p].tag_informed);
    if (score < 0.0) continue;
    reputation_->Observe(requester, p, score);
    if (!reputation_->IsQuarantined(requester, p)) {
      // Re-admitted: re-ingest the retained bundle copy (current version).
      const uint32_t rank = contributor_rank_[p];
      received_[requester][rank] = true;
      if (models_[p].version > HeldVersion(requester, rank)) {
        SetHeldVersion(requester, rank, models_[p].version);
      }
    }
  }
}

DefenseStats Pace::defense_stats() const {
  DefenseStats s;
  s.models_rejected = models_rejected_;
  s.votes_discarded = votes_discarded_;
  if (reputation_ != nullptr) {
    s.quarantined = reputation_->num_quarantined();
    s.trust_observations = reputation_->observations();
  }
  return s;
}

void Pace::Train(std::function<void(Status)> on_complete) {
  // Local phase: models, accuracies, centroids. Pure compute — no
  // simulator or network calls — so it fans out across peers on the
  // thread pool; each task writes only its own models_[peer] slot.
  // Everything that touches sim_/net_/overlay_ stays below, on the
  // driver thread.
  std::vector<NodeId> training_peers;
  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    training_peers.push_back(peer);
  }
  // Resolved on the driver thread; workers record wall time per peer
  // lock-free (null when metrics are disabled).
  Histogram* train_hist = PhaseHistogram(net_.metrics(), "local_train");
  ShardPlanOptions plan;
  plan.shards = options_.sim_shards;
  plan.num_threads = options_.num_threads;
  plan.seed = options_.svm.seed;
  ShardedPhase(training_peers.size(), plan,
               [&](std::size_t i, Rng&) -> UniqueFunction {
                 PhaseScope profile("local_train");
                 Stopwatch peer_wall;
                 TrainLocal(training_peers[i]);
                 if (train_hist != nullptr) {
                   train_hist->Observe(peer_wall.ElapsedSeconds());
                 }
                 return {};  // all protocol traffic is issued below
               });

  // Build the shared LSH index over all contributed centroids.
  Stopwatch index_wall;
  {
    PhaseScope profile("lsh_index");
    for (NodeId peer = 0; peer < models_.size(); ++peer) {
      if (!models_[peer].valid) continue;
      for (std::size_t c = 0; c < models_[peer].centroids.size(); ++c) {
        index_->Insert(index_items_.size(), models_[peer].centroids[c]);
        index_items_.push_back({peer, c, models_[peer].version});
      }
    }
  }
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "lsh_index")) {
    hist->Observe(index_wall.ElapsedSeconds());
  }

  // Dissemination phase: every contributor broadcasts its bundle; each
  // delivery marks visibility at the receiver. Everyone trivially "has"
  // its own model. With reliable dissemination on, the broadcast stays
  // best-effort and the repair passes afterwards close the gaps.
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    repair_rounds_run_ = 0;
    if (transport_ != nullptr) {
      RepairRound(0, std::move(on_complete));
      return;
    }
    trained_ = true;
    on_complete(Status::OK());
  };

  // Broadcasts launch in contributor order through a sliding window: each
  // completion launches the next contributor. With the window unlimited
  // (the default) every broadcast is issued back-to-back before any event
  // runs — byte-for-byte the legacy schedule; a finite window only bounds
  // how many dissemination trees the event queue materializes at once,
  // which is what keeps the 100k-peer run inside memory.
  Histogram* bcast_hist = PhaseHistogram(net_.metrics(), "model_broadcast");
  struct BroadcastWindow {
    std::vector<NodeId> order;
    std::size_t next = 0;
  };
  auto window = std::make_shared<BroadcastWindow>();
  for (NodeId peer : contributors_) {
    if (!models_[peer].valid) continue;
    window->order.push_back(peer);
    ++*pending;
  }
  auto launch = std::make_shared<std::function<void()>>();
  // The launcher holds only a weak self-reference (no shared_ptr cycle);
  // each in-flight completion callback keeps it alive via `self`.
  std::weak_ptr<std::function<void()>> weak_launch = launch;
  *launch = [this, window, weak_launch, barrier, bcast_hist] {
    if (window->next >= window->order.size()) return;
    const NodeId peer = window->order[window->next++];
    AcceptBundle(peer, peer);  // self-ingest passes the same sanitation gate
    const SimTime bcast_started = sim_.Now();
    std::shared_ptr<std::function<void()>> self = weak_launch.lock();
    overlay_.Broadcast(
        peer, models_[peer].wire_size, MessageType::kModelBroadcast,
        [this, peer](NodeId receiver) { AcceptBundle(receiver, peer); },
        [this, self, barrier, bcast_hist, bcast_started] {
          // Sim-time until this contributor's dissemination tree settled.
          if (bcast_hist != nullptr) {
            bcast_hist->Observe(sim_.Now() - bcast_started);
          }
          if (self != nullptr) (*self)();
          (*barrier)();
        });
  };
  const std::size_t in_flight = options_.max_concurrent_broadcasts == 0
                                    ? window->order.size()
                                    : options_.max_concurrent_broadcasts;
  for (std::size_t i = 0; i < in_flight && i < window->order.size(); ++i) {
    (*launch)();
  }
  (*barrier)();
}

void Pace::RepairRound(std::size_t round,
                       std::function<void(Status)> on_complete) {
  // Pairs still missing: contributor's bundle never reached the receiver.
  // Realistically receivers piggyback have-lists on gossip; the simulation
  // reads received_ directly and charges the full repair traffic.
  std::vector<std::pair<NodeId, NodeId>> missing;  // (contributor, receiver)
  for (NodeId p : contributors_) {
    if (!models_[p].valid) continue;
    for (NodeId q = 0; q < received_.size(); ++q) {
      // Holds is version-aware: a receiver stuck on a superseded bundle
      // counts as missing and gets the fresh one.
      if (q == p || Holds(q, p) || !net_.IsOnline(q)) continue;
      missing.emplace_back(p, q);
    }
  }
  if (missing.empty() || round >= options_.max_repair_rounds) {
    trained_ = true;
    on_complete(Status::OK());
    return;
  }
  ++repair_rounds_run_;

  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, round,
              on_complete = std::move(on_complete)]() mutable {
    if (--*pending > 0) return;
    RepairRound(round + 1, std::move(on_complete));
  };

  for (const auto& [p, q] : missing) {
    ++*pending;
    transport_->SendReliable(
        p, q, models_[p].wire_size, MessageType::kModelBroadcast,
        /*on_deliver=*/
        [this, p, q] { AcceptBundle(q, p); },
        /*on_acked=*/[barrier] { (*barrier)(); },
        /*on_give_up=*/[barrier] { (*barrier)(); });
  }
  (*barrier)();
}

void Pace::Predict(NodeId requester, const SparseVector& x,
                   std::function<void(P2PPrediction)> done) {
  if (!trained_ || requester >= peer_data_.size() ||
      !net_.IsOnline(requester)) {
    sim_.Schedule(0.0, [done = std::move(done)] {
      done({{}, {}, false});
    });
    return;
  }

  // Requester-side versioned cache: a hit answers instantly with zero
  // compute and zero queue pressure — how a flash crowd on a hot document
  // set is absorbed.
  uint64_t cache_key = 0;
  PredictionCache* cache = nullptr;
  if (cache_ != nullptr) {
    cache = &cache_->ForNode(requester);
    cache_key = FingerprintVector(x);
    CacheOutcome oc = CacheOutcome::kMiss;
    const P2PPrediction* hit =
        cache->Lookup(cache_key, publish_epoch_, sim_.Now(), &oc);
    if (MetricsRegistry* metrics = net_.metrics()) {
      const char* family = oc == CacheOutcome::kHit     ? "cache_hits"
                           : oc == CacheOutcome::kStale ? "cache_stale"
                                                        : "cache_misses";
      metrics->GetCounter(family, {{"classifier", "pace"}}).Increment();
    }
    if (hit != nullptr) {
      P2PPrediction out = *hit;
      out.cached = true;
      sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
        done(std::move(out));
      });
      return;
    }
  }

  // PACE serves locally, so the requester's own serving queue is the
  // bottleneck a burst saturates. Shed requests get the typed overloaded
  // reject without consuming any capacity.
  double serve_delay = 0.0;
  if (serve_ != nullptr) {
    Admission a = serve_->Admit(requester, sim_.Now());
    if (MetricsRegistry* metrics = net_.metrics()) {
      metrics->GetGauge("serve_queue_depth", {{"classifier", "pace"}})
          .Set(static_cast<double>(a.depth));
    }
    if (a.outcome != AdmitOutcome::kAccept) {
      if (MetricsRegistry* metrics = net_.metrics()) {
        metrics
            ->GetCounter("requests_shed",
                         {{"classifier", "pace"},
                          {"reason", AdmitOutcomeToString(a.outcome)}})
            .Increment();
      }
      P2PPrediction out;
      out.success = false;
      out.overloaded = true;
      sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
        done(std::move(out));
      });
      return;
    }
    serve_delay = a.delay;
  }

  Tracer* tracer = net_.tracer();
  TraceContext span;
  if (tracer != nullptr) {
    span = tracer->StartAuto("pace/predict", sim_.Now(), requester);
    tracer->AddArg(span, "requester", std::to_string(requester));
  }

  if (reputation_ != nullptr) {
    // Probation cadence: every Nth prediction this requester re-examines
    // its quarantined contributors (no-op when there are none).
    ++predict_count_[requester];
    if (options_.reputation.probation_interval > 0 &&
        predict_count_[requester] % options_.reputation.probation_interval ==
            0) {
      ProbeQuarantined(requester);
    }
    // Contributors that were accepted and later quarantined lose their
    // vote; count each exclusion per prediction served.
    for (NodeId p : contributors_) {
      if (received_[requester][contributor_rank_[p]] && models_[p].valid &&
          reputation_->IsQuarantined(requester, p)) {
        ++votes_discarded_;
        if (MetricsRegistry* metrics = net_.metrics()) {
          metrics->GetCounter("votes_discarded", {{"classifier", "pace"}})
              .Increment();
        }
      }
    }
  }
  auto eligible = [this, requester](NodeId peer) {
    if (!Holds(requester, peer) || !models_[peer].valid) return false;
    return reputation_ == nullptr ||
           !reputation_->IsQuarantined(requester, peer);
  };

  // Entirely local: retrieve candidate models via LSH (multi-probe until we
  // have enough), filter to models this peer actually received, rank by
  // true centroid distance, keep top-k.
  Stopwatch retrieve_wall;
  struct Scored {
    NodeId peer;
    double dist2;
  };
  std::vector<Scored> nearest;
  {
    PhaseScope profile("top_k_retrieve");
    std::vector<std::size_t> candidates =
        index_->QueryAtLeast(x, options_.top_k * 4);

    std::vector<double> best_dist(models_.size(),
                                  std::numeric_limits<double>::infinity());
    for (std::size_t item : candidates) {
      const IndexItem& entry = index_items_[item];
      const NodeId peer = entry.peer;
      if (!eligible(peer)) continue;
      // Entries of superseded bundle versions are dead — old-version
      // eviction at the index. Only the current version's centroids answer.
      if (entry.version != models_[peer].version) continue;
      // A restored bundle is expected to carry the indexed centroids, but a
      // stale index entry must degrade to "skip", never to an OOB read.
      if (entry.cidx >= models_[peer].centroids.size()) continue;
      double d = x.SquaredDistance(models_[peer].centroids[entry.cidx]);
      best_dist[peer] = std::min(best_dist[peer], d);
    }
    for (NodeId peer = 0; peer < models_.size(); ++peer) {
      if (std::isfinite(best_dist[peer])) {
        nearest.push_back({peer, best_dist[peer]});
      }
    }
    // LSH recall fallback: when collisions under-deliver, scan every
    // received model (correctness first; the LSH speedup is measured by the
    // ML benchmarks, not assumed).
    if (nearest.size() < options_.top_k) {
      nearest.clear();
      for (NodeId peer : contributors_) {
        if (!eligible(peer)) continue;
        double best = std::numeric_limits<double>::infinity();
        for (const auto& c : models_[peer].centroids) {
          best = std::min(best, x.SquaredDistance(c));
        }
        nearest.push_back({peer, best});
      }
    }
    std::sort(nearest.begin(), nearest.end(), [](const Scored& a,
                                                 const Scored& b) {
      return a.dist2 < b.dist2;
    });
    if (nearest.size() > options_.top_k) nearest.resize(options_.top_k);
  }
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "top_k_retrieve")) {
    hist->Observe(retrieve_wall.ElapsedSeconds());
  }

  P2PPrediction out;
  out.scores.assign(num_tags_, 0.0);
  if (nearest.empty()) {
    out.success = false;
    if (MetricsRegistry* metrics = net_.metrics()) {
      metrics
          ->GetCounter("predictions",
                       {{"classifier", "pace"}, {"outcome", "failed"}})
          .Increment();
    }
    if (tracer != nullptr) {
      tracer->AddArg(span, "success", "false");
      tracer->EndSpan(span, sim_.Now());
    }
    sim_.Schedule(serve_delay, [done = std::move(done), out = std::move(out)] {
      done(std::move(out));
    });
    return;
  }

  Stopwatch vote_wall;
  PhaseScope vote_profile("vote");
  std::vector<double> weight_sum(num_tags_, 0.0);
  for (const Scored& s : nearest) {
    const PeerModel& pm = models_[s.peer];
    double dist_w =
        1.0 / std::pow(1.0 + std::sqrt(s.dist2), options_.distance_exponent);
    // Suspect contributors (low but not quarantine-level trust) vote with
    // min(self-reported, observed) accuracy, scaled by trust — the
    // reputation-weighted replacement for PACE's self-reported weighting.
    // Never triggers for honest contributors, whose trust stays high.
    const bool suspect =
        reputation_ != nullptr && reputation_->IsSuspect(requester, s.peer);
    for (TagId t = 0; t < num_tags_; ++t) {
      const BinaryClassifier* m = pm.model.model(t);
      // Explicit bounds guards: a dimension-mismatch adversary ships per-tag
      // vectors shorter than num_tags_, which must degrade to "no vote",
      // never to an out-of-bounds read.
      if (m == nullptr || t >= pm.tag_informed.size() ||
          t >= pm.tag_accuracy.size() || !pm.tag_informed[t]) {
        continue;
      }
      double acc = ClampAccuracy(pm.tag_accuracy[t]);
      if (suspect) {
        acc = std::min(acc, reputation_->ObservedAccuracy(requester, s.peer));
      }
      double w =
          std::pow(std::max(acc, 1e-6), options_.accuracy_exponent) * dist_w;
      if (suspect) w *= reputation_->Trust(requester, s.peer);
      out.scores[t] += w * m->Decision(x);
      weight_sum[t] += w;
    }
  }
  for (TagId t = 0; t < num_tags_; ++t) {
    if (weight_sum[t] > 0.0) out.scores[t] /= weight_sum[t];
  }
  out.tags = DecideTags(out.scores, options_.policy);
  out.success = true;
  if (MetricsRegistry* metrics = net_.metrics()) {
    PhaseHistogram(metrics, "vote")->Observe(vote_wall.ElapsedSeconds());
    metrics
        ->GetCounter("predictions",
                     {{"classifier", "pace"}, {"outcome", "ok"}})
        .Increment();
  }
  if (tracer != nullptr) {
    tracer->AddArg(span, "voters", std::to_string(nearest.size()));
    tracer->AddArg(span, "success", "true");
    tracer->EndSpan(span, sim_.Now());
  }
  if (cache != nullptr) {
    cache->Insert(cache_key, publish_epoch_, sim_.Now(), out);
  }
  sim_.Schedule(serve_delay, [done = std::move(done), out = std::move(out)] {
    done(std::move(out));
  });
}

Result<std::string> Pace::Snapshot(NodeId peer) const {
  if (peer >= models_.size()) {
    return Status::InvalidArgument("snapshot of unknown peer " +
                                   std::to_string(peer));
  }
  const PeerModel& pm = models_[peer];
  std::string out;
  wire::PutU8(kPaceSnapshotVersion, out);
  wire::PutU32(num_tags_, out);
  wire::PutU32(static_cast<uint32_t>(models_.size()), out);
  wire::PutU8(pm.valid ? 1 : 0, out);
  if (pm.valid) {
    wire::PutBytes(SerializeOneVsAll(pm.model), out);
    wire::PutBytes(SerializeCentroids(pm.centroids), out);
    wire::PutU32(static_cast<uint32_t>(pm.tag_accuracy.size()), out);
    for (double a : pm.tag_accuracy) wire::PutDouble(a, out);
    wire::PutU32(static_cast<uint32_t>(pm.tag_informed.size()), out);
    for (bool b : pm.tag_informed) wire::PutU8(b ? 1 : 0, out);
    wire::PutU64(pm.wire_size, out);
  }
  // The receiver-side view: which contributors' bundles this peer holds.
  // Serialized as a full N-sized row (expanded from the rank-compressed
  // matrix) so the wire format is unchanged from the N×N layout.
  wire::PutU32(static_cast<uint32_t>(models_.size()), out);
  for (NodeId p = 0; p < models_.size(); ++p) {
    wire::PutU8(Holds(peer, p) ? 1 : 0, out);
  }
  return out;
}

Status Pace::Restore(NodeId peer, const std::string& blob) {
  if (peer >= models_.size()) {
    return Status::InvalidArgument("restore of unknown peer " +
                                   std::to_string(peer));
  }
  std::size_t offset = 0;
  Result<uint8_t> version = wire::GetU8(blob, offset);
  if (!version.ok()) return version.status();
  if (version.value() != kPaceSnapshotVersion) {
    return Status::InvalidArgument("unsupported pace snapshot version " +
                                   std::to_string(version.value()));
  }
  Result<uint32_t> num_tags = wire::GetU32(blob, offset);
  if (!num_tags.ok()) return num_tags.status();
  Result<uint32_t> num_peers = wire::GetU32(blob, offset);
  if (!num_peers.ok()) return num_peers.status();
  if (num_tags.value() != num_tags_ || num_peers.value() != models_.size()) {
    return Status::InvalidArgument(
        "pace snapshot was taken under a different configuration");
  }
  Result<uint8_t> valid = wire::GetU8(blob, offset);
  if (!valid.ok()) return valid.status();

  PeerModel restored;
  if (valid.value() != 0) {
    Result<std::string> model_bytes = wire::GetBytes(blob, offset);
    if (!model_bytes.ok()) return model_bytes.status();
    Result<OneVsAllModel> model = DeserializeOneVsAll(model_bytes.value());
    if (!model.ok()) return model.status();
    restored.model = std::move(model).value();
    Result<std::string> centroid_bytes = wire::GetBytes(blob, offset);
    if (!centroid_bytes.ok()) return centroid_bytes.status();
    Result<std::vector<SparseVector>> centroids =
        DeserializeCentroids(centroid_bytes.value());
    if (!centroids.ok()) return centroids.status();
    restored.centroids = std::move(centroids).value();
    Result<uint32_t> n_acc = wire::GetU32(blob, offset);
    if (!n_acc.ok()) return n_acc.status();
    // Bound attacker-controlled counts by the bytes that could back them
    // before reserving (8 bytes per accuracy, 1 per informed flag).
    if (static_cast<std::size_t>(n_acc.value()) > (blob.size() - offset) / 8) {
      return Status::DataLoss("pace snapshot accuracy count exceeds blob");
    }
    restored.tag_accuracy.reserve(n_acc.value());
    for (uint32_t i = 0; i < n_acc.value(); ++i) {
      Result<double> a = wire::GetDouble(blob, offset);
      if (!a.ok()) return a.status();
      // Checkpoints are an ingestion point too: the accuracy clamp applies
      // on restore exactly as it does at bundle receipt.
      restored.tag_accuracy.push_back(ClampAccuracy(a.value()));
    }
    Result<uint32_t> n_inf = wire::GetU32(blob, offset);
    if (!n_inf.ok()) return n_inf.status();
    if (static_cast<std::size_t>(n_inf.value()) > blob.size() - offset) {
      return Status::DataLoss("pace snapshot informed count exceeds blob");
    }
    restored.tag_informed.reserve(n_inf.value());
    for (uint32_t i = 0; i < n_inf.value(); ++i) {
      Result<uint8_t> b = wire::GetU8(blob, offset);
      if (!b.ok()) return b.status();
      restored.tag_informed.push_back(b.value() != 0);
    }
    Result<uint64_t> wire_size = wire::GetU64(blob, offset);
    if (!wire_size.ok()) return wire_size.status();
    restored.wire_size = static_cast<std::size_t>(wire_size.value());
    restored.valid = true;
  }

  Result<uint32_t> n_recv = wire::GetU32(blob, offset);
  if (!n_recv.ok()) return n_recv.status();
  if (n_recv.value() != models_.size()) {
    return Status::InvalidArgument("pace snapshot received-row size " +
                                   std::to_string(n_recv.value()) +
                                   " does not match network size");
  }
  std::vector<bool> row(n_recv.value(), false);
  for (uint32_t i = 0; i < n_recv.value(); ++i) {
    Result<uint8_t> b = wire::GetU8(blob, offset);
    if (!b.ok()) return b.status();
    row[i] = b.value() != 0;
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after pace snapshot");
  }
  // A parsed-but-hostile payload (NaN weights, out-of-lexicon dimensions)
  // is rejected like any other ingested model; the caller degrades to a
  // cold restart, the same path as a corrupt checkpoint.
  if (options_.sanitize.enabled && restored.valid) {
    ModelRejectReason reason =
        SanitizeOneVsAll(restored.model, num_tags_, options_.sanitize);
    if (reason == ModelRejectReason::kNone) {
      reason = SanitizeCentroids(restored.centroids, options_.sanitize);
    }
    if (reason != ModelRejectReason::kNone) {
      RecordRejected(reason);
      return RejectedModelStatus(reason);
    }
  }
  // Commit only after the whole blob parsed: restore is all-or-nothing.
  // The version counter is store-side publish metadata, not checkpoint
  // content: it survives the restore so receivers holding the peer's
  // latest publish stay consistent and future refreshes keep ascending.
  restored.version = models_[peer].version;
  // The row compresses back to contributor ranks; bits claimed for peers
  // that never contributed have nothing behind them and are dropped. Held
  // versions reset to 0 (the snapshot predates versioning): any contributor
  // that refreshed since is honestly treated as missing until resync.
  models_[peer] = std::move(restored);
  received_[peer].assign(contributors_.size(), false);
  received_version_[peer].clear();
  for (NodeId p = 0; p < row.size(); ++p) {
    if (row[p] && contributor_rank_[p] != kNoRank) {
      received_[peer][contributor_rank_[p]] = true;
    }
  }
  bundle_verdict_[peer] = -1;
  BumpPublishEpoch();
  return Status::OK();
}

void Pace::EvictPeer(NodeId peer) {
  if (peer >= received_.size()) return;
  // The peer's RAM is gone: it no longer holds anyone's bundle, its own
  // included. models_[peer] itself is left in place — it doubles as the
  // copy other receivers hold, which a crash of the contributor does not
  // destroy; visibility is entirely received_[q][rank(peer)].
  received_[peer].assign(contributors_.size(), false);
  received_version_[peer].clear();
  BumpPublishEpoch();
}

std::size_t Pace::ColdRestart(NodeId peer) {
  if (peer >= peer_data_.size()) return 0;
  received_[peer].assign(contributors_.size(), false);
  received_version_[peer].clear();
  BumpPublishEpoch();
  const DatasetShard& data = peer_data_[peer];
  if (data.empty()) return 0;
  TrainLocal(peer);
  if (!models_[peer].valid) return 0;
  AcceptBundle(peer, peer);
  std::vector<std::size_t> counts = data.TagCounts();
  std::size_t informed_tags = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++informed_tags;
  }
  return data.size() * informed_tags;
}

void Pace::ResyncPeer(NodeId peer, std::function<void()> done) {
  if (peer >= received_.size() || !net_.IsOnline(peer)) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [pending, done = std::move(done)] {
    if (--*pending > 0) return;
    done();
  };
  for (NodeId p : contributors_) {
    if (p == peer || !models_[p].valid || Holds(peer, p)) continue;
    // SRM-style repair: *any* online peer holding p's bundle can serve it,
    // not only the contributor — so a bundle stays recoverable as long as
    // one live copy exists, even while its contributor is offline.
    NodeId sender = kInvalidNode;
    if (net_.IsOnline(p)) {
      sender = p;
    } else {
      for (NodeId q = 0; q < received_.size(); ++q) {
        if (q != peer && Holds(q, p) && net_.IsOnline(q)) {
          sender = q;
          break;
        }
      }
    }
    if (sender == kInvalidNode) continue;  // no live copy anywhere
    ++*pending;
    auto deliver = [this, p, peer] { AcceptBundle(peer, p); };
    if (transport_ != nullptr) {
      transport_->SendReliable(
          sender, peer, models_[p].wire_size, MessageType::kModelBroadcast,
          std::move(deliver), /*on_acked=*/[barrier] { (*barrier)(); },
          /*on_give_up=*/[barrier] { (*barrier)(); });
    } else {
      net_.Send(
          sender, peer, models_[p].wire_size, MessageType::kModelBroadcast,
          [deliver = std::move(deliver), barrier] {
            deliver();
            (*barrier)();
          },
          [barrier] { (*barrier)(); });
    }
  }
  sim_.Schedule(0.0, [barrier] { (*barrier)(); });  // consume root token
}

double Pace::ModelCoverage() const {
  std::size_t contributors = 0;
  for (const auto& m : models_) {
    if (m.valid) ++contributors;
  }
  if (contributors == 0) return 0.0;
  std::size_t have = 0, want = 0;
  for (NodeId q = 0; q < received_.size(); ++q) {
    if (!net_.IsOnline(q)) continue;
    for (NodeId p : contributors_) {
      if (!models_[p].valid) continue;
      ++want;
      if (Holds(q, p)) ++have;
    }
  }
  return want == 0 ? 0.0
                   : static_cast<double>(have) / static_cast<double>(want);
}

Status Pace::ReplacePeerData(NodeId peer, DatasetShard window) {
  if (peer >= peer_data_.size()) {
    return Status::InvalidArgument("replace data of unknown peer " +
                                   std::to_string(peer));
  }
  if (contributor_rank_[peer] == kNoRank && !window.empty()) {
    // The receipt matrix is rank-compressed over setup-time contributors;
    // a peer that contributed nothing then cannot start publishing mid-run.
    return Status::FailedPrecondition(
        "peer " + std::to_string(peer) +
        " contributed no data at setup and cannot become a contributor");
  }
  window.set_num_tags(num_tags_);
  peer_data_[peer] = std::move(window);
  bundle_verdict_[peer] = -1;  // next publish is a different bundle
  if (reputation_ != nullptr) {
    // The cross-validation holdout tracks the peer's current window, so
    // trust scoring reflects the data regime models are judged against.
    reputation_->SetHoldout(peer, peer_data_[peer]);
  }
  return Status::OK();
}

void Pace::RefreshPeer(NodeId peer, std::function<void()> done) {
  const uint32_t rank =
      peer < contributor_rank_.size() ? contributor_rank_[peer] : kNoRank;
  if (rank == kNoRank || !net_.IsOnline(peer) || peer_data_[peer].empty()) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  const uint32_t next_version = models_[peer].version + 1;
  Stopwatch refresh_wall;
  TrainLocal(peer);  // deterministic per-(peer,tag) seeds, like Train
  if (!models_[peer].valid) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  models_[peer].version = next_version;
  // The version bump invalidates cached predictions even if the refreshed
  // bundle is later refused at some ingestion gate.
  BumpPublishEpoch();
  // Index the refreshed centroids under the new stamp; the superseded
  // version's entries are now dead at query time (version mismatch).
  for (std::size_t c = 0; c < models_[peer].centroids.size(); ++c) {
    index_->Insert(index_items_.size(), models_[peer].centroids[c]);
    index_items_.push_back({peer, c, next_version});
  }
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "model_refresh")) {
    hist->Observe(refresh_wall.ElapsedSeconds());
  }

  // Re-broadcast through the normal dissemination path; every delivery
  // passes the same AcceptBundle gate (clamp, sanitize, reputation) as an
  // initial publish, then reliable fill-in for receivers the broadcast
  // missed, exactly like Train's repair rounds.
  AcceptBundle(peer, peer);
  overlay_.Broadcast(
      peer, models_[peer].wire_size, MessageType::kModelBroadcast,
      [this, peer](NodeId receiver) { AcceptBundle(receiver, peer); },
      [this, peer, done = std::move(done)]() mutable {
        if (transport_ != nullptr) {
          RefreshRepair(peer, 0, std::move(done));
        } else {
          done();
        }
      });
}

void Pace::RefreshRepair(NodeId peer, std::size_t round,
                         std::function<void()> done) {
  std::vector<NodeId> missing;
  for (NodeId q = 0; q < received_.size(); ++q) {
    if (q == peer || Holds(q, peer) || !net_.IsOnline(q)) continue;
    missing.push_back(q);
  }
  if (missing.empty() || round >= options_.max_repair_rounds) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, peer, round, pending, done = std::move(done)]() mutable {
    if (--*pending > 0) return;
    RefreshRepair(peer, round + 1, std::move(done));
  };
  for (NodeId q : missing) {
    ++*pending;
    transport_->SendReliable(
        peer, q, models_[peer].wire_size, MessageType::kModelBroadcast,
        /*on_deliver=*/[this, peer, q] { AcceptBundle(q, peer); },
        /*on_acked=*/[barrier] { (*barrier)(); },
        /*on_give_up=*/[barrier] { (*barrier)(); });
  }
  (*barrier)();
}

uint64_t Pace::ModelVersion(NodeId peer) const {
  return peer < models_.size() ? models_[peer].version : 0;
}

}  // namespace p2pdt
