// End-to-end checks for the observability layer: a CEMPaR prediction under
// a lossy network with the reliable transport forms ONE connected trace
// (request → DHT lookup hops → retransmits → super-peer vote → response),
// experiments export valid metrics / trace / report JSON, per-phase latency
// histograms cover both classifiers, and turning observability on does not
// change any experimental outcome.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "common/json_check.h"
#include "p2pdmt/environment.h"
#include "p2pdmt/experiment.h"
#include "p2pml/cempar.h"

namespace p2pdt {
namespace {

// ---------------------------------------------------------------------------
// Protocol-level fixture: CEMPaR on a lossy network with tracing + metrics.
// ---------------------------------------------------------------------------

std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

struct LossyFixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Cempar> cempar;

  explicit LossyFixture(double loss_rate) {
    EnvironmentOptions eo;
    eo.num_peers = 12;
    eo.physical.loss_rate = loss_rate;
    eo.observe.metrics = true;
    eo.observe.tracing = true;
    env = std::move(Environment::Create(eo)).value();
    CemparOptions co;
    co.svm.kernel = Kernel::Linear();
    co.reliable_transport = true;
    // Resolve super-peers through the DHT on every prediction (no owner
    // cache), so the trace shows the full request → lookup → vote chain.
    co.cache_super_peer_lookups = false;
    cempar = std::make_unique<Cempar>(env->sim(), env->net(), *env->chord(),
                                      co);
  }

  Status Train() {
    P2PDT_RETURN_IF_ERROR(cempar->Setup(MakePeerData(12, 8, 17), 4));
    bool done = false;
    Status status = Status::OK();
    cempar->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    cempar->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(ObservabilityE2ETest, CemparPredictionUnderLossIsOneConnectedTrace) {
  LossyFixture f(/*loss_rate=*/0.2);
  ASSERT_TRUE(f.Train().ok());

  // Forget everything the (traced) training produced, then run exactly one
  // prediction so the tracer holds exactly one end-to-end operation.
  Tracer* tracer = f.env->tracer();
  ASSERT_NE(tracer, nullptr);
  tracer->Clear();
  f.env->net().stats().Reset();

  P2PPrediction p = f.PredictSync(
      3, SparseVector::FromPairs({{3u, 1.0}, {4u, 1.0}}));
  ASSERT_TRUE(p.success);

  ASSERT_GT(tracer->num_spans(), 0u);
  const std::vector<SpanRecord>& spans = tracer->spans();

  // Root: the prediction request itself.
  auto root = std::find_if(spans.begin(), spans.end(), [](const SpanRecord& s) {
    return s.name == "cempar/predict";
  });
  ASSERT_NE(root, spans.end());
  EXPECT_EQ(root->parent_span, 0u);

  // Connected: every span recorded during the prediction — lookup hops,
  // message sends, retransmits, the vote — belongs to the root's trace.
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root->trace_id)
        << "span '" << s.name << "' escaped the prediction trace";
  }

  std::set<std::string> names;
  for (const SpanRecord& s : spans) names.insert(s.name);
  EXPECT_TRUE(names.count("lookup")) << "DHT lookup missing from trace";
  EXPECT_TRUE(names.count("super_peer_vote")) << "vote instant missing";

  // Retries live inside the same trace: every retransmit the transport made
  // appears as an instant, and at 20 % loss a multi-message exchange all but
  // certainly retried at least once.
  uint64_t retransmit_instants = 0;
  for (const SpanRecord& s : spans) {
    if (s.instant && s.name == "retransmit") ++retransmit_instants;
  }
  EXPECT_EQ(retransmit_instants, f.env->net().stats().retransmits());
  EXPECT_GT(retransmit_instants, 0u);

  // The export is valid Chrome trace JSON carrying the same structure.
  std::string json = tracer->ToChromeTraceJson();
  EXPECT_TRUE(CheckJsonSyntax(json).ok());
  EXPECT_TRUE(JsonHasKey(json, "traceEvents"));
  EXPECT_NE(json.find("cempar/predict"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ObservabilityE2ETest, CemparMetricsCoverLookupsTransportAndPhases) {
  LossyFixture f(/*loss_rate=*/0.2);
  ASSERT_TRUE(f.Train().ok());
  ASSERT_TRUE(
      f.PredictSync(5, SparseVector::FromPairs({{0u, 1.0}, {1u, 1.0}}))
          .success);

  MetricsRegistry* metrics = f.env->metrics();
  ASSERT_NE(metrics, nullptr);
  MetricsSnapshot snap = metrics->Snapshot();

  const MetricsSnapshot::Entry* lookups =
      snap.Find("dht_lookups", {{"success", "true"}});
  ASSERT_NE(lookups, nullptr);
  EXPECT_GT(lookups->value, 0.0);
  const MetricsSnapshot::Entry* hops = snap.Find("dht_lookup_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GT(hops->count, 0u);

  const MetricsSnapshot::Entry* ok_preds = snap.Find(
      "predictions", {{"classifier", "cempar"}, {"outcome", "ok"}});
  ASSERT_NE(ok_preds, nullptr);
  EXPECT_GE(ok_preds->value, 1.0);

  // The reliable transport settled at least one logical message by ACK.
  bool saw_acked_settle = false;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    if (e.name != "transport_settle_seconds") continue;
    for (const auto& [k, v] : e.labels) {
      if (k == "outcome" && v == "acked" && e.count > 0) {
        saw_acked_settle = true;
      }
    }
  }
  EXPECT_TRUE(saw_acked_settle);

  // Per-phase latency histograms with sane quantiles.
  for (const char* phase :
       {"local_train", "sv_upload", "cascade_merge", "vote", "predict"}) {
    const MetricsSnapshot::Entry* e = snap.Find(
        "phase_seconds", {{"classifier", "cempar"}, {"phase", phase}});
    ASSERT_NE(e, nullptr) << "missing cempar phase " << phase;
    EXPECT_GT(e->count, 0u) << phase;
    EXPECT_LE(e->p50, e->p95) << phase;
    EXPECT_LE(e->p95, e->p99) << phase;
    EXPECT_LE(e->p99, e->max + 1e-12) << phase;
  }
}

// ---------------------------------------------------------------------------
// Experiment-level artifact export.
// ---------------------------------------------------------------------------

const VectorizedCorpus& SharedCorpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 10;
    opt.min_docs_per_user = 30;
    opt.max_docs_per_user = 40;
    opt.num_tags = 5;
    opt.vocabulary_size = 1000;
    opt.seed = 4242;
    return std::move(MakeVectorizedCorpus(opt)).value();
  }();
  return corpus;
}

ExperimentOptions BaseOptions(AlgorithmType algo) {
  ExperimentOptions opt;
  opt.env.num_peers = 10;
  opt.algorithm = algo;
  opt.max_test_documents = 40;
  opt.distribution.cls = ClassDistribution::kByUser;
  return opt;
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

TEST(ObservabilityE2ETest, ExperimentWritesValidArtifacts) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kCempar);
  opt.env.observe.metrics = true;
  opt.env.observe.tracing = true;
  std::string dir = ::testing::TempDir();
  opt.report_path = dir + "/p2pdt_report.json";
  opt.metrics_path = dir + "/p2pdt_metrics.json";
  opt.trace_path = dir + "/p2pdt_trace.json";

  Result<ExperimentResult> r = RunExperiment(SharedCorpus(), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::string report = ReadAll(opt.report_path);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(CheckJsonSyntax(report).ok());
  for (const char* key : {"run", "quality", "cost", "timing", "phases",
                          "macro_f1", "retransmits", "p99"}) {
    EXPECT_TRUE(JsonHasKey(report, key)) << "report lacks " << key;
  }
  EXPECT_NE(report.find("cempar"), std::string::npos);

  std::string metrics = ReadAll(opt.metrics_path);
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(CheckJsonSyntax(metrics).ok());
  EXPECT_TRUE(JsonHasKey(metrics, "metrics"));
  EXPECT_NE(metrics.find("phase_seconds"), std::string::npos);

  std::string trace = ReadAll(opt.trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(CheckJsonSyntax(trace).ok());
  EXPECT_TRUE(JsonHasKey(trace, "traceEvents"));
  EXPECT_NE(trace.find("cempar/predict"), std::string::npos);

  // The in-memory snapshot mirrors the export.
  EXPECT_FALSE(r->observability.empty());
  EXPECT_NE(r->observability.Find(
                "phase_seconds",
                {{"classifier", "cempar"}, {"phase", "local_train"}}),
            nullptr);

  std::remove(opt.report_path.c_str());
  std::remove(opt.metrics_path.c_str());
  std::remove(opt.trace_path.c_str());
}

TEST(ObservabilityE2ETest, PaceExperimentRecordsPhaseHistograms) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kPace);
  opt.env.observe.metrics = true;
  Result<ExperimentResult> r = RunExperiment(SharedCorpus(), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const char* phase : {"local_train", "lsh_index", "model_broadcast",
                            "top_k_retrieve", "vote"}) {
    const MetricsSnapshot::Entry* e = r->observability.Find(
        "phase_seconds", {{"classifier", "pace"}, {"phase", phase}});
    ASSERT_NE(e, nullptr) << "missing pace phase " << phase;
    EXPECT_GT(e->count, 0u) << phase;
  }
}

TEST(ObservabilityE2ETest, ArtifactPathWithoutSubsystemIsError) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kLocalOnly);
  opt.metrics_path = ::testing::TempDir() + "/p2pdt_unwritable_metrics.json";
  Result<ExperimentResult> r = RunExperiment(SharedCorpus(), opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  ExperimentOptions opt2 = BaseOptions(AlgorithmType::kLocalOnly);
  opt2.trace_path = ::testing::TempDir() + "/p2pdt_unwritable_trace.json";
  Result<ExperimentResult> r2 = RunExperiment(SharedCorpus(), opt2);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(ObservabilityE2ETest, ObservabilityDoesNotChangeResults) {
  ExperimentOptions plain = BaseOptions(AlgorithmType::kCempar);
  ExperimentOptions observed = BaseOptions(AlgorithmType::kCempar);
  observed.env.observe.metrics = true;
  observed.env.observe.tracing = true;

  Result<ExperimentResult> a = RunExperiment(SharedCorpus(), plain);
  Result<ExperimentResult> b = RunExperiment(SharedCorpus(), observed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.micro_f1, b->metrics.micro_f1);
  EXPECT_DOUBLE_EQ(a->metrics.macro_f1, b->metrics.macro_f1);
  EXPECT_EQ(a->train_messages, b->train_messages);
  EXPECT_EQ(a->train_bytes, b->train_bytes);
  EXPECT_EQ(a->predict_messages, b->predict_messages);
  EXPECT_EQ(a->predict_bytes, b->predict_bytes);
  EXPECT_DOUBLE_EQ(a->train_sim_seconds, b->train_sim_seconds);
  EXPECT_DOUBLE_EQ(a->predict_sim_seconds, b->predict_sim_seconds);
}

}  // namespace
}  // namespace p2pdt
