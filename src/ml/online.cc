#include "ml/online.h"

#include <algorithm>

namespace p2pdt {

double PassiveAggressiveUpdate(LinearSvmModel& model, const SparseVector& x,
                               double y,
                               const OnlineUpdateOptions& options) {
  y = y >= 0.0 ? 1.0 : -1.0;
  double loss = std::max(0.0, 1.0 - y * model.Decision(x));
  if (loss == 0.0) return 0.0;
  // PA-II step size: τ = loss / (||x||² + 1/(2C)); the bias participates as
  // an always-on feature of value 1.
  double denom = x.SquaredNorm() + 1.0 + 1.0 / (2.0 * options.c);
  double tau = loss / denom;
  model.Update(x, tau * y, 1.0);
  return loss;
}

std::size_t RefineTags(OneVsAllModel& model, const SparseVector& x,
                       const std::vector<TagId>& predicted_tags,
                       const std::vector<TagId>& corrected_tags,
                       const OnlineUpdateOptions& options) {
  // Normalize: the membership test below requires sorted input, and a
  // duplicated corrected tag must not be nudged twice.
  std::vector<TagId> corrected = corrected_tags;
  std::sort(corrected.begin(), corrected.end());
  corrected.erase(std::unique(corrected.begin(), corrected.end()),
                  corrected.end());

  std::size_t updated = 0;
  auto update = [&](TagId tag, double y) {
    auto* linear = dynamic_cast<LinearSvmModel*>(model.mutable_model(tag));
    if (linear == nullptr) return;
    PassiveAggressiveUpdate(*linear, x, y, options);
    ++updated;
  };
  // Positive corrections: tags the user says belong on the document.
  for (TagId t : corrected) update(t, 1.0);
  // Negative corrections: tags the system predicted but the user removed.
  for (TagId t : predicted_tags) {
    if (!std::binary_search(corrected.begin(), corrected.end(), t)) {
      update(t, -1.0);
    }
  }
  return updated;
}

bool RefinementLog::ShouldApply(const RefinementUpdate& update) const {
  auto it = applied_revision_.find(update.doc_id);
  return it == applied_revision_.end() || update.revision > it->second;
}

std::size_t RefinementLog::Apply(OneVsAllModel& model,
                                 const RefinementUpdate& update,
                                 const OnlineUpdateOptions& options) {
  auto it = applied_revision_.find(update.doc_id);
  if (it != applied_revision_.end()) {
    if (update.revision == it->second) {
      ++skipped_duplicate_;
      return 0;
    }
    if (update.revision < it->second) {
      ++skipped_stale_;
      return 0;
    }
  }
  applied_revision_[update.doc_id] = update.revision;
  ++applied_;
  return RefineTags(model, update.x, update.predicted_tags,
                    update.corrected_tags, options);
}

}  // namespace p2pdt
