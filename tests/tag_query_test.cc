#include "core/tag_query.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

Document Doc(DocId id, std::vector<std::string> tags) {
  Document d;
  d.id = id;
  for (auto& t : tags) d.tags.push_back({t, TagSource::kManual, 1.0});
  return d;
}

TagLibrary SampleLibrary() {
  TagLibrary lib;
  lib.Index(Doc(0, {"research", "p2p"}));
  lib.Index(Doc(1, {"research", "dht"}));
  lib.Index(Doc(2, {"research", "p2p", "draft"}));
  lib.Index(Doc(3, {"recipes"}));
  lib.Index(Doc(4, {"p2p", "draft"}));
  return lib;
}

std::vector<DocId> Eval(const std::string& q, const TagLibrary& lib) {
  Result<TagQuery> query = TagQuery::Parse(q);
  EXPECT_TRUE(query.ok()) << q << ": " << query.status().ToString();
  if (!query.ok()) return {};
  return query.value().Evaluate(lib);
}

TEST(TagQueryTest, SingleTag) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(Eval("research", lib), (std::vector<DocId>{0, 1, 2}));
  EXPECT_EQ(Eval("recipes", lib), (std::vector<DocId>{3}));
  EXPECT_TRUE(Eval("unknown", lib).empty());
}

TEST(TagQueryTest, AndOr) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(Eval("research AND p2p", lib), (std::vector<DocId>{0, 2}));
  EXPECT_EQ(Eval("dht OR recipes", lib), (std::vector<DocId>{1, 3}));
  EXPECT_EQ(Eval("research AND p2p AND draft", lib),
            (std::vector<DocId>{2}));
}

TEST(TagQueryTest, NotAgainstTaggedUniverse) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(Eval("NOT research", lib), (std::vector<DocId>{3, 4}));
  EXPECT_EQ(Eval("p2p AND NOT draft", lib), (std::vector<DocId>{0}));
  EXPECT_EQ(Eval("NOT NOT recipes", lib), (std::vector<DocId>{3}));
}

TEST(TagQueryTest, PrecedenceAndParentheses) {
  TagLibrary lib = SampleLibrary();
  // AND binds tighter than OR: recipes OR (research AND draft) = {2, 3}.
  EXPECT_EQ(Eval("recipes OR research AND draft", lib),
            (std::vector<DocId>{2, 3}));
  // Parentheses override: (recipes OR research) AND draft = {2}.
  EXPECT_EQ(Eval("(recipes OR research) AND draft", lib),
            (std::vector<DocId>{2}));
}

TEST(TagQueryTest, KeywordsCaseInsensitive) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(Eval("research and p2p", lib), (std::vector<DocId>{0, 2}));
  EXPECT_EQ(Eval("dht or recipes", lib), (std::vector<DocId>{1, 3}));
  EXPECT_EQ(Eval("not research", lib), (std::vector<DocId>{3, 4}));
}

TEST(TagQueryTest, WhitespaceAndTightParens) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(Eval("  (p2p)AND(draft)  ", lib), (std::vector<DocId>{2, 4}));
}

TEST(TagQueryTest, SyntaxErrors) {
  EXPECT_FALSE(TagQuery::Parse("").ok());
  EXPECT_FALSE(TagQuery::Parse("AND").ok());
  EXPECT_FALSE(TagQuery::Parse("a AND").ok());
  EXPECT_FALSE(TagQuery::Parse("a OR OR b").ok());
  EXPECT_FALSE(TagQuery::Parse("(a AND b").ok());
  EXPECT_FALSE(TagQuery::Parse("a)").ok());
  EXPECT_FALSE(TagQuery::Parse("NOT").ok());
  EXPECT_FALSE(TagQuery::Parse("a b").ok());  // implicit AND not supported
}

TEST(TagQueryTest, ToStringCanonical) {
  Result<TagQuery> q = TagQuery::Parse("a OR b AND NOT c");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "(a OR (b AND (NOT c)))");
}

TEST(TagQueryTest, RoundTripThroughToString) {
  TagLibrary lib = SampleLibrary();
  const char* queries[] = {"research AND p2p", "NOT (draft OR recipes)",
                           "p2p AND NOT draft OR recipes"};
  for (const char* q : queries) {
    Result<TagQuery> first = TagQuery::Parse(q);
    ASSERT_TRUE(first.ok()) << q;
    Result<TagQuery> second = TagQuery::Parse(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->Evaluate(lib), second->Evaluate(lib)) << q;
  }
}

TEST(TagQueryTest, EmptyLibrary) {
  TagLibrary lib;
  EXPECT_TRUE(Eval("anything", lib).empty());
  EXPECT_TRUE(Eval("NOT anything", lib).empty());
}

TEST(TagLibraryTest, AllDocumentsAscending) {
  TagLibrary lib = SampleLibrary();
  EXPECT_EQ(lib.AllDocuments(), (std::vector<DocId>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace p2pdt
