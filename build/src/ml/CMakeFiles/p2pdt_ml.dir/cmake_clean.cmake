file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_ml.dir/dataset.cc.o"
  "CMakeFiles/p2pdt_ml.dir/dataset.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/kernel.cc.o"
  "CMakeFiles/p2pdt_ml.dir/kernel.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/kernel_svm.cc.o"
  "CMakeFiles/p2pdt_ml.dir/kernel_svm.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/kmeans.cc.o"
  "CMakeFiles/p2pdt_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/linear_svm.cc.o"
  "CMakeFiles/p2pdt_ml.dir/linear_svm.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/lsh.cc.o"
  "CMakeFiles/p2pdt_ml.dir/lsh.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/metrics.cc.o"
  "CMakeFiles/p2pdt_ml.dir/metrics.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/multilabel.cc.o"
  "CMakeFiles/p2pdt_ml.dir/multilabel.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/online.cc.o"
  "CMakeFiles/p2pdt_ml.dir/online.cc.o.d"
  "CMakeFiles/p2pdt_ml.dir/serialization.cc.o"
  "CMakeFiles/p2pdt_ml.dir/serialization.cc.o.d"
  "libp2pdt_ml.a"
  "libp2pdt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
