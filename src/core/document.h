#ifndef P2PDT_CORE_DOCUMENT_H_
#define P2PDT_CORE_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sparse_vector.h"

namespace p2pdt {

/// Application-level document identifier.
using DocId = std::size_t;
inline constexpr DocId kInvalidDoc = static_cast<DocId>(-1);

/// Where a tag assignment came from — surfaced in the UI and used by
/// refinement (manual assignments are never overwritten by AutoTag).
enum class TagSource : uint8_t {
  kManual = 0,  // typed by the user ("Add" button, Fig. 3)
  kAuto,        // assigned by AutoTag
  kSuggested,   // accepted from the Suggestion Cloud
};

const char* TagSourceToString(TagSource source);

/// One tag on one document, with the confidence it was assigned at
/// (manual tags get confidence 1.0).
struct TagAssignment {
  std::string tag;
  TagSource source = TagSource::kManual;
  double confidence = 1.0;
};

/// A document under management: the user selected it (File Browser),
/// the pipeline vectorized it, and zero or more tags are assigned.
struct Document {
  DocId id = kInvalidDoc;
  std::string title;
  std::string text;
  /// Preprocessed representation (set when the document is added).
  SparseVector vector;
  std::vector<TagAssignment> tags;

  bool HasTag(const std::string& tag) const;
  /// Sorted tag names (for set comparisons).
  std::vector<std::string> TagNames() const;
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_DOCUMENT_H_
