#include "ml/serialization.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"

namespace p2pdt {
namespace {

SparseVector RandomVector(Rng& rng, std::size_t nnz) {
  std::vector<SparseVector::Entry> f;
  for (std::size_t i = 0; i < nnz; ++i) {
    f.emplace_back(static_cast<uint32_t>(rng.NextU64(1 << 20)),
                   rng.Uniform(-3.0, 3.0));
  }
  return SparseVector::FromPairs(std::move(f));
}

TEST(SerializationTest, SparseVectorRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector v = RandomVector(rng, rng.NextU64(30));
    std::string buf;
    SerializeSparseVector(v, buf);
    std::size_t offset = 0;
    Result<SparseVector> back = DeserializeSparseVector(buf, offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(SerializationTest, SparseVectorTruncatedFails) {
  SparseVector v = SparseVector::FromPairs({{1, 2.0}, {3, 4.0}});
  std::string buf;
  SerializeSparseVector(v, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::string partial = buf.substr(0, cut);
    std::size_t offset = 0;
    EXPECT_FALSE(DeserializeSparseVector(partial, offset).ok()) << cut;
  }
}

TEST(SerializationTest, LinearModelRoundTrip) {
  Rng rng(2);
  LinearSvmModel model(RandomVector(rng, 25), -0.375);
  Result<LinearSvmModel> back =
      DeserializeLinearSvm(SerializeLinearSvm(model));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->weights(), model.weights());
  EXPECT_DOUBLE_EQ(back->bias(), model.bias());
}

TEST(SerializationTest, KernelModelRoundTrip) {
  Rng rng(3);
  std::vector<SupportVector> svs;
  for (int i = 0; i < 7; ++i) {
    svs.push_back({RandomVector(rng, 10), i % 2 ? 1.0 : -1.0,
                   rng.Uniform(0.0, 2.0)});
  }
  KernelSvmModel model(Kernel::Rbf(0.7), svs, 1.25);
  Result<KernelSvmModel> back =
      DeserializeKernelSvm(SerializeKernelSvm(model));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_support_vectors(), 7u);
  EXPECT_DOUBLE_EQ(back->bias(), 1.25);
  EXPECT_EQ(back->kernel().type, KernelType::kRbf);
  // Decision function preserved exactly.
  SparseVector probe = RandomVector(rng, 12);
  EXPECT_DOUBLE_EQ(back->Decision(probe), model.Decision(probe));
}

TEST(SerializationTest, WrongKindRejected) {
  Rng rng(4);
  LinearSvmModel model(RandomVector(rng, 5), 0.0);
  EXPECT_FALSE(DeserializeKernelSvm(SerializeLinearSvm(model)).ok());
}

TEST(SerializationTest, BadMagicRejected) {
  EXPECT_FALSE(DeserializeLinearSvm("garbage-bytes").ok());
  EXPECT_FALSE(DeserializeOneVsAll(std::string(64, '\0')).ok());
  EXPECT_FALSE(DeserializeLinearSvm("").ok());
}

TEST(SerializationTest, OneVsAllMixedKindsRoundTrip) {
  Rng rng(5);
  OneVsAllModel model;
  model.SetModel(0, std::make_unique<LinearSvmModel>(RandomVector(rng, 8),
                                                     0.5));
  model.SetModel(1, nullptr);
  model.SetModel(2, std::make_unique<ConstantClassifier>(-1.0));
  std::vector<SupportVector> svs = {
      {RandomVector(rng, 6), 1.0, 0.3},
      {RandomVector(rng, 6), -1.0, 0.3},
  };
  model.SetModel(3, std::make_unique<KernelSvmModel>(Kernel::Linear(), svs,
                                                     0.1));

  Result<OneVsAllModel> back = DeserializeOneVsAll(SerializeOneVsAll(model));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_tags(), 4u);
  SparseVector probe = RandomVector(rng, 10);
  for (TagId t = 0; t < 4; ++t) {
    if (model.model(t) == nullptr) {
      EXPECT_EQ(back->model(t), nullptr);
    } else {
      EXPECT_DOUBLE_EQ(back->model(t)->Decision(probe),
                       model.model(t)->Decision(probe))
          << "tag " << t;
    }
  }
}

TEST(SerializationTest, TrailingBytesRejected) {
  OneVsAllModel model;
  model.SetModel(0, std::make_unique<ConstantClassifier>(1.0));
  std::string buf = SerializeOneVsAll(model);
  buf += "x";
  EXPECT_FALSE(DeserializeOneVsAll(buf).ok());
}

TEST(SerializationTest, CorruptedBufferNeverCrashes) {
  Rng rng(6);
  OneVsAllModel model;
  model.SetModel(0,
                 std::make_unique<LinearSvmModel>(RandomVector(rng, 12), 1.0));
  std::string buf = SerializeOneVsAll(model);
  // Flip bytes one at a time: deserialization must either succeed (the
  // byte was payload) or fail cleanly, never read out of bounds.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::string corrupt = buf;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    DeserializeOneVsAll(corrupt).ok();  // must not crash
  }
  // Truncations too.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DeserializeOneVsAll(buf.substr(0, cut)).ok());
  }
}

TEST(SerializationTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/p2pdt_model.bin";
  Rng rng(7);
  OneVsAllModel model;
  model.SetModel(0, std::make_unique<LinearSvmModel>(RandomVector(rng, 8),
                                                     2.0));
  ASSERT_TRUE(SaveOneVsAll(model, path).ok());
  Result<OneVsAllModel> back = LoadOneVsAll(path);
  ASSERT_TRUE(back.ok());
  SparseVector probe = RandomVector(rng, 5);
  EXPECT_DOUBLE_EQ(back->model(0)->Decision(probe),
                   model.model(0)->Decision(probe));
  std::filesystem::remove(path);
  EXPECT_EQ(LoadOneVsAll(path).status().code(), StatusCode::kNotFound);
}

TEST(SerializationTest, CentroidsRoundTrip) {
  Rng rng(9);
  std::vector<SparseVector> centroids;
  for (int i = 0; i < 5; ++i) centroids.push_back(RandomVector(rng, 10));
  centroids.push_back(SparseVector());  // empty centroid is legal
  Result<std::vector<SparseVector>> back =
      DeserializeCentroids(SerializeCentroids(centroids));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    EXPECT_EQ((*back)[i], centroids[i]) << "centroid " << i;
  }
}

TEST(SerializationTest, CentroidsEmptyListRoundTrips) {
  Result<std::vector<SparseVector>> back =
      DeserializeCentroids(SerializeCentroids({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SerializationTest, CentroidsCorruptionRejectedCleanly) {
  Rng rng(10);
  std::string buf = SerializeCentroids({RandomVector(rng, 6)});
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DeserializeCentroids(buf.substr(0, cut)).ok()) << cut;
  }
  std::string trailing = buf + "y";
  EXPECT_FALSE(DeserializeCentroids(trailing).ok());
  // A linear-model buffer is not a centroid buffer (kind byte differs).
  LinearSvmModel model(RandomVector(rng, 4), 0.5);
  EXPECT_FALSE(DeserializeCentroids(SerializeLinearSvm(model)).ok());
}

TEST(SerializationTest, SerializedSizeTracksWireSize) {
  Rng rng(8);
  LinearSvmModel model(RandomVector(rng, 20), 0.0);
  std::string buf = SerializeLinearSvm(model);
  // Serialized form = wire size + header/kind (7 bytes) ± the bias/len
  // encoding difference; keep them within a small constant of each other.
  EXPECT_NEAR(static_cast<double>(buf.size()),
              static_cast<double>(model.WireSize()), 16.0);
}

}  // namespace
}  // namespace p2pdt
