#include "text/vectorizer.h"

#include <cmath>
#include <map>

namespace p2pdt {

Vectorizer::Vectorizer(VectorizerOptions options) : options_(options) {}

void Vectorizer::FitIdf(const std::vector<std::vector<std::string>>& corpus,
                        Lexicon& lexicon) {
  for (const auto& doc : corpus) {
    std::map<uint32_t, bool> seen;
    for (const auto& tok : doc) seen[lexicon.GetOrAddId(tok)] = true;
    for (const auto& [id, _] : seen) ++doc_freq_[id];
    ++num_documents_;
  }
}

double Vectorizer::WeightFor(uint32_t id, double tf) const {
  switch (options_.weighting) {
    case TermWeighting::kTermFrequency:
      return tf;
    case TermWeighting::kLogTermFrequency:
      return 1.0 + std::log(tf);
    case TermWeighting::kBinary:
      return 1.0;
    case TermWeighting::kTfIdf: {
      auto it = doc_freq_.find(id);
      double df = (it == doc_freq_.end()) ? 0.0
                                          : static_cast<double>(it->second);
      // Smoothed idf; unseen words get the maximum idf.
      double idf = std::log((1.0 + static_cast<double>(num_documents_)) /
                            (1.0 + df)) +
                   1.0;
      return tf * idf;
    }
  }
  return tf;
}

SparseVector Vectorizer::Finish(
    std::vector<SparseVector::Entry> counts) const {
  SparseVector v = SparseVector::FromPairs(std::move(counts));
  // FromPairs summed duplicate ids, so entries now hold raw term counts;
  // map them through the weighting scheme.
  std::vector<SparseVector::Entry> weighted;
  weighted.reserve(v.nnz());
  for (const auto& [id, tf] : v.entries()) {
    weighted.emplace_back(id, WeightFor(id, tf));
  }
  SparseVector out = SparseVector::FromPairs(std::move(weighted));
  if (options_.l2_normalize) out.L2Normalize();
  return out;
}

SparseVector Vectorizer::Vectorize(const std::vector<std::string>& tokens,
                                   Lexicon& lexicon) const {
  std::vector<SparseVector::Entry> counts;
  counts.reserve(tokens.size());
  for (const auto& tok : tokens) {
    counts.emplace_back(lexicon.GetOrAddId(tok), 1.0);
  }
  return Finish(std::move(counts));
}

SparseVector Vectorizer::VectorizeConst(
    const std::vector<std::string>& tokens, const Lexicon& lexicon) const {
  std::vector<SparseVector::Entry> counts;
  counts.reserve(tokens.size());
  for (const auto& tok : tokens) {
    Result<uint32_t> id = lexicon.GetId(tok);
    if (id.ok()) counts.emplace_back(id.value(), 1.0);
  }
  return Finish(std::move(counts));
}

}  // namespace p2pdt
