#include "p2pdmt/environment.h"

#include <gtest/gtest.h>

#include "p2pdmt/sim_scorer.h"
#include "p2pml/baselines.h"

namespace p2pdt {
namespace {

TEST(EnvironmentTest, RejectsZeroPeers) {
  EnvironmentOptions opt;
  opt.num_peers = 0;
  EXPECT_FALSE(Environment::Create(opt).ok());
}

TEST(EnvironmentTest, ChordEnvironmentWiring) {
  EnvironmentOptions opt;
  opt.num_peers = 24;
  auto env = std::move(Environment::Create(opt)).value();
  EXPECT_EQ(env->net().num_nodes(), 24u);
  ASSERT_NE(env->chord(), nullptr);
  EXPECT_EQ(env->unstructured(), nullptr);
  EXPECT_EQ(env->chord()->num_members(), 24u);
  EXPECT_EQ(env->overlay().name(), "chord");
}

TEST(EnvironmentTest, UnstructuredEnvironmentWiring) {
  EnvironmentOptions opt;
  opt.num_peers = 24;
  opt.overlay = OverlayType::kUnstructured;
  auto env = std::move(Environment::Create(opt)).value();
  EXPECT_EQ(env->chord(), nullptr);
  ASSERT_NE(env->unstructured(), nullptr);
  EXPECT_GT(env->unstructured()->MeanDegree(), 1.0);
}

TEST(EnvironmentTest, BootstrapChargesMaintenanceTraffic) {
  EnvironmentOptions opt;
  opt.num_peers = 16;
  auto env = std::move(Environment::Create(opt)).value();
  EXPECT_GT(env->net().stats().messages_sent(
                MessageType::kOverlayMaintenance),
            0u);
}

TEST(EnvironmentTest, ChurnDrivesTransitionsIntoOverlay) {
  EnvironmentOptions opt;
  opt.num_peers = 32;
  opt.churn = ChurnType::kExponential;
  opt.churn_mean_online_sec = 5.0;
  opt.churn_mean_offline_sec = 2.0;
  auto env = std::move(Environment::Create(opt)).value();
  env->StartDynamics();
  env->sim().RunUntil(60.0);
  EXPECT_GT(env->churn().num_failures(), 0u);
  // Some peers should be offline at any sampled instant.
  EXPECT_LT(env->net().num_online(), 32u);
}

TEST(EnvironmentTest, NoChurnKeepsEveryoneOnline) {
  EnvironmentOptions opt;
  opt.num_peers = 8;
  auto env = std::move(Environment::Create(opt)).value();
  env->StartDynamics();
  env->sim().RunUntil(100.0);
  EXPECT_EQ(env->net().num_online(), 8u);
}

TEST(EnvironmentTest, RunUntilFlagStopsOnFlag) {
  EnvironmentOptions opt;
  opt.num_peers = 4;
  auto env = std::move(Environment::Create(opt)).value();
  bool flag = false;
  env->sim().Schedule(3.5, [&] { flag = true; });
  double elapsed = env->RunUntilFlag(flag, 100.0);
  EXPECT_TRUE(flag);
  EXPECT_LT(elapsed, 10.0);
}

TEST(EnvironmentTest, RunUntilFlagRespectsDeadlineUnderRecurringEvents) {
  EnvironmentOptions opt;
  opt.num_peers = 4;
  opt.churn = ChurnType::kExponential;
  opt.churn_mean_online_sec = 1.0;
  opt.churn_mean_offline_sec = 1.0;
  auto env = std::move(Environment::Create(opt)).value();
  env->StartDynamics();  // endless churn events
  bool never = false;
  double elapsed = env->RunUntilFlag(never, 20.0);
  EXPECT_FALSE(never);
  EXPECT_GE(elapsed, 19.0);
  EXPECT_LE(elapsed, 22.0);
}

TEST(EnvironmentTest, SeedChangesTopology) {
  EnvironmentOptions a;
  a.num_peers = 16;
  a.seed = 1;
  EnvironmentOptions b = a;
  b.seed = 2;
  auto ea = std::move(Environment::Create(a)).value();
  auto eb = std::move(Environment::Create(b)).value();
  bool any_diff = false;
  for (NodeId n = 0; n < 16; ++n) {
    if (ea->chord()->KeyOf(n) != eb->chord()->KeyOf(n)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SimScorerTest, BridgesPredictionsSynchronously) {
  EnvironmentOptions opt;
  opt.num_peers = 6;
  auto env = std::move(Environment::Create(opt)).value();
  LocalOnlyClassifier algo(env->sim(), env->net());
  std::vector<MultiLabelDataset> peers(6, MultiLabelDataset(2));
  for (std::size_t p = 0; p < 6; ++p) {
    for (int i = 0; i < 6; ++i) {
      MultiLabelExample ex;
      TagId tag = i % 2;
      ex.x = SparseVector::FromPairs({{tag, 1.0}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  ASSERT_TRUE(algo.Setup(std::move(peers), 2).ok());
  bool done = false;
  algo.Train([&](Status) { done = true; });
  env->RunUntilFlag(done, 600);

  GlobalScorer scorer = MakeSimScorer(algo, *env, /*self=*/2);
  std::vector<double> scores = scorer(SparseVector::FromPairs({{0, 1.0}}));
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(SimScorerTest, FailureYieldsEmptyScores) {
  EnvironmentOptions opt;
  opt.num_peers = 3;
  auto env = std::move(Environment::Create(opt)).value();
  LocalOnlyClassifier algo(env->sim(), env->net());
  ASSERT_TRUE(algo.Setup(std::vector<MultiLabelDataset>(3), 2).ok());
  // Never trained: predictions fail, scorer returns empty.
  GlobalScorer scorer = MakeSimScorer(algo, *env, 0);
  EXPECT_TRUE(scorer(SparseVector::FromPairs({{0, 1.0}})).empty());
}

}  // namespace
}  // namespace p2pdt
