#ifndef P2PDT_P2PDMT_DATA_DISTRIBUTION_H_
#define P2PDT_P2PDMT_DATA_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace p2pdt {

/// How many documents each peer holds ("size distribution of training
/// data", paper Sec. 2 / demonstration Sec. 3).
enum class SizeDistribution {
  /// Every peer gets ~the same number of documents.
  kUniform,
  /// Zipf-skewed peer sizes: a few data-rich peers, a long tail of sparse
  /// ones — the realistic shape for user-generated content.
  kZipf,
};

/// Which documents each peer holds ("class distribution of training data").
enum class ClassDistribution {
  /// Documents assigned at random: every peer sees every tag (IID).
  kIid,
  /// Per-peer Dirichlet tag preferences: peers specialize in few tags
  /// (non-IID) — the hard case for collaboration.
  kNonIidDirichlet,
  /// Documents follow their generating user (user i → peer i mod N); the
  /// most realistic option, available when user ownership is known.
  kByUser,
};

struct DataDistributionOptions {
  SizeDistribution size = SizeDistribution::kUniform;
  /// Zipf exponent for kZipf peer sizes.
  double size_zipf_exponent = 0.8;
  ClassDistribution cls = ClassDistribution::kIid;
  /// Dirichlet concentration for kNonIidDirichlet (smaller = more skewed).
  double dirichlet_alpha = 0.3;
  uint64_t seed = 5;
};

const char* SizeDistributionToString(SizeDistribution d);
const char* ClassDistributionToString(ClassDistribution d);

/// Partitions `data` across `num_peers` peers. Every example is assigned to
/// exactly one peer. For kByUser, `doc_user` must be non-null and parallel
/// to data.examples(). Peers may end up empty under heavy skew — that is
/// intended (free-riders exist in real P2P networks).
Result<std::vector<MultiLabelDataset>> DistributeData(
    const MultiLabelDataset& data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user = nullptr);

/// Index-based core of DistributeData: assigns every example index to
/// exactly one peer, in the same order DistributeData adds the examples —
/// materializing `out[p]` reproduces DistributeData's result bit-for-bit.
/// This is what the flyweight (100k-peer) path uses: no document is copied.
Result<std::vector<std::vector<uint32_t>>> DistributeIndices(
    const MultiLabelDataset& data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user = nullptr);

/// Flyweight distribution: every peer gets a DatasetShard view into the
/// shared corpus instead of a materialized copy. Per-peer cost is one
/// uint32_t per held document; the corpus is stored once, total.
Result<std::vector<DatasetShard>> DistributeDataShared(
    std::shared_ptr<const MultiLabelDataset> data, std::size_t num_peers,
    const DataDistributionOptions& options,
    const std::vector<std::size_t>* doc_user = nullptr);

/// Diagnostics for a distribution: per-peer sizes and tag-skew summary.
struct DistributionSummary {
  std::size_t num_peers = 0;
  std::size_t num_examples = 0;
  std::size_t min_peer_size = 0;
  std::size_t max_peer_size = 0;
  double mean_peer_size = 0.0;
  /// Gini coefficient of peer sizes (0 = perfectly even).
  double size_gini = 0.0;
  /// Mean per-peer fraction of the tag universe actually present locally.
  double mean_tag_coverage = 0.0;
  std::string ToString() const;
};

DistributionSummary SummarizeDistribution(
    const std::vector<MultiLabelDataset>& peers, TagId num_tags);

/// Shard overload: same summary (identical numbers) without materializing.
DistributionSummary SummarizeDistribution(
    const std::vector<DatasetShard>& peers, TagId num_tags);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_DATA_DISTRIBUTION_H_
