file(REMOVE_RECURSE
  "CMakeFiles/tag_library_test.dir/tag_library_test.cc.o"
  "CMakeFiles/tag_library_test.dir/tag_library_test.cc.o.d"
  "tag_library_test"
  "tag_library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
