#include "p2pdmt/recovery.h"

#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace p2pdt {

namespace {

Histogram* PhaseHistogram(MetricsRegistry* metrics, const char* phase) {
  if (metrics == nullptr) return nullptr;
  return &metrics->GetHistogram(
      "phase_seconds", {{"classifier", "recovery"}, {"phase", phase}});
}

}  // namespace

RecoveryCoordinator::RecoveryCoordinator(Simulator& sim, PhysicalNetwork& net,
                                         ChurnDriver& churn,
                                         P2PClassifier& classifier,
                                         CheckpointManager& checkpoints,
                                         RecoveryOptions options)
    : sim_(sim),
      net_(net),
      churn_(churn),
      classifier_(classifier),
      checkpoints_(checkpoints),
      options_(std::move(options)) {}

std::string RecoveryCoordinator::KeyFor(NodeId peer) {
  return "peer-" + std::to_string(peer);
}

void RecoveryCoordinator::Attach() {
  if (attached_) return;
  attached_ = true;
  churn_.AddListener(
      [this](NodeId node, bool online) { OnTransition(node, online); });
}

Status RecoveryCoordinator::CheckpointPeer(NodeId peer) {
  Stopwatch write_wall;
  Result<std::string> blob = classifier_.Snapshot(peer);
  if (!blob.ok()) return blob.status();
  P2PDT_RETURN_IF_ERROR(checkpoints_.Write(KeyFor(peer), *blob));
  ++stats_.snapshots_written;
  stats_.snapshot_bytes += blob->size();
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "checkpoint_write")) {
    hist->Observe(write_wall.ElapsedSeconds());
  }
  return Status::OK();
}

Status RecoveryCoordinator::CheckpointAll() {
  if (!classifier_.SupportsDurability()) {
    return Status::Unavailable(classifier_.name() +
                               " does not support durability");
  }
  // Every peer is checkpointed, online or not: a peer that is offline right
  // now still holds its trained state (nothing evicts until Attach), and
  // skipping it would silently condemn its next rejoin to a cold start.
  for (NodeId peer = 0; peer < net_.num_nodes(); ++peer) {
    P2PDT_RETURN_IF_ERROR(CheckpointPeer(peer));
  }
  return Status::OK();
}

void RecoveryCoordinator::OnTransition(NodeId node, bool online) {
  if (!options_.enabled || !classifier_.SupportsDurability()) return;
  if (!online) {
    // A crash destroys the peer's RAM; the checkpoint on disk survives.
    classifier_.EvictPeer(node);
    return;
  }
  HandleRejoin(node);
}

void RecoveryCoordinator::HandleRejoin(NodeId node) {
  double latency = 0.0;
  bool warm = false;
  if (options_.warm_rejoin) {
    Stopwatch restore_wall;
    Result<std::string> blob = checkpoints_.Read(KeyFor(node));
    if (blob.ok()) {
      Status restored = classifier_.Restore(node, *blob);
      if (Histogram* hist =
              PhaseHistogram(net_.metrics(), "checkpoint_restore")) {
        hist->Observe(restore_wall.ElapsedSeconds());
      }
      if (restored.ok()) {
        warm = true;
        latency = options_.warm_restore_latency_sec;
      } else {
        // A blob that passed the CRC but fails structural validation still
        // degrades to a cold start, never a crash or a silently wrong model.
        ++stats_.corrupt_checkpoints;
      }
    } else if (blob.status().code() == StatusCode::kDataLoss) {
      ++stats_.corrupt_checkpoints;
    }
    // kNotFound (peer never checkpointed) falls through to cold silently.
  }

  if (!warm) {
    std::size_t refit = classifier_.ColdRestart(node);
    stats_.retrain_examples += refit;
    latency = static_cast<double>(refit) *
              options_.cold_retrain_latency_per_example_sec;
    if (options_.warm_rejoin && options_.recheckpoint_after_cold_restart) {
      // Best effort: a failed re-checkpoint only costs the *next* rejoin
      // its warmth.
      (void)CheckpointPeer(node);
    }
  }

  if (warm) {
    ++stats_.warm_rejoins;
  } else {
    ++stats_.cold_rejoins;
  }
  churn_.NoteRejoin(warm);
  stats_.total_rejoin_latency_sec += latency;
  if (latency > stats_.max_rejoin_latency_sec) {
    stats_.max_rejoin_latency_sec = latency;
  }

  if (options_.resync_after_rejoin) {
    // Run the anti-entropy round after the simulated recovery latency has
    // elapsed — the peer is not reachable while it reloads or retrains.
    ++stats_.resync_rounds;
    sim_.Schedule(latency, [this, node] {
      if (!net_.IsOnline(node)) return;  // failed again while recovering
      const SimTime resync_started = sim_.Now();
      classifier_.ResyncPeer(node, [this, resync_started] {
        // Sim-time the anti-entropy round took to quiesce.
        if (Histogram* hist = PhaseHistogram(net_.metrics(), "resync")) {
          hist->Observe(sim_.Now() - resync_started);
        }
      });
    });
  }
}

}  // namespace p2pdt
