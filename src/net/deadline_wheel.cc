#include "net/deadline_wheel.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace p2pdt {

DeadlineWheel::DeadlineWheel(double tick_seconds, std::size_t slots)
    : tick_(tick_seconds > 0.0 ? tick_seconds : 0.05),
      slots_(std::max<std::size_t>(slots, 2)) {}

std::size_t DeadlineWheel::SlotFor(double deadline) const {
  const double ticks = std::max(deadline, 0.0) / tick_;
  return static_cast<std::size_t>(static_cast<uint64_t>(ticks) %
                                  slots_.size());
}

DeadlineWheel::TimerId DeadlineWheel::Arm(double deadline,
                                          std::function<void()> callback) {
  const TimerId id = next_id_++;
  Entry entry;
  entry.deadline = deadline;
  // A deadline at or before the last processed tick would land in a slot
  // the walk has moved past; park it in the next tick so the coming
  // Advance fires it (precision stays one tick either way).
  const double floor_deadline =
      static_cast<double>(last_tick_ + 1) * tick_;
  entry.slot = SlotFor(std::max(deadline, floor_deadline));
  entry.callback = std::move(callback);
  slots_[entry.slot].push_back(id);
  deadlines_.insert(deadline);
  entries_.emplace(id, std::move(entry));
  return id;
}

bool DeadlineWheel::Cancel(TimerId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  auto& slot = slots_[it->second.slot];
  slot.erase(std::remove(slot.begin(), slot.end(), id), slot.end());
  auto d = deadlines_.find(it->second.deadline);
  if (d != deadlines_.end()) deadlines_.erase(d);
  entries_.erase(it);
  return true;
}

void DeadlineWheel::Advance(double now) {
  if (entries_.empty()) {
    last_tick_ = static_cast<int64_t>(std::max(now, 0.0) / tick_);
    return;
  }
  const int64_t now_tick = static_cast<int64_t>(std::max(now, 0.0) / tick_);
  // Walk at most one full rotation: a longer jump revisits the same slots.
  const int64_t span =
      std::min<int64_t>(now_tick - last_tick_,
                        static_cast<int64_t>(slots_.size()));
  // Collect due ids first: callbacks may arm timers into the very slots
  // being walked, and firing must not observe a half-updated wheel.
  std::vector<TimerId> due;
  for (int64_t t = std::max<int64_t>(now_tick - span, 0); t <= now_tick;
       ++t) {
    const std::size_t slot =
        static_cast<std::size_t>(t % static_cast<int64_t>(slots_.size()));
    for (TimerId id : slots_[slot]) {
      auto it = entries_.find(id);
      if (it != entries_.end() && it->second.deadline <= now) {
        due.push_back(id);
      }
    }
  }
  last_tick_ = now_tick;
  for (TimerId id : due) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // cancelled by an earlier callback
    std::function<void()> cb = std::move(it->second.callback);
    auto& slot = slots_[it->second.slot];
    slot.erase(std::remove(slot.begin(), slot.end(), id), slot.end());
    auto d = deadlines_.find(it->second.deadline);
    if (d != deadlines_.end()) deadlines_.erase(d);
    entries_.erase(it);
    if (cb) cb();
  }
}

double DeadlineWheel::NextDeadline() const {
  if (deadlines_.empty()) return std::numeric_limits<double>::infinity();
  return *deadlines_.begin();
}

}  // namespace p2pdt
