#include "ml/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

std::vector<SparseVector> TwoClusters(std::size_t per_cluster, uint64_t seed) {
  Rng rng(seed);
  std::vector<SparseVector> points;
  for (std::size_t i = 0; i < per_cluster * 2; ++i) {
    uint32_t base = (i < per_cluster) ? 0 : 10;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 3; ++j) {
      f.emplace_back(base + j, 1.0 + 0.1 * rng.NextDouble());
    }
    points.push_back(SparseVector::FromPairs(std::move(f)));
  }
  return points;
}

TEST(KMeansTest, RejectsBadInputs) {
  EXPECT_FALSE(KMeansCluster({}, {}).ok());
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_FALSE(
      KMeansCluster({SparseVector::FromPairs({{0, 1.0}})}, opt).ok());
}

TEST(KMeansTest, KClampedToPointCount) {
  KMeansOptions opt;
  opt.k = 10;
  std::vector<SparseVector> pts = {SparseVector::FromPairs({{0, 1.0}}),
                                   SparseVector::FromPairs({{1, 1.0}})};
  Result<KMeansResult> r = KMeansCluster(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centroids.size(), 2u);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  KMeansOptions opt;
  opt.k = 2;
  std::vector<SparseVector> pts = TwoClusters(20, 3);
  Result<KMeansResult> r = KMeansCluster(pts, opt);
  ASSERT_TRUE(r.ok());
  // All points of each half share an assignment, and the halves differ.
  std::set<std::size_t> first(r->assignment.begin(),
                              r->assignment.begin() + 20);
  std::set<std::size_t> second(r->assignment.begin() + 20,
                               r->assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(KMeansTest, CentroidsLiveInTheRightSubspace) {
  KMeansOptions opt;
  opt.k = 2;
  std::vector<SparseVector> pts = TwoClusters(15, 5);
  Result<KMeansResult> r = KMeansCluster(pts, opt);
  ASSERT_TRUE(r.ok());
  for (const SparseVector& c : r->centroids) {
    // Each centroid concentrates either on features 0-2 or 10-12.
    double low = 0, high = 0;
    for (const auto& [id, w] : c.entries()) {
      (id < 10 ? low : high) += w;
    }
    EXPECT_TRUE(low < 1e-9 || high < 1e-9)
        << "mixed centroid: " << c.ToString();
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  std::vector<SparseVector> pts = TwoClusters(25, 7);
  KMeansOptions k1;
  k1.k = 1;
  KMeansOptions k2;
  k2.k = 2;
  double i1 = KMeansCluster(pts, k1)->inertia;
  double i2 = KMeansCluster(pts, k2)->inertia;
  EXPECT_LT(i2, i1);
  EXPECT_NEAR(i2, 0.0, 1.0);  // near-perfect split of tight clusters
}

TEST(KMeansTest, DeterministicInSeed) {
  std::vector<SparseVector> pts = TwoClusters(10, 9);
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 99;
  Result<KMeansResult> a = KMeansCluster(pts, opt);
  Result<KMeansResult> b = KMeansCluster(pts, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->centroids.size(), b->centroids.size());
  for (std::size_t i = 0; i < a->centroids.size(); ++i) {
    EXPECT_EQ(a->centroids[i], b->centroids[i]);
  }
}

TEST(KMeansTest, SinglePoint) {
  KMeansOptions opt;
  opt.k = 1;
  SparseVector p = SparseVector::FromPairs({{3, 2.0}});
  Result<KMeansResult> r = KMeansCluster({p}, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centroids.size(), 1u);
  EXPECT_EQ(r->centroids[0], p);
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DuplicatePointsDontCrash) {
  KMeansOptions opt;
  opt.k = 3;
  SparseVector p = SparseVector::FromPairs({{0, 1.0}});
  std::vector<SparseVector> pts(10, p);
  Result<KMeansResult> r = KMeansCluster(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, HugeFeatureIdsAreRemapped) {
  KMeansOptions opt;
  opt.k = 2;
  std::vector<SparseVector> pts = {
      SparseVector::FromPairs({{2000000000u, 1.0}}),
      SparseVector::FromPairs({{2000000000u, 1.1}}),
      SparseVector::FromPairs({{100000000u, 1.0}}),
      SparseVector::FromPairs({{100000000u, 0.9}})};
  Result<KMeansResult> r = KMeansCluster(pts, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment[0], r->assignment[1]);
  EXPECT_EQ(r->assignment[2], r->assignment[3]);
  EXPECT_NE(r->assignment[0], r->assignment[2]);
  // Centroids come back in the global id space.
  for (const auto& c : r->centroids) {
    EXPECT_GE(c.entries().front().first, 100000000u);
  }
}

}  // namespace
}  // namespace p2pdt
