#include "p2pdmt/data_distribution.h"


#include <set>
#include <gtest/gtest.h>

namespace p2pdt {
namespace {

MultiLabelDataset MakeData(std::size_t n, TagId num_tags) {
  MultiLabelDataset d(num_tags);
  for (std::size_t i = 0; i < n; ++i) {
    MultiLabelExample ex;
    ex.x = SparseVector::FromPairs({{static_cast<uint32_t>(i), 1.0}});
    ex.tags = {static_cast<TagId>(i % num_tags)};
    d.Add(std::move(ex));
  }
  return d;
}

std::size_t TotalAssigned(const std::vector<MultiLabelDataset>& peers) {
  std::size_t total = 0;
  for (const auto& p : peers) total += p.size();
  return total;
}

TEST(DistributionTest, RejectsZeroPeers) {
  EXPECT_FALSE(DistributeData(MakeData(10, 2), 0, {}).ok());
}

TEST(DistributionTest, EveryExampleAssignedExactlyOnce) {
  MultiLabelDataset d = MakeData(200, 4);
  for (auto size : {SizeDistribution::kUniform, SizeDistribution::kZipf}) {
    for (auto cls :
         {ClassDistribution::kIid, ClassDistribution::kNonIidDirichlet}) {
      DataDistributionOptions opt;
      opt.size = size;
      opt.cls = cls;
      Result<std::vector<MultiLabelDataset>> peers =
          DistributeData(d, 16, opt);
      ASSERT_TRUE(peers.ok());
      EXPECT_EQ(peers->size(), 16u);
      EXPECT_EQ(TotalAssigned(peers.value()), 200u);
      // Uniqueness: every feature id (== example id) appears once.
      std::set<uint32_t> seen;
      for (const auto& p : peers.value()) {
        for (const auto& ex : p.examples()) {
          EXPECT_TRUE(seen.insert(ex.x.entries().front().first).second);
        }
      }
    }
  }
}

TEST(DistributionTest, UniformSizesAreBalanced) {
  DataDistributionOptions opt;
  Result<std::vector<MultiLabelDataset>> peers =
      DistributeData(MakeData(160, 4), 16, opt);
  ASSERT_TRUE(peers.ok());
  DistributionSummary s = SummarizeDistribution(peers.value(), 4);
  EXPECT_EQ(s.num_examples, 160u);
  EXPECT_GE(s.min_peer_size, 8u);
  EXPECT_LE(s.max_peer_size, 12u);
  EXPECT_LT(s.size_gini, 0.1);
}

TEST(DistributionTest, ZipfSizesAreSkewed) {
  DataDistributionOptions uniform;
  DataDistributionOptions zipf;
  zipf.size = SizeDistribution::kZipf;
  zipf.size_zipf_exponent = 1.2;
  MultiLabelDataset d = MakeData(400, 4);
  DistributionSummary su =
      SummarizeDistribution(DistributeData(d, 20, uniform).value(), 4);
  DistributionSummary sz =
      SummarizeDistribution(DistributeData(d, 20, zipf).value(), 4);
  EXPECT_GT(sz.size_gini, su.size_gini + 0.2);
  EXPECT_GT(sz.max_peer_size, su.max_peer_size);
}

TEST(DistributionTest, NonIidReducesTagCoverage) {
  MultiLabelDataset d = MakeData(400, 8);
  DataDistributionOptions iid;
  DataDistributionOptions non_iid;
  non_iid.cls = ClassDistribution::kNonIidDirichlet;
  non_iid.dirichlet_alpha = 0.05;
  DistributionSummary si =
      SummarizeDistribution(DistributeData(d, 10, iid).value(), 8);
  DistributionSummary sn =
      SummarizeDistribution(DistributeData(d, 10, non_iid).value(), 8);
  EXPECT_LT(sn.mean_tag_coverage, si.mean_tag_coverage - 0.1);
}

TEST(DistributionTest, ByUserFollowsOwnership) {
  MultiLabelDataset d = MakeData(40, 2);
  std::vector<std::size_t> doc_user;
  for (std::size_t i = 0; i < 40; ++i) doc_user.push_back(i % 4);
  DataDistributionOptions opt;
  opt.cls = ClassDistribution::kByUser;
  Result<std::vector<MultiLabelDataset>> peers =
      DistributeData(d, 4, opt, &doc_user);
  ASSERT_TRUE(peers.ok());
  for (const auto& p : peers.value()) EXPECT_EQ(p.size(), 10u);
  // Peer p must hold exactly the docs with user ≡ p (mod 4).
  for (std::size_t p = 0; p < 4; ++p) {
    for (const auto& ex : (*peers)[p].examples()) {
      EXPECT_EQ(ex.x.entries().front().first % 4, p);
    }
  }
}

TEST(DistributionTest, ByUserWrapsWhenMorePeersThanUsers) {
  MultiLabelDataset d = MakeData(20, 2);
  std::vector<std::size_t> doc_user(20, 7);  // single user id 7
  DataDistributionOptions opt;
  opt.cls = ClassDistribution::kByUser;
  Result<std::vector<MultiLabelDataset>> peers =
      DistributeData(d, 4, opt, &doc_user);
  ASSERT_TRUE(peers.ok());
  EXPECT_EQ((*peers)[7 % 4].size(), 20u);
}

TEST(DistributionTest, ByUserRequiresMapping) {
  DataDistributionOptions opt;
  opt.cls = ClassDistribution::kByUser;
  EXPECT_FALSE(DistributeData(MakeData(10, 2), 4, opt, nullptr).ok());
  std::vector<std::size_t> wrong_size(3, 0);
  EXPECT_FALSE(DistributeData(MakeData(10, 2), 4, opt, &wrong_size).ok());
}

TEST(DistributionTest, EmptyDatasetGivesEmptyPeers) {
  Result<std::vector<MultiLabelDataset>> peers =
      DistributeData(MultiLabelDataset(3), 5, {});
  ASSERT_TRUE(peers.ok());
  EXPECT_EQ(peers->size(), 5u);
  EXPECT_EQ(TotalAssigned(peers.value()), 0u);
}

TEST(DistributionTest, DeterministicInSeed) {
  MultiLabelDataset d = MakeData(100, 4);
  DataDistributionOptions opt;
  opt.size = SizeDistribution::kZipf;
  auto a = DistributeData(d, 8, opt);
  auto b = DistributeData(d, 8, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t p = 0; p < 8; ++p) {
    ASSERT_EQ((*a)[p].size(), (*b)[p].size());
    for (std::size_t i = 0; i < (*a)[p].size(); ++i) {
      EXPECT_EQ((*a)[p][i].x, (*b)[p][i].x);
    }
  }
}

TEST(DistributionTest, SummaryToStringMentionsGini) {
  DistributionSummary s =
      SummarizeDistribution(DistributeData(MakeData(50, 2), 5, {}).value(),
                            2);
  EXPECT_NE(s.ToString().find("gini"), std::string::npos);
}

TEST(DistributionTest, EnumNames) {
  EXPECT_STREQ(SizeDistributionToString(SizeDistribution::kZipf), "zipf");
  EXPECT_STREQ(ClassDistributionToString(ClassDistribution::kByUser),
               "by_user");
}

}  // namespace
}  // namespace p2pdt
