#include "p2pdmt/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace p2pdt {

const char* RetrainPolicyToString(RetrainPolicy p) {
  switch (p) {
    case RetrainPolicy::kFrozen:
      return "frozen";
    case RetrainPolicy::kPeriodic:
      return "periodic";
    case RetrainPolicy::kStalenessTriggered:
      return "staleness";
    case RetrainPolicy::kDriftTriggered:
      return "drift";
  }
  return "unknown";
}

namespace {

/// Order-sensitive FNV-1a over 64-bit words: the bit-identity digest. Two
/// runs with equal digests observed the same per-epoch quality bits and the
/// same simulated traffic counts.
struct Fnv64 {
  uint64_t state = 0xcbf29ce484222325ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 0x100000001b3ull;
    }
  }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

/// The correctness grade the staleness tracker is fed: Jaccard overlap of
/// the auto-tags with the user's tags (both empty = perfect match). A
/// continuous grade, deliberately — per-observation variance is what
/// limits per-peer drift detection at a handful of documents per epoch.
/// Inputs are sorted, per dataset / prediction invariants.
double TagJaccard(const std::vector<TagId>& truth,
                  const std::vector<TagId>& predicted) {
  if (truth.empty() && predicted.empty()) return 1.0;
  std::size_t inter = 0, i = 0, j = 0;
  while (i < truth.size() && j < predicted.size()) {
    if (truth[i] == predicted[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (truth[i] < predicted[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = truth.size() + predicted.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Confidence signal from a prediction: logistic squash of the best raw
/// score. Uncalibrated but monotone — exactly what the tracker's fast/slow
/// EWMA gap needs. NaN (missing) when the prediction failed or carried no
/// scores.
double PredictionConfidence(const P2PPrediction& p) {
  if (!p.success || p.scores.empty()) {
    return std::nan("");
  }
  const double best = *std::max_element(p.scores.begin(), p.scores.end());
  if (!std::isfinite(best)) return std::nan("");
  return 1.0 / (1.0 + std::exp(-best));
}

}  // namespace

Result<DriftExperimentResult> RunDriftExperiment(
    const VectorizedStream& stream, const DriftExperimentOptions& options) {
  const std::size_t num_peers = stream.corpus.num_users;
  const TagId num_tags = stream.corpus.dataset.num_tags();
  if (num_peers == 0 || stream.num_epochs < 2) {
    return Status::InvalidArgument(
        "drift harness needs >= 1 user and >= 2 epochs (epoch 0 is the "
        "initial training set)");
  }
  if (options.window_documents == 0) {
    return Status::InvalidArgument("window_documents must be positive");
  }

  DriftExperimentResult result;
  result.algorithm = AlgorithmTypeToString(options.algorithm);
  result.policy = RetrainPolicyToString(options.policy);
  result.num_peers = num_peers;
  result.num_epochs = stream.num_epochs;
  result.first_drift_epoch = stream.first_drift_epoch;

  // Epoch-major document index (stream order is already epoch-major, but
  // don't depend on it).
  std::vector<std::vector<uint32_t>> epoch_docs(stream.num_epochs);
  for (std::size_t i = 0; i < stream.doc_epoch.size(); ++i) {
    epoch_docs[stream.doc_epoch[i]].push_back(static_cast<uint32_t>(i));
  }

  // One immutable copy of the full stream backs every window shard.
  auto shared =
      std::make_shared<const MultiLabelDataset>(stream.corpus.dataset);

  // Per-peer sliding windows, seeded from epoch 0.
  std::vector<std::vector<uint32_t>> window(num_peers);
  auto append_doc = [&](std::size_t peer, uint32_t doc) {
    window[peer].push_back(doc);
    if (window[peer].size() > options.window_documents) {
      window[peer].erase(window[peer].begin());
    }
  };
  for (uint32_t doc : epoch_docs[0]) {
    append_doc(stream.corpus.doc_user[doc], doc);
  }

  // Environment + classifier. Each simulated user is one peer.
  EnvironmentOptions env_options = options.env;
  env_options.num_peers = num_peers;
  Result<std::unique_ptr<Environment>> env_result =
      Environment::Create(env_options);
  if (!env_result.ok()) return env_result.status();
  Environment& env = *env_result.value();

  ExperimentOptions algo_options;
  algo_options.algorithm = options.algorithm;
  algo_options.cempar = options.cempar;
  algo_options.pace = options.pace;
  Result<std::unique_ptr<P2PClassifier>> algo_result =
      MakeClassifier(env, algo_options);
  if (!algo_result.ok()) return algo_result.status();
  P2PClassifier& algo = *algo_result.value();
  if (options.policy != RetrainPolicy::kFrozen &&
      !algo.SupportsOnlineRefresh()) {
    return Status::FailedPrecondition(algo.name() +
                                      " does not support online refresh");
  }

  std::vector<DatasetShard> shards;
  shards.reserve(num_peers);
  for (std::size_t p = 0; p < num_peers; ++p) {
    shards.emplace_back(shared, window[p]);
  }
  P2PDT_RETURN_IF_ERROR(algo.SetupShards(std::move(shards), num_tags));

  env.StartDynamics();
  bool train_done = false;
  Status train_status = Status::OK();
  algo.Train([&](Status s) {
    train_status = s;
    train_done = true;
  });
  result.train_sim_seconds =
      env.RunUntilFlag(train_done, options.max_train_sim_seconds);
  if (!train_done) {
    return Status::Internal("drift harness: training did not quiesce");
  }
  P2PDT_RETURN_IF_ERROR(train_status);

  // Staleness tracking + observability surface.
  std::vector<ModelStalenessTracker> trackers(
      num_peers, ModelStalenessTracker(options.staleness));
  std::vector<uint8_t> was_drifting(num_peers, 0);
  Gauge* staleness_gauge = nullptr;
  Counter* drift_counter = nullptr;
  if (env.metrics() != nullptr) {
    staleness_gauge = &env.metrics()->GetGauge(
        "model_staleness", {{"classifier", algo.name()}});
    drift_counter = &env.metrics()->GetCounter(
        "drift_detected", {{"classifier", algo.name()}});
  }

  Fnv64 digest;
  uint64_t last_messages = env.net().stats().messages_sent();
  uint64_t last_bytes = env.net().stats().bytes_sent();

  for (std::size_t e = 1; e < stream.num_epochs; ++e) {
    const std::vector<uint32_t>& docs = epoch_docs[e];
    DriftEpochStats stats;
    stats.epoch = e;
    stats.documents = docs.size();

    // Auto-tag every arriving document from its owner peer — the paper's
    // SuggestTag loop, driven through the live protocol.
    std::vector<std::vector<TagId>> truth(docs.size());
    std::vector<std::vector<TagId>> predicted(docs.size());
    std::vector<double> confidence(docs.size(), std::nan(""));
    std::vector<uint8_t> answered(docs.size(), 0);
    std::size_t outstanding = docs.size();
    bool predict_done = (outstanding == 0);
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const MultiLabelExample& ex = stream.corpus.dataset[docs[i]];
      truth[i] = ex.tags;
      const NodeId requester = stream.corpus.doc_user[docs[i]];
      algo.Predict(requester, ex.x, [&, i](P2PPrediction p) {
        answered[i] = p.success ? 1 : 0;
        confidence[i] = PredictionConfidence(p);
        predicted[i] = std::move(p.tags);
        if (--outstanding == 0) predict_done = true;
      });
    }
    env.RunUntilFlag(predict_done, options.max_epoch_sim_seconds);
    if (!predict_done) {
      return Status::Internal("drift harness: epoch " + std::to_string(e) +
                              " predictions did not quiesce");
    }

    // Feed the trackers and slide the windows — strictly after the whole
    // epoch predicted, so arrival order inside an epoch cannot influence
    // what the epoch's own predictions saw.
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const std::size_t peer = stream.corpus.doc_user[docs[i]];
      trackers[peer].RecordDocument();
      // An outright prediction failure grades the *network*, not the
      // model (lost requests already surface as give-ups / suspicion);
      // feeding it as a zero would let packet loss impersonate drift.
      if (answered[i]) {
        trackers[peer].RecordHoldout(TagJaccard(truth[i], predicted[i]),
                                     confidence[i]);
      }
      append_doc(peer, docs[i]);
    }
    double staleness_sum = 0.0;
    for (std::size_t p = 0; p < num_peers; ++p) {
      staleness_sum += trackers[p].staleness();
      const bool drifting = trackers[p].DriftDetected();
      if (drifting && !was_drifting[p]) {
        ++stats.drift_detections;
        if (drift_counter != nullptr) drift_counter->Increment();
      }
      was_drifting[p] = drifting ? 1 : 0;
    }
    stats.mean_staleness = staleness_sum / static_cast<double>(num_peers);
    if (std::getenv("P2PDT_DRIFT_DEBUG") != nullptr) {
      double gsum = 0, gmax = 0, wsum = 0, ssum = 0;
      for (std::size_t p = 0; p < num_peers; ++p) {
        const double g = trackers[p].drift_score();
        gsum += g;
        gmax = std::max(gmax, g);
        wsum += trackers[p].window_accuracy();
        ssum += trackers[p].slow_accuracy();
      }
      std::fprintf(stderr,
                   "[drift-dbg] epoch=%zu gap=%.3f gmax=%.3f win=%.3f "
                   "slow=%.3f stale=%.3f\n",
                   e, gsum / num_peers, gmax, wsum / num_peers,
                   ssum / num_peers, stats.mean_staleness);
    }
    if (staleness_gauge != nullptr) staleness_gauge->Set(stats.mean_staleness);
    result.drift_detections += stats.drift_detections;

    // Retrain per policy: swap the peer's window in, refresh (retrain +
    // version-stamped republish through the protocol's own dissemination
    // and reliability paths), and restart its staleness clock.
    std::vector<std::size_t> retrain;
    switch (options.policy) {
      case RetrainPolicy::kFrozen:
        break;
      case RetrainPolicy::kPeriodic:
        if (options.periodic_interval_epochs > 0 &&
            e % options.periodic_interval_epochs == 0) {
          for (std::size_t p = 0; p < num_peers; ++p) {
            if (!window[p].empty()) retrain.push_back(p);
          }
        }
        break;
      case RetrainPolicy::kStalenessTriggered:
        for (std::size_t p = 0; p < num_peers; ++p) {
          if (!window[p].empty() &&
              trackers[p].staleness() >= options.staleness_trigger) {
            retrain.push_back(p);
          }
        }
        break;
      case RetrainPolicy::kDriftTriggered:
        for (std::size_t p = 0; p < num_peers; ++p) {
          if (!window[p].empty() && trackers[p].DriftDetected()) {
            retrain.push_back(p);
          }
        }
        break;
    }
    std::size_t refreshed = 0;
    bool refresh_done = true;
    for (std::size_t p : retrain) {
      Status s = algo.ReplacePeerData(p, DatasetShard(shared, window[p]));
      if (!s.ok()) return s;
      ++refreshed;
      refresh_done = false;
    }
    if (!refresh_done) {
      std::size_t pending = refreshed;
      for (std::size_t p : retrain) {
        algo.RefreshPeer(p, [&] {
          if (--pending == 0) refresh_done = true;
        });
        trackers[p].RecordTrained();
        was_drifting[p] = 0;
      }
      env.RunUntilFlag(refresh_done, options.max_epoch_sim_seconds);
      if (!refresh_done) {
        return Status::Internal("drift harness: epoch " + std::to_string(e) +
                                " refresh did not quiesce");
      }
    }
    stats.retrained_peers = refreshed;
    result.retrains += refreshed;

    MultiLabelMetrics quality = EvaluateMultiLabel(truth, predicted, num_tags);
    stats.macro_f1 = quality.macro_f1;
    stats.micro_f1 = quality.micro_f1;

    const uint64_t messages_now = env.net().stats().messages_sent();
    const uint64_t bytes_now = env.net().stats().bytes_sent();
    stats.messages = messages_now - last_messages;
    stats.bytes = bytes_now - last_bytes;
    last_messages = messages_now;
    last_bytes = bytes_now;

    digest.MixDouble(stats.macro_f1);
    digest.Mix(stats.documents);
    digest.Mix(stats.retrained_peers);
    digest.Mix(stats.messages);
    digest.Mix(stats.bytes);
    result.epochs.push_back(stats);
  }

  // Summary: dip depth and time-to-reconverge against the pre-drift level.
  const bool stationary = stream.first_drift_epoch >= stream.num_epochs;
  double pre = result.epochs.front().macro_f1;
  for (const DriftEpochStats& s : result.epochs) {
    if (s.epoch < stream.first_drift_epoch) pre = s.macro_f1;
  }
  result.pre_drift_f1 = pre;
  result.final_f1 = result.epochs.back().macro_f1;
  double min_post = result.final_f1;
  for (const DriftEpochStats& s : result.epochs) {
    if (stationary || s.epoch >= stream.first_drift_epoch) {
      min_post = std::min(min_post, s.macro_f1);
    }
  }
  result.min_post_drift_f1 = min_post;
  result.max_dip = std::max(0.0, pre - min_post);
  result.recovery_epochs = 0;
  result.reconverged = true;
  if (!stationary) {
    bool dipped = false;
    bool recovered = false;
    for (const DriftEpochStats& s : result.epochs) {
      if (s.epoch < stream.first_drift_epoch) continue;
      if (s.macro_f1 < pre - options.recovery_margin) {
        dipped = true;
      } else if (dipped && !recovered) {
        recovered = true;
        result.recovery_epochs = s.epoch - stream.first_drift_epoch;
      }
    }
    if (dipped && !recovered) {
      result.reconverged = false;
      result.recovery_epochs = stream.num_epochs;
    }
  }

  const NetworkStats& net_stats = env.net().stats();
  result.give_ups = net_stats.give_ups();
  result.total_messages = net_stats.messages_sent();
  result.total_bytes = net_stats.bytes_sent();
  ReliableTransport* transport = nullptr;
  if (auto* pace = dynamic_cast<Pace*>(&algo)) {
    transport = pace->transport();
  } else if (auto* cempar = dynamic_cast<Cempar*>(&algo)) {
    transport = cempar->transport();
  }
  if (transport != nullptr) {
    for (NodeId n = 0; n < env.net().num_nodes(); ++n) {
      if (transport->IsSuspected(n)) ++result.suspected_peers;
    }
  }
  digest.Mix(result.retrains);
  digest.Mix(result.total_messages);
  digest.Mix(result.total_bytes);
  result.fingerprint = digest.state;
  return result;
}

Result<std::vector<DriftEvent>> ScenarioEvents(const std::string& scenario,
                                               const StreamOptions& stream) {
  std::vector<DriftEvent> events;
  const std::size_t mid = stream.num_epochs / 2;
  if (scenario == "none") {
    return events;
  }
  if (scenario == "sudden_vocab") {
    DriftEvent ev;
    ev.kind = DriftKind::kVocabularyShift;
    ev.epoch = mid;
    ev.tag = DriftEvent::kAllTags;
    ev.magnitude = 1.0;
    events.push_back(ev);
    return events;
  }
  if (scenario == "gradual_rotation") {
    const std::size_t tags = std::min<std::size_t>(3, stream.base.num_tags);
    for (std::size_t t = 0; t < tags; ++t) {
      DriftEvent ev;
      ev.kind = DriftKind::kTopicRotation;
      ev.epoch = mid;
      ev.duration_epochs =
          std::min<std::size_t>(3, stream.num_epochs - mid);
      ev.magnitude = 0.6;
      ev.tag = t;
      events.push_back(ev);
    }
    return events;
  }
  if (scenario == "popularity_spike") {
    DriftEvent ev;
    ev.kind = DriftKind::kPopularitySpike;
    ev.epoch = mid;
    ev.duration_epochs = std::min<std::size_t>(2, stream.num_epochs - mid);
    ev.magnitude = 4.0;
    ev.tag = 0;
    events.push_back(ev);
    return events;
  }
  if (scenario == "new_tag") {
    if (stream.reserve_tags == 0) {
      return Status::InvalidArgument(
          "scenario new_tag needs reserve_tags >= 1");
    }
    DriftEvent ev;
    ev.kind = DriftKind::kNewTag;
    ev.epoch = mid;
    ev.magnitude = 1.5;
    ev.tag = stream.base.num_tags;  // first reserved tag
    events.push_back(ev);
    return events;
  }
  return Status::InvalidArgument("unknown drift scenario: " + scenario);
}

namespace {

DriftRow MakeRow(const DriftExperimentResult& r, const std::string& scenario,
                 double loss_rate, bool churn) {
  DriftRow row;
  row.algorithm = r.algorithm;
  row.scenario = scenario;
  row.policy = r.policy;
  row.loss_rate = loss_rate;
  row.churn = churn;
  row.num_epochs = r.num_epochs;
  row.first_drift_epoch = r.first_drift_epoch;
  row.pre_drift_f1 = r.pre_drift_f1;
  row.min_post_drift_f1 = r.min_post_drift_f1;
  row.final_f1 = r.final_f1;
  row.max_dip = r.max_dip;
  row.recovery_epochs = r.recovery_epochs;
  row.reconverged = r.reconverged;
  row.retrains = r.retrains;
  row.drift_detections = r.drift_detections;
  row.give_ups = r.give_ups;
  row.suspected_peers = r.suspected_peers;
  row.total_messages = r.total_messages;
  row.total_bytes = r.total_bytes;
  row.fingerprint = r.fingerprint;
  return row;
}

bool RunPoint(const VectorizedStream& stream, const DriftSweepOptions& options,
              const std::string& scenario, AlgorithmType algo,
              RetrainPolicy policy, double loss_rate, bool churn,
              std::vector<DriftRow>& rows) {
  DriftExperimentOptions opt = options.base;
  opt.algorithm = algo;
  opt.policy = policy;
  opt.env.physical.loss_rate = loss_rate;
  opt.env.churn = churn ? ChurnType::kExponential : ChurnType::kNone;
  Result<DriftExperimentResult> r = RunDriftExperiment(stream, opt);
  if (!r.ok()) {
    P2PDT_LOG(Warning) << AlgorithmTypeToString(algo) << " scenario="
                       << scenario << " policy="
                       << RetrainPolicyToString(policy) << " loss="
                       << loss_rate << " churn=" << churn
                       << " failed: " << r.status().ToString();
    return false;
  }
  rows.push_back(MakeRow(*r, scenario, loss_rate, churn));
  if (options.on_point) options.on_point(rows.back());
  return true;
}

}  // namespace

Result<std::vector<DriftRow>> RunDriftSweep(const DriftSweepOptions& options) {
  std::vector<DriftRow> rows;
  StreamOptions stream_options = options.stream;
  if (stream_options.reserve_tags == 0) stream_options.reserve_tags = 1;
  const double max_loss =
      options.loss_rates.empty()
          ? 0.0
          : *std::max_element(options.loss_rates.begin(),
                              options.loss_rates.end());

  for (const std::string& scenario : options.scenarios) {
    Result<std::vector<DriftEvent>> events =
        ScenarioEvents(scenario, stream_options);
    if (!events.ok()) return events.status();
    StreamOptions st = stream_options;
    st.events = std::move(events).value();
    Result<VectorizedStream> stream = MakeVectorizedStream(st);
    if (!stream.ok()) return stream.status();

    for (AlgorithmType algo : options.algorithms) {
      for (double loss : options.loss_rates) {
        for (RetrainPolicy policy : options.policies) {
          RunPoint(stream.value(), options, scenario, algo, policy, loss,
                   /*churn=*/false, rows);
        }
      }
      if (options.churn_arm && scenario == "sudden_vocab") {
        for (RetrainPolicy policy : options.policies) {
          RunPoint(stream.value(), options, scenario, algo, policy, max_loss,
                   /*churn=*/true, rows);
        }
      }
    }
  }
  return rows;
}

CsvWriter DriftCsv(const std::vector<DriftRow>& rows) {
  CsvWriter csv({"algorithm", "scenario", "policy", "loss_rate", "churn",
                 "num_epochs", "first_drift_epoch", "pre_drift_f1",
                 "min_post_drift_f1", "final_f1", "max_dip", "recovery_epochs",
                 "reconverged", "retrains", "drift_detections", "give_ups",
                 "suspected_peers", "total_messages", "total_bytes",
                 "fingerprint"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  auto hex = [&buf](uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  for (const DriftRow& row : rows) {
    csv.AddRow({row.algorithm, row.scenario, row.policy, fmt(row.loss_rate),
                row.churn ? "1" : "0", std::to_string(row.num_epochs),
                std::to_string(row.first_drift_epoch), fmt(row.pre_drift_f1),
                fmt(row.min_post_drift_f1), fmt(row.final_f1),
                fmt(row.max_dip), std::to_string(row.recovery_epochs),
                row.reconverged ? "1" : "0", std::to_string(row.retrains),
                std::to_string(row.drift_detections),
                std::to_string(row.give_ups),
                std::to_string(row.suspected_peers),
                std::to_string(row.total_messages),
                std::to_string(row.total_bytes), hex(row.fingerprint)});
  }
  return csv;
}

}  // namespace p2pdt
