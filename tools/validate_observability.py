#!/usr/bin/env python3
"""Validates the observability artifacts one traced experiment emits.

Usage: validate_observability.py <dir>  (expects trace.json, metrics.json,
report.json inside <dir>, as written by `bench_observe --smoke`; also
validates report_pace.json and any flame_*.txt collapsed-stack flamegraphs
when present).

Pure stdlib; the "schema" is structural: required keys, types, and the
invariants the exporters promise (every trace event carries a causal
identity, histograms have ordered quantiles, the report joins quality and
cost). Exits non-zero with a message per violation.
"""

import glob
import json
import os
import sys

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "trace: top level must be an object")
    events = doc.get("traceEvents")
    check(isinstance(events, list) and events,
          "trace: non-empty traceEvents array required")
    for i, ev in enumerate(events or []):
        where = f"trace event {i}"
        for key in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
            check(key in ev, f"{where}: missing '{key}'")
        check(ev.get("ph") in ("X", "i"),
              f"{where}: ph must be 'X' or 'i', got {ev.get('ph')!r}")
        if ev.get("ph") == "X":
            check("dur" in ev and ev["dur"] >= 0,
                  f"{where}: complete event needs non-negative dur")
        args = ev.get("args", {})
        for key in ("trace_id", "span_id", "parent_span"):
            check(isinstance(args.get(key), int),
                  f"{where}: args.{key} must be an integer")
        check(args.get("trace_id", 0) > 0, f"{where}: trace_id must be > 0")
    names = {ev.get("name") for ev in events or []}
    check("cempar/predict" in names,
          "trace: expected a 'cempar/predict' root span in the smoke run")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    check(isinstance(metrics, list) and metrics,
          "metrics: non-empty metrics array required")
    kinds = {"counter", "gauge", "histogram"}
    seen_phase_histogram = False
    for i, m in enumerate(metrics or []):
        where = f"metric {i} ({m.get('name', '?')})"
        check(isinstance(m.get("name"), str) and m["name"],
              f"{where}: name required")
        check(m.get("kind") in kinds, f"{where}: bad kind {m.get('kind')!r}")
        if m.get("kind") == "histogram":
            for key in ("count", "sum", "max", "p50", "p95", "p99"):
                check(isinstance(m.get(key), (int, float)),
                      f"{where}: histogram needs numeric '{key}'")
            if all(isinstance(m.get(k), (int, float))
                   for k in ("p50", "p95", "p99")):
                check(m["p50"] <= m["p95"] <= m["p99"],
                      f"{where}: quantiles out of order")
            if m.get("name") == "phase_seconds" and m.get("count", 0) > 0:
                seen_phase_histogram = True
        else:
            check(isinstance(m.get("value"), (int, float)),
                  f"{where}: needs numeric 'value'")
    check(seen_phase_histogram,
          "metrics: expected a populated phase_seconds histogram")


def validate_report(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("run", "quality", "cost", "timing", "overload",
                    "phases"):
        check(section in doc, f"report: missing '{section}' section")
    quality = doc.get("quality", {})
    for key in ("micro_f1", "macro_f1", "hamming_loss"):
        check(isinstance(quality.get(key), (int, float)),
              f"report: quality.{key} must be numeric")
    cost = doc.get("cost", {})
    for key in ("train_messages", "predict_messages", "delivery_rate",
                "retransmits"):
        check(key in cost, f"report: cost.{key} missing")
    # Overload health is always present — all zeros when the serving
    # queues, cache, and batching were off or idle — so dashboards can key
    # on the section unconditionally.
    overload = doc.get("overload", {})
    for key in ("requests_shed", "cache_hits", "cache_misses",
                "cache_stale", "cache_hit_rate", "serve_queue_depth",
                "batches", "mean_batch_size", "max_batch_size"):
        check(isinstance(overload.get(key), (int, float)),
              f"report: overload.{key} must be numeric")
    if isinstance(overload.get("cache_hit_rate"), (int, float)):
        check(0.0 <= overload["cache_hit_rate"] <= 1.0,
              "report: overload.cache_hit_rate outside [0, 1]")
    phases = doc.get("phases", [])
    check(isinstance(phases, list) and phases,
          "report: non-empty phases array required")
    for i, ph in enumerate(phases):
        where = f"report phase {i}"
        for key in ("classifier", "phase", "count", "p50", "p95", "p99"):
            check(key in ph, f"{where}: missing '{key}'")
    build = doc.get("build_info")
    check(isinstance(build, dict), "report: missing 'build_info' section")
    for key in ("git_sha", "compiler", "flags", "build_type", "sanitizer",
                "threads"):
        check(isinstance((build or {}).get(key), str),
              f"report: build_info.{key} must be a string")
    ledger = doc.get("cost_ledger")
    check(isinstance(ledger, dict), "report: missing 'cost_ledger' section")
    if isinstance(ledger, dict):
        check(isinstance(ledger.get("enabled"), bool),
              "report: cost_ledger.enabled must be a bool")
        for phase in ("train", "predict"):
            counts = ledger.get(phase)
            check(isinstance(counts, dict),
                  f"report: cost_ledger.{phase} must be an object")
            for op, value in (counts or {}).items():
                check(isinstance(value, int) and value >= 0,
                      f"report: cost_ledger.{phase}.{op} must be a "
                      "non-negative integer")
        if ledger.get("enabled") and isinstance(ledger.get("train"), dict):
            check(any(v > 0 for v in ledger["train"].values()),
                  "report: ledger enabled but every train counter is zero")


def validate_flamegraph(path):
    """Collapsed-stack format: `frame;frame;... <integer>` per line, at
    least one stack three or more frames deep."""
    with open(path) as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    check(bool(lines), f"{path}: empty flamegraph")
    max_depth = 0
    for i, line in enumerate(lines):
        where = f"{path} line {i + 1}"
        parts = line.rsplit(" ", 1)
        check(len(parts) == 2, f"{where}: expected 'stack <micros>'")
        if len(parts) != 2:
            continue
        stack, micros = parts
        check(micros.isdigit(), f"{where}: value must be a non-negative int")
        frames = stack.split(";")
        check(all(f and " " not in f for f in frames),
              f"{where}: empty or unsanitized frame in {stack!r}")
        max_depth = max(max_depth, len(frames))
    check(sorted(lines) == lines, f"{path}: lines must be sorted by stack")
    check(max_depth >= 3,
          f"{path}: deepest stack is {max_depth} frames, expected >= 3")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    d = sys.argv[1].rstrip("/")
    try:
        validate_trace(f"{d}/trace.json")
        validate_metrics(f"{d}/metrics.json")
        validate_report(f"{d}/report.json")
        if os.path.exists(f"{d}/report_pace.json"):
            validate_report(f"{d}/report_pace.json")
        for flame in sorted(glob.glob(f"{d}/flame_*.txt")):
            validate_flamegraph(flame)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(str(e))
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print("observability artifacts OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
