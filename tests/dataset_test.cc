#include "ml/dataset.h"

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

MultiLabelExample Ex(std::vector<SparseVector::Entry> features,
                     std::vector<TagId> tags) {
  MultiLabelExample ex;
  ex.x = SparseVector::FromPairs(std::move(features));
  ex.tags = std::move(tags);
  return ex;
}

TEST(MultiLabelDatasetTest, AddSortsAndDedupsTags) {
  MultiLabelDataset d;
  d.Add(Ex({{0, 1.0}}, {3, 1, 3}));
  EXPECT_EQ(d[0].tags, (std::vector<TagId>{1, 3}));
  EXPECT_EQ(d.num_tags(), 4u);  // max tag id + 1
}

TEST(MultiLabelDatasetTest, HasTagUsesBinarySearch) {
  MultiLabelDataset d;
  d.Add(Ex({{0, 1.0}}, {5, 2}));
  EXPECT_TRUE(d[0].HasTag(2));
  EXPECT_TRUE(d[0].HasTag(5));
  EXPECT_FALSE(d[0].HasTag(3));
}

TEST(MultiLabelDatasetTest, OneAgainstAllLabels) {
  MultiLabelDataset d(3);
  d.Add(Ex({{0, 1.0}}, {0}));
  d.Add(Ex({{1, 1.0}}, {1, 2}));
  d.Add(Ex({{2, 1.0}}, {2}));
  std::vector<Example> bin = d.OneAgainstAll(2);
  ASSERT_EQ(bin.size(), 3u);
  EXPECT_EQ(bin[0].y, -1.0);
  EXPECT_EQ(bin[1].y, 1.0);
  EXPECT_EQ(bin[2].y, 1.0);
}

TEST(MultiLabelDatasetTest, TagCounts) {
  MultiLabelDataset d(3);
  d.Add(Ex({{0, 1.0}}, {0, 1}));
  d.Add(Ex({{1, 1.0}}, {1}));
  std::vector<std::size_t> counts = d.TagCounts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(MultiLabelDatasetTest, SplitProportionsAndCoverage) {
  MultiLabelDataset d(2);
  for (int i = 0; i < 100; ++i) {
    d.Add(Ex({{static_cast<uint32_t>(i), 1.0}}, {static_cast<TagId>(i % 2)}));
  }
  Rng rng(3);
  auto [train, test] = d.Split(0.2, rng);
  EXPECT_EQ(train.size(), 20u);
  EXPECT_EQ(test.size(), 80u);
  EXPECT_EQ(train.num_tags(), 2u);
  // Every example appears exactly once across the two halves.
  std::set<uint32_t> seen;
  for (const auto& ex : train.examples()) {
    seen.insert(ex.x.entries().front().first);
  }
  for (const auto& ex : test.examples()) {
    seen.insert(ex.x.entries().front().first);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(MultiLabelDatasetTest, SplitIsDeterministicInSeed) {
  MultiLabelDataset d(2);
  for (int i = 0; i < 30; ++i) {
    d.Add(Ex({{static_cast<uint32_t>(i), 1.0}}, {0}));
  }
  Rng r1(9), r2(9);
  auto [a_train, a_test] = d.Split(0.5, r1);
  auto [b_train, b_test] = d.Split(0.5, r2);
  ASSERT_EQ(a_train.size(), b_train.size());
  for (std::size_t i = 0; i < a_train.size(); ++i) {
    EXPECT_EQ(a_train[i].x, b_train[i].x);
  }
}

TEST(MultiLabelDatasetTest, MergeCombinesAndGrowsTagUniverse) {
  MultiLabelDataset a(2), b(5);
  a.Add(Ex({{0, 1.0}}, {0}));
  b.Add(Ex({{1, 1.0}}, {4}));
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.num_tags(), 5u);
}

TEST(MultiLabelDatasetTest, WireSizeAccounts) {
  MultiLabelDataset d;
  d.Add(Ex({{0, 1.0}, {1, 2.0}}, {0, 1}));
  // vector (4 + 2*12) + tag header 4 + 2 tags * 4.
  EXPECT_EQ(d.WireSize(), 28u + 4u + 8u);
}

MultiLabelDataset ShardCorpus() {
  MultiLabelDataset d(6);
  for (uint32_t i = 0; i < 64; ++i) {
    d.Add(Ex({{i, 1.0}, {i + 100, 0.5 * (i % 7)}},
             {static_cast<TagId>(i % 6), static_cast<TagId>((i * 3) % 6)}));
  }
  return d;
}

TEST(DatasetShardTest, AccessorsMatchMaterializedCopy) {
  auto corpus = std::make_shared<const MultiLabelDataset>(ShardCorpus());
  DatasetShard shard(corpus, {3, 7, 7, 11, 42, 63});
  MultiLabelDataset copy = shard.Materialize();
  ASSERT_EQ(shard.size(), copy.size());
  EXPECT_EQ(shard.num_tags(), copy.num_tags());
  EXPECT_EQ(shard.TagCounts(), copy.TagCounts());
  EXPECT_EQ(shard.WireSize(), copy.WireSize());
  for (std::size_t i = 0; i < shard.size(); ++i) {
    EXPECT_EQ(shard[i].x, copy[i].x);
    EXPECT_EQ(shard[i].tags, copy[i].tags);
  }
  for (TagId t = 0; t < shard.num_tags(); ++t) {
    std::vector<Example> a = shard.OneAgainstAll(t);
    std::vector<Example> b = copy.OneAgainstAll(t);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].x, b[i].x);
      EXPECT_EQ(a[i].y, b[i].y);
    }
  }
}

TEST(DatasetShardTest, OwnWrapsDataAsSinglePeerCorpus) {
  DatasetShard shard = DatasetShard::Own(ShardCorpus());
  EXPECT_EQ(shard.size(), 64u);
  EXPECT_EQ(shard.num_tags(), 6u);
  EXPECT_EQ(shard[5].tags, ShardCorpus()[5].tags);
}

TEST(DatasetShardTest, SetNumTagsGrowsButNeverShrinks) {
  auto corpus = std::make_shared<const MultiLabelDataset>(ShardCorpus());
  DatasetShard shard(corpus, {0, 1});
  shard.set_num_tags(9);
  EXPECT_EQ(shard.num_tags(), 9u);
  shard.set_num_tags(2);
  EXPECT_EQ(shard.num_tags(), 9u);
}

TEST(DatasetShardTest, PerPeerFootprintIsIndicesNotDocuments) {
  auto corpus = std::make_shared<const MultiLabelDataset>(ShardCorpus());
  // 1000 flyweight peers, 16 docs each, over the one shared corpus.
  std::vector<DatasetShard> peers;
  std::size_t total_footprint = 0;
  std::size_t total_materialized = 0;
  for (uint32_t p = 0; p < 1000; ++p) {
    std::vector<uint32_t> idx;
    for (uint32_t k = 0; k < 16; ++k) idx.push_back((p * 17 + k * 5) % 64);
    peers.emplace_back(corpus, std::move(idx));
    total_footprint += peers.back().FootprintBytes();
    total_materialized += peers.back().WireSize();
  }
  // Each peer is charged the shard header plus one uint32_t per held doc —
  // documents themselves live once, in the shared corpus.
  const std::size_t per_peer = peers[0].FootprintBytes();
  EXPECT_GE(per_peer, 16u * sizeof(uint32_t));
  EXPECT_LE(per_peer, sizeof(DatasetShard) + 2 * 16 * sizeof(uint32_t));
  // The fleet's flyweight state is far below what materialized per-peer
  // copies would cost (the pre-refactor engine's memory model).
  EXPECT_LT(total_footprint, total_materialized / 3);
}

TEST(FeatureRemapperTest, CompactRoundTrip) {
  FeatureRemapper remap;
  SparseVector v =
      SparseVector::FromPairs({{1000000, 1.0}, {5, 2.0}, {70000, 3.0}});
  remap.Observe(v);
  EXPECT_EQ(remap.num_features(), 3u);
  SparseVector compact = remap.ToCompact(v);
  EXPECT_EQ(compact.nnz(), 3u);
  EXPECT_LT(compact.DimensionBound(), 4u);
  SparseVector back = remap.ToGlobal(compact);
  EXPECT_EQ(back, v);
}

TEST(FeatureRemapperTest, UnseenFeaturesDropped) {
  FeatureRemapper remap;
  remap.Observe(SparseVector::FromPairs({{1, 1.0}}));
  SparseVector v = SparseVector::FromPairs({{1, 5.0}, {2, 7.0}});
  SparseVector compact = remap.ToCompact(v);
  EXPECT_EQ(compact.nnz(), 1u);
}

TEST(FeatureRemapperTest, DenseToGlobal) {
  FeatureRemapper remap;
  remap.Observe(SparseVector::FromPairs({{42, 1.0}, {7, 1.0}}));
  // Compact ids are assigned in observation order: 7 -> ? (sorted entries:
  // 7 first), 42 second.
  SparseVector out = remap.DenseToGlobal({1.5, 0.0});
  EXPECT_EQ(out.nnz(), 1u);
  EXPECT_DOUBLE_EQ(out.Get(7), 1.5);
}

TEST(FeatureRemapperTest, PreservesDotProducts) {
  FeatureRemapper remap;
  SparseVector a = SparseVector::FromPairs({{10, 1.0}, {999, 2.0}});
  SparseVector b = SparseVector::FromPairs({{10, 3.0}, {500, 4.0}});
  remap.Observe(a);
  remap.Observe(b);
  EXPECT_DOUBLE_EQ(remap.ToCompact(a).Dot(remap.ToCompact(b)), a.Dot(b));
}

}  // namespace
}  // namespace p2pdt
