#include "p2psim/simulator.h"

#include <algorithm>

namespace p2pdt {

void Simulator::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(now_ + std::max(delay, 0.0), std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap
  // relative to event work here).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::RunUntil(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

std::size_t Simulator::RunAll() {
  std::size_t count = 0;
  while (Step()) ++count;
  return count;
}

}  // namespace p2pdt
