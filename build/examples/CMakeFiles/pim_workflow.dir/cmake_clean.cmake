file(REMOVE_RECURSE
  "CMakeFiles/pim_workflow.dir/pim_workflow.cpp.o"
  "CMakeFiles/pim_workflow.dir/pim_workflow.cpp.o.d"
  "pim_workflow"
  "pim_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
