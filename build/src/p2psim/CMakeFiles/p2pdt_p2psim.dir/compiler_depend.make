# Empty compiler generated dependencies file for p2pdt_p2psim.
# This may be replaced when dependencies are built.
