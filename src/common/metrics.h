#ifndef P2PDT_COMMON_METRICS_H_
#define P2PDT_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace p2pdt {

/// Sorted (key, value) pairs identifying one member of a metric family,
/// e.g. {{"classifier","pace"},{"phase","train"}}. Callers may pass labels
/// in any order; the registry canonicalizes by sorting on key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical identity string: `name{k1=v1,k2=v2}` (labels sorted by key),
/// or just `name` for an unlabeled metric. Exports and lookups key on this.
std::string RenderMetricKey(const std::string& name,
                            const MetricLabels& labels);

/// Monotonically increasing count. Lock-free; safe to drive from pool
/// workers during parallel training.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (e.g. live homes, model coverage). Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with exact count/sum/max and quantile estimates
/// (linear interpolation inside the bucket containing the rank). Bounds are
/// upper edges; one implicit overflow bucket catches everything above the
/// last bound. All updates are lock-free, so per-task wall timings can be
/// observed straight from thread-pool workers.
class Histogram {
 public:
  /// Exponential bounds suited to both simulated latencies (tens of ms) and
  /// wall-clock compute phases (µs to minutes): 1e-4 .. 250 seconds.
  static const std::vector<double>& DefaultLatencyBounds();

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest observed value (0 when empty).
  double max() const;
  double mean() const;
  /// Estimated q-quantile in [0, 1]; 0 when empty. Clamped to max().
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every registered metric, ordered by canonical key
/// so exports (and goldens built on them) are deterministic.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind = Kind::kCounter;
    /// Counter / gauge reading.
    double value = 0.0;
    /// Histogram aggregates (count also doubles as "observations").
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Raw buckets kept so snapshots can be diffed exactly.
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;

    std::string key() const { return RenderMetricKey(name, labels); }
  };

  std::vector<Entry> entries;

  const Entry* Find(const std::string& name,
                    const MetricLabels& labels = {}) const;
  bool empty() const { return entries.empty(); }
};

/// after − before: counters and histogram buckets subtract (entries absent
/// from `before` pass through); gauges take the `after` reading. Histogram
/// quantiles are re-derived from the differenced buckets, so a diff answers
/// "what did *this phase* cost" even when the registry spans a whole run.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Registry of named metric families. Get* registers on first use and
/// returns a stable reference; subsequent calls with the same (name,
/// labels) return the same object, so call sites can cache the pointer or
/// re-resolve each time. Registration takes a mutex; recording on the
/// returned objects is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge& GetGauge(const std::string& name, MetricLabels labels = {});
  /// Empty `bounds` selects Histogram::DefaultLatencyBounds(). Bounds are
  /// fixed at first registration; later calls ignore the argument.
  Histogram& GetHistogram(const std::string& name, MetricLabels labels = {},
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (families stay registered).
  void Reset();

  std::size_t num_metrics() const;

  /// `name,labels,kind,value,count,sum,mean,max,p50,p95,p99` — one row per
  /// metric, ordered by canonical key.
  static std::string ToCsv(const MetricsSnapshot& snapshot);
  /// `{"metrics":[{"name":...,"labels":{...},"kind":...,...}]}`.
  static std::string ToJson(const MetricsSnapshot& snapshot);

  std::string ToCsv() const { return ToCsv(Snapshot()); }
  std::string ToJson() const { return ToJson(Snapshot()); }

  Status WriteCsv(const std::string& path) const;
  Status WriteJson(const std::string& path) const;

 private:
  template <typename T>
  struct Family {
    std::string name;
    MetricLabels labels;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;  // guards the maps; metric objects are stable
  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<Histogram>> histograms_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_METRICS_H_
