// End-to-end overload-robustness properties:
//  - versioned prediction cache: a cached answer is served without network
//    traffic, and no stale answer outlives a model-version bump or its TTL
//    (both protocols);
//  - the armed load generator is bit-deterministic across sim shard counts
//    (serial == sharded);
//  - idle overload machinery (queues, admission, cache, batching) changes
//    no prediction: disarmed fingerprints match the pure-default config.

#include <gtest/gtest.h>

#include "p2pdmt/overload.h"

namespace p2pdt {
namespace {

const VectorizedCorpus& SmallCorpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 12;
    opt.min_docs_per_user = 12;
    opt.max_docs_per_user = 20;
    opt.num_tags = 4;
    opt.vocabulary_size = 600;
    opt.seed = 20100913;
    Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }();
  return corpus;
}

/// Trained classifier + environment, built the same way the harness builds
/// them, with direct access for fine-grained cache assertions.
struct Trained {
  std::unique_ptr<Environment> env;
  std::unique_ptr<P2PClassifier> algo;
  CorpusSplit split;

  static Trained Make(AlgorithmType algorithm,
                      const PredictCacheOptions& cache) {
    const VectorizedCorpus& corpus = SmallCorpus();
    Trained t;
    t.split = SplitCorpus(corpus, 0.2, 777);

    EnvironmentOptions env_options;
    env_options.num_peers = corpus.num_users;
    env_options.observe.metrics = true;
    Result<std::unique_ptr<Environment>> env = Environment::Create(env_options);
    EXPECT_TRUE(env.ok());
    t.env = std::move(env).value();

    ExperimentOptions algo_options;
    algo_options.algorithm = algorithm;
    algo_options.pace.predict_cache = cache;
    algo_options.cempar.predict_cache = cache;
    Result<std::unique_ptr<P2PClassifier>> algo =
        MakeClassifier(*t.env, algo_options);
    EXPECT_TRUE(algo.ok());
    t.algo = std::move(algo).value();

    auto shared = std::make_shared<const MultiLabelDataset>(t.split.train);
    DataDistributionOptions dist;
    dist.cls = ClassDistribution::kByUser;
    Result<std::vector<std::vector<uint32_t>>> indices = DistributeIndices(
        *shared, corpus.num_users, dist, &t.split.train_user);
    EXPECT_TRUE(indices.ok());
    std::vector<DatasetShard> shards;
    for (std::size_t p = 0; p < corpus.num_users; ++p) {
      shards.emplace_back(shared, std::move((*indices)[p]));
    }
    EXPECT_TRUE(
        t.algo->SetupShards(std::move(shards), corpus.dataset.num_tags())
            .ok());

    t.env->StartDynamics();
    bool done = false;
    t.algo->Train([&](Status s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      done = true;
    });
    t.env->RunUntilFlag(done, 3600.0);
    EXPECT_TRUE(done);
    return t;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    algo->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600.0);
    EXPECT_TRUE(done);
    return out;
  }

  const PredictCacheSet* cache() const {
    if (auto* pace = dynamic_cast<Pace*>(algo.get())) {
      return pace->predict_cache();
    }
    if (auto* cempar = dynamic_cast<Cempar*>(algo.get())) {
      return cempar->predict_cache();
    }
    return nullptr;
  }
};

PredictCacheOptions CacheOn(double ttl = 1e9) {
  PredictCacheOptions opt;
  opt.enabled = true;
  opt.capacity = 64;
  opt.ttl_seconds = ttl;
  return opt;
}

class OverloadCacheTest : public ::testing::TestWithParam<AlgorithmType> {};

TEST_P(OverloadCacheTest, RepeatLookupIsServedFromCache) {
  Trained t = Trained::Make(GetParam(), CacheOn());
  const SparseVector& doc = t.split.test[0].x;

  P2PPrediction first = t.PredictSync(0, doc);
  ASSERT_TRUE(first.success);
  EXPECT_FALSE(first.cached);

  const uint64_t messages_before = t.env->net().stats().messages_sent();
  P2PPrediction second = t.PredictSync(0, doc);
  ASSERT_TRUE(second.success);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.tags, first.tags);
  EXPECT_EQ(second.scores, first.scores);
  // A cache hit costs zero network traffic.
  EXPECT_EQ(t.env->net().stats().messages_sent(), messages_before);
  ASSERT_NE(t.cache(), nullptr);
  EXPECT_EQ(t.cache()->hits(), 1u);

  // Another requester has its own (cold) cache.
  P2PPrediction other = t.PredictSync(1, doc);
  ASSERT_TRUE(other.success);
  EXPECT_FALSE(other.cached);
}

TEST_P(OverloadCacheTest, VersionBumpInvalidatesCachedAnswers) {
  Trained t = Trained::Make(GetParam(), CacheOn());
  const SparseVector& doc = t.split.test[0].x;

  ASSERT_TRUE(t.PredictSync(0, doc).success);
  ASSERT_TRUE(t.PredictSync(0, doc).cached);

  // Refresh some peer's model: the publish epoch bumps, so every cached
  // answer predates the current model generation and must not be served.
  bool refreshed = false;
  t.algo->RefreshPeer(1, [&] { refreshed = true; });
  t.env->RunUntilFlag(refreshed, 3600.0);
  ASSERT_TRUE(refreshed);

  P2PPrediction after = t.PredictSync(0, doc);
  ASSERT_TRUE(after.success);
  EXPECT_FALSE(after.cached);
  ASSERT_NE(t.cache(), nullptr);
  EXPECT_GE(t.cache()->stale(), 1u);

  // The fresh answer re-enters the cache under the new epoch.
  EXPECT_TRUE(t.PredictSync(0, doc).cached);
}

TEST_P(OverloadCacheTest, TtlBoundsCacheLifetime) {
  // With a TTL shorter than one prediction round-trip, nothing is ever
  // served stale from the cache.
  Trained t = Trained::Make(GetParam(), CacheOn(/*ttl=*/1e-9));
  const SparseVector& doc = t.split.test[0].x;
  ASSERT_TRUE(t.PredictSync(0, doc).success);
  P2PPrediction second = t.PredictSync(0, doc);
  ASSERT_TRUE(second.success);
  EXPECT_FALSE(second.cached);
  ASSERT_NE(t.cache(), nullptr);
  EXPECT_GE(t.cache()->stale(), 1u);
  EXPECT_EQ(t.cache()->hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, OverloadCacheTest,
                         ::testing::Values(AlgorithmType::kPace,
                                           AlgorithmType::kCempar),
                         [](const ::testing::TestParamInfo<AlgorithmType>& i) {
                           return std::string(AlgorithmTypeToString(i.param));
                         });

OverloadExperimentOptions ArmedOptions(AlgorithmType algorithm) {
  OverloadExperimentOptions opt;
  opt.algorithm = algorithm;
  opt.env.num_peers = SmallCorpus().num_users;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.loadgen.enabled = true;
  opt.loadgen.sessions = SmallCorpus().num_users;
  opt.loadgen.min_docs = 3;
  opt.loadgen.max_docs = 5;
  opt.loadgen.arrival_rate = 12.0;
  opt.loadgen.max_retries = 1;
  FlashCrowdBurst burst;
  burst.start = 1.0;
  burst.duration = 1.5;
  burst.rate_multiplier = 6.0;
  burst.hot_fraction = 0.9;
  burst.hot_docs = 4;
  opt.loadgen.bursts = {burst};

  auto defend = [](ServeOptions& serve) {
    serve.enabled = true;
    serve.service_rate = 4.0;
    serve.admission_control = true;
    serve.max_depth = 16;
    serve.max_wait = 0.5;
    serve.retry_after = 0.25;
  };
  defend(opt.pace.serve);
  defend(opt.cempar.serve);
  opt.pace.predict_cache = CacheOn();
  opt.cempar.predict_cache = CacheOn();
  opt.cempar.batch_predictions = true;
  opt.cempar.reliable_transport = true;
  return opt;
}

class OverloadDeterminismTest
    : public ::testing::TestWithParam<AlgorithmType> {};

TEST_P(OverloadDeterminismTest, ArmedSerialEqualsSharded) {
  OverloadExperimentOptions serial = ArmedOptions(GetParam());
  serial.sim_shards = 1;
  OverloadExperimentOptions sharded = ArmedOptions(GetParam());
  sharded.sim_shards = 4;

  Result<OverloadRunStats> a = RunOverloadExperiment(SmallCorpus(), serial);
  Result<OverloadRunStats> b = RunOverloadExperiment(SmallCorpus(), sharded);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(a->load.offered, 0u);
  EXPECT_EQ(a->load.offered, b->load.offered);
  EXPECT_EQ(a->load.completed, b->load.completed);
  EXPECT_EQ(a->load.fingerprint, b->load.fingerprint);
  EXPECT_EQ(a->requests_shed, b->requests_shed);
  EXPECT_EQ(a->cache_hits, b->cache_hits);
}

TEST_P(OverloadDeterminismTest, IdleMachineryChangesNoPrediction) {
  // Pure default: no serve queues, no cache, no batching.
  OverloadExperimentOptions plain;
  plain.algorithm = GetParam();
  plain.env.num_peers = SmallCorpus().num_users;
  plain.distribution.cls = ClassDistribution::kByUser;
  plain.loadgen.enabled = false;

  // Full machinery constructed but idle: finite queues with admission
  // control, an empty cache, batching — and a sequential disarmed eval
  // that never contends.
  OverloadExperimentOptions armed = ArmedOptions(GetParam());
  armed.loadgen.enabled = false;
  armed.cempar.reliable_transport = plain.cempar.reliable_transport;

  Result<OverloadRunStats> a = RunOverloadExperiment(SmallCorpus(), plain);
  Result<OverloadRunStats> b = RunOverloadExperiment(SmallCorpus(), armed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(a->load.offered, 0u);
  EXPECT_EQ(a->load.fingerprint, b->load.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, OverloadDeterminismTest,
                         ::testing::Values(AlgorithmType::kPace,
                                           AlgorithmType::kCempar),
                         [](const ::testing::TestParamInfo<AlgorithmType>& i) {
                           return std::string(AlgorithmTypeToString(i.param));
                         });

}  // namespace
}  // namespace p2pdt
