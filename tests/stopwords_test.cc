#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(StopWordsTest, PaperExamplesAreFiltered) {
  // The paper names "a, for, and, not" as examples (Sec. 2).
  StopWordFilter f;
  EXPECT_TRUE(f.IsStopWord("a"));
  EXPECT_TRUE(f.IsStopWord("for"));
  EXPECT_TRUE(f.IsStopWord("and"));
  EXPECT_TRUE(f.IsStopWord("not"));
  EXPECT_TRUE(f.IsStopWord("etc"));
}

TEST(StopWordsTest, ContentWordsSurvive) {
  StopWordFilter f;
  EXPECT_FALSE(f.IsStopWord("database"));
  EXPECT_FALSE(f.IsFiltered("peer"));
}

TEST(StopWordsTest, FilterPreservesOrder) {
  StopWordFilter f;
  EXPECT_EQ(f.Filter({"the", "quick", "and", "lazy", "fox"}),
            (std::vector<std::string>{"quick", "lazy", "fox"}));
}

TEST(StopWordsTest, SensitiveWordsFiltered) {
  StopWordFilter f;
  f.AddSensitiveWord("projectx");
  EXPECT_TRUE(f.IsSensitive("projectx"));
  EXPECT_TRUE(f.IsFiltered("projectx"));
  EXPECT_FALSE(f.IsStopWord("projectx"));  // tracked separately
  EXPECT_EQ(f.Filter({"about", "projectx", "budget"}),
            (std::vector<std::string>{"budget"}));
}

TEST(StopWordsTest, SensitiveWordsLowercased) {
  StopWordFilter f;
  f.AddSensitiveWord("SecretName");
  EXPECT_TRUE(f.IsSensitive("secretname"));
}

TEST(StopWordsTest, AddSensitiveWordsBatch) {
  StopWordFilter f;
  f.AddSensitiveWords({"alpha", "beta"});
  EXPECT_EQ(f.num_sensitive_words(), 2u);
  EXPECT_TRUE(f.IsFiltered("alpha"));
  EXPECT_TRUE(f.IsFiltered("beta"));
}

TEST(StopWordsTest, CustomStopList) {
  StopWordFilter f({"foo", "bar"});
  EXPECT_TRUE(f.IsStopWord("foo"));
  EXPECT_FALSE(f.IsStopWord("the"));  // default list not loaded
  EXPECT_EQ(f.num_stop_words(), 2u);
}

TEST(StopWordsTest, DefaultListIsSubstantial) {
  EXPECT_GT(StopWordFilter::DefaultEnglishStopWords().size(), 100u);
  StopWordFilter f;
  EXPECT_EQ(f.num_stop_words(),
            StopWordFilter::DefaultEnglishStopWords().size());
}

}  // namespace
}  // namespace p2pdt
