// OBS1 — cost of observability: run the same CEMPaR / PACE experiment with
// the observability stack off, with metrics + tracing on, and with the full
// stack (metrics + tracing + cost ledger + profiler) on, and report
// wall-clock and message counts side by side. The subsystems are required
// to be behavior-neutral (identical quality and traffic — enforced here,
// the bench fails on a mismatch) and cheap (small wall-clock overhead,
// reported per arm).
//
// `--smoke` runs one small traced CEMPaR experiment and one PACE
// experiment with the full stack and writes their artifacts (trace /
// metrics / run report JSON, collapsed-stack flamegraphs) under
// bench_results/observe/ for CI schema validation, skipping the sweep.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

enum class Arm { kOff, kObserve, kLedger };

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kOff:
      return "off";
    case Arm::kObserve:
      return "on";
    case Arm::kLedger:
      return "ledger";
  }
  return "?";
}

ExperimentOptions PointOptions(AlgorithmType algo, Arm arm) {
  ExperimentOptions opt = MacroDefaults(algo, 32);
  opt.max_test_documents = 150;
  opt.env.physical.loss_rate = 0.05;
  opt.cempar.reliable_transport = true;
  opt.env.observe.metrics = arm != Arm::kOff;
  opt.env.observe.tracing = arm != Arm::kOff;
  opt.env.observe.cost_ledger = arm == Arm::kLedger;
  opt.env.observe.profiling = arm == Arm::kLedger;
  return opt;
}

Result<VectorizedCorpus> SmokeCorpus() {
  CorpusOptions copt;
  copt.num_users = 10;
  copt.min_docs_per_user = 30;
  copt.max_docs_per_user = 40;
  copt.num_tags = 5;
  copt.vocabulary_size = 1000;
  copt.seed = 4242;
  return MakeVectorizedCorpus(copt);
}

int RunSmoke() {
  std::printf("=== OBS1 smoke: traced experiments for CI ===\n");
  Result<VectorizedCorpus> corpus = SmokeCorpus();
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories("bench_results/observe", ec);

  // CEMPaR: full stack, all four artifact kinds.
  ExperimentOptions opt;
  opt.algorithm = AlgorithmType::kCempar;
  opt.env.num_peers = 10;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 40;
  opt.env.physical.loss_rate = 0.1;
  opt.cempar.reliable_transport = true;
  opt.env.observe.metrics = true;
  opt.env.observe.tracing = true;
  opt.env.observe.cost_ledger = true;
  opt.env.observe.profiling = true;
  opt.trace_path = "bench_results/observe/trace.json";
  opt.metrics_path = "bench_results/observe/metrics.json";
  opt.report_path = "bench_results/observe/report.json";
  opt.profile_path = "bench_results/observe/flame_cempar.txt";

  Result<ExperimentResult> r = RunExperiment(corpus.value(), opt);
  if (!r.ok()) {
    std::fprintf(stderr, "experiment: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("cempar macro_f1=%.4f metrics=%zu failed=%zu "
              "train_kernel_evals=%llu\n",
              r->metrics.macro_f1, r->observability.entries.size(),
              r->failed_predictions,
              static_cast<unsigned long long>(r->train_cost.kernel_evals));

  // PACE: full stack, its own report + flamegraph.
  ExperimentOptions popt = opt;
  popt.algorithm = AlgorithmType::kPace;
  popt.cempar = CemparOptions{};
  popt.trace_path.clear();
  popt.metrics_path.clear();
  popt.report_path = "bench_results/observe/report_pace.json";
  popt.profile_path = "bench_results/observe/flame_pace.txt";
  Result<ExperimentResult> p = RunExperiment(corpus.value(), popt);
  if (!p.ok()) {
    std::fprintf(stderr, "pace experiment: %s\n",
                 p.status().ToString().c_str());
    return 1;
  }
  std::printf("pace macro_f1=%.4f train_kmeans_evals=%llu\n",
              p->metrics.macro_f1,
              static_cast<unsigned long long>(
                  p->train_cost.kmeans_distance_evals));
  std::printf("[artifacts written to bench_results/observe/]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  std::printf("=== OBS1: observability overhead (off / on / ledger) ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/64,
                                                /*num_tags=*/8);

  CsvWriter csv({"algorithm", "observability", "macro_f1", "train_messages",
                 "train_bytes", "predict_messages", "predict_bytes",
                 "retransmits", "wall_seconds", "metric_families"});
  std::printf("%-8s %-6s %8s %10s %10s %10s %9s %8s\n", "algo", "obs",
              "macroF1", "trainMsgs", "predMsgs", "retx", "wall(s)",
              "metrics");

  int behavior_violations = 0;
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    double wall_off = 0.0;
    uint64_t msgs_off = 0, bytes_off = 0;
    double f1_off = 0.0;
    for (Arm arm : {Arm::kOff, Arm::kObserve, Arm::kLedger}) {
      Result<ExperimentResult> r =
          RunExperiment(corpus, PointOptions(algo, arm));
      if (!r.ok()) {
        std::fprintf(stderr, "point failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (arm == Arm::kOff) {
        wall_off = r->wall_seconds;
        msgs_off = r->train_messages + r->predict_messages;
        bytes_off = r->train_bytes + r->predict_bytes;
        f1_off = r->metrics.macro_f1;
      } else {
        // Behavior neutrality is a hard requirement, not a wish: every arm
        // must produce identical traffic and quality.
        if (r->train_messages + r->predict_messages != msgs_off ||
            r->train_bytes + r->predict_bytes != bytes_off ||
            r->metrics.macro_f1 != f1_off) {
          std::fprintf(stderr,
                       "BEHAVIOR VIOLATION: %s arm '%s' changed the run\n",
                       r->algorithm.c_str(), ArmName(arm));
          ++behavior_violations;
        }
      }
      std::printf("%-8s %-6s %8.4f %10llu %10llu %10llu %9.2f %8zu\n",
                  r->algorithm.c_str(), ArmName(arm), r->metrics.macro_f1,
                  static_cast<unsigned long long>(r->train_messages),
                  static_cast<unsigned long long>(r->predict_messages),
                  static_cast<unsigned long long>(r->retransmits),
                  r->wall_seconds, r->observability.entries.size());
      if (arm != Arm::kOff && wall_off > 0.0) {
        std::printf("  -> overhead %+.1f%%\n",
                    100.0 * (r->wall_seconds - wall_off) / wall_off);
      }
      Status s = csv.AddRow(
          {r->algorithm, ArmName(arm), std::to_string(r->metrics.macro_f1),
           std::to_string(r->train_messages), std::to_string(r->train_bytes),
           std::to_string(r->predict_messages),
           std::to_string(r->predict_bytes), std::to_string(r->retransmits),
           std::to_string(r->wall_seconds),
           std::to_string(r->observability.entries.size())});
      if (!s.ok()) {
        std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }

  WriteResults(csv, "observe.csv");
  return behavior_violations == 0 ? 0 : 1;
}
