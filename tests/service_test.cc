// End-to-end tests for the real-socket service daemon: connection state
// machine, typed protocol rejects, backpressure/close discipline, idle and
// slowloris reaping, admission-control sheds, graceful drain, and the full
// SocketFaultInjector + socket-loadgen flows — all against a fake dispatch
// (no trained model needed; these tests own the socket layer).
//
// Threading: each fixture builds the daemon fully on the test thread, then
// starts a loop thread — that construction is the happens-before edge. The
// stats are read only after Run() returns (loop joined).

#include <thread>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/daemon.h"
#include "net/socket_fault.h"
#include "p2pdmt/service_loadgen.h"

namespace p2pdt {
namespace {

SparseVector Doc(uint32_t salt) {
  SparseVector v;
  v.PushBack(salt % 7, 1.0 + salt);
  v.PushBack(100 + salt % 13, 0.5);
  return v;
}

/// Deterministic fake classifier: tags derived from the doc's first id and
/// the requester — enough structure that a corrupted answer is detectable.
P2PPrediction FakeDispatch(NodeId requester, const SparseVector& x) {
  P2PPrediction p;
  p.success = true;
  const uint32_t first =
      x.empty() ? 0u : static_cast<uint32_t>(x.entries()[0].first);
  p.tags = {static_cast<TagId>(first % 5),
            static_cast<TagId>((first + requester) % 5 + 5)};
  p.scores = {1.0 + first, 0.25 * (requester + 1.0)};
  return p;
}

struct DaemonHarness {
  explicit DaemonHarness(DaemonOptions options = {},
                         ServiceDaemon::Dispatch dispatch = FakeDispatch)
      : daemon(std::move(options), std::move(dispatch)) {
    Status st = daemon.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    loop = std::thread([this] { daemon.Run(); });
  }

  ~DaemonHarness() { StopAndJoin(); }

  void StopAndJoin() {
    if (loop.joinable()) {
      daemon.RequestDrain();
      loop.join();
    }
  }

  ServiceClient Connect() {
    ServiceClient client;
    Status st = client.Connect("127.0.0.1", daemon.port());
    EXPECT_TRUE(st.ok()) << st.ToString();
    return client;
  }

  ServiceDaemon daemon;
  std::thread loop;
};

PredictRequest MakeRequest(uint64_t id, uint64_t requester, uint32_t salt) {
  PredictRequest req;
  req.id = id;
  req.requester = requester;
  req.doc = Doc(salt);
  return req;
}

std::string RawBytes(uint32_t magic, uint8_t type, uint32_t len,
                     const std::string& payload) {
  std::string out;
  out.push_back(static_cast<char>(magic & 0xFF));
  out.push_back(static_cast<char>((magic >> 8) & 0xFF));
  out.push_back(static_cast<char>((magic >> 16) & 0xFF));
  out.push_back(static_cast<char>((magic >> 24) & 0xFF));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out += payload;
  return out;
}

TEST(ServiceDaemonTest, PingRoundTrip) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  EXPECT_TRUE(client.Ping(0xC0FFEE).ok());
}

TEST(ServiceDaemonTest, PredictRoundTripEchoesIdAndAnswer) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  ServiceClient::PredictOutcome out;
  ASSERT_TRUE(client.Predict(MakeRequest(77, 3, 11), out).ok());
  ASSERT_EQ(out.kind, ServiceClient::PredictOutcome::Kind::kResponse);
  EXPECT_EQ(out.response.id, 77u);
  EXPECT_TRUE(out.response.success);
  const P2PPrediction want = FakeDispatch(3, Doc(11));
  ASSERT_EQ(out.response.tags.size(), want.tags.size());
  for (std::size_t i = 0; i < want.tags.size(); ++i) {
    EXPECT_EQ(out.response.tags[i], static_cast<uint32_t>(want.tags[i]));
  }
  EXPECT_EQ(out.response.scores, want.scores);
}

TEST(ServiceDaemonTest, PipelinedRequestsAllAnswered) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  constexpr int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client
                    .SendFrame(FrameType::kPredictRequest,
                               EncodePredictRequest(MakeRequest(
                                   1000 + i, i % 8, i)))
                    .ok());
  }
  for (int i = 0; i < kCount; ++i) {
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(frame, 10.0).ok()) << "reply " << i;
    ASSERT_EQ(frame.type, FrameType::kPredictResponse);
    Result<PredictResponse> resp = DecodePredictResponse(frame.payload);
    ASSERT_TRUE(resp.ok());
    // Responses come back in request order on one connection.
    EXPECT_EQ(resp->id, static_cast<uint64_t>(1000 + i));
  }
}

TEST(ServiceDaemonTest, OneByteWritesReassemble) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  const std::string bytes = EncodeFrame(
      FrameType::kPredictRequest, EncodePredictRequest(MakeRequest(5, 1, 2)));
  for (char c : bytes) {
    ASSERT_TRUE(client.SendRaw(std::string(1, c)).ok());
  }
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(frame, 10.0).ok());
  EXPECT_EQ(frame.type, FrameType::kPredictResponse);
}

void ExpectTypedErrorThenClose(ServiceClient& client, WireError want) {
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(frame, 5.0).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  Result<ErrorReject> reject = DecodeErrorReject(frame.payload);
  ASSERT_TRUE(reject.ok());
  EXPECT_EQ(reject->code, want);
  // Then EOF: a poisoned stream cannot be resumed.
  const Status eof = client.ReadFrame(frame, 5.0);
  EXPECT_EQ(eof.code(), StatusCode::kIOError) << eof.ToString();
}

TEST(ServiceDaemonTest, BadMagicTypedErrorThenClose) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  ASSERT_TRUE(client.SendRaw(RawBytes(0x12345678, 5, 4, "abcd")).ok());
  ExpectTypedErrorThenClose(client, WireError::kBadMagic);
}

TEST(ServiceDaemonTest, OversizedLengthTypedErrorThenClose) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  ASSERT_TRUE(
      client
          .SendRaw(RawBytes(kFrameMagic, 1,
                            static_cast<uint32_t>(kMaxFramePayload) + 1, ""))
          .ok());
  ExpectTypedErrorThenClose(client, WireError::kOversized);
}

TEST(ServiceDaemonTest, ZeroPayloadTypedErrorThenClose) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  ASSERT_TRUE(client.SendRaw(RawBytes(kFrameMagic, 5, 0, "")).ok());
  ExpectTypedErrorThenClose(client, WireError::kZeroPayload);
}

TEST(ServiceDaemonTest, ServerOnlyFrameTypeRejectedThenClose) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  // kPong is well-formed but only a server sends it.
  ASSERT_TRUE(client.SendFrame(FrameType::kPong, EncodePingPayload(1)).ok());
  ExpectTypedErrorThenClose(client, WireError::kUnexpectedType);
}

TEST(ServiceDaemonTest, MalformedPayloadKeepsConnectionOpen) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  // Frame boundary holds; the payload inside is garbage. Typed error,
  // stream stays synchronized, next request on the SAME connection works.
  ASSERT_TRUE(client
                  .SendFrame(FrameType::kPredictRequest,
                             std::string("\x01\x02\x03\x04", 4))
                  .ok());
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(frame, 5.0).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  Result<ErrorReject> reject = DecodeErrorReject(frame.payload);
  ASSERT_TRUE(reject.ok());
  EXPECT_EQ(reject->code, WireError::kMalformed);
  EXPECT_TRUE(client.Ping(0xBEE).ok());
}

TEST(ServiceDaemonTest, AdmissionShedsWithTypedOverloadAndRetryAfter) {
  DaemonOptions options;
  options.serve.enabled = true;
  options.serve.admission_control = true;
  // One token every 2 wall seconds, depth 1: the first request is served,
  // an immediate second lands on a full queue and must be shed.
  options.serve.service_rate = 0.5;
  options.serve.max_depth = 1;
  options.serve.retry_after = 0.125;
  options.admission_nodes = 1;  // all requesters share one queue
  DaemonHarness h(options);
  ServiceClient client = h.Connect();

  ServiceClient::PredictOutcome first;
  ASSERT_TRUE(client.Predict(MakeRequest(1, 0, 1), first).ok());
  EXPECT_EQ(first.kind, ServiceClient::PredictOutcome::Kind::kResponse);

  ServiceClient::PredictOutcome second;
  ASSERT_TRUE(client.Predict(MakeRequest(2, 0, 2), second).ok());
  ASSERT_EQ(second.kind, ServiceClient::PredictOutcome::Kind::kOverload);
  EXPECT_EQ(second.overload.id, 2u);
  EXPECT_GT(second.overload.retry_after, 0.0);

  h.StopAndJoin();
  EXPECT_EQ(h.daemon.stats().shed, 1u);
}

TEST(ServiceDaemonTest, IdleConnectionReapedWithinDeadline) {
  DaemonOptions options;
  options.idle_timeout = 0.2;
  DaemonHarness h(options);
  ServiceClient client = h.Connect();
  ASSERT_TRUE(client.Ping(1).ok());
  // Go silent; the daemon owes us an EOF within idle_timeout + one wheel
  // tick (plus scheduling slack).
  Frame frame;
  const Status st = client.ReadFrame(frame, 5.0);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  h.StopAndJoin();
  EXPECT_EQ(h.daemon.stats().reaped_idle, 1u);
}

TEST(ServiceDaemonTest, SlowlorisMidFrameStallReaped) {
  DaemonOptions options;
  options.idle_timeout = 0.2;
  DaemonHarness h(options);
  ServiceClient client = h.Connect();
  // Half a header, then silence — never enough bytes for a verdict.
  ASSERT_TRUE(client.SendRaw(std::string("P2DF\x05", 5)).ok());
  Frame frame;
  const Status st = client.ReadFrame(frame, 5.0);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  h.StopAndJoin();
  EXPECT_EQ(h.daemon.stats().reaped_idle, 1u);
}

TEST(ServiceDaemonTest, AbruptResetOnlyKillsThatConnection) {
  DaemonHarness h;
  ServiceClient victim = h.Connect();
  ASSERT_TRUE(victim
                  .SendRaw(EncodeFrame(FrameType::kPredictRequest,
                                       EncodePredictRequest(
                                           MakeRequest(9, 0, 3)))
                               .substr(0, 12))  // mid-frame
                  .ok());
  victim.AbortiveClose();  // RST
  // The daemon must shrug it off; an unrelated connection sees full
  // service immediately after.
  ServiceClient healthy = h.Connect();
  EXPECT_TRUE(healthy.Ping(0xAB).ok());
  ServiceClient::PredictOutcome out;
  EXPECT_TRUE(healthy.Predict(MakeRequest(10, 1, 4), out).ok());
  EXPECT_EQ(out.kind, ServiceClient::PredictOutcome::Kind::kResponse);
}

TEST(ServiceDaemonTest, ConnectFloodRefusedWithTypedError) {
  DaemonOptions options;
  options.max_connections = 2;
  DaemonHarness h(options);
  ServiceClient a = h.Connect();
  ServiceClient b = h.Connect();
  ASSERT_TRUE(a.Ping(1).ok());
  ASSERT_TRUE(b.Ping(2).ok());

  ServiceClient refused = h.Connect();
  Frame frame;
  ASSERT_TRUE(refused.ReadFrame(frame, 5.0).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  Result<ErrorReject> reject = DecodeErrorReject(frame.payload);
  ASSERT_TRUE(reject.ok());
  EXPECT_EQ(reject->code, WireError::kTooManyConnections);
  const Status eof = refused.ReadFrame(frame, 5.0);
  EXPECT_EQ(eof.code(), StatusCode::kIOError);

  // Capacity frees up once a held connection closes.
  a.Close();
  // Give the daemon a beat to process the close.
  for (int attempt = 0;; ++attempt) {
    ServiceClient retry = h.Connect();
    if (retry.Ping(3, 1.0).ok()) break;
    ASSERT_LT(attempt, 50) << "slot never freed";
  }
  h.StopAndJoin();
  EXPECT_GE(h.daemon.stats().refused, 1u);
}

TEST(ServiceDaemonTest, DrainAnswersInFlightThenExitsCleanly) {
  DaemonHarness h;
  ServiceClient client = h.Connect();
  // Buffer several requests, then immediately request the drain: every
  // request already received must still be answered before the close.
  constexpr int kCount = 8;
  std::string burst;
  for (int i = 0; i < kCount; ++i) {
    burst += EncodeFrame(FrameType::kPredictRequest,
                         EncodePredictRequest(MakeRequest(200 + i, i, i)));
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  h.daemon.RequestDrain();
  int answered = 0;
  for (int i = 0; i < kCount; ++i) {
    Frame frame;
    if (!client.ReadFrame(frame, 10.0).ok()) break;
    if (frame.type == FrameType::kPredictResponse) ++answered;
  }
  h.loop.join();
  EXPECT_EQ(answered, kCount);
  EXPECT_TRUE(h.daemon.stats().drain_completed);
  EXPECT_EQ(h.daemon.stats().drain_forced_close, 0u);
  EXPECT_EQ(h.daemon.open_connections(), 0u);
}

TEST(ServiceDaemonTest, FaultInjectorFullScriptPasses) {
  DaemonOptions options;
  options.idle_timeout = 0.3;
  options.max_connections = 8;
  DaemonHarness h(options);
  SocketFaultOptions fo;
  fo.port = h.daemon.port();
  fo.doc = Doc(1);
  fo.connect_flood = 12;  // past max_connections: refusals must be typed
  fo.io_timeout = 5.0;
  Result<SocketFaultReport> report = RunSocketFaults(fo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->resets_done, fo.resets);
  EXPECT_EQ(report->partial_frames_ok, fo.partial_write_frames);
  EXPECT_GT(report->typed_errors_received, 0);
  EXPECT_EQ(report->stalls_reaped, fo.mid_frame_stalls);
  EXPECT_GT(report->flood_refused_typed + report->flood_refused_closed, 0);
  EXPECT_TRUE(report->liveness_ok);
  h.StopAndJoin();
  // Nothing leaked: every connection the script opened is gone.
  EXPECT_EQ(h.daemon.open_connections(), 0u);
}

TEST(ServiceDaemonTest, SocketLoadgenReplayIsCleanAndDeterministic) {
  DaemonHarness h;
  std::vector<SparseVector> catalog;
  for (uint32_t i = 0; i < 32; ++i) catalog.push_back(Doc(i));

  ServiceLoadOptions load;
  load.port = h.daemon.port();
  load.schedule.sessions = 6;
  load.schedule.min_docs = 4;
  load.schedule.max_docs = 8;
  load.schedule.arrival_rate = 500.0;
  load.schedule.seed = 20100913;

  Result<ServiceLoadResult> first = RunServiceLoad(load, catalog);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->load.offered, 0u);
  EXPECT_EQ(first->load.failed, 0u);
  EXPECT_EQ(first->io_errors, 0u);
  EXPECT_EQ(first->load.completed, first->load.offered);

  // Same schedule, same daemon, same catalog: the per-answer fingerprint
  // (latency excluded by design) must be bit-identical across runs.
  Result<ServiceLoadResult> second = RunServiceLoad(load, catalog);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->load.fingerprint, first->load.fingerprint);
}

}  // namespace
}  // namespace p2pdt
