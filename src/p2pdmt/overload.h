#ifndef P2PDT_P2PDMT_OVERLOAD_H_
#define P2PDT_P2PDMT_OVERLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "corpus/vectorize.h"
#include "p2pdmt/experiment.h"
#include "p2pdmt/loadgen.h"

namespace p2pdt {

/// One run of the overload harness: train the protocol as usual, then (when
/// the load generator is armed) replay tagging sessions against it and
/// measure goodput-within-SLO, shed rate and cache effectiveness. With the
/// generator disarmed the harness instead runs a short sequential
/// prediction pass and fingerprints only the answers (tags + scores) — the
/// witness that idle overload machinery changes no prediction.
struct OverloadExperimentOptions {
  AlgorithmType algorithm = AlgorithmType::kPace;
  EnvironmentOptions env;
  DataDistributionOptions distribution;
  CemparOptions cempar;
  PaceOptions pace;
  LoadGenOptions loadgen;
  double train_fraction = 0.2;
  /// Forwarded into the classifier's sim_shards knob when non-zero; armed
  /// load-generation results are bit-identical for every value.
  std::size_t sim_shards = 0;
  /// Cap on the request catalog drawn from the test split (0 = all).
  std::size_t max_docs = 0;
  double max_train_sim_seconds = 3600.0;
  double max_load_sim_seconds = 86400.0;
  uint64_t seed = 777;
};

/// Load-generator outcome plus the server-side ledgers for the same run.
struct OverloadRunStats {
  LoadGenResult load;
  /// Requests shed by admission control (serve-queue counters, summed over
  /// nodes; equals the requests_shed metric family total).
  uint64_t requests_shed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale = 0;
  uint64_t give_ups = 0;
  /// NetworkStats drops recorded with DropReason::kOverloadShed.
  uint64_t overload_drops = 0;
  double train_sim_seconds = 0.0;
};

Result<OverloadRunStats> RunOverloadExperiment(
    const VectorizedCorpus& corpus, const OverloadExperimentOptions& options);

/// One grid point of the overload sweep, flattened for the CSV.
struct OverloadRow {
  std::string algorithm;
  std::string arm;    // "undefended" | "defended"
  std::string burst;  // "none" | "flash" | "disarmed"
  double arrival_rate = 0.0;
  double burst_multiplier = 1.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t cached = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t retries = 0;
  uint64_t within_slo = 0;
  double goodput_within_slo = 0.0;
  /// Sheds per request attempt (offered + retries).
  double shed_rate = 0.0;
  /// hits / (hits + misses + stale) of the prediction cache; 0 when the
  /// cache was disabled or never consulted.
  double cache_hit_rate = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double slo_s = 0.0;
  uint64_t give_ups = 0;
  uint64_t fingerprint = 0;
};

struct OverloadSweepOptions {
  /// Template for every point; algorithm / serve / cache / loadgen knobs
  /// are overridden per arm below.
  OverloadExperimentOptions base;
  std::vector<AlgorithmType> algorithms = {AlgorithmType::kPace,
                                           AlgorithmType::kCempar};
  /// Aggregate offered request rates (requests per sim second) swept.
  std::vector<double> arrival_rates = {40.0};
  /// Include the steady (no burst) arm alongside the flash-crowd arm.
  bool none_burst = true;
  double burst_multiplier = 8.0;
  /// Per-node serving capacity. PACE serves predictions at the requester
  /// itself, so its budget is per-session; CEMPaR concentrates requests on
  /// the hot documents' home super-peers, so its budget is per owner. 0 =
  /// auto: headroom × the respective steady-state per-node offered rate.
  double pace_service_rate = 0.0;
  double cempar_service_rate = 0.0;
  /// Steady-state capacity headroom used by the auto calibration: capacity
  /// = headroom × offered. Well above 1 the steady arm is healthy (service
  /// time is a small fraction of the SLO, so off-burst requests land within
  /// it even in the undefended arm); the flash multiplier then drives
  /// offered past capacity and only the defended arm keeps its goodput.
  double capacity_headroom = 4.0;
  /// Invoked after every completed point (progress reporting); may be null.
  std::function<void(const OverloadRow&)> on_point;
};

/// Runs the grid: algorithms × arrival rates × bursts × {undefended,
/// defended}, plus one disarmed bit-identity pair per algorithm (the same
/// two arm configurations with the load generator off — their fingerprints
/// must match exactly).
Result<std::vector<OverloadRow>> RunOverloadSweep(
    const VectorizedCorpus& corpus, const OverloadSweepOptions& options);

/// Flattens sweep rows into the CSV schema bench_overload writes
/// (bench_results/overload.csv).
CsvWriter OverloadCsv(const std::vector<OverloadRow>& rows);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_OVERLOAD_H_
