// DEMO1 — the paper's headline demonstration setting (Sec. 3): a
// Delicious-like corpus, 20 % of tagged documents used for training, the
// rest auto-tagged, on a DHT-based P2P network with more than 500 peers.
// Reports tagging quality and communication cost for CEMPaR, PACE and the
// baselines.
//
// Expected shape: CEMPaR ≈ PACE ≈ Centralized ≫ LocalOnly in accuracy;
// CEMPaR trains orders of magnitude cheaper than PACE's broadcast but pays
// per-prediction traffic; Centralized ships raw data and has a single
// point of failure.

#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO1: tagging accuracy on a >500-peer DHT (20/80 split) "
              "===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/512,
                                                /*num_tags=*/16);
  std::printf("corpus: %zu documents, %u tags, %zu users\n\n",
              corpus.dataset.size(), corpus.dataset.num_tags(),
              corpus.num_users);

  CsvWriter csv({"algorithm", "peers", "micro_f1", "macro_f1", "jaccard",
                 "subset_acc", "hamming", "train_MiB", "train_KiB_per_peer",
                 "predict_MiB", "failed", "wall_sec"});

  std::printf("%-12s %8s %8s %8s %12s %14s %12s %7s\n", "algorithm",
              "microF1", "macroF1", "jaccard", "train(MiB)", "KiB/peer",
              "pred(MiB)", "failed");
  for (AlgorithmType algo :
       {AlgorithmType::kCempar, AlgorithmType::kPace,
        AlgorithmType::kModelAvg, AlgorithmType::kCentralized,
        AlgorithmType::kLocalOnly}) {
    ExperimentOptions opt = MacroDefaults(algo, 512);
    Result<ExperimentResult> r = RunExperiment(corpus, opt);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", AlgorithmTypeToString(algo),
                   r.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %8.4f %8.4f %8.4f %12.2f %14.1f %12.2f %4zu/%zu\n",
                r->algorithm.c_str(), r->metrics.micro_f1,
                r->metrics.macro_f1, r->metrics.jaccard_accuracy,
                r->train_bytes / (1024.0 * 1024.0),
                r->train_bytes_per_peer() / 1024.0,
                r->predict_bytes / (1024.0 * 1024.0), r->failed_predictions,
                r->test_documents);
    csv.AddRow({r->algorithm, std::to_string(r->num_peers),
                std::to_string(r->metrics.micro_f1),
                std::to_string(r->metrics.macro_f1),
                std::to_string(r->metrics.jaccard_accuracy),
                std::to_string(r->metrics.subset_accuracy),
                std::to_string(r->metrics.hamming_loss),
                std::to_string(r->train_bytes / (1024.0 * 1024.0)),
                std::to_string(r->train_bytes_per_peer() / 1024.0),
                std::to_string(r->predict_bytes / (1024.0 * 1024.0)),
                std::to_string(r->failed_predictions),
                std::to_string(r->wall_seconds)});
  }
  WriteResults(csv, "demo1_accuracy.csv");
  return 0;
}
