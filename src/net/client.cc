#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "net/event_loop.h"  // MonotonicSeconds

namespace p2pdt {

namespace {

Status SetBlocking(int fd, bool blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError("fcntl(F_GETFL) failed");
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (want != flags && fcntl(fd, F_SETFL, want) < 0) {
    return Status::IOError("fcntl(F_SETFL) failed");
  }
  return Status::OK();
}

}  // namespace

ServiceClient::ServiceClient() = default;

ServiceClient::~ServiceClient() { Close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), eof_(other.eof_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
  other.eof_ = false;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    eof_ = other.eof_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
    other.eof_ = false;
  }
  return *this;
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::AbortiveClose() {
  if (fd_ < 0) return;
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  Close();
}

Status ServiceClient::Connect(const std::string& host, uint16_t port,
                              double timeout_seconds) {
  Close();
  eof_ = false;
  decoder_ = FrameDecoder();

  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc = connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status st =
        Status::IOError(std::string("connect: ") + strerror(errno));
    Close();
    return st;
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout_ms = static_cast<int>(timeout_seconds * 1e3);
    rc = poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      Close();
      return Status::Unavailable("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      Close();
      return Status::IOError(std::string("connect: ") +
                             strerror(err != 0 ? err : errno));
    }
  }
  Status st = SetBlocking(fd_, true);
  if (!st.ok()) {
    Close();
    return st;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status ServiceClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + strerror(errno));
  }
  return Status::OK();
}

Status ServiceClient::SendFrame(FrameType type, const std::string& payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Status ServiceClient::ReadAvailable() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char buf[16384];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      if (!decoder_.Feed(buf, static_cast<std::size_t>(n))) {
        return Status::DataLoss("frame decoder rejected the stream");
      }
      continue;
    }
    if (n == 0) {
      // EOF and frames can arrive in one wakeup (typed error then FIN).
      // Record it; callers surface the close only once the decoder is dry.
      eof_ = true;
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + strerror(errno));
  }
}

bool ServiceClient::PollFrame(Frame& out) {
  return decoder_.Poll(out) == FrameDecoder::Next::kFrame;
}

Status ServiceClient::ReadFrame(Frame& out, double timeout_seconds) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const double deadline = MonotonicSeconds() + timeout_seconds;
  for (;;) {
    const FrameDecoder::Next verdict = decoder_.Poll(out);
    if (verdict == FrameDecoder::Next::kFrame) return Status::OK();
    if (verdict != FrameDecoder::Next::kNeedMore) {
      return Status::DataLoss(std::string("protocol violation from server: ") +
                              WireErrorToString(
                                  FrameDecoder::RejectToError(verdict)));
    }
    if (eof_) return Status::IOError("connection closed by server");
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0.0) return Status::Unavailable("read timed out");
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, static_cast<int>(remaining * 1e3) + 1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::Unavailable("read timed out");
    P2PDT_RETURN_IF_ERROR(ReadAvailable());
  }
}

Status ServiceClient::Predict(const PredictRequest& request,
                              PredictOutcome& out, double timeout_seconds) {
  P2PDT_RETURN_IF_ERROR(
      SendFrame(FrameType::kPredictRequest, EncodePredictRequest(request)));
  Frame frame;
  P2PDT_RETURN_IF_ERROR(ReadFrame(frame, timeout_seconds));
  switch (frame.type) {
    case FrameType::kPredictResponse: {
      Result<PredictResponse> resp = DecodePredictResponse(frame.payload);
      P2PDT_RETURN_IF_ERROR(resp.status());
      out.kind = PredictOutcome::Kind::kResponse;
      out.response = std::move(*resp);
      return Status::OK();
    }
    case FrameType::kOverload: {
      Result<OverloadReject> rej = DecodeOverloadReject(frame.payload);
      P2PDT_RETURN_IF_ERROR(rej.status());
      out.kind = PredictOutcome::Kind::kOverload;
      out.overload = *rej;
      return Status::OK();
    }
    case FrameType::kError: {
      Result<ErrorReject> rej = DecodeErrorReject(frame.payload);
      P2PDT_RETURN_IF_ERROR(rej.status());
      out.kind = PredictOutcome::Kind::kError;
      out.error = std::move(*rej);
      return Status::OK();
    }
    default:
      return Status::DataLoss(std::string("unexpected frame type: ") +
                              FrameTypeToString(frame.type));
  }
}

Status ServiceClient::Ping(uint64_t token, double timeout_seconds) {
  P2PDT_RETURN_IF_ERROR(
      SendFrame(FrameType::kPing, EncodePingPayload(token)));
  Frame frame;
  P2PDT_RETURN_IF_ERROR(ReadFrame(frame, timeout_seconds));
  if (frame.type != FrameType::kPong) {
    return Status::DataLoss(std::string("expected kPong, got ") +
                            FrameTypeToString(frame.type));
  }
  Result<uint64_t> echoed = DecodePingPayload(frame.payload);
  P2PDT_RETURN_IF_ERROR(echoed.status());
  if (*echoed != token) {
    return Status::DataLoss("pong token mismatch");
  }
  return Status::OK();
}

}  // namespace p2pdt
