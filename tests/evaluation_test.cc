#include "p2pdmt/evaluation.h"

#include <cmath>
#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "corpus/vectorize.h"
#include "p2pdmt/experiment.h"

namespace p2pdt {
namespace {

TEST(EvaluationScheduleTest, FiresAtConfiguredTimes) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"value"});
  int calls = 0;
  schedule.ScheduleAt({1.0, 5.0, 9.0}, [&] {
    ++calls;
    return std::vector<double>{static_cast<double>(calls)};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][0], 1.0);   // timestamp
  EXPECT_DOUBLE_EQ(schedule.rows()[0][1], 1.0);   // first value
  EXPECT_DOUBLE_EQ(schedule.rows()[2][0], 9.0);
  EXPECT_DOUBLE_EQ(schedule.rows()[2][1], 3.0);
  EXPECT_EQ(schedule.dropped_rows(), 0u);
}

TEST(EvaluationScheduleTest, PeriodicSchedule) {
  Simulator sim;
  sim.Schedule(10.0, [] {});
  sim.RunAll();  // advance to t=10
  EvaluationSchedule schedule(sim, {"x"});
  schedule.SchedulePeriodic(2.5, 4, [] {
    return std::vector<double>{42.0};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 4u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][0], 12.5);
  EXPECT_DOUBLE_EQ(schedule.rows()[3][0], 20.0);
}

TEST(EvaluationScheduleTest, WrongWidthRowsCountedAndNaN) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"a", "b"});
  schedule.ScheduleAt({1.0}, [] {
    return std::vector<double>{1.0};  // too narrow
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 1u);
  EXPECT_EQ(schedule.dropped_rows(), 1u);
  EXPECT_TRUE(std::isnan(schedule.rows()[0][1]));
}

TEST(EvaluationScheduleTest, CsvExport) {
  Simulator sim;
  EvaluationSchedule schedule(sim, {"accuracy", "online"});
  schedule.ScheduleAt({2.0}, [] {
    return std::vector<double>{0.9, 31.0};
  });
  sim.RunAll();
  std::string csv = schedule.ToCsv().ToString();
  EXPECT_NE(csv.find("time,accuracy,online"), std::string::npos);
  EXPECT_NE(csv.find("0.9"), std::string::npos);
  EXPECT_NE(csv.find("31"), std::string::npos);
}

TEST(EvaluationScheduleTest, InterleavesWithOtherEvents) {
  // The probe observes state mutated by other simulation events.
  Simulator sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<double>(i), [&counter] { ++counter; });
  }
  EvaluationSchedule schedule(sim, {"counter"});
  schedule.ScheduleAt({5.5}, [&] {
    return std::vector<double>{static_cast<double>(counter)};
  });
  sim.RunAll();
  ASSERT_EQ(schedule.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.rows()[0][1], 5.0);  // events at t=1..5 ran
}

TEST(DeterministicSampleTest, SortedUniqueAndSeedStable) {
  std::vector<std::size_t> s = DeterministicSample(1000, 50, 11);
  ASSERT_EQ(s.size(), 50u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::set<std::size_t>(s.begin(), s.end()).size(), s.size());
  EXPECT_LT(s.back(), 1000u);
  EXPECT_EQ(s, DeterministicSample(1000, 50, 11));
  EXPECT_NE(s, DeterministicSample(1000, 50, 12));
}

TEST(DeterministicSampleTest, DegeneratesToFullRange) {
  EXPECT_EQ(DeterministicSample(4, 4, 1),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(DeterministicSample(4, 99, 1),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(DeterministicSample(0, 5, 1).empty());
  EXPECT_TRUE(DeterministicSample(10, 0, 1).empty());
}

// Statistical guarantee behind max_eval_peers: restricting evaluation
// requests to a deterministic requester sample measures the same system.
// Which peer *asks* only affects routing, not which models answer, so the
// measured quality must stay within a small tolerance of the full run —
// and the sampled run itself must be exactly reproducible.
TEST(SampledEvaluationTest, SampledMacroF1TracksFullEvaluation) {
  CorpusOptions copt;
  copt.num_users = 24;
  copt.min_docs_per_user = 10;
  copt.max_docs_per_user = 18;
  copt.num_tags = 5;
  copt.vocabulary_size = 400;
  copt.seed = 6021;
  Result<VectorizedCorpus> corpus = MakeVectorizedCorpus(copt);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  ExperimentOptions opt;
  opt.algorithm = AlgorithmType::kPace;
  opt.env.num_peers = 256;
  opt.env.overlay = OverlayType::kUnstructured;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 120;
  opt.seed = 31337;

  Result<ExperimentResult> full = RunExperiment(corpus.value(), opt);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  opt.max_eval_peers = 32;
  Result<ExperimentResult> sampled = RunExperiment(corpus.value(), opt);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  Result<ExperimentResult> sampled_again = RunExperiment(corpus.value(), opt);
  ASSERT_TRUE(sampled_again.ok()) << sampled_again.status().ToString();

  // Reproducibility is exact; quality agreement is statistical.
  EXPECT_EQ(sampled.value().metrics.macro_f1,
            sampled_again.value().metrics.macro_f1);
  EXPECT_EQ(sampled.value().predict_messages,
            sampled_again.value().predict_messages);
  EXPECT_LE(std::abs(sampled.value().metrics.macro_f1 -
                     full.value().metrics.macro_f1),
            0.1);
  EXPECT_EQ(sampled.value().test_documents, full.value().test_documents);
}

}  // namespace
}  // namespace p2pdt
