
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2psim/chord.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/chord.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/chord.cc.o.d"
  "/root/repo/src/p2psim/churn.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/churn.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/churn.cc.o.d"
  "/root/repo/src/p2psim/network.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/network.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/network.cc.o.d"
  "/root/repo/src/p2psim/simulator.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/simulator.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/simulator.cc.o.d"
  "/root/repo/src/p2psim/stats.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/stats.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/stats.cc.o.d"
  "/root/repo/src/p2psim/unstructured.cc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/unstructured.cc.o" "gcc" "src/p2psim/CMakeFiles/p2pdt_p2psim.dir/unstructured.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
