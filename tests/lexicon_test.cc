#include "text/lexicon.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(LexiconTest, GrowingAssignsDenseIds) {
  Lexicon lex;
  EXPECT_EQ(lex.GetOrAddId("alpha"), 0u);
  EXPECT_EQ(lex.GetOrAddId("beta"), 1u);
  EXPECT_EQ(lex.GetOrAddId("alpha"), 0u);  // stable
  EXPECT_EQ(lex.size(), 2u);
  EXPECT_EQ(lex.dimension_bound(), 2u);
}

TEST(LexiconTest, GrowingReverseLookup) {
  Lexicon lex;
  lex.GetOrAddId("alpha");
  Result<std::string> w = lex.GetWord(0);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), "alpha");
  EXPECT_EQ(lex.GetWord(5).status().code(), StatusCode::kNotFound);
}

TEST(LexiconTest, GrowingGetIdMissingIsNotFound) {
  Lexicon lex;
  EXPECT_EQ(lex.GetId("nope").status().code(), StatusCode::kNotFound);
}

TEST(LexiconTest, HashedIdsAreStableWithoutInsertion) {
  Lexicon lex = Lexicon::Hashed(1 << 12);
  Result<uint32_t> id1 = lex.GetId("word");
  ASSERT_TRUE(id1.ok());
  EXPECT_LT(id1.value(), 1u << 12);
  EXPECT_EQ(lex.GetOrAddId("word"), id1.value());
}

TEST(LexiconTest, HashedIdsAgreeAcrossIndependentLexicons) {
  // The coordination-free property peers rely on: same word, same id,
  // no shared state.
  Lexicon a = Lexicon::Hashed(1 << 16);
  Lexicon b = Lexicon::Hashed(1 << 16);
  for (const char* w : {"apple", "banana", "cherry", "p2p", "tagging"}) {
    EXPECT_EQ(a.GetOrAddId(w), b.GetId(w).value()) << w;
  }
}

TEST(LexiconTest, HashedReverseOnlyForObservedWords) {
  Lexicon lex = Lexicon::Hashed(1 << 12);
  uint32_t id = lex.GetOrAddId("seen");
  Result<std::string> w = lex.GetWord(id);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), "seen");
  // An id derived from a word never observed is not reversible (privacy).
  uint32_t unseen = lex.GetId("never-added").value();
  if (unseen != id) {  // avoid the rare collision
    EXPECT_FALSE(lex.GetWord(unseen).ok());
  }
}

TEST(LexiconTest, HashWordIsFnv1a) {
  // Pin the hash so serialized models stay compatible.
  EXPECT_EQ(Lexicon::HashWord(""), 2166136261u);
  EXPECT_EQ(Lexicon::HashWord("a"), Lexicon::HashWord("a"));
  EXPECT_NE(Lexicon::HashWord("a"), Lexicon::HashWord("b"));
}

TEST(LexiconTest, HashedDimensionBound) {
  Lexicon lex = Lexicon::Hashed(4096);
  EXPECT_TRUE(lex.hashed());
  EXPECT_EQ(lex.dimension_bound(), 4096u);
}

}  // namespace
}  // namespace p2pdt
