#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

// Reference pairs from Porter (1980) and the canonical demo vocabulary.
struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemmerCaseTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerCaseTest, MatchesReference) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Plurals, PorterStemmerCaseTest,
    ::testing::Values(StemCase{"caresses", "caress"},
                      StemCase{"ponies", "poni"}, StemCase{"ties", "ti"},
                      StemCase{"caress", "caress"}, StemCase{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    EdIng, PorterStemmerCaseTest,
    ::testing::Values(StemCase{"feed", "feed"},
                      StemCase{"plastered", "plaster"},
                      StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
                      StemCase{"sing", "sing"}, StemCase{"hopping", "hop"},
                      StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
                      StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
                      StemCase{"failing", "fail"}, StemCase{"filing", "file"},
                      StemCase{"conflated", "conflat"},
                      StemCase{"troubled", "troubl"},
                      StemCase{"sized", "size"}));

INSTANTIATE_TEST_SUITE_P(
    YToI, PorterStemmerCaseTest,
    ::testing::Values(StemCase{"happy", "happi"}, StemCase{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    MultiStep, PorterStemmerCaseTest,
    ::testing::Values(StemCase{"relational", "relat"},
                      StemCase{"conditional", "condit"},
                      StemCase{"rational", "ration"},
                      StemCase{"oscillators", "oscil"},
                      StemCase{"generalization", "gener"},
                      StemCase{"happiness", "happi"},
                      StemCase{"argument", "argument"},
                      StemCase{"adjustment", "adjust"},
                      StemCase{"dependent", "depend"},
                      StemCase{"adoption", "adopt"},
                      StemCase{"communism", "commun"},
                      StemCase{"effective", "effect"},
                      StemCase{"formative", "form"},
                      StemCase{"electricity", "electr"},
                      StemCase{"hopeful", "hope"},
                      StemCase{"goodness", "good"}));

TEST(PorterStemmerTest, ShortWordsUntouched) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("at"), "at");
  EXPECT_EQ(stemmer.Stem("is"), "is");
  EXPECT_EQ(stemmer.Stem("a"), "a");
  EXPECT_EQ(stemmer.Stem(""), "");
}

TEST(PorterStemmerTest, NonAlphaUntouched) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("win32"), "win32");
  EXPECT_EQ(stemmer.Stem("Hello"), "Hello");  // uppercase not handled
  EXPECT_EQ(stemmer.Stem("c++"), "c++");
}

TEST(PorterStemmerTest, SuffixSpansWholeWordIsSafe) {
  PorterStemmer stemmer;
  // Words that *are* suffixes must not underflow the stem bounds.
  EXPECT_EQ(stemmer.Stem("ing"), "ing");
  EXPECT_EQ(stemmer.Stem("eed"), "eed");
  EXPECT_EQ(stemmer.Stem("ies"), "i");
  EXPECT_EQ(stemmer.Stem("sses"), "ss");
  // Step 2's "ational"→"ate" needs m>0 over the empty stem and must not
  // fire; step 4 then strips "-al" (m("ation") = 2), the reference result.
  EXPECT_EQ(stemmer.Stem("ational"), "ation");
}

TEST(PorterStemmerTest, OutputAlwaysNonEmptyLowercaseAlpha) {
  PorterStemmer stemmer;
  const char* words[] = {"running",  "jumped",   "flies",     "happily",
                         "relations", "organizer", "sensational", "zzzs",
                         "aaa",      "eee",      "bbb",       "systematically"};
  for (const char* w : words) {
    std::string out = stemmer.Stem(w);
    ASSERT_FALSE(out.empty()) << w;
    for (char c : out) {
      ASSERT_GE(c, 'a') << w;
      ASSERT_LE(c, 'z') << w;
    }
    ASSERT_LE(out.size(), std::string(w).size() + 1) << w;
  }
}

TEST(PorterStemmerTest, InflectionFamiliesCollapse) {
  // The property the preprocessing pipeline relies on: inflected forms of
  // one lemma map to one id.
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connected"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connecting"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connection"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connections"));
}

TEST(PorterStemmerTest, StemAllInPlace) {
  PorterStemmer stemmer;
  std::vector<std::string> tokens = {"cats", "running", "the"};
  stemmer.StemAll(tokens);
  EXPECT_EQ(tokens, (std::vector<std::string>{"cat", "run", "the"}));
}

}  // namespace
}  // namespace p2pdt
