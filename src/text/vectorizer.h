#ifndef P2PDT_TEXT_VECTORIZER_H_
#define P2PDT_TEXT_VECTORIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/sparse_vector.h"
#include "text/lexicon.h"

namespace p2pdt {

/// Term weighting scheme for document vectors.
enum class TermWeighting {
  /// Raw term frequency — the paper's formulation ("the value of the
  /// attributes represents the word frequency in the documents", Sec. 2).
  kTermFrequency,
  /// Log-scaled TF: 1 + ln(tf). Dampens very frequent words.
  kLogTermFrequency,
  /// TF × inverse document frequency; requires the vectorizer to have seen a
  /// corpus via FitIdf().
  kTfIdf,
  /// Binary presence/absence.
  kBinary,
};

struct VectorizerOptions {
  TermWeighting weighting = TermWeighting::kTermFrequency;
  /// L2-normalize the final vector. SVMs on text conventionally use unit
  /// vectors; keeps the margin scale comparable across document lengths.
  bool l2_normalize = true;
};

/// Turns token streams into sparse feature vectors against a `Lexicon`.
///
/// Final stage of the preprocessing pipeline: a document d becomes
/// {w_1, ..., w_m}^T, with w_j the weight of word id j.
class Vectorizer {
 public:
  explicit Vectorizer(VectorizerOptions options = {});

  /// Learns document frequencies from a tokenized corpus; required before
  /// vectorizing with kTfIdf. `lexicon` is updated with every word seen.
  void FitIdf(const std::vector<std::vector<std::string>>& corpus,
              Lexicon& lexicon);

  /// Vectorizes one tokenized document, growing `lexicon` as needed.
  SparseVector Vectorize(const std::vector<std::string>& tokens,
                         Lexicon& lexicon) const;

  /// Vectorizes without mutating the lexicon: unseen words are dropped
  /// (growing mode) or hashed (hashed mode). This is what peers apply to
  /// incoming *test* documents, so their lexicons stay fixed after training.
  SparseVector VectorizeConst(const std::vector<std::string>& tokens,
                              const Lexicon& lexicon) const;

  const VectorizerOptions& options() const { return options_; }
  std::size_t num_fitted_documents() const { return num_documents_; }

 private:
  double WeightFor(uint32_t id, double tf) const;
  SparseVector Finish(std::vector<SparseVector::Entry> counts) const;

  VectorizerOptions options_;
  std::size_t num_documents_ = 0;
  std::unordered_map<uint32_t, std::size_t> doc_freq_;
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_VECTORIZER_H_
