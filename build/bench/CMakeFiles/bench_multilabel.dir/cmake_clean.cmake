file(REMOVE_RECURSE
  "CMakeFiles/bench_multilabel.dir/bench_multilabel.cpp.o"
  "CMakeFiles/bench_multilabel.dir/bench_multilabel.cpp.o.d"
  "bench_multilabel"
  "bench_multilabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
