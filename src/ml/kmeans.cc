#include "ml/kmeans.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/cost_ledger.h"
#include "common/profile.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"

namespace p2pdt {

Result<KMeansResult> KMeansCluster(const std::vector<SparseVector>& points,
                                   const KMeansOptions& options) {
  PhaseScope profile("kmeans");
  if (points.empty()) {
    return Status::InvalidArgument("k-means requires at least one point");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k-means requires k > 0");
  }
  const std::size_t n = points.size();
  const std::size_t k = std::min(options.k, n);

  // Work in a compact feature space so dense centroid buffers stay small
  // even under the hashing trick's huge nominal dimensionality.
  FeatureRemapper remap;
  for (const auto& p : points) remap.Observe(p);
  const std::size_t dim = remap.num_features();
  std::vector<SparseVector> x(n);
  std::vector<double> xnorm2(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = remap.ToCompact(points[i]);
    xnorm2[i] = x[i].SquaredNorm();
  }

  Rng rng(options.seed);

  // Dense centroids with cached squared norms.
  std::vector<std::vector<double>> centroid(k, std::vector<double>(dim, 0.0));
  std::vector<double> cnorm2(k, 0.0);

  auto dist2 = [&](std::size_t i, std::size_t c) {
    double d = xnorm2[i] + cnorm2[c] - 2.0 * x[i].DotDense(centroid[c]);
    return std::max(d, 0.0);
  };
  auto set_centroid = [&](std::size_t c, const SparseVector& v) {
    std::fill(centroid[c].begin(), centroid[c].end(), 0.0);
    for (const auto& [id, w] : v.entries()) centroid[c][id] = w;
    cnorm2[c] = v.SquaredNorm();
  };

  // k-means++ seeding.
  set_centroid(0, x[rng.NextU64(n)]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], dist2(i, c - 1));
    }
    if (CostLedger::enabled()) CostLedger::Tls().kmeans_distance_evals += n;
    std::size_t pick = rng.Categorical(min_d2);
    if (pick >= n) pick = rng.NextU64(n);  // all distances zero
    set_centroid(c, x[pick]);
  }

  std::vector<std::size_t> assignment(n, 0);
  // The assignment step reads shared centroids and writes only
  // assignment[i], so it fans out over the pool for large peer datasets;
  // small inputs stay serial to dodge the dispatch overhead. Either path
  // produces the same assignments.
  const bool parallel_assign = n * k >= 4096;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::atomic<bool> changed{false};
    ParallelFor(0, n, 256, parallel_assign ? options.num_threads : 1,
                [&](std::size_t lo, std::size_t hi) {
                  bool local_changed = false;
                  for (std::size_t i = lo; i < hi; ++i) {
                    double best = std::numeric_limits<double>::infinity();
                    std::size_t best_c = 0;
                    for (std::size_t c = 0; c < k; ++c) {
                      double d = dist2(i, c);
                      if (d < best) {
                        best = d;
                        best_c = c;
                      }
                    }
                    if (assignment[i] != best_c) {
                      assignment[i] = best_c;
                      local_changed = true;
                    }
                  }
                  if (local_changed) {
                    changed.store(true, std::memory_order_relaxed);
                  }
                  // Per-chunk aggregate: the sum over chunks is n*k for any
                  // partition, keeping the ledger shard-invariant.
                  if (CostLedger::enabled()) {
                    CostLedger::Tls().kmeans_distance_evals += (hi - lo) * k;
                  }
                });
    if (!changed.load(std::memory_order_relaxed) && iter > 0 &&
        options.early_stop) {
      break;
    }

    // Recompute centroids.
    std::vector<std::size_t> count(k, 0);
    for (auto& cv : centroid) std::fill(cv.begin(), cv.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t c = assignment[i];
      ++count[c];
      for (const auto& [id, w] : x[i].entries()) centroid[c][id] += w;
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        // Empty cluster: reseed on the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          double d = dist2(i, assignment[i]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        if (CostLedger::enabled()) {
          CostLedger::Tls().kmeans_distance_evals += n;
        }
        set_centroid(c, x[far]);
        continue;
      }
      double inv = 1.0 / static_cast<double>(count[c]);
      double norm2 = 0.0;
      for (double& v : centroid[c]) {
        v *= inv;
        norm2 += v * v;
      }
      cnorm2[c] = norm2;
    }
  }

  KMeansResult result;
  result.iterations = iter;
  result.assignment = assignment;
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += dist2(i, assignment[i]);
  }
  if (CostLedger::enabled()) CostLedger::Tls().kmeans_distance_evals += n;
  result.centroids.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    result.centroids.push_back(remap.DenseToGlobal(centroid[c]));
  }
  return result;
}

}  // namespace p2pdt
