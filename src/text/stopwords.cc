#include "text/stopwords.h"

#include "common/string_util.h"

namespace p2pdt {

const std::vector<std::string>& StopWordFilter::DefaultEnglishStopWords() {
  static const std::vector<std::string> kList = {
      "a",       "about",   "above",   "after",    "again",   "against",
      "all",     "am",      "an",      "and",      "any",     "are",
      "arent",   "as",      "at",      "be",       "because", "been",
      "before",  "being",   "below",   "between",  "both",    "but",
      "by",      "cant",    "cannot",  "could",    "couldnt", "did",
      "didnt",   "do",      "does",    "doesnt",   "doing",   "dont",
      "down",    "during",  "each",    "etc",      "few",     "for",
      "from",    "further", "had",     "hadnt",    "has",     "hasnt",
      "have",    "havent",  "having",  "he",       "hed",     "hell",
      "hes",     "her",     "here",    "heres",    "hers",    "herself",
      "him",     "himself", "his",     "how",      "hows",    "i",
      "id",      "ill",     "im",      "ive",      "if",      "in",
      "into",    "is",      "isnt",    "it",       "its",     "itself",
      "lets",    "me",      "more",    "most",     "mustnt",  "my",
      "myself",  "no",      "nor",     "not",      "of",      "off",
      "on",      "once",    "only",    "or",       "other",   "ought",
      "our",     "ours",    "ourselves", "out",    "over",    "own",
      "same",    "shant",   "she",     "shed",     "shell",   "shes",
      "should",  "shouldnt", "so",     "some",     "such",    "than",
      "that",    "thats",   "the",     "their",    "theirs",  "them",
      "themselves", "then", "there",   "theres",   "these",   "they",
      "theyd",   "theyll",  "theyre",  "theyve",   "this",    "those",
      "through", "to",      "too",     "under",    "until",   "up",
      "very",    "was",     "wasnt",   "we",       "wed",     "well",
      "were",    "weve",    "werent",  "what",     "whats",   "when",
      "whens",   "where",   "wheres",  "which",    "while",   "who",
      "whos",    "whom",    "why",     "whys",     "with",    "wont",
      "would",   "wouldnt", "you",     "youd",     "youll",   "youre",
      "youve",   "your",    "yours",   "yourself", "yourselves",
  };
  return kList;
}

StopWordFilter::StopWordFilter()
    : StopWordFilter(DefaultEnglishStopWords()) {}

StopWordFilter::StopWordFilter(std::vector<std::string> stop_words) {
  for (auto& w : stop_words) stop_words_.insert(std::move(w));
}

void StopWordFilter::AddSensitiveWord(std::string_view word) {
  sensitive_words_.insert(ToLower(word));
}

void StopWordFilter::AddSensitiveWords(const std::vector<std::string>& words) {
  for (const auto& w : words) AddSensitiveWord(w);
}

bool StopWordFilter::IsFiltered(std::string_view token) const {
  return IsStopWord(token) || IsSensitive(token);
}

bool StopWordFilter::IsStopWord(std::string_view token) const {
  return stop_words_.count(std::string(token)) > 0;
}

bool StopWordFilter::IsSensitive(std::string_view token) const {
  return sensitive_words_.count(std::string(token)) > 0;
}

std::vector<std::string> StopWordFilter::Filter(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    if (!IsFiltered(t)) out.push_back(t);
  }
  return out;
}

}  // namespace p2pdt
