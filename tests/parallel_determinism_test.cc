// Asserts the core guarantee of the parallel training engine: training with
// one thread and with many threads produces bit-identical models and
// predictions. Task RNG streams are keyed by (peer, tag) — data identity —
// never by thread identity, and no floating-point reduction crosses task
// boundaries, so exact equality (not approximate) is the contract.

#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "corpus/vectorize.h"
#include "ml/kmeans.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"
#include "p2pdmt/data_distribution.h"
#include "p2pdmt/environment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

// A small generated corpus shared by every case in this binary.
const VectorizedCorpus& Corpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 24;
    opt.min_docs_per_user = 12;
    opt.max_docs_per_user = 20;
    opt.num_tags = 6;
    opt.vocabulary_size = 500;
    opt.seed = 4242;
    Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }();
  return corpus;
}

std::vector<MultiLabelDataset> PeerPartition(std::size_t num_peers) {
  DataDistributionOptions opt;
  opt.cls = ClassDistribution::kByUser;
  Result<std::vector<MultiLabelDataset>> r = DistributeData(
      Corpus().dataset, num_peers, opt, &Corpus().doc_user);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<SparseVector> ProbeVectors(std::size_t n) {
  std::vector<SparseVector> probes;
  const auto& examples = Corpus().dataset.examples();
  for (std::size_t i = 0; i < examples.size() && probes.size() < n;
       i += examples.size() / n + 1) {
    probes.push_back(examples[i].x);
  }
  return probes;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::SetGlobalConcurrency(4); }
  void TearDown() override { ThreadPool::SetGlobalConcurrency(0); }
};

TEST_F(ParallelDeterminismTest, OneVsAllScoresIdentical1VsNThreads) {
  const MultiLabelDataset& data = Corpus().dataset;
  IndexedBinaryTrainer trainer =
      [](const std::vector<Example>& examples, TagId tag)
      -> Result<std::unique_ptr<BinaryClassifier>> {
    LinearSvmOptions opt;
    opt.seed = DeriveSeed(7, 0, tag);
    Result<LinearSvmModel> model = TrainLinearSvm(examples, opt);
    if (!model.ok()) return model.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(model).value()));
  };

  OneVsAllTrainOptions serial;
  serial.num_threads = 1;
  OneVsAllTrainOptions parallel;
  parallel.num_threads = 4;
  Result<OneVsAllModel> a = TrainOneVsAll(data, trainer, serial);
  Result<OneVsAllModel> b = TrainOneVsAll(data, trainer, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_tags(), b->num_tags());
  for (const SparseVector& x : ProbeVectors(25)) {
    EXPECT_EQ(a->Scores(x), b->Scores(x));  // exact double equality
    EXPECT_EQ(a->PredictTags(x), b->PredictTags(x));
  }
}

TEST_F(ParallelDeterminismTest, KMeansIdentical1VsNThreads) {
  std::vector<SparseVector> points;
  for (const auto& ex : Corpus().dataset.examples()) points.push_back(ex.x);
  ASSERT_GE(points.size() * 16, 4096u) << "below the parallel gate";

  KMeansOptions serial;
  serial.k = 16;
  serial.seed = 11;
  serial.num_threads = 1;
  KMeansOptions parallel = serial;
  parallel.num_threads = 4;

  Result<KMeansResult> a = KMeansCluster(points, serial);
  Result<KMeansResult> b = KMeansCluster(points, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->iterations, b->iterations);
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->inertia, b->inertia);  // exact: reductions stay serial
  ASSERT_EQ(a->centroids.size(), b->centroids.size());
  for (std::size_t c = 0; c < a->centroids.size(); ++c) {
    EXPECT_EQ(a->centroids[c], b->centroids[c]);
  }
}

TEST_F(ParallelDeterminismTest, CemparTrainIdentical1VsNThreads) {
  auto run = [&](std::size_t num_threads) {
    EnvironmentOptions eo;
    eo.num_peers = 12;
    auto env = std::move(Environment::Create(eo)).value();
    CemparOptions opt;
    opt.svm.kernel = Kernel::Linear();
    opt.num_threads = num_threads;
    Cempar cempar(env->sim(), env->net(), *env->chord(), opt);
    EXPECT_TRUE(
        cempar.Setup(PeerPartition(12), Corpus().dataset.num_tags()).ok());
    bool done = false;
    cempar.Train([&](Status s) {
      EXPECT_TRUE(s.ok());
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);

    std::vector<std::vector<double>> scores;
    for (const SparseVector& x : ProbeVectors(10)) {
      bool pdone = false;
      cempar.Predict(3, x, [&](P2PPrediction p) {
        EXPECT_TRUE(p.success);
        scores.push_back(std::move(p.scores));
        pdone = true;
      });
      env->RunUntilFlag(pdone, 3600);
      EXPECT_TRUE(pdone);
    }
    return std::make_tuple(scores, cempar.TotalRegionalSupportVectors(),
                           cempar.HomeOwners());
  };
  auto [scores1, svs1, owners1] = run(1);
  auto [scores4, svs4, owners4] = run(4);
  EXPECT_EQ(svs1, svs4);
  EXPECT_EQ(owners1, owners4);
  EXPECT_EQ(scores1, scores4);  // exact double equality
}

TEST_F(ParallelDeterminismTest, PaceTrainIdentical1VsNThreads) {
  auto run = [&](std::size_t num_threads) {
    EnvironmentOptions eo;
    eo.num_peers = 12;
    auto env = std::move(Environment::Create(eo)).value();
    PaceOptions opt;
    opt.num_threads = num_threads;
    Pace pace(env->sim(), env->net(), env->overlay(), opt);
    EXPECT_TRUE(
        pace.Setup(PeerPartition(12), Corpus().dataset.num_tags()).ok());
    bool done = false;
    pace.Train([&](Status s) {
      EXPECT_TRUE(s.ok());
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);

    std::vector<std::vector<double>> scores;
    std::vector<std::vector<TagId>> tags;
    for (const SparseVector& x : ProbeVectors(10)) {
      bool pdone = false;
      pace.Predict(5, x, [&](P2PPrediction p) {
        EXPECT_TRUE(p.success);
        scores.push_back(std::move(p.scores));
        tags.push_back(std::move(p.tags));
        pdone = true;
      });
      env->RunUntilFlag(pdone, 3600);
      EXPECT_TRUE(pdone);
    }
    return std::make_pair(scores, tags);
  };
  auto [scores1, tags1] = run(1);
  auto [scores4, tags4] = run(4);
  EXPECT_EQ(tags1, tags4);
  EXPECT_EQ(scores1, scores4);  // exact double equality
}

}  // namespace
}  // namespace p2pdt
