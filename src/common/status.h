#ifndef P2PDT_COMMON_STATUS_H_
#define P2PDT_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace p2pdt {

/// Error category for a failed operation. Mirrors the common database-library
/// convention (RocksDB/Arrow) of a small closed set of codes plus a free-form
/// message, so that callers can branch on the code and humans can read the
/// message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kIOError,
  /// Stored data exists but failed an integrity check (bad checksum, torn
  /// write, unsupported version). Distinct from kIOError (the read itself
  /// failed) and kNotFound (nothing stored): callers holding a kDataLoss
  /// can safely discard the artifact and rebuild from source.
  kDataLoss,
  /// A received model failed sanitation (non-finite values, dimension or
  /// norm bounds, truncated per-tag vectors) and was rejected at an
  /// ingestion point instead of being merged. Distinct from kDataLoss: the
  /// payload parsed fine, its *content* is hostile or nonsensical.
  kRejectedModel,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Lightweight result-of-operation type used across library boundaries.
///
/// The library does not throw exceptions across its public API; fallible
/// operations return a `Status` (or a `Result<T>`, below). `Status` is cheap
/// to copy in the OK case (empty message) and carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status RejectedModel(std::string msg) {
    return Status(StatusCode::kRejectedModel, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, the library's substitute for exceptions on
/// value-returning fallible paths.
///
/// Usage:
///   Result<Lexicon> r = Lexicon::Load(path);
///   if (!r.ok()) return r.status();
///   Lexicon lex = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value — enables `return my_value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status — enables `return Status::NotFound(...)`.
  /// Must not be an OK status.
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Status of the operation; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Accesses the held value. Precondition: ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status out of the current function.
#define P2PDT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::p2pdt::Status _p2pdt_status = (expr);          \
    if (!_p2pdt_status.ok()) return _p2pdt_status;   \
  } while (0)

}  // namespace p2pdt

#endif  // P2PDT_COMMON_STATUS_H_
