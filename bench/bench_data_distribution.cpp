// DEMO5 — "vary the data distribution on the peers by varying the size and
// class distributions" (paper Sec. 3): uniform vs Zipf peer sizes crossed
// with IID vs non-IID (Dirichlet) vs by-user class assignment.
//
// Expected shape: collaboration (CEMPaR/PACE) is robust to skew because
// knowledge is pooled; LocalOnly is hurt badly by non-IID assignment (peers
// never see most tags); size skew mostly moves the communication balance.

#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO5: size and class distribution of peer data ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(128, 12);
  CsvWriter csv({"algorithm", "size_dist", "class_dist", "micro_f1",
                 "size_gini", "tag_coverage", "train_MiB"});

  struct Point {
    SizeDistribution size;
    ClassDistribution cls;
  };
  std::vector<Point> points = {
      {SizeDistribution::kUniform, ClassDistribution::kIid},
      {SizeDistribution::kUniform, ClassDistribution::kNonIidDirichlet},
      {SizeDistribution::kZipf, ClassDistribution::kIid},
      {SizeDistribution::kZipf, ClassDistribution::kNonIidDirichlet},
      {SizeDistribution::kUniform, ClassDistribution::kByUser},
  };

  std::printf("%-12s %-9s %-18s %8s %6s %9s\n", "algorithm", "sizes",
              "classes", "microF1", "gini", "coverage");
  for (AlgorithmType algo :
       {AlgorithmType::kCempar, AlgorithmType::kPace,
        AlgorithmType::kLocalOnly}) {
    for (const Point& point : points) {
      ExperimentOptions opt = MacroDefaults(algo, 128);
      opt.distribution.size = point.size;
      opt.distribution.cls = point.cls;
      opt.distribution.dirichlet_alpha = 0.2;
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
        continue;
      }
      std::printf("%-12s %-9s %-18s %8.4f %6.3f %9.3f\n",
                  r->algorithm.c_str(),
                  SizeDistributionToString(point.size),
                  ClassDistributionToString(point.cls), r->metrics.micro_f1,
                  r->distribution.size_gini,
                  r->distribution.mean_tag_coverage);
      csv.AddRow({r->algorithm, SizeDistributionToString(point.size),
                  ClassDistributionToString(point.cls),
                  std::to_string(r->metrics.micro_f1),
                  std::to_string(r->distribution.size_gini),
                  std::to_string(r->distribution.mean_tag_coverage),
                  std::to_string(r->train_bytes / (1024.0 * 1024.0))});
    }
    std::printf("\n");
  }
  WriteResults(csv, "demo5_data_distribution.csv");
  return 0;
}
