#include "text/preprocessor.h"

namespace p2pdt {

Preprocessor::Preprocessor(Options options)
    : options_(options),
      tokenizer_(options.tokenizer),
      vectorizer_(options.vectorizer),
      lexicon_(options.hashed_dimensions > 0
                   ? Lexicon::Hashed(options.hashed_dimensions)
                   : Lexicon()) {
  stop_words_.AddSensitiveWords(options.sensitive_words);
}

std::vector<std::string> Preprocessor::Analyze(std::string_view text) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  tokens = stop_words_.Filter(tokens);
  stemmer_.StemAll(tokens);
  // Stemming can only shorten words, but a stem could collide with a stop
  // word ("doe" etc.) — the reference pipelines do not re-filter, and
  // neither do we.
  return tokens;
}

SparseVector Preprocessor::Process(std::string_view text) {
  return vectorizer_.Vectorize(Analyze(text), lexicon_);
}

SparseVector Preprocessor::ProcessConst(std::string_view text) const {
  return vectorizer_.VectorizeConst(Analyze(text), lexicon_);
}

}  // namespace p2pdt
