// Unit coverage for the cross-validation reputation ledger: holdout
// determinism, balanced-accuracy scoring (both-classes requirement, honest
// 0.5 floor, informed filter), EWMA trust updates, and the full quarantine
// lifecycle — decay, exclusion, probation, re-admission with hysteresis.

#include "p2pml/reputation.h"

#include <memory>

#include <gtest/gtest.h>

#include "ml/multilabel.h"

namespace p2pdt {
namespace {

/// Decides a tag purely from one feature's presence; `sign` = -1 gives a
/// perfectly anti-correlated (label-flipped) model.
class FeatureClassifier final : public BinaryClassifier {
 public:
  FeatureClassifier(uint32_t feature, double sign)
      : feature_(feature), sign_(sign) {}
  double Decision(const SparseVector& x) const override {
    return sign_ * (x.Get(feature_) > 0.0 ? 1.0 : -1.0);
  }
  std::size_t WireSize() const override { return 16; }
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<FeatureClassifier>(feature_, sign_);
  }

 private:
  uint32_t feature_;
  double sign_;
};

/// 40 examples over 2 tags: evens carry tag 0 (feature 0 set), odds carry
/// tag 1 (feature 1 set) — every tag has both classes in any decent-sized
/// subsample, and feature i predicts tag i exactly.
MultiLabelDataset TwoTagDataset() {
  MultiLabelDataset data(2);
  for (std::size_t i = 0; i < 40; ++i) {
    MultiLabelExample ex;
    TagId tag = static_cast<TagId>(i % 2);
    ex.x = SparseVector::FromPairs({{tag, 1.0}, {10 + static_cast<uint32_t>(i), 0.5}});
    ex.tags = {tag};
    data.Add(std::move(ex));
  }
  return data;
}

ReputationManager MakeManager(std::size_t num_peers,
                              ReputationOptions opts = {}) {
  ReputationManager rep(opts, /*metrics=*/nullptr, "test");
  rep.Reset(num_peers);
  return rep;
}

TEST(ReputationTest, HoldoutIsDeterministicSubsample) {
  MultiLabelDataset data = TwoTagDataset();
  ReputationManager a = MakeManager(4);
  ReputationManager b = MakeManager(4);
  EXPECT_FALSE(a.HasHoldout(0));
  a.SetHoldout(0, data);
  b.SetHoldout(0, data);
  ASSERT_TRUE(a.HasHoldout(0));
  EXPECT_FALSE(a.HasHoldout(1));

  FeatureClassifier good(0, 1.0);
  EXPECT_DOUBLE_EQ(a.ScoreBinary(0, good, 0), b.ScoreBinary(0, good, 0));
  // Re-installing replaces (not extends) the slice.
  a.SetHoldout(0, data);
  EXPECT_DOUBLE_EQ(a.ScoreBinary(0, good, 0), b.ScoreBinary(0, good, 0));
  // Out-of-range observers are ignored, not UB.
  a.SetHoldout(99, data);
  EXPECT_FALSE(a.HasHoldout(99));
}

TEST(ReputationTest, ScoresSeparateHonestFromFlipped) {
  ReputationManager rep = MakeManager(4);
  rep.SetHoldout(0, TwoTagDataset());

  FeatureClassifier good(0, 1.0);
  FeatureClassifier flipped(0, -1.0);
  ConstantClassifier always_positive(1.0);
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(0, good, 0), 1.0);
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(0, flipped, 0), 0.0);
  // Degenerate one-class opinions sit at the 0.5 balanced-accuracy floor:
  // honest-but-uninformative, safely above every quarantine threshold.
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(0, always_positive, 0), 0.5);
}

TEST(ReputationTest, ScoreRequiresBothClassesInHoldout) {
  // Every example carries tag 0, none carries tag 1: neither tag is
  // evaluable (tag 0 has no negatives, tag 1 no positives).
  MultiLabelDataset one_class(2);
  for (std::size_t i = 0; i < 20; ++i) {
    MultiLabelExample ex;
    ex.x = SparseVector::FromPairs({{0, 1.0}});
    ex.tags = {0};
    one_class.Add(std::move(ex));
  }
  ReputationManager rep = MakeManager(4);
  rep.SetHoldout(0, one_class);
  FeatureClassifier good(0, 1.0);
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(0, good, 0), -1.0);
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(0, good, 1), -1.0);
  // No holdout at all is equally unevaluable.
  EXPECT_DOUBLE_EQ(rep.ScoreBinary(1, good, 0), -1.0);
}

TEST(ReputationTest, ScoreOneVsAllHonorsInformedFilter) {
  ReputationManager rep = MakeManager(4);
  rep.SetHoldout(0, TwoTagDataset());

  std::vector<std::unique_ptr<BinaryClassifier>> models;
  models.push_back(std::make_unique<FeatureClassifier>(0, 1.0));   // perfect
  models.push_back(std::make_unique<FeatureClassifier>(1, -1.0));  // flipped
  OneVsAllModel model(std::move(models));

  std::vector<bool> only_good = {true, false};
  std::vector<bool> only_bad = {false, true};
  EXPECT_DOUBLE_EQ(rep.ScoreOneVsAll(0, model, &only_good), 1.0);
  EXPECT_DOUBLE_EQ(rep.ScoreOneVsAll(0, model, &only_bad), 0.0);
  EXPECT_DOUBLE_EQ(rep.ScoreOneVsAll(0, model, nullptr), 0.5);
  // Nothing informed -> nothing evaluable.
  std::vector<bool> none = {false, false};
  EXPECT_DOUBLE_EQ(rep.ScoreOneVsAll(0, model, &none), -1.0);
}

TEST(ReputationTest, ObserveFirstSetsThenEwma) {
  ReputationOptions opts;
  opts.ewma_alpha = 0.4;
  ReputationManager rep = MakeManager(4, opts);
  EXPECT_DOUBLE_EQ(rep.Trust(0, 1), 1.0);  // unseen peers are trusted

  rep.Observe(0, 1, 0.8);
  EXPECT_DOUBLE_EQ(rep.Trust(0, 1), 0.8);  // first observation sets outright
  rep.Observe(0, 1, 0.3);
  EXPECT_DOUBLE_EQ(rep.Trust(0, 1), 0.6 * 0.8 + 0.4 * 0.3);

  // Unevaluable scores are a no-op, not a trust hit.
  EXPECT_FALSE(rep.Observe(0, 2, -1.0));
  EXPECT_DOUBLE_EQ(rep.Trust(0, 2), 1.0);
  EXPECT_EQ(rep.observations(), 2u);
}

TEST(ReputationTest, QuarantineLifecycle) {
  ReputationManager rep = MakeManager(4);
  const ReputationOptions& o = rep.options();

  // Decay -> exclusion: an anti-correlated score lands below the
  // quarantine threshold in one observation; only the transition edge
  // returns true (callers purge merged state exactly once).
  EXPECT_TRUE(rep.Observe(0, 1, 0.0));
  EXPECT_TRUE(rep.IsQuarantined(0, 1));
  EXPECT_FALSE(rep.Observe(0, 1, 0.0));
  EXPECT_EQ(rep.num_quarantined(), 1u);
  EXPECT_EQ(rep.total_quarantines(), 1u);
  // Quarantine is per observer pair: peer 2's view of 1 is untouched.
  EXPECT_FALSE(rep.IsQuarantined(2, 1));

  // Probation -> re-admission with hysteresis: trust must climb back past
  // readmit_threshold (0.5), strictly above the quarantine line (0.3).
  std::size_t probes = 0;
  while (rep.IsQuarantined(0, 1) && probes < 32) {
    rep.Observe(0, 1, 1.0);
    ++probes;
  }
  EXPECT_FALSE(rep.IsQuarantined(0, 1));
  EXPECT_GE(rep.Trust(0, 1), o.readmit_threshold);
  EXPECT_GT(probes, 1u);  // hysteresis: one good probe is not enough
  EXPECT_EQ(rep.num_quarantined(), 0u);
  EXPECT_EQ(rep.total_readmissions(), 1u);
  EXPECT_EQ(rep.total_quarantines(), 1u);
}

TEST(ReputationTest, SuspectBandBetweenThresholds) {
  ReputationManager rep = MakeManager(4);
  const ReputationOptions& o = rep.options();
  double mid = 0.5 * (o.quarantine_threshold + o.suspect_threshold);

  rep.Observe(0, 1, mid);
  EXPECT_FALSE(rep.IsQuarantined(0, 1));
  EXPECT_TRUE(rep.IsSuspect(0, 1));
  EXPECT_DOUBLE_EQ(rep.ObservedAccuracy(0, 1), mid);

  rep.Observe(0, 2, 0.9);
  EXPECT_FALSE(rep.IsSuspect(0, 2));
  // Never-observed peers are neither suspect nor quarantined.
  EXPECT_FALSE(rep.IsSuspect(0, 3));
  EXPECT_FALSE(rep.IsQuarantined(0, 3));
}

}  // namespace
}  // namespace p2pdt
