
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/kernel.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/kernel.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/kernel.cc.o.d"
  "/root/repo/src/ml/kernel_svm.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/kernel_svm.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/kernel_svm.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/linear_svm.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/linear_svm.cc.o.d"
  "/root/repo/src/ml/lsh.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/lsh.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/lsh.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/multilabel.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/multilabel.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/multilabel.cc.o.d"
  "/root/repo/src/ml/online.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/online.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/online.cc.o.d"
  "/root/repo/src/ml/serialization.cc" "src/ml/CMakeFiles/p2pdt_ml.dir/serialization.cc.o" "gcc" "src/ml/CMakeFiles/p2pdt_ml.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
