file(REMOVE_RECURSE
  "libp2pdt_p2psim.a"
)
