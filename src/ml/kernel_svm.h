#ifndef P2PDT_ML_KERNEL_SVM_H_
#define P2PDT_ML_KERNEL_SVM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/kernel.h"

namespace p2pdt {

/// Hyperparameters for the SMO kernel-SVM trainer.
struct KernelSvmOptions {
  Kernel kernel = Kernel::Rbf(1.0);
  /// Soft-margin penalty C (> 0).
  double c = 1.0;
  /// KKT violation tolerance for the stopping criterion.
  double tolerance = 1e-3;
  /// Cap on working-set-selection iterations (safety valve; typical
  /// convergence is far earlier for the per-peer dataset sizes here).
  int max_iterations = 10000;
};

/// One support vector: the training vector, its label and its dual weight.
struct SupportVector {
  SparseVector x;
  double y = 1.0;      // label in {-1, +1}
  double alpha = 0.0;  // dual coefficient, 0 < alpha <= C
};

/// Non-linear (kernel) SVM model, represented by its support vectors.
///
/// In CEMPaR this is what peers upload to their super-peer: "these SVM
/// models (support vectors) are propagated once to one of the super-peers"
/// (paper Sec. 2). WireSize() therefore charges the support vectors
/// themselves — which is also why CEMPaR's privacy argument is only about
/// word-id obfuscation: actual document vectors travel.
class KernelSvmModel final : public BinaryClassifier {
 public:
  KernelSvmModel() = default;
  KernelSvmModel(Kernel kernel, std::vector<SupportVector> svs, double bias)
      : kernel_(kernel), svs_(std::move(svs)), bias_(bias) {}

  double Decision(const SparseVector& x) const override;

  std::size_t WireSize() const override;

  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<KernelSvmModel>(*this);
  }

  const std::vector<SupportVector>& support_vectors() const { return svs_; }
  const Kernel& kernel() const { return kernel_; }
  double bias() const { return bias_; }
  std::size_t num_support_vectors() const { return svs_.size(); }

 private:
  Kernel kernel_;
  std::vector<SupportVector> svs_;
  double bias_ = 0.0;
};

/// Trains a C-SVM with Sequential Minimal Optimization using
/// maximal-violating-pair working-set selection (Keerthi et al. / LIBSVM
/// WSS1). The full kernel matrix is materialized, which is appropriate for
/// the per-peer training-set sizes in P2PDocTagger (tens to a few hundred
/// examples); the cascade keeps merged sets small by construction.
Result<KernelSvmModel> TrainKernelSvm(const std::vector<Example>& data,
                                      const KernelSvmOptions& options = {});

/// Cascade-SVM merge step: pools the support vectors of several models into
/// a training set (deduplicating identical vectors) and retrains a single
/// SVM on the pool. This is the super-peer operation in CEMPaR: "super-peers
/// which collect the local models of peers cascade them to construct
/// regional cascaded models."
Result<KernelSvmModel> CascadeMerge(
    const std::vector<const KernelSvmModel*>& models,
    const KernelSvmOptions& options);

/// Multi-level cascade: merges models pairwise (fan-in `fan_in`) level by
/// level until a single model remains. Equivalent to CascadeMerge for small
/// inputs but bounds the size of any single retraining problem.
Result<KernelSvmModel> CascadeTree(
    const std::vector<const KernelSvmModel*>& models,
    const KernelSvmOptions& options, std::size_t fan_in = 4);

}  // namespace p2pdt

#endif  // P2PDT_ML_KERNEL_SVM_H_
