file(REMOVE_RECURSE
  "libp2pdt_ml.a"
)
