#ifndef P2PDT_TEXT_LEXICON_H_
#define P2PDT_TEXT_LEXICON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace p2pdt {

/// Bidirectional word ↔ id mapping.
///
/// The paper represents each document as a vector indexed by word id
/// ("the attribute id represents the word id", Sec. 2). In the P2P setting
/// ids must be *consistent across peers without coordination*, otherwise
/// exchanged models would be meaningless. P2PDocTagger achieves this the
/// same way DHTs assign keys: by hashing. A `Lexicon` can therefore operate
/// in two modes:
///
///  * **Growing** (default): ids are assigned densely in first-seen order.
///    Used inside a single peer or by the centralized baseline.
///  * **Hashed**: the id of a word is a stable 32-bit hash (FNV-1a) folded
///    into a configured dimension. No state needs to be shared between
///    peers; collisions act as (rare) feature collisions, the standard
///    hashing-trick trade-off.
class Lexicon {
 public:
  /// Creates a growing lexicon.
  Lexicon() = default;

  /// Creates a hashed lexicon with the given dimensionality (must be > 0).
  static Lexicon Hashed(uint32_t dimensions);

  /// Returns the id of `word`, inserting it in growing mode. In hashed mode
  /// this never mutates and always succeeds.
  uint32_t GetOrAddId(std::string_view word);

  /// Returns the id of `word` or an error when absent (growing mode only —
  /// hashed mode always resolves).
  Result<uint32_t> GetId(std::string_view word) const;

  /// Reverse lookup: the word for an id. In hashed mode only words observed
  /// via GetOrAddId are reversible (hashing is lossy by design — this is
  /// part of the privacy story: a receiving peer cannot invert unknown ids).
  Result<std::string> GetWord(uint32_t id) const;

  /// Number of distinct words observed.
  std::size_t size() const { return word_to_id_.size(); }

  /// Upper bound on ids: observed count in growing mode, configured
  /// dimension count in hashed mode.
  uint32_t dimension_bound() const {
    return hashed_ ? dimensions_ : static_cast<uint32_t>(id_to_word_.size());
  }

  bool hashed() const { return hashed_; }

  /// Stable FNV-1a 32-bit hash used in hashed mode (exposed so peers can
  /// compute ids independently).
  static uint32_t HashWord(std::string_view word);

 private:
  bool hashed_ = false;
  uint32_t dimensions_ = 0;
  std::unordered_map<std::string, uint32_t> word_to_id_;
  std::vector<std::string> id_to_word_;                    // growing mode
  std::unordered_map<uint32_t, std::string> hash_to_word_;  // hashed mode
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_LEXICON_H_
