#include "common/build_info.h"

#include <cstdio>
#include <cstdlib>

namespace p2pdt {

// The CMake build scopes these definitions to this one translation unit
// (see src/common/CMakeLists.txt); fallbacks keep ad-hoc builds compiling.
#ifndef P2PDT_BUILD_GIT_SHA
#define P2PDT_BUILD_GIT_SHA "unknown"
#endif
#ifndef P2PDT_BUILD_COMPILER
#define P2PDT_BUILD_COMPILER "unknown"
#endif
#ifndef P2PDT_BUILD_FLAGS
#define P2PDT_BUILD_FLAGS ""
#endif
#ifndef P2PDT_BUILD_TYPE
#define P2PDT_BUILD_TYPE "unknown"
#endif
#ifndef P2PDT_BUILD_SANITIZE
#define P2PDT_BUILD_SANITIZE ""
#endif

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BuildInfo BuildInfo::Current() {
  BuildInfo info;
  info.git_sha = P2PDT_BUILD_GIT_SHA;
  info.compiler = P2PDT_BUILD_COMPILER;
  info.flags = P2PDT_BUILD_FLAGS;
  info.build_type = P2PDT_BUILD_TYPE;
  info.sanitizer = P2PDT_BUILD_SANITIZE;
  if (info.sanitizer.empty()) info.sanitizer = "none";
  const char* threads = std::getenv("P2PDT_THREADS");
  info.threads = threads != nullptr && threads[0] != '\0' ? threads : "auto";
  return info;
}

std::string BuildInfo::ToJson() const {
  std::string out = "{";
  out += "\"git_sha\": \"" + JsonEscape(git_sha) + "\"";
  out += ", \"compiler\": \"" + JsonEscape(compiler) + "\"";
  out += ", \"flags\": \"" + JsonEscape(flags) + "\"";
  out += ", \"build_type\": \"" + JsonEscape(build_type) + "\"";
  out += ", \"sanitizer\": \"" + JsonEscape(sanitizer) + "\"";
  out += ", \"threads\": \"" + JsonEscape(threads) + "\"";
  out += "}";
  return out;
}

}  // namespace p2pdt
