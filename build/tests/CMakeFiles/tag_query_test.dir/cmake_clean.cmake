file(REMOVE_RECURSE
  "CMakeFiles/tag_query_test.dir/tag_query_test.cc.o"
  "CMakeFiles/tag_query_test.dir/tag_query_test.cc.o.d"
  "tag_query_test"
  "tag_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
