#include "p2psim/transport.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

struct Fixture {
  Simulator sim;
  PhysicalNetwork net;
  ReliableTransport transport;

  explicit Fixture(std::size_t nodes, PhysicalNetworkOptions popt = {},
                   ReliableTransportOptions topt = {})
      : net(sim, popt), transport(sim, net, topt) {
    net.AddNodes(nodes);
  }
};

TEST(TransportTest, DeliversAndAcksOnCleanNetwork) {
  Fixture f(4);
  int delivered = 0, acked = 0, gave_up = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kModelUpload, [&] { ++delivered; },
      [&] { ++acked; }, [&] { ++gave_up; });
  f.sim.RunUntil(60.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(gave_up, 0);
  EXPECT_EQ(f.transport.in_flight(), 0u);
  EXPECT_EQ(f.net.stats().retransmits(), 0u);
  EXPECT_EQ(f.net.stats().acks_received(), 1u);
  EXPECT_EQ(f.net.stats().messages_sent(MessageType::kAck), 1u);
}

TEST(TransportTest, RetriesUntilDeliveredUnderLoss) {
  PhysicalNetworkOptions popt;
  popt.loss_rate = 0.3;
  ReliableTransportOptions topt;
  topt.max_retries = 10;
  Fixture f(4, popt, topt);

  int delivered = 0, acked = 0, gave_up = 0;
  for (int i = 0; i < 20; ++i) {
    f.transport.SendReliable(
        0, 1, 500, MessageType::kModelUpload, [&] { ++delivered; },
        [&] { ++acked; }, [&] { ++gave_up; });
  }
  f.sim.RunUntil(600.0);
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(acked, 20);
  EXPECT_EQ(gave_up, 0);
  // Under 30% loss some first attempts must have failed.
  EXPECT_GT(f.net.stats().retransmits(), 0u);
  EXPECT_GT(f.net.stats().dropped(DropReason::kRandomLoss), 0u);
}

TEST(TransportTest, DuplicateDataDeliveriesAreDeduped) {
  // Drop every ACK for a while: data keeps arriving, the payload must still
  // run exactly once, and every duplicate arrival is re-ACKed so the sender
  // eventually settles once the ACK channel heals.
  Fixture f(4);
  f.net.SetFaultHook([&](NodeId, NodeId, MessageType type, SimTime now) {
    FaultDecision d;
    d.drop = (type == MessageType::kAck && now < 2.0);
    return d;
  });
  int delivered = 0, acked = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kModelUpload, [&] { ++delivered; },
      [&] { ++acked; }, nullptr);
  f.sim.RunUntil(120.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_GT(f.net.stats().retransmits(), 0u);
  EXPECT_GT(f.net.stats().dropped(DropReason::kInjectedFault), 0u);
  // Every data arrival was ACKed, duplicates included.
  EXPECT_GT(f.net.stats().messages_sent(MessageType::kAck), 1u);
}

TEST(TransportTest, GivesUpOnDeadPeerAfterBoundedRetries) {
  ReliableTransportOptions topt;
  topt.max_retries = 2;
  Fixture f(4, {}, topt);
  f.net.SetOnline(1, false);

  int delivered = 0, acked = 0, gave_up = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kModelUpload, [&] { ++delivered; },
      [&] { ++acked; }, [&] { ++gave_up; });
  f.sim.RunUntil(600.0);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(acked, 0);
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(f.transport.in_flight(), 0u);
  // Initial attempt + max_retries retransmissions, all dropped at the
  // receiver.
  EXPECT_EQ(f.net.stats().messages_sent(MessageType::kModelUpload), 3u);
  EXPECT_EQ(f.net.stats().retransmits(), 2u);
  EXPECT_EQ(f.net.stats().give_ups(), 1u);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kRecvOffline), 3u);
}

TEST(TransportTest, ZeroRetriesMeansSingleAttempt) {
  ReliableTransportOptions topt;
  topt.max_retries = 0;
  Fixture f(4, {}, topt);
  f.net.SetOnline(1, false);
  int gave_up = 0;
  f.transport.SendReliable(0, 1, 100, MessageType::kModelUpload, nullptr,
                           nullptr, [&] { ++gave_up; });
  f.sim.RunUntil(60.0);
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(f.net.stats().messages_sent(MessageType::kModelUpload), 1u);
  EXPECT_EQ(f.net.stats().retransmits(), 0u);
}

TEST(TransportTest, PeerReturningMidBackoffGetsMessageExactlyOnce) {
  // Churn × retry: the receiver is offline for the first attempts and
  // returns before the retry budget runs out — the payload must run exactly
  // once and the sender must settle with an ACK, not a give-up.
  ReliableTransportOptions topt;
  topt.max_retries = 8;
  Fixture f(4, {}, topt);
  f.net.SetOnline(1, false);
  f.sim.Schedule(1.5, [&] { f.net.SetOnline(1, true); });

  int delivered = 0, acked = 0, gave_up = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kModelUpload, [&] { ++delivered; },
      [&] { ++acked; }, [&] { ++gave_up; });
  f.sim.RunUntil(600.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(gave_up, 0);
  EXPECT_GT(f.net.stats().retransmits(), 0u);
  EXPECT_GT(f.net.stats().dropped(DropReason::kRecvOffline), 0u);
}

TEST(TransportTest, SuspicionAfterConsecutiveGiveUpsClearedByAck) {
  ReliableTransportOptions topt;
  topt.max_retries = 1;
  topt.suspicion_threshold = 2;
  Fixture f(4, {}, topt);
  f.net.SetOnline(1, false);

  std::vector<NodeId> suspects;
  f.transport.SetSuspicionListener(
      [&](NodeId node) { suspects.push_back(node); });

  f.transport.SendReliable(0, 1, 100, MessageType::kModelUpload, nullptr);
  f.sim.RunUntil(120.0);
  EXPECT_FALSE(f.transport.IsSuspected(1));
  EXPECT_EQ(f.transport.SuspicionLevel(1), 1u);

  f.transport.SendReliable(0, 1, 100, MessageType::kModelUpload, nullptr);
  f.sim.RunUntil(240.0);
  EXPECT_TRUE(f.transport.IsSuspected(1));
  // The listener fires exactly on the transition into suspicion.
  EXPECT_EQ(suspects, (std::vector<NodeId>{1}));

  // Proof of life clears the suspicion.
  f.net.SetOnline(1, true);
  bool acked = false;
  f.transport.SendReliable(0, 1, 100, MessageType::kModelUpload, nullptr,
                           [&] { acked = true; });
  f.sim.RunUntil(360.0);
  EXPECT_TRUE(acked);
  EXPECT_FALSE(f.transport.IsSuspected(1));
  EXPECT_EQ(f.transport.SuspicionLevel(1), 0u);
}

TEST(TransportTest, BackoffGrowsAndJitterIsDeterministic) {
  Fixture f(2);
  const ReliableTransportOptions& opt = f.transport.options();
  double base = 0.5;
  double prev = f.transport.RetransmissionTimeout(7, 0, base);
  for (std::size_t attempt = 1; attempt < 4; ++attempt) {
    double rto = f.transport.RetransmissionTimeout(7, attempt, base);
    // Exponential growth survives the ±jitter band.
    EXPECT_GT(rto, prev * (opt.backoff_factor *
                           (1.0 - opt.jitter) / (1.0 + opt.jitter)));
    // Same (id, attempt) → bit-identical timeout: the schedule is keyed by
    // message identity, never by call site or thread.
    EXPECT_DOUBLE_EQ(rto, f.transport.RetransmissionTimeout(7, attempt, base));
    prev = rto;
  }
  // Different message ids draw different jitter.
  EXPECT_NE(f.transport.RetransmissionTimeout(7, 1, base),
            f.transport.RetransmissionTimeout(8, 1, base));
}

TEST(TransportTest, TimeoutsClampToConfiguredRange) {
  ReliableTransportOptions topt;
  topt.rto_min = 0.2;
  topt.rto_max = 1.0;
  Fixture f(2, {}, topt);
  EXPECT_GE(f.transport.RetransmissionTimeout(1, 0, 1e-6), 0.2);
  EXPECT_LE(f.transport.RetransmissionTimeout(1, 20, 0.5), 1.0);
}

TEST(TransportTest, RttEstimateCoversBothDirections) {
  Fixture f(2);
  double rtt = f.transport.EstimateRtt(0, 1, 1000);
  EXPECT_GE(rtt, 2.0 * f.net.Latency(0, 1));
}

}  // namespace
}  // namespace p2pdt
