// Event-loop substrate: the hashed deadline wheel (ordering, cancel,
// past-deadline clamp, re-arm from callbacks, multi-rotation deadlines)
// and the epoll loop itself (fd dispatch on pipes, interest-mask edits,
// cross-thread wakeup).

#include <sys/epoll.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/deadline_wheel.h"
#include "net/event_loop.h"

namespace p2pdt {
namespace {

TEST(DeadlineWheelTest, FiresInDeadlineOrderAcrossSlots) {
  DeadlineWheel wheel(/*tick_seconds=*/0.1, /*slots=*/8);
  std::vector<int> fired;
  wheel.Arm(0.35, [&] { fired.push_back(3); });
  wheel.Arm(0.15, [&] { fired.push_back(1); });
  wheel.Arm(0.25, [&] { fired.push_back(2); });
  wheel.Advance(0.1);
  EXPECT_TRUE(fired.empty());
  wheel.Advance(0.2);
  EXPECT_EQ(fired, std::vector<int>({1}));
  wheel.Advance(1.0);
  EXPECT_EQ(fired, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(DeadlineWheelTest, CancelPreventsFiring) {
  DeadlineWheel wheel(0.1, 8);
  bool fired = false;
  const DeadlineWheel::TimerId id = wheel.Arm(0.15, [&] { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // second cancel: already gone
  wheel.Advance(1.0);
  EXPECT_FALSE(fired);
}

TEST(DeadlineWheelTest, PastDeadlineStillFiresOnNextAdvance) {
  DeadlineWheel wheel(0.1, 8);
  wheel.Advance(5.0);  // move the wheel well forward
  bool fired = false;
  // Arm at a deadline already in the past; the wheel must clamp it into
  // the next tick instead of parking it a full rotation away.
  wheel.Arm(1.0, [&] { fired = true; });
  wheel.Advance(5.2);
  EXPECT_TRUE(fired);
}

TEST(DeadlineWheelTest, FarDeadlineWaitsOutFullRotations) {
  // 8 slots x 0.1s tick = 0.8s per rotation; a 2.05s deadline shares a
  // slot with much earlier ticks and must NOT fire until actually due.
  DeadlineWheel wheel(0.1, 8);
  bool fired = false;
  wheel.Arm(2.05, [&] { fired = true; });
  wheel.Advance(1.9);
  EXPECT_FALSE(fired);
  wheel.Advance(2.2);
  EXPECT_TRUE(fired);
}

TEST(DeadlineWheelTest, CallbackMayRearm) {
  DeadlineWheel wheel(0.1, 8);
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 3) wheel.Arm(0.1 * (fires + 1) + 0.05, tick);
  };
  wheel.Arm(0.15, tick);
  // The re-arms land at already-passed deadlines mid-Advance; each fires
  // on a later Advance thanks to the next-tick clamp. Step by multiple
  // ticks so float truncation of now/tick can never skip a parked slot.
  double now = 1.0;
  wheel.Advance(now);
  for (int i = 0; i < 10 && fires < 3; ++i) {
    now += 0.25;
    wheel.Advance(now);
  }
  EXPECT_EQ(fires, 3);
}

TEST(DeadlineWheelTest, NextDeadlineTracksEarliest) {
  DeadlineWheel wheel(0.1, 8);
  EXPECT_GT(wheel.NextDeadline(), 1e17);  // +infinity when empty
  wheel.Arm(0.5, [] {});
  const DeadlineWheel::TimerId early = wheel.Arm(0.2, [] {});
  EXPECT_DOUBLE_EQ(wheel.NextDeadline(), 0.2);
  wheel.Cancel(early);
  EXPECT_DOUBLE_EQ(wheel.NextDeadline(), 0.5);
}

TEST(EpollLoopTest, DispatchesReadableFd) {
  EpollLoop loop;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string got;
  ASSERT_TRUE(loop.Add(fds[0], EPOLLIN, [&](uint32_t events) {
                    EXPECT_TRUE((events & EPOLLIN) != 0);
                    char buf[16];
                    const ssize_t n = read(fds[0], buf, sizeof(buf));
                    ASSERT_GT(n, 0);
                    got.assign(buf, static_cast<std::size_t>(n));
                  }).ok());
  ASSERT_EQ(write(fds[1], "hi", 2), 2);
  EXPECT_GE(loop.RunOnce(/*max_wait_ms=*/1000), 1);
  EXPECT_EQ(got, "hi");
  EXPECT_TRUE(loop.Remove(fds[0]).ok());
  EXPECT_FALSE(loop.Watched(fds[0]));
  close(fds[0]);
  close(fds[1]);
}

TEST(EpollLoopTest, ModifyMasksOutInterest) {
  EpollLoop loop;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int calls = 0;
  ASSERT_TRUE(loop.Add(fds[0], EPOLLIN, [&](uint32_t) {
                    ++calls;
                    char buf[16];
                    (void)!read(fds[0], buf, sizeof(buf));
                  }).ok());
  ASSERT_TRUE(loop.Modify(fds[0], 0).ok());  // interest cleared
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.RunOnce(50), 0);
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(loop.Modify(fds[0], EPOLLIN).ok());  // re-armed
  EXPECT_GE(loop.RunOnce(1000), 1);
  EXPECT_EQ(calls, 1);
  loop.Remove(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

TEST(EpollLoopTest, WakeupCrossesThreadsAndRunsHandler) {
  EpollLoop loop;
  bool woke = false;
  loop.OnWakeup([&] {
    woke = true;
    loop.Stop();
  });
  // Wakeup from another thread while the loop blocks in Run(); the
  // handler must run on the loop thread and release Run().
  std::thread poker([&loop] { loop.Wakeup(); });
  loop.Run();
  poker.join();
  EXPECT_TRUE(woke);
}

TEST(EpollLoopTest, WheelTimersFireFromRun) {
  EpollLoop loop;
  bool fired = false;
  loop.wheel().Arm(loop.Now() + 0.05, [&] {
    fired = true;
    loop.Stop();
  });
  const double t0 = MonotonicSeconds();
  loop.Run();
  EXPECT_TRUE(fired);
  // Fired within the deadline plus a generous scheduling margin.
  EXPECT_LT(MonotonicSeconds() - t0, 2.0);
}

}  // namespace
}  // namespace p2pdt
