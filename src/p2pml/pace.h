#ifndef P2PDT_P2PML_PACE_H_
#define P2PDT_P2PML_PACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/kmeans.h"
#include "ml/linear_svm.h"
#include "ml/lsh.h"
#include "ml/multilabel.h"
#include "ml/sanitize.h"
#include "p2pml/p2p_classifier.h"
#include "p2pml/predict_cache.h"
#include "p2pml/reputation.h"
#include "p2psim/overlay.h"
#include "p2psim/serve_queue.h"
#include "p2psim/simulator.h"
#include "p2psim/transport.h"

namespace p2pdt {

struct PaceOptions {
  /// Base linear-SVM trainer settings.
  LinearSvmOptions svm;
  /// Clusters per peer (centroids broadcast alongside the models).
  KMeansOptions clustering;
  /// Locality-sensitive index over model centroids.
  LshOptions lsh;
  /// Number of nearest models consulted per prediction.
  std::size_t top_k = 12;
  /// Tag-assignment policy over the ensemble scores.
  TagDecisionPolicy policy;
  /// Weighting of a consulted model: accuracy^a / (1 + dist)^b.
  double accuracy_exponent = 1.0;
  double distance_exponent = 1.0;
  /// Threads for the local-training phase (0 = global P2PDT_THREADS
  /// setting, 1 = serial). Only the pure compute of SVM fitting, accuracy
  /// estimation and clustering fans out, across peers; all simulator and
  /// overlay traffic stays on the driver thread. Trained models are
  /// bit-identical for every value: per-task RNG streams are keyed by
  /// (peer, tag), never by thread.
  std::size_t num_threads = 0;
  /// Contiguous shards the per-peer local-training phase is split into for
  /// the sharded compute/commit fan-out (0 = one shard per available
  /// thread). Purely a scheduling knob: per-task RNG streams stay keyed by
  /// (peer, tag) and all overlay traffic is issued on the driver thread in
  /// peer order, so results are bit-identical for every value.
  std::size_t sim_shards = 0;
  /// Cap on contributor broadcasts in flight at once during dissemination
  /// (0 = unlimited, the legacy behavior). Every contributor still
  /// broadcasts — completions launch the next in peer order — but at 100k
  /// peers the cap bounds the simulator's event-queue footprint instead of
  /// materializing every dissemination tree at once. With the cap at or
  /// above the contributor count the issue order is byte-for-byte the
  /// legacy one.
  std::size_t max_concurrent_broadcasts = 0;
  /// Reliable dissemination: after the best-effort overlay broadcast, each
  /// contributor reliably unicasts its bundle to every online peer the
  /// broadcast missed (ACK / timeout / backoff / bounded retries), in up to
  /// `max_repair_rounds` passes — the SRM-style repair that makes
  /// `received_` converge under loss. Off by default (fire-and-forget
  /// baseline).
  bool reliable_dissemination = false;
  ReliableTransportOptions transport;
  std::size_t max_repair_rounds = 3;
  /// Model sanitation at every bundle-ingestion point (broadcast receipt,
  /// repair, resync, self-ingest, checkpoint restore). On by default:
  /// honest bundles always pass, so baseline runs are bit-identical.
  SanitizeOptions sanitize;
  /// Cross-validation reputation + quarantine (opt-in defense layer).
  ReputationOptions reputation;
  /// Finite per-peer serving capacity + admission control. PACE serves
  /// predictions locally, so the "server" is the requesting peer itself:
  /// accepted requests queue behind its ensemble evaluations, shed ones
  /// return the typed overloaded reject. Off by default (bit-identical).
  ServeOptions serve;
  /// Requester-side versioned prediction cache. Off by default.
  PredictCacheOptions predict_cache;
};

/// PACE (Ang et al., DASFAA 2010): adaptive ensemble classification in P2P
/// networks.
///
/// Training: every peer trains per-tag *linear* SVMs on its local data plus
/// k-means centroids describing where its data lives in feature space, then
/// propagates (model, centroids, accuracy estimate) to all other peers via
/// the overlay's dissemination primitive. Receivers index the models by
/// centroid in an LSH table.
///
/// Prediction is entirely local: the requester retrieves the top-k models
/// whose centroids are nearest the test vector from its LSH index and
/// combines their decisions, "weighted according to their accuracy and
/// distance from the test data" (paper Sec. 2). Zero prediction traffic is
/// PACE's structural advantage over CEMPaR; the broadcast is its cost.
///
/// Privacy note: unlike CEMPaR, "no document vectors are propagated" —
/// only weight vectors and centroids.
class Pace final : public P2PClassifier {
 public:
  Pace(Simulator& sim, PhysicalNetwork& net, Overlay& overlay,
       PaceOptions options = {});

  Status Setup(std::vector<MultiLabelDataset> peer_data,
               TagId num_tags) override;
  /// Native flyweight path: stores the shard views directly — per-peer
  /// training data is never copied. Training materializes each binary
  /// reduction lazily, per (peer, tag), and drops it right after the fit.
  Status SetupShards(std::vector<DatasetShard> peer_data,
                     TagId num_tags) override;
  void Train(std::function<void(Status)> on_complete) override;
  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override;
  std::string name() const override { return "pace"; }

  /// Fraction of (receiver, contributor) pairs that actually received the
  /// contributor's model — 1.0 on a stable network, lower under churn.
  double ModelCoverage() const;

  /// Non-null when options.reliable_dissemination is set.
  ReliableTransport* transport() { return transport_.get(); }

  /// Repair passes actually run during Train (diagnostics).
  std::size_t repair_rounds_run() const { return repair_rounds_run_; }

  /// Byzantine-defense counters (sanitation rejections, quarantines, ...).
  DefenseStats defense_stats() const override;

  /// Non-null when options.reputation.enabled (test access).
  ReputationManager* reputation() { return reputation_.get(); }

  /// Non-null when options.serve.enabled / options.predict_cache.enabled
  /// (test access).
  ServeQueueSet* serve_queue() { return serve_.get(); }
  PredictCacheSet* predict_cache() { return cache_.get(); }

  /// Model-publish epoch: bumped whenever any peer's published model state
  /// changes (train, refresh, restore, eviction, cold restart). The
  /// prediction cache's version key.
  uint64_t publish_epoch() const { return publish_epoch_; }

  // Durability: a PACE peer's crash-volatile state is its own trained
  // bundle (one-vs-all linear models, centroids, accuracy weights) plus
  // its view of which other contributors' bundles it holds. A cold rejoin
  // must both retrain locally and re-fetch every missed bundle; a warm
  // rejoin restores both from the checkpoint.
  bool SupportsDurability() const override { return true; }
  Result<std::string> Snapshot(NodeId peer) const override;
  Status Restore(NodeId peer, const std::string& blob) override;
  /// The peer forgets every bundle it received (including its own copy);
  /// contributed bundles held by *other* peers survive, as they would in a
  /// real deployment.
  void EvictPeer(NodeId peer) override;
  /// Retrains the peer's own bundle from retained data (deterministic →
  /// bit-identical) and marks only the self-bundle as held.
  std::size_t ColdRestart(NodeId peer) override;
  /// Anti-entropy: contributors unicast the bundles this peer is missing
  /// (reliably when the transport is on, best-effort otherwise).
  void ResyncPeer(NodeId peer, std::function<void()> done) override;

  // Online refresh (drift adaptation): a contributor retrains on its
  // current sliding window and re-broadcasts a version-stamped bundle
  // through the same dissemination + sanitation + reputation gates as the
  // initial one. Receivers holding an older version are stale: their copy
  // is evicted (version mismatch fails the Holds check) until the fresh
  // bundle reaches them, so no one ever votes with a superseded model.
  bool SupportsOnlineRefresh() const override { return true; }
  Status ReplacePeerData(NodeId peer, DatasetShard window) override;
  void RefreshPeer(NodeId peer, std::function<void()> done) override;
  uint64_t ModelVersion(NodeId peer) const override;

 private:
  struct PeerModel {
    bool valid = false;
    OneVsAllModel model;
    std::vector<SparseVector> centroids;
    /// Training-set accuracy per tag, the model's vote weight basis.
    std::vector<double> tag_accuracy;
    /// Whether the peer actually held data for a tag; uninformed per-tag
    /// models (degenerate always-negative) do not vote — a peer that has
    /// never seen a tag has no opinion about it.
    std::vector<bool> tag_informed;
    std::size_t wire_size = 0;
    /// Bundle version stamp; 0 until the first online refresh.
    uint32_t version = 0;
  };

  void TrainLocal(NodeId peer);
  /// One reliable fill-in pass over every (contributor, receiver) pair the
  /// dissemination missed so far; recurses until converged or the round
  /// budget is spent, then completes training.
  void RepairRound(std::size_t round, std::function<void(Status)> on_complete);

  /// The single bundle-ingestion gate: every delivery (broadcast, repair,
  /// resync, self-ingest) lands here. Clamps the contributor's self-reported
  /// accuracies (unconditional bug fix), rejects bundles failing sanitation,
  /// scores + trust-updates via reputation, and only then marks the bundle
  /// received. Driver thread only.
  void AcceptBundle(NodeId receiver, NodeId contributor);
  /// Memoized sanitation verdict for a contributor's current bundle (the
  /// verdict depends only on the bundle, so N receivers share one scan).
  ModelRejectReason BundleVerdict(NodeId contributor);
  void RecordRejected(ModelRejectReason reason);
  /// Probation pass: re-scores the requester's *quarantined* contributors
  /// (only — honest runs have none, keeping the fast path untouched) and
  /// re-admits any whose trust recovered.
  void ProbeQuarantined(NodeId requester);

  /// Bumps the model-publish epoch (cheap unconditional increment; callers
  /// are the points where any published model changes). Over-invalidation
  /// of the cache is safe — serving stale is not.
  void BumpPublishEpoch() { ++publish_epoch_; }

  Simulator& sim_;
  PhysicalNetwork& net_;
  Overlay& overlay_;
  PaceOptions options_;
  std::unique_ptr<ReliableTransport> transport_;
  std::unique_ptr<ServeQueueSet> serve_;
  std::unique_ptr<PredictCacheSet> cache_;
  uint64_t publish_epoch_ = 0;
  std::size_t repair_rounds_run_ = 0;

  /// Rank value for peers that contributed no data (and so can never have a
  /// bundle to hold).
  static constexpr uint32_t kNoRank = 0xFFFFFFFFu;

  /// Version of `contributor`'s bundle that `receiver` holds. Rows of
  /// received_version_ are lazily allocated on the first refresh, so
  /// stationary runs never touch it (empty row = everything at version 0).
  uint32_t HeldVersion(NodeId receiver, uint32_t rank) const {
    if (receiver >= received_version_.size() ||
        received_version_[receiver].empty()) {
      return 0;
    }
    return received_version_[receiver][rank];
  }
  void SetHeldVersion(NodeId receiver, uint32_t rank, uint32_t version) {
    if (version == 0 && (receiver >= received_version_.size() ||
                         received_version_[receiver].empty())) {
      return;  // stationary fast path: nothing ever allocated
    }
    if (received_version_[receiver].empty()) {
      received_version_[receiver].assign(contributors_.size(), 0);
    }
    received_version_[receiver][rank] = version;
  }

  /// True when `receiver` holds `contributor`'s *current* bundle. A copy of
  /// a superseded version does not count — old versions are evicted, not
  /// voted with.
  bool Holds(NodeId receiver, NodeId contributor) const {
    const uint32_t rank = contributor < contributor_rank_.size()
                              ? contributor_rank_[contributor]
                              : kNoRank;
    return rank != kNoRank && received_[receiver][rank] &&
           HeldVersion(receiver, rank) == models_[contributor].version;
  }

  /// One reliable fill-in pass delivering `peer`'s refreshed bundle to the
  /// receivers the re-broadcast missed; recurses up to max_repair_rounds.
  void RefreshRepair(NodeId peer, std::size_t round,
                     std::function<void()> done);

  /// Per-peer flyweight views into the shared training corpus (legacy
  /// Setup wraps its materialized datasets into single-peer shards).
  std::vector<DatasetShard> peer_data_;
  TagId num_tags_ = 0;
  std::vector<PeerModel> models_;  // one per underlay node
  /// Peers that held data at setup, ascending. Only they can ever publish a
  /// bundle, so the receipt matrix below is indexed by contributor *rank*:
  /// N×C instead of N×N. That is the flyweight that keeps 100k-peer runs
  /// affordable — with 100k nodes and 512 contributors the N×N matrix
  /// would be 10^10 cells.
  std::vector<NodeId> contributors_;
  /// NodeId -> rank in contributors_ (kNoRank for non-contributors).
  std::vector<uint32_t> contributor_rank_;
  /// received_[q][rank(p)]: peer q holds contributor p's model. The
  /// Snapshot wire format still serializes a full N-sized row (expanded on
  /// write, re-compressed on read), so checkpoints predating this layout
  /// restore unchanged.
  std::vector<std::vector<bool>> received_;
  /// received_version_[q][rank(p)]: version of p's bundle that q holds.
  /// Rows stay empty (= all zeros) until an online refresh touches them, so
  /// the stationary footprint is N empty vectors.
  std::vector<std::vector<uint32_t>> received_version_;
  /// Shared LSH index over (peer, centroid) entries; identical hash
  /// functions on every peer (common seed), per-receiver visibility is
  /// enforced via received_.
  std::unique_ptr<CosineLsh> index_;
  /// One LSH index entry: which peer's bundle, which of its centroids, and
  /// the bundle version the centroid belongs to. Entries of superseded
  /// versions are dead (version check fails at query time) — the index-side
  /// half of old-version eviction.
  struct IndexItem {
    NodeId peer;
    std::size_t cidx;
    uint32_t version;
  };
  /// LSH item id -> index entry.
  std::vector<IndexItem> index_items_;
  bool trained_ = false;

  /// Non-null when options_.reputation.enabled.
  std::unique_ptr<ReputationManager> reputation_;
  /// Cached sanitation verdict per contributor (-1 = not yet scanned;
  /// invalidated by retraining/restore). Workers only touch their own slot.
  std::vector<int8_t> bundle_verdict_;
  /// Predictions served per requester, the probation clock.
  std::vector<uint32_t> predict_count_;
  uint64_t models_rejected_ = 0;
  uint64_t votes_discarded_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_PACE_H_
