#ifndef P2PDT_CORE_TAG_QUERY_H_
#define P2PDT_CORE_TAG_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/tag_library.h"

namespace p2pdt {

/// Boolean tag-query language for Library search — the "searching and
/// filtering of documents using the Library component" of the demo
/// (Sec. 3), grown into the filtering PHLAT [4] popularized:
///
///   research AND (p2p OR dht) AND NOT draft
///
/// Grammar (keywords case-insensitive; tags are bare words):
///   expr    := or
///   or      := and   ( OR  and  )*
///   and     := unary ( AND unary )*
///   unary   := NOT unary | '(' expr ')' | TAG
///
/// NOT is evaluated against the set of *tagged* documents in the library.
class TagQuery {
 public:
  TagQuery(TagQuery&&) = default;
  TagQuery& operator=(TagQuery&&) = default;

  /// Parses a query; fails with InvalidArgument on syntax errors (empty
  /// query, dangling operator, unbalanced parentheses, ...).
  static Result<TagQuery> Parse(std::string_view query);

  /// Documents matching the query, ascending.
  std::vector<DocId> Evaluate(const TagLibrary& library) const;

  /// Canonical rendering (fully parenthesized).
  std::string ToString() const;

 private:
  struct Node {
    enum class Kind { kTag, kAnd, kOr, kNot } kind;
    std::string tag;                    // kTag
    std::unique_ptr<Node> left, right;  // kAnd/kOr both, kNot left only
  };

  explicit TagQuery(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  std::unique_ptr<Node> root_;
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_TAG_QUERY_H_
