#include "p2pdmt/loadgen.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/rng.h"

namespace p2pdt {

namespace {

// FNV-1a over arbitrary bytes; the same constants every other digest in the
// repo uses, so fingerprints stay comparable across harnesses.
struct Fnv64 {
  uint64_t state = 0xcbf29ce484222325ull;
  void MixBytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ull;
    }
  }
  void Mix(uint64_t v) { MixBytes(&v, sizeof(v)); }
  void Mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

// Distinct DeriveSeed domains so the arrival, document, and retry streams
// never alias even for the same (session, request) pair.
constexpr uint64_t kDocStream = 0xD0Cull;
constexpr uint64_t kRetryStream = 0x7E7ull;

}  // namespace

Histogram& TaggingLatencyHistogram(MetricsRegistry& metrics,
                                   const std::string& classifier) {
  return metrics.GetHistogram("tagging_latency_seconds",
                              {{"classifier", classifier}});
}

std::vector<std::size_t> LoadGenSessionLengths(const LoadGenOptions& options) {
  std::vector<std::size_t> lengths(options.sessions);
  for (std::size_t s = 0; s < options.sessions; ++s) {
    Rng rng(DeriveSeed(options.seed, s));
    lengths[s] = static_cast<std::size_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_docs),
        static_cast<int64_t>(std::max(options.max_docs, options.min_docs))));
  }
  return lengths;
}

double LoadGenBurstMultiplier(const LoadGenOptions& options, double t) {
  double mult = 1.0;
  for (const FlashCrowdBurst& b : options.bursts) {
    if (t >= b.start && t < b.start + b.duration) mult *= b.rate_multiplier;
  }
  return mult;
}

const FlashCrowdBurst* LoadGenActiveBurst(const LoadGenOptions& options,
                                          double t) {
  for (const FlashCrowdBurst& b : options.bursts) {
    if (t >= b.start && t < b.start + b.duration) return &b;
  }
  return nullptr;
}

std::size_t LoadGenPickDoc(const LoadGenOptions& options,
                           std::size_t catalog_size, std::size_t session,
                           std::size_t idx, double t) {
  Rng rng(DeriveSeed(options.seed ^ kDocStream, session, idx));
  if (const FlashCrowdBurst* burst = LoadGenActiveBurst(options, t)) {
    if (rng.Bernoulli(burst->hot_fraction)) {
      const uint64_t n = std::min<uint64_t>(
          std::max<std::size_t>(burst->hot_docs, 1), catalog_size);
      return static_cast<std::size_t>(rng.Zipf(n, options.zipf_s));
    }
  }
  return static_cast<std::size_t>(rng.Zipf(catalog_size, options.zipf_s));
}

std::vector<double> LoadGenOpenLoopOffsets(const LoadGenOptions& options,
                                           std::size_t session,
                                           std::size_t session_len) {
  const double per_session_rate =
      options.arrival_rate / static_cast<double>(options.sessions);
  std::vector<double> offsets;
  offsets.reserve(session_len);
  double t = 0.0;
  for (std::size_t i = 0; i < session_len; ++i) {
    Rng rng(DeriveSeed(options.seed, session, i));
    const double rate = per_session_rate * LoadGenBurstMultiplier(options, t);
    t += rng.Exponential(1.0 / std::max(rate, 1e-9));
    offsets.push_back(t);
  }
  return offsets;
}

double LoadGenRetryDelay(const LoadGenOptions& options, std::size_t session,
                         std::size_t idx, std::size_t attempt) {
  Rng rng(DeriveSeed(options.seed ^ kRetryStream, session,
                     idx * 16 + attempt));
  return options.retry_backoff * rng.Uniform(1.0, 1.5);
}

SessionLoadGenerator::SessionLoadGenerator(
    Simulator& sim, P2PClassifier& algo, LoadGenOptions options,
    std::vector<const SparseVector*> docs, std::vector<NodeId> requesters,
    MetricsRegistry& metrics)
    : sim_(sim),
      algo_(algo),
      options_(std::move(options)),
      docs_(std::move(docs)),
      requesters_(std::move(requesters)),
      latency_hist_(TaggingLatencyHistogram(metrics, algo.name())) {}

double SessionLoadGenerator::BurstMultiplier(double t) const {
  return LoadGenBurstMultiplier(options_, t);
}

const FlashCrowdBurst* SessionLoadGenerator::ActiveBurst(double t) const {
  return LoadGenActiveBurst(options_, t);
}

std::size_t SessionLoadGenerator::PickDoc(std::size_t session, std::size_t idx,
                                          double t) const {
  return LoadGenPickDoc(options_, docs_.size(), session, idx, t);
}

void SessionLoadGenerator::Run(
    std::function<void(const LoadGenResult&)> on_complete) {
  on_complete_ = std::move(on_complete);
  start_ = sim_.Now();  // burst windows are relative to load start
  if (docs_.empty() || requesters_.empty() || options_.sessions == 0) {
    all_scheduled_ = true;
    FinishIfDone();
    return;
  }

  session_len_ = LoadGenSessionLengths(options_);
  std::size_t total = 0;
  for (std::size_t len : session_len_) total += len;
  outstanding_ = total;
  result_.offered = total;
  first_issue_ = -1.0;

  for (std::size_t s = 0; s < options_.sessions; ++s) {
    if (options_.closed_loop) {
      // First request after one think interval; the chain continues from
      // OnOutcome as each answer lands.
      Rng rng(DeriveSeed(options_.seed, s, 0));
      const double t0 = rng.Exponential(options_.think_time);
      sim_.Schedule(t0, [this, s] { IssueRequest(s, 0, /*issued_at=*/0.0, 0); });
    } else {
      // Open loop: the whole Poisson schedule is computed up front, so a
      // flash crowd compresses arrivals without making the schedule depend
      // on completions.
      const std::vector<double> offsets =
          LoadGenOpenLoopOffsets(options_, s, session_len_[s]);
      for (std::size_t i = 0; i < session_len_[s]; ++i) {
        sim_.Schedule(offsets[i],
                      [this, s, i] { IssueRequest(s, i, /*issued_at=*/0.0, 0); });
      }
    }
  }
  all_scheduled_ = true;
}

void SessionLoadGenerator::IssueRequest(std::size_t session, std::size_t idx,
                                        double issued_at, std::size_t attempt) {
  const double now = sim_.Now();
  if (first_issue_ < 0.0) first_issue_ = now;
  // A fresh request is stamped with the sim time it actually issues at (the
  // schedule offsets are relative to Run(), which rarely starts at sim time
  // zero — training ran first). Retries keep the original stamp so latency
  // covers the whole reject-backoff-retry arc.
  const double issued = attempt == 0 ? now : issued_at;
  const std::size_t doc = PickDoc(session, idx, now - start_);
  const NodeId requester = requesters_[session % requesters_.size()];
  algo_.Predict(requester, *docs_[doc],
                [this, session, idx, issued, attempt](P2PPrediction p) {
                  OnOutcome(session, idx, issued, attempt, std::move(p));
                });
}

void SessionLoadGenerator::OnOutcome(std::size_t session, std::size_t idx,
                                     double first_issued, std::size_t attempt,
                                     P2PPrediction p) {
  if (p.overloaded) {
    ++result_.shed;
    if (attempt < options_.max_retries) {
      // Client-side backoff after a typed overload reject; jittered so a
      // synchronized crowd does not re-arrive as a synchronized crowd.
      ++result_.retries;
      const double delay = LoadGenRetryDelay(options_, session, idx, attempt);
      sim_.Schedule(delay, [this, session, idx, first_issued, attempt] {
        IssueRequest(session, idx, first_issued, attempt + 1);
      });
      return;
    }
  }

  const double now = sim_.Now();
  const double latency = now - first_issued;
  ++result_.completed;
  last_complete_ = std::max(last_complete_, now);

  const bool answered = p.success && !p.overloaded;
  if (!answered) {
    ++result_.failed;
  } else {
    if (p.cached) {
      ++result_.cached;
    } else if (p.degraded) {
      ++result_.degraded;
    } else {
      ++result_.ok;
    }
    latency_hist_.Observe(latency);
    result_.max_latency = std::max(result_.max_latency, latency);
    if (latency <= options_.slo_latency) ++result_.within_slo;
  }

  // Order-independent: per-request digests are summed, so the fingerprint
  // is invariant to completion interleaving across shard counts.
  Fnv64 h;
  h.Mix(static_cast<uint64_t>(session));
  h.Mix(static_cast<uint64_t>(idx));
  h.Mix(static_cast<uint64_t>(answered ? (p.cached ? 2 : p.degraded ? 3 : 1)
                                       : 0));
  h.Mix(latency);
  for (TagId t : p.tags) h.Mix(static_cast<uint64_t>(t));
  for (double s : p.scores) h.Mix(s);
  result_.fingerprint += h.state;

  --outstanding_;

  if (options_.closed_loop && idx + 1 < session_len_[session]) {
    Rng rng(DeriveSeed(options_.seed, session, idx + 1));
    const double mult = std::max(BurstMultiplier(now - start_), 1e-9);
    const double gap = rng.Exponential(options_.think_time) / mult;
    sim_.Schedule(gap, [this, session, idx] {
      IssueRequest(session, idx + 1, /*issued_at=*/0.0, 0);
    });
  }

  FinishIfDone();
}

void SessionLoadGenerator::FinishIfDone() {
  if (!all_scheduled_ || outstanding_ != 0) return;
  result_.p50_latency = latency_hist_.Quantile(0.5);
  result_.p95_latency = latency_hist_.Quantile(0.95);
  result_.p99_latency = latency_hist_.Quantile(0.99);
  const double span = last_complete_ - std::max(first_issue_, 0.0);
  result_.makespan = span;
  result_.goodput_within_slo =
      span > 0.0 ? static_cast<double>(result_.within_slo) / span : 0.0;
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb(result_);
  }
}

}  // namespace p2pdt
