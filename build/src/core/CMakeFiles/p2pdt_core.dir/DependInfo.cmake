
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/doc_tagger.cc" "src/core/CMakeFiles/p2pdt_core.dir/doc_tagger.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/doc_tagger.cc.o.d"
  "/root/repo/src/core/document.cc" "src/core/CMakeFiles/p2pdt_core.dir/document.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/document.cc.o.d"
  "/root/repo/src/core/metadata_store.cc" "src/core/CMakeFiles/p2pdt_core.dir/metadata_store.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/metadata_store.cc.o.d"
  "/root/repo/src/core/tag_cloud.cc" "src/core/CMakeFiles/p2pdt_core.dir/tag_cloud.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/tag_cloud.cc.o.d"
  "/root/repo/src/core/tag_library.cc" "src/core/CMakeFiles/p2pdt_core.dir/tag_library.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/tag_library.cc.o.d"
  "/root/repo/src/core/tag_query.cc" "src/core/CMakeFiles/p2pdt_core.dir/tag_query.cc.o" "gcc" "src/core/CMakeFiles/p2pdt_core.dir/tag_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/p2pdt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2pdt_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
