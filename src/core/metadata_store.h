#ifndef P2PDT_CORE_METADATA_STORE_H_
#define P2PDT_CORE_METADATA_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/document.h"

namespace p2pdt {

/// Persists tag assignments as per-document sidecar files.
///
/// The paper stores tags "as the files' meta-data, which are supported by
/// numerous operating systems" (xattrs / NTFS streams). Sidecar files in a
/// directory are the portable equivalent: other PIM tools can read them,
/// and they survive across this process's restarts. Format (one line per
/// tag): `tag<TAB>source<TAB>confidence`.
class MetadataStore {
 public:
  explicit MetadataStore(std::string directory);

  /// Writes (replaces) the sidecar for one document. Crash-safe: the
  /// sidecar is written to a temp sibling and renamed into place, so a
  /// crash mid-save leaves the previous sidecar intact, never a torn one.
  Status Save(const Document& doc) const;

  /// Loads tag assignments for a document id; NotFound when no sidecar
  /// exists. Torn or malformed lines (e.g. left by a pre-atomic-save crash
  /// or an external writer) are skipped, not fatal: the valid assignments
  /// are returned and `skipped_lines`, when non-null, reports how many
  /// lines were dropped.
  Result<std::vector<TagAssignment>> Load(
      DocId id, std::size_t* skipped_lines = nullptr) const;

  /// Removes a document's sidecar (missing file is not an error).
  Status Erase(DocId id) const;

  /// Document ids that currently have sidecars.
  Result<std::vector<DocId>> ListDocuments() const;

  const std::string& directory() const { return directory_; }

 private:
  std::string PathFor(DocId id) const;
  std::string directory_;
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_METADATA_STORE_H_
