#ifndef P2PDT_COMMON_BUILD_INFO_H_
#define P2PDT_COMMON_BUILD_INFO_H_

#include <string>

namespace p2pdt {

/// Build + runtime provenance stamped into run reports and bench JSON so
/// perf numbers are comparable across commits: a baseline only binds
/// against the toolchain that produced it.
struct BuildInfo {
  std::string git_sha;     ///< HEAD at configure time ("unknown" outside git).
  std::string compiler;    ///< e.g. "GNU 13.2.0".
  std::string flags;       ///< CMAKE_CXX_FLAGS + per-config flags.
  std::string build_type;  ///< Release / RelWithDebInfo / Debug.
  std::string sanitizer;   ///< P2PDT_SANITIZE preset ("none" when empty).
  std::string threads;     ///< P2PDT_THREADS env ("auto" when unset).

  /// Compile-time stamps (from CMake) + runtime environment.
  static BuildInfo Current();

  /// One JSON object: {"git_sha":...,"compiler":...,...}.
  std::string ToJson() const;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_BUILD_INFO_H_
