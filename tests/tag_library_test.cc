#include "core/tag_library.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

Document Doc(DocId id, std::vector<std::string> tags) {
  Document d;
  d.id = id;
  d.title = "doc" + std::to_string(id);
  for (auto& t : tags) d.tags.push_back({t, TagSource::kManual, 1.0});
  return d;
}

TEST(TagLibraryTest, IndexAndLookup) {
  TagLibrary lib;
  lib.Index(Doc(0, {"news", "tech"}));
  lib.Index(Doc(1, {"tech"}));
  EXPECT_EQ(lib.WithTag("tech"), (std::vector<DocId>{0, 1}));
  EXPECT_EQ(lib.WithTag("news"), (std::vector<DocId>{0}));
  EXPECT_TRUE(lib.WithTag("missing").empty());
  EXPECT_EQ(lib.num_tags(), 2u);
  EXPECT_EQ(lib.num_documents(), 2u);
}

TEST(TagLibraryTest, ReindexReplacesOldTags) {
  TagLibrary lib;
  lib.Index(Doc(0, {"old"}));
  lib.Index(Doc(0, {"new"}));
  EXPECT_TRUE(lib.WithTag("old").empty());
  EXPECT_EQ(lib.WithTag("new"), (std::vector<DocId>{0}));
  EXPECT_EQ(lib.num_tags(), 1u);
}

TEST(TagLibraryTest, RemoveDropsDocument) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a"}));
  lib.Index(Doc(1, {"a"}));
  lib.Remove(0);
  EXPECT_EQ(lib.WithTag("a"), (std::vector<DocId>{1}));
  lib.Remove(1);
  EXPECT_EQ(lib.num_tags(), 0u);
  lib.Remove(99);  // unknown id is a no-op
}

TEST(TagLibraryTest, UntaggedDocumentNotIndexed) {
  TagLibrary lib;
  lib.Index(Doc(0, {}));
  EXPECT_EQ(lib.num_documents(), 0u);
}

TEST(TagLibraryTest, AndSearch) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"a"}));
  lib.Index(Doc(2, {"a", "b", "c"}));
  EXPECT_EQ(lib.WithAllTags({"a", "b"}), (std::vector<DocId>{0, 2}));
  EXPECT_EQ(lib.WithAllTags({"a", "b", "c"}), (std::vector<DocId>{2}));
  EXPECT_TRUE(lib.WithAllTags({"a", "z"}).empty());
  EXPECT_TRUE(lib.WithAllTags({}).empty());
}

TEST(TagLibraryTest, OrSearch) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a"}));
  lib.Index(Doc(1, {"b"}));
  lib.Index(Doc(2, {"c"}));
  EXPECT_EQ(lib.WithAnyTag({"a", "c"}), (std::vector<DocId>{0, 2}));
  EXPECT_TRUE(lib.WithAnyTag({"z"}).empty());
}

TEST(TagLibraryTest, TagCountsAlphabetical) {
  TagLibrary lib;
  lib.Index(Doc(0, {"zebra", "apple"}));
  lib.Index(Doc(1, {"apple"}));
  auto counts = lib.TagCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "apple");
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(counts[1].first, "zebra");
  EXPECT_EQ(counts[1].second, 1u);
}

TEST(TagLibraryTest, CoOccurrence) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"a", "b"}));
  lib.Index(Doc(2, {"a"}));
  EXPECT_EQ(lib.CoOccurrence("a", "b"), 2u);
  EXPECT_EQ(lib.CoOccurrence("b", "a"), 2u);
  EXPECT_EQ(lib.CoOccurrence("a", "z"), 0u);
}

TEST(TagLibraryTest, DuplicateTagOnDocCountedOnce) {
  Document d = Doc(0, {"x", "x"});
  TagLibrary lib;
  lib.Index(d);
  EXPECT_EQ(lib.WithTag("x"), (std::vector<DocId>{0}));
  EXPECT_EQ(lib.TagCounts()[0].second, 1u);
}

TEST(DocumentTest, TagHelpers) {
  Document d = Doc(3, {"b", "a", "b"});
  EXPECT_TRUE(d.HasTag("a"));
  EXPECT_FALSE(d.HasTag("z"));
  EXPECT_EQ(d.TagNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(DocumentTest, TagSourceNames) {
  EXPECT_STREQ(TagSourceToString(TagSource::kManual), "manual");
  EXPECT_STREQ(TagSourceToString(TagSource::kAuto), "auto");
  EXPECT_STREQ(TagSourceToString(TagSource::kSuggested), "suggested");
}

}  // namespace
}  // namespace p2pdt
