file(REMOVE_RECURSE
  "libp2pdt_corpus.a"
)
