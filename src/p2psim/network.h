#ifndef P2PDT_P2PSIM_NETWORK_H_
#define P2PDT_P2PSIM_NETWORK_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "p2psim/simulator.h"
#include "p2psim/stats.h"

namespace p2pdt {

class Tracer;
class MetricsRegistry;

/// Index of a peer in the simulation (stable for the whole run; going
/// offline does not invalidate the id).
using NodeId = std::size_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Parameters of the simulated underlay ("Configure physical network" in
/// P2PDMT's architecture, Fig. 2).
struct PhysicalNetworkOptions {
  /// One-way latency between the two closest peers (seconds).
  double min_latency = 0.010;
  /// One-way latency between the two farthest peers (seconds). Peers are
  /// placed uniformly on a unit square; latency scales with distance, the
  /// standard Vivaldi-style coordinate underlay approximation.
  double max_latency = 0.120;
  /// Uplink bandwidth per peer (bytes/second); transmission time is
  /// bytes / bandwidth, serialized per message.
  double bandwidth_bytes_per_sec = 1.0e6;
  /// Probability that any single message is silently lost.
  double loss_rate = 0.0;
  uint64_t seed = 42;
};

/// Verdict of a fault hook for one message: drop it outright and/or delay
/// its delivery. Composed by FaultInjector from the armed fault plan.
struct FaultDecision {
  bool drop = false;
  double extra_latency = 0.0;
};

/// What a scripted adversarial peer does with its *content* (as opposed to
/// message-level faults, which only drop or delay). Classifiers consult the
/// installed AdversaryDirectory at model-production and vote-production
/// sites; kHonest means behave normally.
enum class AdversaryBehavior : uint8_t {
  kHonest = 0,
  /// Trains on negated labels and reports accuracy measured against the
  /// flipped truth — a plausible-looking but anti-correlated model.
  kLabelFlip,
  /// Publishes NaN/inf/absurd-magnitude weight vectors instead of training.
  kGarbageModel,
  /// Publishes models/accuracy vectors truncated to fewer tags than the
  /// corpus has, plus feature ids far outside the lexicon.
  kDimensionMismatch,
  /// Trains honestly but reports tag_accuracy = 1.0 and claims competence
  /// on every tag.
  kAccuracyInflate,
  /// Floods aggregation with absurd-magnitude votes: PACE peers publish a
  /// huge-bias always-positive model; CEMPaR super-peers answer queries
  /// with huge score/weight partials.
  kVoteSpam,
};

/// Stable lower_snake_case name (used as a CSV/metric label).
const char* AdversaryBehaviorToString(AdversaryBehavior behavior);

/// Read-only oracle for scripted adversarial peers. Implemented by
/// FaultInjector; installed on the network with SetAdversaries so that
/// classifiers (which already hold the network) can consult it without a
/// dependency on the fault module. Queries must be pure — in particular
/// they must not advance any shared RNG stream, so that armed-but-idle
/// plans leave baseline runs bit-identical.
class AdversaryDirectory {
 public:
  virtual ~AdversaryDirectory() = default;
  /// Behavior of `node` at simulated time `now` (kHonest outside any
  /// scripted window, and always before Arm()).
  virtual AdversaryBehavior BehaviorAt(NodeId node, SimTime now) const = 0;
  /// Deterministic per-node seed for generating corrupted payloads.
  /// Derived from the plan seed, never from the injector's live RNG —
  /// drawing corruption bytes must not perturb the message-fault stream.
  virtual uint64_t CorruptionSeed(NodeId node) const = 0;
};

/// Simulated physical (underlay) network: latency from synthetic
/// coordinates, per-message transmission delay, probabilistic loss, and
/// full message/byte accounting.
///
/// Offline semantics: a message is dropped when the sender is offline at
/// send time or the receiver is offline at *delivery* time — so a peer
/// failing mid-flight loses in-flight traffic, which is exactly the failure
/// mode churn experiments need to exercise.
///
/// Fault hook: an installed hook sees every message at send time and may
/// drop it (recorded as DropReason::kInjectedFault) or add latency. The
/// baseline random-loss draw is made whether or not a hook fires, so runs
/// with and without a fault plan consume identical RNG streams.
class PhysicalNetwork {
 public:
  using FaultHook = std::function<FaultDecision(
      NodeId from, NodeId to, MessageType type, SimTime now)>;

  PhysicalNetwork(Simulator& sim, PhysicalNetworkOptions options = {});

  /// Adds a peer at a random coordinate; starts online.
  NodeId AddNode();

  /// Adds `n` peers.
  void AddNodes(std::size_t n);

  std::size_t num_nodes() const { return online_.size(); }

  void SetOnline(NodeId node, bool online);
  bool IsOnline(NodeId node) const { return online_[node]; }
  std::size_t num_online() const { return num_online_; }

  /// One-way propagation latency between two peers (seconds).
  double Latency(NodeId from, NodeId to) const;

  /// Sends `bytes` from `from` to `to`. When the message is delivered,
  /// `on_deliver` runs at the receiver; when it is dropped (sender offline,
  /// receiver offline at arrival, or random loss) `on_drop` runs instead
  /// (at the same simulated time the delivery would have happened, or
  /// immediately for send-side failures). Either callback may be empty.
  void Send(NodeId from, NodeId to, std::size_t bytes, MessageType type,
            std::function<void()> on_deliver,
            std::function<void()> on_drop = nullptr);

  /// Installs (or clears, with nullptr) the fault hook. At most one hook is
  /// active; FaultInjector composes multiple fault rules behind one hook.
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }
  bool HasFaultHook() const { return static_cast<bool>(fault_hook_); }

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }
  const PhysicalNetworkOptions& options() const { return options_; }

  /// Observability attachments. Null (the default) means disabled and
  /// every instrumentation site reduces to one pointer test — the
  /// zero-cost-when-off guarantee. The network does not own either object;
  /// Environment (or a test) does. With a tracer installed, every message
  /// becomes a span parented on the tracer's current context, and the
  /// delivery/drop callback runs with that span as current — this is what
  /// stitches retries, DHT hops and request/response chains into one trace.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// Adversary attachment, same null-means-disabled contract as the
  /// observability pointers: classifiers do one pointer test and treat
  /// every peer as honest when no directory is installed. Installed by
  /// FaultInjector::Arm() when the plan scripts adversarial peers.
  void SetAdversaries(const AdversaryDirectory* adversaries) {
    adversaries_ = adversaries;
  }
  const AdversaryDirectory* adversaries() const { return adversaries_; }

 private:
  Simulator& sim_;
  PhysicalNetworkOptions options_;
  Rng rng_;
  FaultHook fault_hook_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  const AdversaryDirectory* adversaries_ = nullptr;
  std::vector<std::pair<double, double>> coords_;
  std::vector<bool> online_;
  std::size_t num_online_ = 0;
  NetworkStats stats_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_NETWORK_H_
