#include "core/document.h"

#include <algorithm>

namespace p2pdt {

const char* TagSourceToString(TagSource source) {
  switch (source) {
    case TagSource::kManual:
      return "manual";
    case TagSource::kAuto:
      return "auto";
    case TagSource::kSuggested:
      return "suggested";
  }
  return "unknown";
}

bool Document::HasTag(const std::string& tag) const {
  for (const auto& a : tags) {
    if (a.tag == tag) return true;
  }
  return false;
}

std::vector<std::string> Document::TagNames() const {
  std::vector<std::string> names;
  names.reserve(tags.size());
  for (const auto& a : tags) names.push_back(a.tag);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace p2pdt
