#ifndef P2PDT_ML_LSH_H_
#define P2PDT_ML_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sparse_vector.h"

namespace p2pdt {

struct LshOptions {
  /// Number of independent hash tables; more tables raise recall.
  std::size_t num_tables = 8;
  /// Bits per table signature; more bits raise precision.
  std::size_t num_bits = 12;
  uint64_t seed = 1;
};

/// Locality-sensitive hash index for cosine similarity, using signed random
/// projections (Charikar 2002). PACE peers "index the models using the
/// centroids (based on locality sensitive hashing)" (paper Sec. 2); this is
/// that index.
///
/// Projection directions are never materialized: the component of direction
/// (table, bit) along feature id is a deterministic pseudo-random ±1 derived
/// by hashing (seed, table, bit, id). This keeps the index memory-free in
/// the feature dimension, which matters under the hashing trick's 2^18-wide
/// feature space, and means two peers with the same seed build *identical*
/// hash functions without exchanging any state — the same trick that makes
/// the hashed lexicon coordination-free.
class CosineLsh {
 public:
  explicit CosineLsh(LshOptions options = {});

  /// Signature of `v` in table `t`.
  uint64_t Signature(std::size_t table, const SparseVector& v) const;

  /// Inserts an item with caller-supplied id.
  void Insert(std::size_t id, const SparseVector& v);

  /// Returns ids colliding with `v` in at least one table (deduplicated,
  /// unsorted). An empty result means no bucket collision — callers should
  /// fall back to a wider search.
  std::vector<std::size_t> Query(const SparseVector& v) const;

  /// Like Query, but widens via multi-probe (flipping each signature bit in
  /// turn) until at least `min_results` candidates are found or probes are
  /// exhausted.
  std::vector<std::size_t> QueryAtLeast(const SparseVector& v,
                                        std::size_t min_results) const;

  std::size_t size() const { return num_items_; }
  const LshOptions& options() const { return options_; }

 private:
  double ProjectionComponent(std::size_t table, std::size_t bit,
                             uint32_t feature) const;
  void Collect(std::size_t table, uint64_t sig,
               std::unordered_map<std::size_t, bool>& out) const;

  LshOptions options_;
  std::size_t num_items_ = 0;
  // One bucket map per table: signature -> item ids.
  std::vector<std::unordered_map<uint64_t, std::vector<std::size_t>>> tables_;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_LSH_H_
