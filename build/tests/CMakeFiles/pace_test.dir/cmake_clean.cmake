file(REMOVE_RECURSE
  "CMakeFiles/pace_test.dir/pace_test.cc.o"
  "CMakeFiles/pace_test.dir/pace_test.cc.o.d"
  "pace_test"
  "pace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
