// DEMO3 + durability — behaviour under churn (paper Sec. 3) extended with
// the durable-peer-state layer:
//
//  1. Crash-restore equivalence: a mid-run crash followed by a checkpoint
//     restore must be *bit-identical* to never having crashed (tags and raw
//     scores compared exactly).
//  2. Warm-vs-cold rejoin sweep across churn models (none / exponential /
//     pareto): same seeds, so the warm and cold rows reach the same
//     accuracy; the difference is pure recovery cost — retrain work and
//     rejoin latency — which warm rejoin must strictly reduce whenever
//     rejoins happen. Written to bench_results/churn.csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "p2pdmt/recovery_experiment.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== DEMO3: durability and recovery under churn ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/128,
                                                /*num_tags=*/12);

  // --- 1. Crash-restore equivalence -----------------------------------
  std::printf("--- crash-restore equivalence (checkpoint warm restore) ---\n");
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    ExperimentOptions opt = MacroDefaults(algo, 64);
    opt.max_test_documents = 200;
    Result<CrashRestoreReport> report =
        RunCrashRestoreExperiment(corpus, opt, /*num_crashed_peers=*/8);
    if (!report.ok()) {
      std::fprintf(stderr, "%s crash-restore failed: %s\n",
                   AlgorithmTypeToString(algo),
                   report.status().ToString().c_str());
      continue;
    }
    std::printf(
        "%-12s crashed=%zu restored=%zu ckpt=%.1fKiB predictions=%zu "
        "tag-mismatch=%zu score-mismatch=%zu resnap-mismatch=%zu  %s\n",
        report->algorithm.c_str(), report->crashed_peers,
        report->restored_peers,
        static_cast<double>(report->checkpoint_bytes) / 1024.0,
        report->predictions, report->mismatched_tags,
        report->mismatched_scores, report->resnapshot_mismatches,
        report->bit_identical() ? "BIT-IDENTICAL" : "DIVERGED");
  }

  // --- 2. Warm-vs-cold rejoin sweep -----------------------------------
  std::printf("\n--- warm vs cold rejoin across churn models ---\n");
  std::printf("%-12s %-12s %-5s %8s %8s %7s %9s %12s\n", "algorithm", "churn",
              "mode", "macroF1", "rejoins", "warm", "retrain", "lat(mean s)");

  ChurnSweepOptions sweep;
  sweep.base = MacroDefaults(AlgorithmType::kPace, 96);
  sweep.base.max_test_documents = 200;
  // Moderate churn: ~6% of peers offline at any instant, ~100 rejoins over
  // the exposure window. Heavier settings leave so many anti-entropy repairs
  // in flight at eval time that CEMPaR's DHT-side quality becomes dominated
  // by repair *timing* noise rather than by peer state, which is the wrong
  // thing to compare warm vs cold on.
  sweep.base.env.churn_mean_online_sec = 450.0;
  sweep.base.env.churn_mean_offline_sec = 30.0;
  sweep.exposure_sim_seconds = 600.0;
  sweep.on_point = [](const ChurnRow& row) {
    std::printf("%-12s %-12s %-5s %8.4f %8llu %7llu %9llu %12.3f\n",
                row.algorithm.c_str(), row.churn.c_str(),
                row.rejoin_mode.c_str(), row.macro_f1,
                static_cast<unsigned long long>(row.rejoins),
                static_cast<unsigned long long>(row.warm_rejoins),
                static_cast<unsigned long long>(row.retrain_examples),
                row.mean_rejoin_latency_sec);
  };
  std::vector<ChurnRow> rows = RunWarmColdSweep(corpus, sweep);
  WriteResults(ChurnCsv(rows), "churn.csv");
  return 0;
}
