#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(5.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(rng.Pareto(4.0, 1.5), 4.0);
  }
}

TEST(RngTest, ParetoMeanMatchesTheory) {
  // E[Pareto(xm, a)] = a*xm/(a-1); heavy tail needs many samples and slack.
  Rng rng(14);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(RngTest, GammaPositiveAndMeanMatches) {
  Rng rng(15);
  for (double shape : {0.3, 1.0, 2.5, 10.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      double g = rng.Gamma(shape);
      ASSERT_GT(g, 0.0) << "shape " << shape;
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape " << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(16);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> v = rng.Dirichlet(8, 0.3);
    ASSERT_EQ(v.size(), 8u);
    double sum = std::accumulate(v.begin(), v.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double x : v) EXPECT_GE(x, 0.0);
  }
}

TEST(RngTest, DirichletSmallAlphaIsSkewed) {
  Rng rng(17);
  double max_small = 0, max_large = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto a = rng.Dirichlet(10, 0.05);
    auto b = rng.Dirichlet(10, 50.0);
    max_small += *std::max_element(a.begin(), a.end());
    max_large += *std::max_element(b.begin(), b.end());
  }
  // Small alpha concentrates mass on few coordinates.
  EXPECT_GT(max_small / trials, 0.7);
  EXPECT_LT(max_large / trials, 0.3);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(18);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    std::size_t k = rng.Categorical(w);
    ASSERT_LT(k, 3u);
    ++counts[k];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.2);
}

TEST(RngTest, CategoricalAllZeroReturnsSize) {
  Rng rng(19);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), 2u);
  EXPECT_EQ(rng.Categorical({}), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    auto s = rng.SampleWithoutReplacement(50, 20);
    ASSERT_EQ(s.size(), 20u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (std::size_t x : s) EXPECT_LT(x, 50u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(22);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The child stream should not just replay the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, PmfSumsToOneAndIsMonotone) {
  const double s = GetParam();
  ZipfSampler sampler(100, s);
  double sum = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    double p = sampler.Pmf(k);
    EXPECT_GE(p, 0.0);
    if (k > 0 && s > 0) EXPECT_LE(p, sampler.Pmf(k - 1) + 1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfParamTest, SamplesMatchPmfOnHead) {
  const double s = GetParam();
  ZipfSampler sampler(50, s);
  Rng rng(31);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), sampler.Pmf(k), 0.01)
        << "s=" << s << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfParamTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler sampler(10, 0.0);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(sampler.Pmf(k), 0.1, 1e-9);
  }
}

}  // namespace
}  // namespace p2pdt
