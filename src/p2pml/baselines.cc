#include "p2pml/baselines.h"

#include <algorithm>

#include "common/logging.h"

namespace p2pdt {

namespace {

BinaryTrainer MakeLinearTrainer(const LinearSvmOptions& options) {
  return [options](const std::vector<Example>& examples)
             -> Result<std::unique_ptr<BinaryClassifier>> {
    Result<LinearSvmModel> model = TrainLinearSvm(examples, options);
    if (!model.ok()) return model.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(model).value()));
  };
}

std::size_t PredictionRequestBytes(const SparseVector& x) {
  return x.WireSize() + 16;
}

}  // namespace

// ---------------------------------------------------------------------------
// CentralizedClassifier
// ---------------------------------------------------------------------------

CentralizedClassifier::CentralizedClassifier(Simulator& sim,
                                             PhysicalNetwork& net,
                                             CentralizedOptions options)
    : sim_(sim), net_(net), options_(options) {}

Status CentralizedClassifier::Setup(std::vector<MultiLabelDataset> peer_data,
                                    TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  if (options_.coordinator >= peer_data.size()) {
    return Status::InvalidArgument("coordinator node does not exist");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  pooled_ = MultiLabelDataset(num_tags);
  trained_ = false;
  return Status::OK();
}

void CentralizedClassifier::Train(std::function<void(Status)> on_complete) {
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    if (pooled_.empty()) {
      on_complete(Status::Unavailable("no training data reached the center"));
      return;
    }
    Result<OneVsAllModel> model =
        TrainOneVsAll(pooled_, MakeLinearTrainer(options_.svm));
    if (!model.ok()) {
      on_complete(model.status());
      return;
    }
    model_ = std::move(model).value();
    trained_ = true;
    on_complete(Status::OK());
  };

  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    if (peer == options_.coordinator) {
      pooled_.Merge(peer_data_[peer]);
      continue;
    }
    ++*pending;
    // The whole local corpus travels — this is the data-centralization
    // cost (and privacy exposure) the paper's motivation criticizes.
    net_.Send(
        peer, options_.coordinator, peer_data_[peer].WireSize(),
        MessageType::kDataTransfer,
        [this, peer, barrier] {
          pooled_.Merge(peer_data_[peer]);
          (*barrier)();
        },
        [barrier] { (*barrier)(); });
  }
  (*barrier)();
}

void CentralizedClassifier::Predict(NodeId requester, const SparseVector& x,
                                    std::function<void(P2PPrediction)> done) {
  if (!trained_ || requester >= peer_data_.size() ||
      !net_.IsOnline(requester)) {
    sim_.Schedule(0.0, [done = std::move(done)] { done({{}, {}, false}); });
    return;
  }
  auto fail = [done](auto&&...) { };
  (void)fail;
  auto shared_done =
      std::make_shared<std::function<void(P2PPrediction)>>(std::move(done));

  auto answer = [this, shared_done](const SparseVector& vec) {
    P2PPrediction out;
    out.scores = model_.Scores(vec);
    out.tags = DecideTags(out.scores, options_.policy);
    out.success = true;
    return out;
  };

  if (requester == options_.coordinator) {
    sim_.Schedule(0.0, [answer, shared_done, x] {
      (*shared_done)(answer(x));
    });
    return;
  }
  net_.Send(
      requester, options_.coordinator, PredictionRequestBytes(x),
      MessageType::kPredictionRequest,
      [this, requester, x, answer, shared_done] {
        P2PPrediction out = answer(x);
        net_.Send(
            options_.coordinator, requester, 16 + 12 * out.scores.size(),
            MessageType::kPredictionResponse,
            [shared_done, out] { (*shared_done)(out); },
            [shared_done] { (*shared_done)({{}, {}, false}); });
      },
      [shared_done] { (*shared_done)({{}, {}, false}); });
}

// ---------------------------------------------------------------------------
// LocalOnlyClassifier
// ---------------------------------------------------------------------------

LocalOnlyClassifier::LocalOnlyClassifier(Simulator& sim, PhysicalNetwork& net,
                                         LocalOnlyOptions options)
    : sim_(sim), net_(net), options_(options) {}

Status LocalOnlyClassifier::Setup(std::vector<MultiLabelDataset> peer_data,
                                  TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  models_.assign(peer_data_.size(), {});
  has_model_.assign(peer_data_.size(), false);
  trained_ = false;
  return Status::OK();
}

void LocalOnlyClassifier::Train(std::function<void(Status)> on_complete) {
  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    MultiLabelDataset padded = peer_data_[peer];
    padded.set_num_tags(num_tags_);
    LinearSvmOptions svm = options_.svm;
    svm.seed = options_.svm.seed + peer;
    Result<OneVsAllModel> model =
        TrainOneVsAll(padded, MakeLinearTrainer(svm));
    if (!model.ok()) {
      P2PDT_LOG(Warning) << "local-only peer " << peer
                         << " training failed: " << model.status().ToString();
      continue;
    }
    models_[peer] = std::move(model).value();
    has_model_[peer] = true;
  }
  trained_ = true;
  sim_.Schedule(0.0, [on_complete = std::move(on_complete)] {
    on_complete(Status::OK());
  });
}

void LocalOnlyClassifier::Predict(NodeId requester, const SparseVector& x,
                                  std::function<void(P2PPrediction)> done) {
  bool ok = trained_ && requester < models_.size() &&
            net_.IsOnline(requester) && has_model_[requester];
  sim_.Schedule(0.0, [this, ok, requester, x, done = std::move(done)] {
    if (!ok) {
      done({{}, {}, false});
      return;
    }
    P2PPrediction out;
    out.scores = models_[requester].Scores(x);
    out.tags = DecideTags(out.scores, options_.policy);
    out.success = true;
    done(std::move(out));
  });
}

// ---------------------------------------------------------------------------
// ModelAveragingClassifier
// ---------------------------------------------------------------------------

ModelAveragingClassifier::ModelAveragingClassifier(
    Simulator& sim, PhysicalNetwork& net, Overlay& overlay,
    ModelAveragingOptions options)
    : sim_(sim), net_(net), overlay_(overlay), options_(options) {}

Status ModelAveragingClassifier::Setup(
    std::vector<MultiLabelDataset> peer_data, TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  contributed_.assign(peer_data_.size(), {});
  contributor_valid_.assign(peer_data_.size(), false);
  received_.assign(peer_data_.size(), {});
  trained_ = false;
  return Status::OK();
}

void ModelAveragingClassifier::Train(std::function<void(Status)> on_complete) {
  // Local phase: per-tag linear models.
  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    const MultiLabelDataset& data = peer_data_[peer];
    std::vector<LinearSvmModel> per_tag(num_tags_);
    std::vector<std::size_t> counts = data.TagCounts();
    bool any = false;
    for (TagId t = 0; t < num_tags_; ++t) {
      if (t >= counts.size() || counts[t] == 0 || counts[t] == data.size()) {
        continue;  // degenerate; contributes nothing for this tag
      }
      LinearSvmOptions svm = options_.svm;
      svm.seed = options_.svm.seed + peer * 131 + t;
      Result<LinearSvmModel> model =
          TrainLinearSvm(data.OneAgainstAll(t), svm);
      if (model.ok()) {
        per_tag[t] = std::move(model).value();
        any = true;
      }
    }
    if (!any) continue;
    contributed_[peer] = std::move(per_tag);
    contributor_valid_[peer] = true;
  }

  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    trained_ = true;
    on_complete(Status::OK());
  };

  for (NodeId peer = 0; peer < contributed_.size(); ++peer) {
    if (!contributor_valid_[peer]) continue;
    received_[peer].push_back(peer);
    std::size_t bytes = 0;
    for (const auto& m : contributed_[peer]) bytes += m.WireSize();
    ++*pending;
    overlay_.Broadcast(
        peer, bytes, MessageType::kModelBroadcast,
        [this, peer](NodeId receiver) {
          if (receiver < received_.size()) {
            received_[receiver].push_back(peer);
          }
        },
        [barrier] { (*barrier)(); });
  }
  (*barrier)();
}

void ModelAveragingClassifier::Predict(
    NodeId requester, const SparseVector& x,
    std::function<void(P2PPrediction)> done) {
  if (!trained_ || requester >= received_.size() ||
      !net_.IsOnline(requester) || received_[requester].empty()) {
    sim_.Schedule(0.0, [done = std::move(done)] { done({{}, {}, false}); });
    return;
  }
  // Average the decision values of every received contributor per tag —
  // algebraically identical to deciding with the averaged weight vector,
  // without materializing it per peer.
  P2PPrediction out;
  out.scores.assign(num_tags_, 0.0);
  std::vector<std::size_t> counts(num_tags_, 0);
  for (NodeId contributor : received_[requester]) {
    const auto& per_tag = contributed_[contributor];
    for (TagId t = 0; t < num_tags_; ++t) {
      if (per_tag[t].weights().empty() && per_tag[t].bias() == 0.0) continue;
      out.scores[t] += per_tag[t].Decision(x);
      ++counts[t];
    }
  }
  for (TagId t = 0; t < num_tags_; ++t) {
    if (counts[t] > 0) out.scores[t] /= static_cast<double>(counts[t]);
  }
  out.tags = DecideTags(out.scores, options_.policy);
  out.success = true;
  sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
    done(std::move(out));
  });
}

}  // namespace p2pdt
