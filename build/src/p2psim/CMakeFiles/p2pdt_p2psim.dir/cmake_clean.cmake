file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_p2psim.dir/chord.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/chord.cc.o.d"
  "CMakeFiles/p2pdt_p2psim.dir/churn.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/churn.cc.o.d"
  "CMakeFiles/p2pdt_p2psim.dir/network.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/network.cc.o.d"
  "CMakeFiles/p2pdt_p2psim.dir/simulator.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/simulator.cc.o.d"
  "CMakeFiles/p2pdt_p2psim.dir/stats.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/stats.cc.o.d"
  "CMakeFiles/p2pdt_p2psim.dir/unstructured.cc.o"
  "CMakeFiles/p2pdt_p2psim.dir/unstructured.cc.o.d"
  "libp2pdt_p2psim.a"
  "libp2pdt_p2psim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_p2psim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
