#ifndef P2PDT_P2PSIM_CHURN_H_
#define P2PDT_P2PSIM_CHURN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "p2psim/network.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Draws alternating online/offline session durations for one peer.
/// P2PDMT lets experiments plug "churn model(s)" (paper Sec. 2 / Fig. 2);
/// these are the standard three from the churn literature.
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  /// Duration of the next online session (seconds).
  virtual double NextOnlineDuration(Rng& rng) const = 0;
  /// Duration of the next offline period (seconds).
  virtual double NextOfflineDuration(Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Peers never leave: the static-network baseline.
class NoChurn final : public ChurnModel {
 public:
  double NextOnlineDuration(Rng&) const override { return 1e18; }
  double NextOfflineDuration(Rng&) const override { return 0.0; }
  std::string name() const override { return "none"; }
};

/// Memoryless sessions: exponential online lifetimes and offline gaps.
class ExponentialChurn final : public ChurnModel {
 public:
  ExponentialChurn(double mean_online_sec, double mean_offline_sec)
      : mean_online_(mean_online_sec), mean_offline_(mean_offline_sec) {}
  double NextOnlineDuration(Rng& rng) const override {
    return rng.Exponential(mean_online_);
  }
  double NextOfflineDuration(Rng& rng) const override {
    return mean_offline_ <= 0.0 ? 0.0 : rng.Exponential(mean_offline_);
  }
  std::string name() const override { return "exponential"; }

 private:
  double mean_online_;
  double mean_offline_;
};

/// Heavy-tailed sessions (measured P2P deployments show Pareto-like
/// lifetimes: many short-lived peers, a few very stable ones).
class ParetoChurn final : public ChurnModel {
 public:
  /// Shape `alpha` > 1 so the mean exists; scale chosen so the mean online
  /// time is `mean_online_sec`.
  ParetoChurn(double mean_online_sec, double mean_offline_sec,
              double alpha = 1.5)
      : alpha_(alpha),
        xm_online_(mean_online_sec * (alpha - 1.0) / alpha),
        mean_offline_(mean_offline_sec) {}
  double NextOnlineDuration(Rng& rng) const override {
    return rng.Pareto(xm_online_, alpha_);
  }
  double NextOfflineDuration(Rng& rng) const override {
    return mean_offline_ <= 0.0 ? 0.0 : rng.Exponential(mean_offline_);
  }
  std::string name() const override { return "pareto"; }

 private:
  double alpha_;
  double xm_online_;
  double mean_offline_;
};

/// Drives a PhysicalNetwork's online/offline transitions from a ChurnModel,
/// notifying listeners (the overlay, the P2P learning algorithm) on every
/// transition.
class ChurnDriver {
 public:
  using TransitionListener = std::function<void(NodeId, bool /*online*/)>;

  ChurnDriver(Simulator& sim, PhysicalNetwork& net,
              std::shared_ptr<ChurnModel> model, uint64_t seed = 7);

  /// Starts the churn process for every node currently in the network.
  /// Each peer gets an independent deterministic RNG stream.
  void Start();

  /// Registers a listener invoked after each transition is applied.
  void AddListener(TransitionListener listener);

  uint64_t num_failures() const { return num_failures_; }
  uint64_t num_rejoins() const { return num_rejoins_; }

  /// Classifies the most recent rejoin as warm (state restored from a
  /// durable checkpoint) or cold (state rebuilt from scratch). Called by
  /// the recovery layer from its rejoin listener, so every experiment
  /// surfaces the same counters regardless of which coordinator ran.
  void NoteRejoin(bool warm) {
    if (warm) {
      ++num_warm_rejoins_;
    } else {
      ++num_cold_rejoins_;
    }
  }
  uint64_t num_warm_rejoins() const { return num_warm_rejoins_; }
  uint64_t num_cold_rejoins() const { return num_cold_rejoins_; }

 private:
  void ScheduleNext(NodeId node);

  Simulator& sim_;
  PhysicalNetwork& net_;
  std::shared_ptr<ChurnModel> model_;
  Rng seed_rng_;
  std::vector<Rng> node_rngs_;
  std::vector<TransitionListener> listeners_;
  uint64_t num_failures_ = 0;
  uint64_t num_rejoins_ = 0;
  uint64_t num_warm_rejoins_ = 0;
  uint64_t num_cold_rejoins_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_CHURN_H_
