file(REMOVE_RECURSE
  "CMakeFiles/cempar_test.dir/cempar_test.cc.o"
  "CMakeFiles/cempar_test.dir/cempar_test.cc.o.d"
  "cempar_test"
  "cempar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cempar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
