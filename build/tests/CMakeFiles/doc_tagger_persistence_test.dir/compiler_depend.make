# Empty compiler generated dependencies file for doc_tagger_persistence_test.
# This may be replaced when dependencies are built.
