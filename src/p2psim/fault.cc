#include "p2psim/fault.h"

#include <algorithm>

namespace p2pdt {

FaultInjector::FaultInjector(Simulator& sim, PhysicalNetwork& net,
                             uint64_t seed)
    : sim_(sim), net_(net), rng_(seed), seed_(seed) {}

void FaultInjector::AddBurstLoss(double start, double end, double drop_prob) {
  burst_loss_.push_back({start, end, drop_prob});
}

void FaultInjector::AddMessageTypeDrop(double start, double end,
                                       MessageType type, double drop_prob) {
  type_drops_.push_back({start, end, type, drop_prob});
}

void FaultInjector::AddPartition(double start, double end,
                                 std::vector<NodeId> group_a,
                                 std::vector<NodeId> group_b) {
  PartitionRule rule;
  rule.start = start;
  rule.end = end;
  NodeId max_node = 0;
  for (NodeId n : group_a) max_node = std::max(max_node, n);
  for (NodeId n : group_b) max_node = std::max(max_node, n);
  rule.side.assign(max_node + 1, 0);
  for (NodeId n : group_a) rule.side[n] = 1;
  for (NodeId n : group_b) rule.side[n] = 2;
  partitions_.push_back(std::move(rule));
}

void FaultInjector::AddLatencySpike(double start, double end,
                                    double extra_latency_sec) {
  latency_spikes_.push_back({start, end, extra_latency_sec});
}

void FaultInjector::AddCrash(double time, NodeId node) {
  crashes_.push_back({time, node});
}

void FaultInjector::AddRecover(double time, NodeId node) {
  recoveries_.push_back({time, node});
}

void FaultInjector::AddAdversary(NodeId node, AdversaryBehavior behavior,
                                 double start, double end) {
  adversaries_.push_back({node, behavior, start, end});
}

void FaultInjector::AddPlan(const FaultPlanSpec& spec) {
  for (const auto& r : spec.burst_loss) {
    AddBurstLoss(r.start, r.end, r.drop_prob);
  }
  for (const auto& r : spec.type_drops) {
    AddMessageTypeDrop(r.start, r.end, r.type, r.drop_prob);
  }
  for (const auto& r : spec.partitions) {
    AddPartition(r.start, r.end, r.group_a, r.group_b);
  }
  for (const auto& r : spec.latency_spikes) {
    AddLatencySpike(r.start, r.end, r.extra_latency_sec);
  }
  for (const auto& t : spec.crashes) AddCrash(t.time, t.node);
  for (const auto& t : spec.recoveries) AddRecover(t.time, t.node);
  for (const auto& a : spec.adversaries) {
    AddAdversary(a.node, a.behavior, a.start, a.end);
  }
}

void FaultInjector::AddTransitionListener(
    std::function<void(NodeId, bool)> listener) {
  listeners_.push_back(std::move(listener));
}

std::size_t FaultInjector::num_message_rules() const {
  return burst_loss_.size() + type_drops_.size() + partitions_.size() +
         latency_spikes_.size();
}

void FaultInjector::Arm() {
  if (armed_) return;
  armed_ = true;
  // Install the directory only when the plan scripts adversaries, so a
  // message-fault-only plan leaves the classifiers' honest fast path (one
  // null-pointer test) untouched.
  if (!adversaries_.empty()) net_.SetAdversaries(this);
  if (num_message_rules() > 0) {
    net_.SetFaultHook([this](NodeId from, NodeId to, MessageType type,
                             SimTime now) {
      return Evaluate(from, to, type, now);
    });
  }
  auto apply = [this](NodeId node, bool online) {
    if (node >= net_.num_nodes()) return;
    net_.SetOnline(node, online);
    for (const auto& l : listeners_) l(node, online);
  };
  for (const auto& t : crashes_) {
    sim_.ScheduleAt(t.time, [apply, node = t.node] { apply(node, false); });
  }
  for (const auto& t : recoveries_) {
    sim_.ScheduleAt(t.time, [apply, node = t.node] { apply(node, true); });
  }
}

FaultDecision FaultInjector::Evaluate(NodeId from, NodeId to,
                                      MessageType type, SimTime now) {
  FaultDecision out;
  for (const auto& r : burst_loss_) {
    if (!InWindow(r.start, r.end, now)) continue;
    if (rng_.Bernoulli(r.drop_prob)) out.drop = true;
  }
  for (const auto& r : type_drops_) {
    if (r.type != type || !InWindow(r.start, r.end, now)) continue;
    if (rng_.Bernoulli(r.drop_prob)) out.drop = true;
  }
  for (const auto& r : partitions_) {
    if (!InWindow(r.start, r.end, now)) continue;
    uint8_t sf = from < r.side.size() ? r.side[from] : 0;
    uint8_t st = to < r.side.size() ? r.side[to] : 0;
    if (sf != 0 && st != 0 && sf != st) out.drop = true;
  }
  for (const auto& r : latency_spikes_) {
    if (!InWindow(r.start, r.end, now)) continue;
    out.extra_latency += r.extra_latency_sec;
  }
  if (out.drop) ++injected_drops_;
  return out;
}

AdversaryBehavior FaultInjector::BehaviorAt(NodeId node, SimTime now) const {
  if (!armed_) return AdversaryBehavior::kHonest;
  for (const auto& a : adversaries_) {
    if (a.node == node && InWindow(a.start, a.end, now)) return a.behavior;
  }
  return AdversaryBehavior::kHonest;
}

uint64_t FaultInjector::CorruptionSeed(NodeId node) const {
  // DeriveSeed over the plan seed, not rng_: corruption-byte generation
  // must never advance the message-fault stream (armed-but-idle plans stay
  // bit-identical to baseline).
  return DeriveSeed(seed_, static_cast<uint64_t>(node), 0xADBADull);
}

}  // namespace p2pdt
