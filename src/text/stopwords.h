#ifndef P2PDT_TEXT_STOPWORDS_H_
#define P2PDT_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace p2pdt {

/// Combined stop-word and sensitive-word filter.
///
/// Implements the first filtering stage of the paper's preprocessing:
/// "stop words that contain little recognition values (e.g., a, for, and,
/// not, etc), as well as user-specified sensitive words are filtered out
/// from all documents" (Sec. 2). Sensitive words are the privacy hook —
/// terms the user never wants to leave the machine, not even as word ids.
class StopWordFilter {
 public:
  /// Constructs with the built-in English stop list.
  StopWordFilter();

  /// Constructs with a custom stop list (lowercase expected).
  explicit StopWordFilter(std::vector<std::string> stop_words);

  /// Returns the built-in English stop list (a superset of the paper's
  /// examples; standard SMART-style list).
  static const std::vector<std::string>& DefaultEnglishStopWords();

  /// Adds a user-specified sensitive word; filtered identically to stop
  /// words but tracked separately so callers can audit what is suppressed.
  void AddSensitiveWord(std::string_view word);

  /// Adds several sensitive words at once.
  void AddSensitiveWords(const std::vector<std::string>& words);

  /// True when the token must be removed (stop word or sensitive word).
  bool IsFiltered(std::string_view token) const;

  bool IsStopWord(std::string_view token) const;
  bool IsSensitive(std::string_view token) const;

  /// Removes filtered tokens, preserving order of the survivors.
  std::vector<std::string> Filter(const std::vector<std::string>& tokens) const;

  std::size_t num_stop_words() const { return stop_words_.size(); }
  std::size_t num_sensitive_words() const { return sensitive_words_.size(); }

 private:
  std::unordered_set<std::string> stop_words_;
  std::unordered_set<std::string> sensitive_words_;
};

}  // namespace p2pdt

#endif  // P2PDT_TEXT_STOPWORDS_H_
