#include "p2psim/serve_queue.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(ServeQueueTest, DisabledAdmitsInstantlyAndKeepsNoState) {
  ServeQueueSet q(ServeOptions{});  // enabled = false
  for (int i = 0; i < 100; ++i) {
    Admission a = q.Admit(3, 0.0);
    EXPECT_EQ(a.outcome, AdmitOutcome::kAccept);
    EXPECT_EQ(a.delay, 0.0);
    EXPECT_EQ(a.depth, 0u);
  }
  EXPECT_EQ(q.accepted(), 0u);
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_EQ(q.Depth(3, 0.0), 0u);
}

TEST(ServeQueueTest, AcceptedRequestsQueueBehindEachOther) {
  ServeOptions opt;
  opt.enabled = true;
  opt.service_rate = 10.0;  // one request per 0.1s
  ServeQueueSet q(opt);

  Admission a0 = q.Admit(0, 0.0);
  Admission a1 = q.Admit(0, 0.0);
  Admission a2 = q.Admit(0, 0.0);
  EXPECT_EQ(a0.outcome, AdmitOutcome::kAccept);
  EXPECT_NEAR(a0.delay, 0.1, 1e-9);
  EXPECT_NEAR(a1.delay, 0.2, 1e-9);
  EXPECT_NEAR(a2.delay, 0.3, 1e-9);
  EXPECT_EQ(a0.depth, 0u);
  EXPECT_EQ(a1.depth, 1u);
  EXPECT_EQ(a2.depth, 2u);
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(q.Depth(0, 0.0), 3u);

  // The backlog drains in virtual time.
  EXPECT_EQ(q.Depth(0, 0.25), 1u);
  EXPECT_EQ(q.Depth(0, 0.31), 0u);
  // A late arrival starts a fresh busy period.
  Admission late = q.Admit(0, 10.0);
  EXPECT_NEAR(late.delay, 0.1, 1e-9);
  EXPECT_EQ(late.depth, 0u);
}

TEST(ServeQueueTest, NodesAreIndependent) {
  ServeOptions opt;
  opt.enabled = true;
  opt.service_rate = 10.0;
  ServeQueueSet q(opt);
  q.Admit(0, 0.0);
  q.Admit(0, 0.0);
  Admission other = q.Admit(7, 0.0);
  EXPECT_NEAR(other.delay, 0.1, 1e-9);
  EXPECT_EQ(q.Depth(0, 0.0), 2u);
  EXPECT_EQ(q.Depth(7, 0.0), 1u);
}

TEST(ServeQueueTest, ShedsOnQueueDepth) {
  ServeOptions opt;
  opt.enabled = true;
  opt.service_rate = 10.0;
  opt.admission_control = true;
  opt.max_depth = 3;
  opt.max_wait = 100.0;  // depth limit binds first
  opt.retry_after = 0.7;
  ServeQueueSet q(opt);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.Admit(0, 0.0).outcome, AdmitOutcome::kAccept);
  }
  Admission shed = q.Admit(0, 0.0);
  EXPECT_EQ(shed.outcome, AdmitOutcome::kShedQueueFull);
  EXPECT_DOUBLE_EQ(shed.retry_after, 0.7);
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(q.shed_queue_full(), 1u);
  // Shedding consumed no capacity: after draining, admits again.
  EXPECT_EQ(q.Admit(0, 1.0).outcome, AdmitOutcome::kAccept);
}

TEST(ServeQueueTest, ShedsOnPredictedWait) {
  ServeOptions opt;
  opt.enabled = true;
  opt.service_rate = 10.0;
  opt.admission_control = true;
  opt.max_depth = 1000;
  opt.max_wait = 0.25;
  ServeQueueSet q(opt);

  EXPECT_EQ(q.Admit(0, 0.0).outcome, AdmitOutcome::kAccept);  // wait 0
  EXPECT_EQ(q.Admit(0, 0.0).outcome, AdmitOutcome::kAccept);  // wait 0.1
  EXPECT_EQ(q.Admit(0, 0.0).outcome, AdmitOutcome::kAccept);  // wait 0.2
  // Next would wait 0.3 > 0.25.
  EXPECT_EQ(q.Admit(0, 0.0).outcome, AdmitOutcome::kShedWait);
  EXPECT_EQ(q.shed_wait(), 1u);
  EXPECT_EQ(q.shed(), 1u);
}

TEST(ServeQueueTest, UnboundedWithoutAdmissionControl) {
  // The undefended arm: capacity is finite but nothing is ever shed — the
  // queue just grows.
  ServeOptions opt;
  opt.enabled = true;
  opt.service_rate = 10.0;
  opt.admission_control = false;
  ServeQueueSet q(opt);
  Admission last;
  for (int i = 0; i < 200; ++i) last = q.Admit(0, 0.0);
  EXPECT_EQ(last.outcome, AdmitOutcome::kAccept);
  EXPECT_NEAR(last.delay, 20.0, 1e-7);
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_GE(q.max_depth_seen(), 200u);
}

TEST(ServeQueueTest, OutcomeStrings) {
  EXPECT_STREQ(AdmitOutcomeToString(AdmitOutcome::kAccept), "accept");
  EXPECT_STREQ(AdmitOutcomeToString(AdmitOutcome::kShedQueueFull),
               "queue_full");
  EXPECT_STREQ(AdmitOutcomeToString(AdmitOutcome::kShedWait),
               "wait_exceeded");
}

}  // namespace
}  // namespace p2pdt
