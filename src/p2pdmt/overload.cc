#include "p2pdmt/overload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace p2pdt {

namespace {

struct Fnv64 {
  uint64_t state = 0xcbf29ce484222325ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 0x100000001b3ull;
    }
  }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

struct ClassifierLedgers {
  const ServeQueueSet* serve = nullptr;
  const PredictCacheSet* cache = nullptr;
};

ClassifierLedgers Ledgers(P2PClassifier& algo) {
  ClassifierLedgers l;
  if (auto* pace = dynamic_cast<Pace*>(&algo)) {
    l.serve = pace->serve_queue();
    l.cache = pace->predict_cache();
  } else if (auto* cempar = dynamic_cast<Cempar*>(&algo)) {
    l.serve = cempar->serve_queue();
    l.cache = cempar->predict_cache();
  }
  return l;
}

}  // namespace

Result<OverloadRunStats> RunOverloadExperiment(
    const VectorizedCorpus& corpus, const OverloadExperimentOptions& options) {
  CorpusSplit split =
      SplitCorpus(corpus, options.train_fraction, options.seed);
  if (split.train.size() == 0 || split.test.size() == 0) {
    return Status::InvalidArgument(
        "overload harness needs non-empty train and test splits");
  }

  EnvironmentOptions env_options = options.env;
  env_options.observe.metrics = true;  // the SLO histogram lives here
  Result<std::unique_ptr<Environment>> env_result =
      Environment::Create(env_options);
  if (!env_result.ok()) return env_result.status();
  Environment& env = *env_result.value();
  const std::size_t num_peers = env_options.num_peers;

  ExperimentOptions algo_options;
  algo_options.algorithm = options.algorithm;
  algo_options.cempar = options.cempar;
  algo_options.pace = options.pace;
  algo_options.sim_shards = options.sim_shards;
  Result<std::unique_ptr<P2PClassifier>> algo_result =
      MakeClassifier(env, algo_options);
  if (!algo_result.ok()) return algo_result.status();
  P2PClassifier& algo = *algo_result.value();

  auto shared = std::make_shared<const MultiLabelDataset>(split.train);
  Result<std::vector<std::vector<uint32_t>>> indices = DistributeIndices(
      *shared, num_peers, options.distribution, &split.train_user);
  if (!indices.ok()) return indices.status();
  std::vector<DatasetShard> shards;
  shards.reserve(num_peers);
  for (std::size_t p = 0; p < num_peers; ++p) {
    shards.emplace_back(shared, std::move((*indices)[p]));
  }
  P2PDT_RETURN_IF_ERROR(
      algo.SetupShards(std::move(shards), corpus.dataset.num_tags()));

  env.StartDynamics();
  OverloadRunStats stats;
  bool train_done = false;
  Status train_status = Status::OK();
  algo.Train([&](Status s) {
    train_status = s;
    train_done = true;
  });
  stats.train_sim_seconds =
      env.RunUntilFlag(train_done, options.max_train_sim_seconds);
  if (!train_done) {
    return Status::Internal("overload harness: training did not quiesce");
  }
  P2PDT_RETURN_IF_ERROR(train_status);

  // Request catalog in popularity order: test documents by index. The
  // split must stay alive until the generator finishes — docs are views.
  std::vector<const SparseVector*> docs;
  const std::size_t catalog =
      options.max_docs == 0
          ? split.test.size()
          : std::min(options.max_docs, split.test.size());
  docs.reserve(catalog);
  for (std::size_t i = 0; i < catalog; ++i) docs.push_back(&split.test[i].x);
  std::vector<NodeId> requesters(num_peers);
  for (std::size_t p = 0; p < num_peers; ++p) requesters[p] = p;

  if (options.loadgen.enabled) {
    SessionLoadGenerator gen(env.sim(), algo, options.loadgen, docs,
                             requesters, *env.metrics());
    bool load_done = false;
    gen.Run([&](const LoadGenResult& r) {
      stats.load = r;
      load_done = true;
    });
    env.RunUntilFlag(load_done, options.max_load_sim_seconds);
    if (!load_done) {
      return Status::Internal("overload harness: load did not quiesce");
    }
  } else {
    // Disarmed bit-identity witness: a short sequential prediction pass
    // fingerprinting only the answers. Idle overload machinery (queues
    // with no contention, an empty cache) must not change a single bit.
    Fnv64 digest;
    const std::size_t n = std::min<std::size_t>(40, docs.size());
    for (std::size_t i = 0; i < n; ++i) {
      bool done = false;
      P2PPrediction pred;
      algo.Predict(requesters[i % requesters.size()], *docs[i],
                   [&](P2PPrediction p) {
                     pred = std::move(p);
                     done = true;
                   });
      env.RunUntilFlag(done, options.max_load_sim_seconds);
      if (!done) {
        return Status::Internal("overload harness: eval did not quiesce");
      }
      digest.Mix(pred.success ? 1 : 0);
      digest.Mix(pred.tags.size());
      for (TagId t : pred.tags) digest.Mix(static_cast<uint64_t>(t));
      for (double s : pred.scores) digest.MixDouble(s);
      ++stats.load.offered;
      ++stats.load.completed;
      if (pred.success) {
        ++stats.load.ok;
      } else {
        ++stats.load.failed;
      }
    }
    stats.load.fingerprint = digest.state;
  }

  ClassifierLedgers ledgers = Ledgers(algo);
  if (ledgers.serve != nullptr) stats.requests_shed = ledgers.serve->shed();
  if (ledgers.cache != nullptr) {
    stats.cache_hits = ledgers.cache->hits();
    stats.cache_misses = ledgers.cache->misses();
    stats.cache_stale = ledgers.cache->stale();
  }
  const NetworkStats& net_stats = env.net().stats();
  stats.give_ups = net_stats.give_ups();
  stats.overload_drops = net_stats.dropped(DropReason::kOverloadShed);
  return stats;
}

namespace {

OverloadRow MakeRow(const OverloadRunStats& s, const std::string& algorithm,
                    const std::string& arm, const std::string& burst,
                    double arrival_rate, double burst_multiplier,
                    double slo_s) {
  OverloadRow row;
  row.algorithm = algorithm;
  row.arm = arm;
  row.burst = burst;
  row.arrival_rate = arrival_rate;
  row.burst_multiplier = burst_multiplier;
  row.offered = s.load.offered;
  row.completed = s.load.completed;
  row.ok = s.load.ok;
  row.degraded = s.load.degraded;
  row.cached = s.load.cached;
  row.failed = s.load.failed;
  row.shed = s.requests_shed;
  row.retries = s.load.retries;
  row.within_slo = s.load.within_slo;
  row.goodput_within_slo = s.load.goodput_within_slo;
  const uint64_t attempts = s.load.offered + s.load.retries;
  row.shed_rate = attempts == 0 ? 0.0
                                : static_cast<double>(s.requests_shed) /
                                      static_cast<double>(attempts);
  const uint64_t lookups = s.cache_hits + s.cache_misses + s.cache_stale;
  row.cache_hit_rate = lookups == 0 ? 0.0
                                    : static_cast<double>(s.cache_hits) /
                                          static_cast<double>(lookups);
  row.p50_s = s.load.p50_latency;
  row.p95_s = s.load.p95_latency;
  row.p99_s = s.load.p99_latency;
  row.slo_s = slo_s;
  row.give_ups = s.give_ups;
  row.fingerprint = s.load.fingerprint;
  return row;
}

/// Applies one arm's configuration: serving capacity always on (finite
/// machines are the physical reality both arms share); the defended arm
/// adds admission control + load shedding, the prediction cache, CEMPaR
/// request batching and the reliable transport's typed overload path.
void ConfigureArm(OverloadExperimentOptions& opt, const std::string& arm,
                  const OverloadSweepOptions& sweep, double arrival_rate) {
  const double sessions = static_cast<double>(
      std::max<std::size_t>(opt.loadgen.sessions, 1));
  const double peers =
      static_cast<double>(std::max<std::size_t>(opt.env.num_peers, 1));
  const double per_session_rate = arrival_rate / sessions;
  const double sessions_per_peer = std::max(1.0, sessions / peers);

  double pace_rate = sweep.pace_service_rate;
  if (pace_rate <= 0.0) {
    pace_rate =
        sweep.capacity_headroom * per_session_rate * sessions_per_peer;
  }
  double cempar_rate = sweep.cempar_service_rate;
  if (cempar_rate <= 0.0) {
    // CEMPaR concentrates requests on the documents' home super-peers;
    // Zipf popularity puts most of the load on a handful of owners, so
    // budget as if ~4 of them carry the aggregate rate.
    cempar_rate = sweep.capacity_headroom * arrival_rate / 4.0;
  }

  const bool defended = arm == "defended";
  auto configure = [&](ServeOptions& serve, double rate) {
    serve.enabled = true;
    serve.service_rate = rate;
    serve.admission_control = defended;
    serve.max_wait = 0.5 * opt.loadgen.slo_latency;
    serve.retry_after = 0.25 * opt.loadgen.slo_latency;
  };
  configure(opt.pace.serve, pace_rate);
  configure(opt.cempar.serve, cempar_rate);

  opt.pace.predict_cache.enabled = defended;
  opt.cempar.predict_cache.enabled = defended;
  opt.cempar.batch_predictions = defended;
  if (defended) {
    opt.cempar.reliable_transport = true;  // typed overload NACK path
  }
}

}  // namespace

Result<std::vector<OverloadRow>> RunOverloadSweep(
    const VectorizedCorpus& corpus, const OverloadSweepOptions& options) {
  std::vector<OverloadRow> rows;
  const std::vector<std::string> arms = {"undefended", "defended"};
  const double first_rate =
      options.arrival_rates.empty() ? 40.0 : options.arrival_rates.front();

  for (AlgorithmType algorithm : options.algorithms) {
    const std::string algo_name = AlgorithmTypeToString(algorithm);

    // Disarmed bit-identity pair: both arm configurations with the load
    // generator off. The checker asserts their fingerprints match — idle
    // overload machinery changes no prediction.
    for (const std::string& arm : arms) {
      OverloadExperimentOptions opt = options.base;
      opt.algorithm = algorithm;
      opt.loadgen.enabled = false;
      ConfigureArm(opt, arm, options, first_rate);
      Result<OverloadRunStats> r = RunOverloadExperiment(corpus, opt);
      if (!r.ok()) {
        P2PDT_LOG(Warning) << algo_name << " disarmed arm=" << arm
                           << " failed: " << r.status().ToString();
        continue;
      }
      rows.push_back(MakeRow(*r, algo_name, arm, "disarmed", 0.0, 1.0,
                             opt.loadgen.slo_latency));
      if (options.on_point) options.on_point(rows.back());
    }

    std::vector<std::string> bursts;
    if (options.none_burst) bursts.push_back("none");
    bursts.push_back("flash");

    for (double rate : options.arrival_rates) {
      for (const std::string& burst : bursts) {
        for (const std::string& arm : arms) {
          OverloadExperimentOptions opt = options.base;
          opt.algorithm = algorithm;
          opt.loadgen.enabled = true;
          opt.loadgen.arrival_rate = rate;
          opt.loadgen.bursts.clear();
          double mult = 1.0;
          if (burst == "flash") {
            // Burst placed inside the expected steady-state span of the
            // replay: mean session length over the per-session rate.
            const double sessions = static_cast<double>(
                std::max<std::size_t>(opt.loadgen.sessions, 1));
            const double mean_docs =
                0.5 * static_cast<double>(opt.loadgen.min_docs +
                                          opt.loadgen.max_docs);
            const double span = mean_docs / (rate / sessions);
            FlashCrowdBurst b;
            b.start = 0.3 * span;
            b.duration = 0.25 * span;
            b.rate_multiplier = options.burst_multiplier;
            b.hot_fraction = 0.9;
            b.hot_docs = 8;
            opt.loadgen.bursts.push_back(b);
            mult = options.burst_multiplier;
          }
          ConfigureArm(opt, arm, options, rate);
          Result<OverloadRunStats> r = RunOverloadExperiment(corpus, opt);
          if (!r.ok()) {
            P2PDT_LOG(Warning)
                << algo_name << " arm=" << arm << " burst=" << burst
                << " rate=" << rate
                << " failed: " << r.status().ToString();
            continue;
          }
          rows.push_back(MakeRow(*r, algo_name, arm, burst, rate, mult,
                                 opt.loadgen.slo_latency));
          if (options.on_point) options.on_point(rows.back());
        }
      }
    }
  }
  return rows;
}

CsvWriter OverloadCsv(const std::vector<OverloadRow>& rows) {
  CsvWriter csv({"algorithm", "arm", "burst", "arrival_rate",
                 "burst_multiplier", "offered", "completed", "ok", "degraded",
                 "cached", "failed", "shed", "retries", "within_slo",
                 "goodput_within_slo", "shed_rate", "cache_hit_rate", "p50_s",
                 "p95_s", "p99_s", "slo_s", "give_ups", "fingerprint"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  auto hex = [&buf](uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  for (const OverloadRow& row : rows) {
    csv.AddRow({row.algorithm, row.arm, row.burst, fmt(row.arrival_rate),
                fmt(row.burst_multiplier), std::to_string(row.offered),
                std::to_string(row.completed), std::to_string(row.ok),
                std::to_string(row.degraded), std::to_string(row.cached),
                std::to_string(row.failed), std::to_string(row.shed),
                std::to_string(row.retries), std::to_string(row.within_slo),
                fmt(row.goodput_within_slo), fmt(row.shed_rate),
                fmt(row.cache_hit_rate), fmt(row.p50_s), fmt(row.p95_s),
                fmt(row.p99_s), fmt(row.slo_s), std::to_string(row.give_ups),
                hex(row.fingerprint)});
  }
  return csv;
}

}  // namespace p2pdt
