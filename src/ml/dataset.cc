#include "ml/dataset.h"

#include <algorithm>
#include <cassert>

namespace p2pdt {

bool MultiLabelExample::HasTag(TagId tag) const {
  return std::binary_search(tags.begin(), tags.end(), tag);
}

void MultiLabelDataset::Add(MultiLabelExample example) {
  std::sort(example.tags.begin(), example.tags.end());
  example.tags.erase(std::unique(example.tags.begin(), example.tags.end()),
                     example.tags.end());
  for (TagId t : example.tags) {
    if (t >= num_tags_) num_tags_ = t + 1;
  }
  examples_.push_back(std::move(example));
}

std::vector<Example> MultiLabelDataset::OneAgainstAll(TagId tag) const {
  std::vector<Example> out;
  out.reserve(examples_.size());
  for (const auto& ex : examples_) {
    out.push_back({ex.x, ex.HasTag(tag) ? 1.0 : -1.0});
  }
  return out;
}

std::vector<std::size_t> MultiLabelDataset::TagCounts() const {
  std::vector<std::size_t> counts(num_tags_, 0);
  for (const auto& ex : examples_) {
    // Tags beyond the declared universe (a mis-sized or hostile dataset)
    // must not write out of bounds.
    for (TagId t : ex.tags) {
      if (t < counts.size()) ++counts[t];
    }
  }
  return counts;
}

std::pair<MultiLabelDataset, MultiLabelDataset> MultiLabelDataset::Split(
    double train_fraction, Rng& rng) const {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<std::size_t> order(examples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(examples_.size()) + 0.5);
  MultiLabelDataset train(num_tags_), test(num_tags_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& ex = examples_[order[i]];
    if (i < n_train) {
      train.Add(ex);
    } else {
      test.Add(ex);
    }
  }
  return {std::move(train), std::move(test)};
}

void MultiLabelDataset::Merge(const MultiLabelDataset& other) {
  num_tags_ = std::max(num_tags_, other.num_tags_);
  examples_.insert(examples_.end(), other.examples_.begin(),
                   other.examples_.end());
}

std::size_t MultiLabelDataset::WireSize() const {
  std::size_t bytes = 0;
  for (const auto& ex : examples_) {
    bytes += ex.x.WireSize() + 4 + 4 * ex.tags.size();
  }
  return bytes;
}

DatasetShard::DatasetShard(std::shared_ptr<const MultiLabelDataset> corpus,
                           std::vector<uint32_t> indices)
    : corpus_(std::move(corpus)), indices_(std::move(indices)) {
  assert(corpus_ != nullptr);
#ifndef NDEBUG
  for (uint32_t i : indices_) assert(i < corpus_->size());
#endif
}

DatasetShard DatasetShard::Own(MultiLabelDataset data) {
  std::vector<uint32_t> all(data.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  return DatasetShard(
      std::make_shared<const MultiLabelDataset>(std::move(data)),
      std::move(all));
}

TagId DatasetShard::num_tags() const {
  TagId base = corpus_ == nullptr ? 0 : corpus_->num_tags();
  return std::max(base, num_tags_override_);
}

void DatasetShard::set_num_tags(TagId n) {
  num_tags_override_ = std::max(num_tags_override_, n);
}

std::vector<Example> DatasetShard::OneAgainstAll(TagId tag) const {
  std::vector<Example> out;
  out.reserve(indices_.size());
  for (uint32_t i : indices_) {
    const MultiLabelExample& ex = (*corpus_)[i];
    out.push_back({ex.x, ex.HasTag(tag) ? 1.0 : -1.0});
  }
  return out;
}

std::vector<std::size_t> DatasetShard::TagCounts() const {
  std::vector<std::size_t> counts(num_tags(), 0);
  for (uint32_t i : indices_) {
    for (TagId t : (*corpus_)[i].tags) {
      if (t < counts.size()) ++counts[t];
    }
  }
  return counts;
}

MultiLabelDataset DatasetShard::Materialize() const {
  MultiLabelDataset out(num_tags());
  for (uint32_t i : indices_) out.Add((*corpus_)[i]);
  return out;
}

std::size_t DatasetShard::WireSize() const {
  std::size_t bytes = 0;
  for (uint32_t i : indices_) {
    const MultiLabelExample& ex = (*corpus_)[i];
    bytes += ex.x.WireSize() + 4 + 4 * ex.tags.size();
  }
  return bytes;
}

void FeatureRemapper::Observe(const SparseVector& v) {
  for (const auto& [id, _] : v.entries()) {
    auto [it, inserted] = global_to_compact_.try_emplace(
        id, static_cast<uint32_t>(compact_to_global_.size()));
    if (inserted) compact_to_global_.push_back(id);
  }
}

SparseVector FeatureRemapper::ToCompact(const SparseVector& v) const {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(v.nnz());
  for (const auto& [id, w] : v.entries()) {
    auto it = global_to_compact_.find(id);
    if (it != global_to_compact_.end()) entries.emplace_back(it->second, w);
  }
  return SparseVector::FromPairs(std::move(entries));
}

SparseVector FeatureRemapper::ToGlobal(const SparseVector& v) const {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(v.nnz());
  for (const auto& [id, w] : v.entries()) {
    assert(id < compact_to_global_.size());
    entries.emplace_back(compact_to_global_[id], w);
  }
  return SparseVector::FromPairs(std::move(entries));
}

SparseVector FeatureRemapper::DenseToGlobal(
    const std::vector<double>& dense) const {
  std::vector<SparseVector::Entry> entries;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) {
      assert(i < compact_to_global_.size());
      entries.emplace_back(compact_to_global_[i], dense[i]);
    }
  }
  return SparseVector::FromPairs(std::move(entries));
}

}  // namespace p2pdt
