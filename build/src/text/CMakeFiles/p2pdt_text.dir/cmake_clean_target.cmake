file(REMOVE_RECURSE
  "libp2pdt_text.a"
)
