#include "core/tag_library.h"

#include <algorithm>

namespace p2pdt {

void TagLibrary::Index(const Document& doc) {
  Remove(doc.id);
  if (doc.tags.empty()) return;
  auto& tags = doc_to_tags_[doc.id];
  for (const TagAssignment& a : doc.tags) {
    tags.insert(a.tag);
    tag_to_docs_[a.tag].insert(doc.id);
  }
}

void TagLibrary::Remove(DocId doc) {
  auto it = doc_to_tags_.find(doc);
  if (it == doc_to_tags_.end()) return;
  for (const std::string& tag : it->second) {
    auto tag_it = tag_to_docs_.find(tag);
    if (tag_it != tag_to_docs_.end()) {
      tag_it->second.erase(doc);
      if (tag_it->second.empty()) tag_to_docs_.erase(tag_it);
    }
  }
  doc_to_tags_.erase(it);
}

std::vector<DocId> TagLibrary::WithTag(const std::string& tag) const {
  auto it = tag_to_docs_.find(tag);
  if (it == tag_to_docs_.end()) return {};
  return std::vector<DocId>(it->second.begin(), it->second.end());
}

std::vector<DocId> TagLibrary::WithAllTags(
    const std::vector<std::string>& tags) const {
  if (tags.empty()) return {};
  std::vector<DocId> acc = WithTag(tags.front());
  for (std::size_t i = 1; i < tags.size() && !acc.empty(); ++i) {
    std::vector<DocId> next = WithTag(tags[i]);
    std::vector<DocId> merged;
    std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<DocId> TagLibrary::WithAnyTag(
    const std::vector<std::string>& tags) const {
  std::set<DocId> acc;
  for (const std::string& tag : tags) {
    auto it = tag_to_docs_.find(tag);
    if (it != tag_to_docs_.end()) acc.insert(it->second.begin(),
                                             it->second.end());
  }
  return std::vector<DocId>(acc.begin(), acc.end());
}

std::vector<DocId> TagLibrary::AllDocuments() const {
  std::vector<DocId> out;
  out.reserve(doc_to_tags_.size());
  for (const auto& [doc, _] : doc_to_tags_) out.push_back(doc);
  return out;  // std::map keys are already ascending
}

std::vector<std::pair<std::string, std::size_t>> TagLibrary::TagCounts()
    const {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(tag_to_docs_.size());
  for (const auto& [tag, docs] : tag_to_docs_) {
    out.emplace_back(tag, docs.size());
  }
  return out;  // std::map iteration is already alphabetical
}

std::size_t TagLibrary::CoOccurrence(const std::string& a,
                                     const std::string& b) const {
  auto ia = tag_to_docs_.find(a);
  auto ib = tag_to_docs_.find(b);
  if (ia == tag_to_docs_.end() || ib == tag_to_docs_.end()) return 0;
  const auto& small = ia->second.size() <= ib->second.size() ? ia->second
                                                             : ib->second;
  const auto& large = ia->second.size() <= ib->second.size() ? ib->second
                                                             : ia->second;
  std::size_t n = 0;
  for (DocId d : small) {
    if (large.count(d) > 0) ++n;
  }
  return n;
}

}  // namespace p2pdt
