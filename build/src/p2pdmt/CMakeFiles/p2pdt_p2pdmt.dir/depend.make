# Empty dependencies file for p2pdt_p2pdmt.
# This may be replaced when dependencies are built.
