#ifndef P2PDT_COMMON_CSV_H_
#define P2PDT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace p2pdt {

/// Minimal CSV table builder used by the P2PDMT statistics exporter and the
/// benchmark harness to persist experiment series.
///
/// Values containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  std::size_t num_columns() const { return header_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Appends a row; must match the header width.
  Status AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g.
  Status AddNumericRow(const std::vector<double>& row);

  /// Renders the full table, header first, '\n' line endings.
  std::string ToString() const;

  /// Writes the table to `path`, replacing any existing file.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field per RFC 4180 (quotes only when needed).
std::string CsvEscape(const std::string& field);

}  // namespace p2pdt

#endif  // P2PDT_COMMON_CSV_H_
