#include "p2pdmt/activity_log.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(ActivityLogTest, RecordsInOrder) {
  ActivityLog log;
  log.Record(1.0, "peer/0", "churn", "offline");
  log.Record(2.5, "peer/1", "train", "uploaded model");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.entries()[0].time, 1.0);
  EXPECT_EQ(log.entries()[1].category, "train");
}

TEST(ActivityLogTest, FilterAndCount) {
  ActivityLog log;
  log.Record(1, "a", "churn", "x");
  log.Record(2, "b", "train", "y");
  log.Record(3, "c", "churn", "z");
  EXPECT_EQ(log.CountCategory("churn"), 2u);
  EXPECT_EQ(log.CountCategory("train"), 1u);
  EXPECT_EQ(log.CountCategory("missing"), 0u);
  std::vector<ActivityLog::Entry> churn = log.FilterByCategory("churn");
  ASSERT_EQ(churn.size(), 2u);
  EXPECT_EQ(churn[1].actor, "c");
}

TEST(ActivityLogTest, CsvRoundTrip) {
  ActivityLog log;
  log.Record(0.5, "peer/3", "predict", "tags: a,b", /*trace_id=*/42);
  log.Record(0.7, "peer/4", "churn", "offline");  // untraced row
  std::string path = ::testing::TempDir() + "/p2pdt_activity.csv";
  ASSERT_TRUE(log.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("time,actor,category,detail,trace_id"),
            std::string::npos);
  EXPECT_NE(content.find("\"tags: a,b\",42"), std::string::npos);
  EXPECT_NE(content.find("offline,0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ActivityLogTest, RingBufferKeepsNewestAndCountsDrops) {
  ActivityLog log(/*max_entries=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Record(i, "peer/" + std::to_string(i), "churn", "x");
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped_entries(), 2u);
  EXPECT_EQ(log.max_entries(), 3u);
  // Oldest two evicted; newest three retained in order.
  EXPECT_DOUBLE_EQ(log.entries().front().time, 2.0);
  EXPECT_DOUBLE_EQ(log.entries().back().time, 4.0);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped_entries(), 0u);
}

TEST(ActivityLogTest, UnboundedModeNeverDrops) {
  ActivityLog log;
  for (int i = 0; i < 100; ++i) log.Record(i, "a", "b", "c");
  EXPECT_EQ(log.size(), 100u);
  EXPECT_EQ(log.dropped_entries(), 0u);
}

TEST(ActivityLogTest, TraceIdStoredOnEntries) {
  ActivityLog log;
  log.Record(1.0, "peer/0", "predict", "request", 7);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].trace_id, 7u);
}

TEST(ActivityLogTest, ClearEmpties) {
  ActivityLog log;
  log.Record(1, "a", "b", "c");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace p2pdt
