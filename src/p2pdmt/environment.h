#ifndef P2PDT_P2PDMT_ENVIRONMENT_H_
#define P2PDT_P2PDMT_ENVIRONMENT_H_

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/profile.h"
#include "common/status.h"
#include "p2psim/chord.h"
#include "p2psim/churn.h"
#include "p2psim/fault.h"
#include "p2psim/network.h"
#include "p2psim/simulator.h"
#include "p2psim/unstructured.h"

namespace p2pdt {

enum class OverlayType { kChord, kUnstructured };
enum class ChurnType { kNone, kExponential, kPareto };

const char* OverlayTypeToString(OverlayType t);
const char* ChurnTypeToString(ChurnType t);

/// Which observability subsystems an environment installs. Both default
/// off: a disabled subsystem is a null pointer on the network, so every
/// instrumentation site costs one pointer test and the event schedule is
/// bit-identical either way.
struct ObservabilityOptions {
  /// Metrics registry: counters / gauges / latency histograms.
  bool metrics = false;
  /// Causal tracer: per-message spans exported as Chrome trace JSON.
  bool tracing = false;
  /// Hot-path cost ledger: deterministic operation and wire-byte counters.
  /// Enabled process-wide for the experiment's duration (the counters are
  /// thread-local, so concurrent environments share one ledger).
  bool cost_ledger = false;
  /// Wall-clock span profiler with collapsed-stack flamegraph export.
  bool profiling = false;
};

/// One-stop configuration of a simulated P2P environment — the "Configure
/// physical network / Generate P2P network / Simulate node failures" block
/// of P2PDMT's architecture (Fig. 2).
struct EnvironmentOptions {
  std::size_t num_peers = 64;
  PhysicalNetworkOptions physical;
  OverlayType overlay = OverlayType::kChord;
  ChordOptions chord;
  UnstructuredOptions unstructured;
  ChurnType churn = ChurnType::kNone;
  /// Mean online session length (seconds) for exponential/Pareto churn.
  double churn_mean_online_sec = 600.0;
  /// Mean offline gap (seconds).
  double churn_mean_offline_sec = 120.0;
  /// Pareto shape for heavy-tailed lifetimes.
  double churn_pareto_alpha = 1.5;
  /// Structured faults (burst loss, partitions, latency spikes, scripted
  /// crash/recover) layered on top of churn; armed by StartDynamics when
  /// non-empty. Scripted transitions notify the overlay exactly like churn
  /// transitions do.
  FaultPlanSpec fault;
  /// Metrics / tracing subsystems (both off by default).
  ObservabilityOptions observe;
  uint64_t seed = 99;
};

/// Owns an assembled simulation: simulator + underlay + overlay + churn,
/// with the churn driver wired to the overlay's transition handling.
class Environment {
 public:
  /// Builds the environment and joins all peers to the overlay.
  static Result<std::unique_ptr<Environment>> Create(
      const EnvironmentOptions& options);

  Simulator& sim() { return *sim_; }
  PhysicalNetwork& net() { return *net_; }
  Overlay& overlay() { return *overlay_; }
  /// Non-null only when the overlay is Chord.
  ChordOverlay* chord() { return chord_; }
  UnstructuredOverlay* unstructured() { return unstructured_; }
  ChurnDriver& churn() { return *churn_; }
  /// Non-null only when options.fault was non-empty.
  FaultInjector* fault_injector() { return fault_.get(); }
  /// Non-null only when options.observe.metrics was set.
  MetricsRegistry* metrics() { return metrics_.get(); }
  /// Non-null only when options.observe.tracing was set.
  Tracer* tracer() { return tracer_.get(); }
  /// Non-null only when options.observe.profiling was set. Installed as the
  /// process-wide profiler while this environment is alive.
  PhaseProfiler* profiler() { return profiler_.get(); }
  const EnvironmentOptions& options() const { return options_; }

  /// Starts churn transitions and (for Chord) periodic stabilization.
  void StartDynamics();

  /// Runs the simulator until `flag` becomes true or `max_sim_seconds`
  /// elapse; returns the simulated seconds consumed. This is the standard
  /// way to drive an async protocol to quiescence under recurring churn /
  /// maintenance events (plain RunAll would never return).
  double RunUntilFlag(const bool& flag, double max_sim_seconds);

  ~Environment();

 private:
  Environment() = default;

  EnvironmentOptions options_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<PhysicalNetwork> net_;
  std::unique_ptr<Overlay> overlay_;
  ChordOverlay* chord_ = nullptr;
  UnstructuredOverlay* unstructured_ = nullptr;
  std::unique_ptr<ChurnDriver> churn_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<PhaseProfiler> profiler_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_ENVIRONMENT_H_
