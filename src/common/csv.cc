#include "common/csv.h"

#include <cstdio>
#include <fstream>

namespace p2pdt {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

Status CsvWriter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::InvalidArgument("CSV row width " +
                                   std::to_string(row.size()) +
                                   " != header width " +
                                   std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> formatted;
  formatted.reserve(row.size());
  for (double v : row) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    formatted.emplace_back(buf);
  }
  return AddRow(std::move(formatted));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToString();
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

std::string CsvEscape(const std::string& field) {
  bool needs_quoting = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace p2pdt
